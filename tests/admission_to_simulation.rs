//! System test: the *actual run-time admission controller* decides which
//! flows exist; the packet simulator then executes exactly that flow set
//! adversarially; every admitted packet meets its deadline.
//!
//! This is the full paper pipeline with no shortcuts: configuration →
//! controller → admission decisions → forwarding → measured guarantees.

use uba::admission::{AdmissionController, RoutingTable};
use uba::delay::fixed_point::{solve_two_class, SolveConfig};
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;
use uba::sim::{simulate, FlowSpec, SimConfig, SourceModel};

#[test]
fn admitted_flows_meet_deadlines_in_simulation() {
    let g = uba::topology::nsfnet();
    let capacity = 2e6;
    let servers = Servers::from_topology(&g, capacity);
    let voip = TrafficClass::voip();
    let alpha = 0.2;

    // Configuration: SP routes, Figure 2 verification.
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).expect("connected");
    let mut routes = RouteSet::new(g.edge_count());
    for p in &paths {
        routes.push(Route::from_path(ClassId(0), p));
    }
    let analysis = solve_two_class(
        &servers,
        &voip,
        alpha,
        &routes,
        &SolveConfig::default(),
        None,
    );
    assert!(analysis.outcome.is_safe());
    let bound = analysis.route_delays.iter().cloned().fold(0.0, f64::max);

    // Run-time: the real controller admits flows round-robin over pairs
    // until everything is full.
    let mut table = RoutingTable::new();
    table.insert_all(ClassId(0), paths.iter());
    let caps: Vec<f64> = (0..servers.len()).map(|k| servers.capacity_at(k)).collect();
    let ctrl = AdmissionController::new(table, &ClassSet::single(voip.clone()), &caps, &[alpha]);
    let mut handles = Vec::new();
    let mut full_rounds = 0;
    while full_rounds < 1 {
        let before = handles.len();
        for p in &pairs {
            if let Ok(h) = ctrl.try_admit(ClassId(0), p.src, p.dst) {
                handles.push((p.src, h));
            }
        }
        if handles.len() == before {
            full_rounds += 1;
        }
    }
    assert!(!handles.is_empty());

    // Forwarding: simulate exactly the admitted set, worst-case sources.
    let flows: Vec<FlowSpec> = handles
        .iter()
        .map(|(src, h)| FlowSpec {
            class: 0,
            ingress: src.0,
            route: h.route().to_vec(),
            source: SourceModel::voip_greedy(0.0),
        })
        .collect();
    let report = simulate(
        &caps,
        &flows,
        &SimConfig {
            horizon: 0.25,
            deadlines: vec![voip.deadline],
            policers: Some(vec![(voip.bucket.burst, voip.bucket.rate)]),
        },
    );
    assert!(report.total_packets > 0);
    assert_eq!(
        report.total_misses(),
        0,
        "admitted traffic missed deadlines"
    );
    assert_eq!(
        report.classes[0].policed_drops, 0,
        "conforming traffic policed"
    );
    assert!(
        report.max_delay() <= bound + 0.005,
        "sim {} exceeded analytic bound {}",
        report.max_delay(),
        bound
    );

    // Backlog bounds from the verification cover the simulated peaks
    // (in packets: bound bits / packet size, plus one in service).
    let verify_report = uba::delay::verify::verify(
        &servers,
        &ClassSet::single(voip.clone()),
        &[alpha],
        &routes,
        &SolveConfig::default(),
    );
    let backlog_bits = verify_report.backlog_bounds(&caps);
    let worst_backlog_pkts = backlog_bits
        .iter()
        .map(|b| (b / 640.0).ceil() as usize + 1)
        .max()
        .unwrap();
    assert!(
        report.peak_backlog <= worst_backlog_pkts * 2,
        "peak backlog {} vs analytic {} pkts",
        report.peak_backlog,
        worst_backlog_pkts
    );
}
