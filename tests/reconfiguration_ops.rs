//! Operations-loop integration: configuration changes propagate into a
//! fresh admission plane without disturbing the guarantee machinery.

use uba::admission::{AdmissionController, BackendKind, RoutingTable};
use uba::prelude::*;
use uba::routing::Configuration;

fn stand_up_controller(
    cfg: &Configuration,
    servers: &Servers,
    voip: &TrafficClass,
    alpha: f64,
) -> AdmissionController {
    let mut table = RoutingTable::new();
    for p in cfg.paths() {
        table.insert(ClassId(0), p);
    }
    let caps: Vec<f64> = (0..servers.len()).map(|k| servers.capacity_at(k)).collect();
    AdmissionController::new(table, &ClassSet::single(voip.clone()), &caps, &[alpha])
}

#[test]
fn failure_recovery_keeps_admission_working() {
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    let alpha = 0.25;
    let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(4).collect();
    let sel = select_routes(
        &g,
        &servers,
        &voip,
        alpha,
        &pairs,
        &HeuristicConfig::default(),
    )
    .expect("configurable");
    let mut live = Configuration::from_selection(
        g.clone(),
        servers.clone(),
        voip.clone(),
        alpha,
        HeuristicConfig::default(),
        sel,
    );

    // Admission plane v1.
    let ctrl = stand_up_controller(&live, &servers, &voip, alpha);
    let probe = live.pairs()[0];
    let call = ctrl.try_admit(ClassId(0), probe.src, probe.dst).unwrap();
    assert!(!call.route().is_empty());
    drop(call);

    // Incident + recovery.
    let report = live.fail_link(NodeId(1), NodeId(4)).expect("recoverable");
    assert!(live.verify());

    // Admission plane v2 from the recovered configuration: every pair
    // still admissible, and no admitted route crosses the dead link.
    let ctrl2 = stand_up_controller(&live, &servers, &voip, alpha);
    let mut admitted = 0;
    for p in live.pairs() {
        let h = ctrl2
            .try_admit(ClassId(0), p.src, p.dst)
            .unwrap_or_else(|e| panic!("pair {p:?} rejected post-recovery: {e:?}"));
        for e in h.route() {
            assert!(
                !live.failed_links().contains(&uba::graph::EdgeId(*e)),
                "admitted route crosses the failed link"
            );
        }
        admitted += 1;
    }
    assert_eq!(admitted, live.pairs().len());
    assert!(!report.rerouted.is_empty());

    // Restoration makes the link routable again for new demand.
    assert_eq!(live.restore_link(NodeId(1), NodeId(4)), 2);
    assert!(live.verify());
}

#[test]
fn live_reconfigure_follows_link_failure_without_dropping_calls() {
    // Same incident as above, but instead of standing up a second
    // admission plane, the recovered configuration is hot-swapped into
    // the *live* controller: calls admitted before the failure stay up
    // (draining against their own generation) while new calls land on
    // the repaired routes — and on a different backend, since the swap
    // can also migrate backends.
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    let alpha = 0.25;
    let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(4).collect();
    let sel = select_routes(
        &g,
        &servers,
        &voip,
        alpha,
        &pairs,
        &HeuristicConfig::default(),
    )
    .expect("configurable");
    let mut live = Configuration::from_selection(
        g.clone(),
        servers.clone(),
        voip.clone(),
        alpha,
        HeuristicConfig::default(),
        sel,
    );

    let ctrl = AdmissionController::from_generation(live.apply(BackendKind::Atomic));
    let g1 = ctrl.current_generation().id();
    let held: Vec<_> = live
        .pairs()
        .iter()
        .map(|p| ctrl.try_admit(ClassId(0), p.src, p.dst).unwrap())
        .collect();

    live.fail_link(NodeId(1), NodeId(4)).expect("recoverable");
    assert!(live.verify());
    let report = ctrl.reconfigure(live.apply(BackendKind::Sharded(4)));
    assert_eq!(report.previous, g1);
    assert_eq!(report.pinned_previous, held.len() as u64);

    // New calls run against the repaired routes and fresh budgets.
    for p in live.pairs() {
        let h = ctrl
            .try_admit(ClassId(0), p.src, p.dst)
            .unwrap_or_else(|e| panic!("pair {p:?} rejected post-swap: {e:?}"));
        for e in h.route() {
            assert!(
                !live.failed_links().contains(&uba::graph::EdgeId(*e)),
                "admitted route crosses the failed link"
            );
        }
    }

    // The pre-incident calls were never dropped; ending them drains the
    // retired generation completely.
    assert_eq!(held[0].generation(), g1);
    drop(held);
    assert!(ctrl.drain().is_drained());
}

#[test]
fn occupancy_dashboard_reflects_load() {
    let g = uba::topology::ring(6);
    let servers = Servers::uniform(&g, 1e6, 3);
    let voip = TrafficClass::voip();
    let alpha = 0.3;
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).unwrap();
    let mut table = RoutingTable::new();
    table.insert_all(ClassId(0), paths.iter());
    let caps: Vec<f64> = (0..servers.len()).map(|k| servers.capacity_at(k)).collect();
    let ctrl = AdmissionController::new(table, &ClassSet::single(voip), &caps, &[alpha]);

    // Saturate a single pair's route.
    let p = pairs[0];
    let mut held = Vec::new();
    while let Ok(h) = ctrl.try_admit(ClassId(0), p.src, p.dst) {
        held.push(h);
    }
    let hot = ctrl.hottest_links(ClassId(0), 3);
    // 9 of 9.375 budgeted flows fit: the link is as full as granularity
    // allows (another flow would not fit).
    assert!(hot[0].1 > 0.9, "hottest link occupancy {}", hot[0].1);
    // Releasing everything drains the dashboard.
    drop(held);
    assert!(ctrl
        .occupancy_snapshot(ClassId(0))
        .iter()
        .all(|&o| o == 0.0));
}
