//! Cross-crate integration: configuration → admission → analysis → sim.

use uba::admission::{AdmissionController, Reject, RoutingTable};
use uba::delay::fixed_point::{solve_two_class, SolveConfig};
use uba::delay::general::{analyze_flows, Flow, GeneralOutcome};
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;

/// Full pipeline on the paper's topology: max-utilization configuration,
/// controller stand-up, admission to the limit on one route, and the
/// invariant that the admitted flow set passes the exact flow-aware
/// delay analysis.
#[test]
fn configured_controller_admits_only_analyzable_load() {
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    // Modest subset of pairs for test speed.
    let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(13).collect();
    let result = max_utilization(
        &g,
        &servers,
        &voip,
        &pairs,
        &Selector::Heuristic(HeuristicConfig::default()),
        0.01,
    );
    let alpha = result.alpha;
    let sel = result.selection.expect("configurable");

    let mut table = RoutingTable::new();
    table.insert_all(ClassId(0), sel.paths.iter());
    let caps: Vec<f64> = (0..servers.len()).map(|k| servers.capacity_at(k)).collect();
    let ctrl = AdmissionController::new(table, &classes_of(&voip), &caps, &[alpha]);

    // Admit a batch of flows over the configured pairs.
    let mut handles = Vec::new();
    for p in pairs.iter().cycle().take(500) {
        match ctrl.try_admit(ClassId(0), p.src, p.dst) {
            Ok(h) => handles.push((p, h)),
            Err(Reject::LinkFull { .. }) => {}
            Err(Reject::NoRoute) => panic!("configured pair has no route"),
            Err(Reject::Policy { .. }) => panic!("default controller has no policy stages"),
        }
    }
    assert!(!handles.is_empty());

    // The admitted set must be feasible under the exact general analysis
    // (the configuration-time bound dominates it).
    let flows: Vec<Flow> = handles
        .iter()
        .map(|(_, h)| Flow {
            bucket: voip.bucket,
            deadline: voip.deadline,
            servers: h.route().to_vec(),
        })
        .collect();
    let exact = analyze_flows(&servers, &flows, 1e-9, 5000);
    assert_eq!(exact.outcome, GeneralOutcome::Feasible);
    // And the exact delays are below the configuration-time bound.
    let cfg_bound = sel.route_delays.iter().cloned().fold(0.0, f64::max);
    let exact_max = exact.flow_delays.iter().cloned().fold(0.0, f64::max);
    assert!(
        exact_max <= cfg_bound + 1e-9,
        "exact {exact_max} above configured bound {cfg_bound}"
    );
}

fn classes_of(c: &TrafficClass) -> ClassSet {
    ClassSet::single(c.clone())
}

/// The run-time utilization test admits exactly the per-link budget, and
/// the analytic guarantee covers that load: general-analysis verification
/// of a saturated single link.
#[test]
fn saturated_link_still_meets_deadline() {
    let g = uba::topology::line(3);
    let capacity = 1e6;
    let servers = Servers::from_topology(&g, capacity);
    let voip = TrafficClass::voip();
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).unwrap();
    let mut routes = RouteSet::new(g.edge_count());
    for p in &paths {
        routes.push(Route::from_path(ClassId(0), p));
    }
    // Find a safe alpha by verification.
    let alpha = 0.4;
    let analysis = solve_two_class(
        &servers,
        &voip,
        alpha,
        &routes,
        &SolveConfig::default(),
        None,
    );
    assert!(analysis.outcome.is_safe());

    let mut table = RoutingTable::new();
    table.insert_all(ClassId(0), paths.iter());
    let caps: Vec<f64> = (0..servers.len()).map(|k| servers.capacity_at(k)).collect();
    let ctrl = AdmissionController::new(table, &classes_of(&voip), &caps, &[alpha]);

    // Saturate the 0->2 route.
    let mut handles = Vec::new();
    while let Ok(h) = ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)) {
        handles.push(h);
    }
    let expected = (alpha * capacity / voip.bucket.rate) as usize;
    assert_eq!(handles.len(), expected);

    let flows: Vec<Flow> = handles
        .iter()
        .map(|h| Flow {
            bucket: voip.bucket,
            deadline: voip.deadline,
            servers: h.route().to_vec(),
        })
        .collect();
    let exact = analyze_flows(&servers, &flows, 1e-9, 5000);
    assert_eq!(exact.outcome, GeneralOutcome::Feasible);
}

/// Verification and selection agree: the route set produced by
/// `select_routes` at alpha passes `verify` at the same alpha.
#[test]
fn selection_and_verification_agree() {
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(17).collect();
    let sel = select_routes(
        &g,
        &servers,
        &voip,
        0.4,
        &pairs,
        &HeuristicConfig::default(),
    )
    .expect("routable");
    let classes = classes_of(&voip);
    let report = verify(
        &servers,
        &classes,
        &[0.4],
        &sel.routes,
        &SolveConfig::default(),
    );
    assert!(report.safe);
    // And the delays match the selection's own record.
    for (a, b) in report.route_delays.iter().zip(&sel.route_delays) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// The SP baseline and the heuristic both respect the Theorem 4 window on
/// the paper's topology (subset of pairs for speed).
#[test]
fn alphas_inside_theorem4_window() {
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(8).collect();
    for selector in [
        Selector::ShortestPath,
        Selector::Heuristic(HeuristicConfig::default()),
    ] {
        let r = max_utilization(&g, &servers, &voip, &pairs, &selector, 0.01);
        let (lb, ub) = r.bounds;
        assert!(
            r.alpha >= lb - 1e-9,
            "{:?} alpha {} < lb {lb}",
            r.probes,
            r.alpha
        );
        assert!(r.alpha <= ub + 0.01, "alpha {} > ub {ub}", r.alpha);
    }
}
