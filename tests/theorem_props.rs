//! Property tests of the paper's theorems at network scale.
//!
//! The plain `#[test]` below always runs. The proptest-based properties
//! are gated behind the non-default `prop-tests` feature so the default
//! build stays hermetic (offline, no registry); to run them, re-add
//! `proptest = "1"` under [dev-dependencies] and pass
//! `--features prop-tests`.

use uba::delay::fixed_point::{solve_two_class, SolveConfig};
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;

/// Theorem 4 lower-bound claim: for *any* (random) topology, shortest-path
/// routing at alpha slightly below the bound verifies safe.
#[test]
fn theorem4_lower_bound_safe_on_random_topologies() {
    for seed in 0..12u64 {
        let g = uba::topology::waxman(14, 0.4, 0.5, seed);
        let diameter = uba::graph::bfs::diameter(&g).expect("connected");
        if diameter == 0 {
            continue;
        }
        let n = g.max_in_degree().max(2);
        let servers = Servers::uniform(&g, 100e6, n);
        let voip = TrafficClass::voip();
        let (lb, _) = utilization_bounds(n, diameter.max(1), &voip);
        let alpha = (lb * 0.98).min(0.98);
        if alpha <= 0.0 {
            continue;
        }
        let pairs = all_ordered_pairs(&g);
        let paths = sp_selection(&g, &pairs).expect("connected");
        let mut routes = RouteSet::new(g.edge_count());
        for p in &paths {
            routes.push(Route::from_path(ClassId(0), p));
        }
        let r = solve_two_class(
            &servers,
            &voip,
            alpha,
            &routes,
            &SolveConfig::default(),
            None,
        );
        assert!(
            r.outcome.is_safe(),
            "seed {seed}: SP at 0.98*LB={alpha} must verify (L={diameter}, N={n}), got {:?}",
            r.outcome
        );
    }
}

#[cfg(feature = "prop-tests")]
mod props {
    use super::*;
    use proptest::prelude::*;
    use uba::delay::general::{analyze_flows, Flow, GeneralOutcome};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Network-level domination: for random admissible flow placements on
        /// a random topology, the exact flow-aware analysis never exceeds the
        /// configuration-time per-route bounds.
        #[test]
        fn general_analysis_dominated_by_config_bound(seed in 0u64..500, alpha in 0.05f64..0.35) {
            let g = uba::topology::waxman(10, 0.4, 0.5, seed);
            let capacity = 1e6;
            let servers = Servers::from_topology(&g, capacity);
            let voip = TrafficClass::voip();
            let pairs = all_ordered_pairs(&g);
            let paths = sp_selection(&g, &pairs).expect("connected");
            let mut routes = RouteSet::new(g.edge_count());
            for p in &paths {
                routes.push(Route::from_path(ClassId(0), p));
            }
            let cfg = solve_two_class(&servers, &voip, alpha, &routes, &SolveConfig::default(), None);
            prop_assume!(cfg.outcome.is_safe());

            // Greedy admissible fill (respects per-link alpha budget).
            let mut reserved = vec![0.0f64; servers.len()];
            let mut flows = Vec::new();
            let mut progress = true;
            while progress {
                progress = false;
                for p in &paths {
                    let fits = p.edges.iter().all(|e| {
                        reserved[e.index()] + voip.bucket.rate <= alpha * capacity + 1e-9
                    });
                    if fits {
                        for e in &p.edges {
                            reserved[e.index()] += voip.bucket.rate;
                        }
                        flows.push(Flow {
                            bucket: voip.bucket,
                            deadline: voip.deadline,
                            servers: p.edges.iter().map(|e| e.0).collect(),
                        });
                        progress = true;
                    }
                }
            }
            prop_assume!(!flows.is_empty());
            let exact = analyze_flows(&servers, &flows, 1e-9, 5000);
            prop_assert_eq!(exact.outcome, GeneralOutcome::Feasible);
            // Per-server: exact delay <= configured bound.
            for k in 0..servers.len() {
                prop_assert!(
                    exact.delays[k] <= cfg.delays[k] + 1e-9,
                    "server {k}: exact {} > bound {}",
                    exact.delays[k],
                    cfg.delays[k]
                );
            }
        }

        /// Monotonicity of the verified fixed point in alpha, at network
        /// scale.
        #[test]
        fn fixed_point_monotone_in_alpha(seed in 0u64..200) {
            let g = uba::topology::waxman(10, 0.4, 0.5, seed);
            let servers = Servers::uniform(&g, 100e6, g.max_in_degree().max(2));
            let voip = TrafficClass::voip();
            let pairs = all_ordered_pairs(&g);
            let paths = sp_selection(&g, &pairs).expect("connected");
            let mut routes = RouteSet::new(g.edge_count());
            for p in &paths {
                routes.push(Route::from_path(ClassId(0), p));
            }
            let scfg = SolveConfig::default();
            let lo = solve_two_class(&servers, &voip, 0.10, &routes, &scfg, None);
            let hi = solve_two_class(&servers, &voip, 0.15, &routes, &scfg, None);
            prop_assume!(lo.outcome.is_safe() && hi.outcome.is_safe());
            for (a, b) in lo.delays.iter().zip(&hi.delays) {
                prop_assert!(a <= b);
            }
        }
    }
}
