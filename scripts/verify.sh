#!/usr/bin/env bash
# Repo verification gate: hermetic release build, full test suite, and the
# instrumentation-overhead smoke check. Everything runs offline — the
# workspace has no external dependencies (see DESIGN.md §3).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --offline --release (hermetic build)"
cargo build --offline --release --workspace

echo "==> cargo fmt --check (formatting gate)"
cargo fmt --check

echo "==> xtask check (repo invariant linter: orderings, shims, unsafe, manifest, clocks, padding, slo rules, policy stages, loom coverage)"
cargo run --offline -q -p xtask -- check

echo "==> cargo clippy --workspace -- -D warnings (lint gate)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test --offline -q (workspace test suite)"
cargo test --offline --workspace -q

echo "==> obs_overhead smoke (instrumented admit path vs uninstrumented)"
cargo run --offline --release -p uba-bench --bin obs_overhead -- smoke

echo "==> config_speed smoke (incremental solver vs dense/cloning reference)"
cargo run --offline --release -p uba-bench --bin config_speed -- smoke

echo "==> trace_overhead smoke (flight recorder on vs off on the admit path)"
cargo run --offline --release -p uba-bench --bin trace_overhead -- smoke

echo "==> slo_overhead smoke (admit path under hostile SLO evaluation vs quiet)"
cargo run --offline --release -p uba-bench --bin slo_overhead -- smoke

echo "==> reconfig_overhead smoke (versioned admit path vs pinned-generation baseline)"
cargo run --offline --release -p uba-bench --bin reconfig_overhead -- smoke

echo "==> admission_scaling smoke (multi-thread throughput, latency + contention telemetry)"
cargo run --offline --release -p uba-bench --bin admission_scaling -- smoke

echo "==> policy_burst smoke (policy-chain A/B: adaptive must beat utilization-only under burst)"
cargo run --offline --release -p uba-bench --bin policy_burst -- smoke

# Bounded model checking of the lock-free admission paths (uba-loom, the
# in-tree weak-memory checker). The preemption-bounded smoke pass finishes
# in seconds; the exhaustive pass (full DFS, no preemption bound) runs only
# when UBA_LOOM_EXHAUSTIVE=1 is set — it is minutes, not seconds.
echo "==> loom bounded models (weak-memory concurrency smoke: admission + obs under --cfg loom)"
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
  cargo test --offline -q -p uba-admission -p uba-obs --test loom_models

echo "==> loom DPOR reduction gate (exhaustive DFS of the flagship models -> BENCH_loom.json)"
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
  cargo test --offline -q -p uba-admission --test loom_bench

if [[ "${UBA_LOOM_EXHAUSTIVE:-0}" == "1" ]]; then
  echo "==> loom exhaustive models (full DFS via --features prop-tests)"
  RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
    cargo test --offline -q -p uba-admission -p uba-obs --test loom_models \
      --features uba-admission/prop-tests
fi

echo "==> verify.sh: all checks passed"
