#!/usr/bin/env bash
# Repo verification gate: hermetic release build, full test suite, and the
# instrumentation-overhead smoke check. Everything runs offline — the
# workspace has no external dependencies (see DESIGN.md §3).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --offline --release (hermetic build)"
cargo build --offline --release --workspace

echo "==> cargo clippy --workspace -- -D warnings (lint gate)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test --offline -q (workspace test suite)"
cargo test --offline --workspace -q

echo "==> obs_overhead smoke (instrumented admit path vs uninstrumented)"
cargo run --offline --release -p uba-bench --bin obs_overhead -- smoke

echo "==> config_speed smoke (incremental solver vs dense/cloning reference)"
cargo run --offline --release -p uba-bench --bin config_speed -- smoke

echo "==> trace_overhead smoke (flight recorder on vs off on the admit path)"
cargo run --offline --release -p uba-bench --bin trace_overhead -- smoke

echo "==> reconfig_overhead smoke (versioned admit path vs pinned-generation baseline)"
cargo run --offline --release -p uba-bench --bin reconfig_overhead -- smoke

echo "==> verify.sh: all checks passed"
