//! Property tests pinning the graph algorithms against brute-force
//! references on small random graphs.

// Gated behind the non-default `prop-tests` feature: the `proptest`
// dev-dependency is not declared so the default build stays hermetic
// (offline, no registry). To run: re-add `proptest = "1"` under
// [dev-dependencies] and `cargo test --features prop-tests`.
#![cfg(feature = "prop-tests")]

use proptest::prelude::*;
use std::collections::HashSet;
use uba_graph::{bfs, dijkstra, k_shortest_paths, Digraph, EdgeId, NodeId, Path};

/// Random connected-ish undirected graph on up to 7 nodes.
fn arb_graph() -> impl Strategy<Value = Digraph> {
    (
        2usize..7,
        proptest::collection::vec((0usize..7, 0usize..7, 1u32..10), 4..16),
    )
        .prop_map(|(n, raw_edges)| {
            let mut g = Digraph::with_nodes(n);
            // Spanning chain guarantees connectivity.
            for i in 0..n - 1 {
                g.add_link(NodeId(i as u32), NodeId(i as u32 + 1), 1.0);
            }
            let mut seen = HashSet::new();
            for (a, b, w) in raw_edges {
                let (a, b) = (a % n, b % n);
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    g.add_link(NodeId(a as u32), NodeId(b as u32), w as f64);
                }
            }
            g
        })
}

/// All simple paths from src to dst by exhaustive DFS.
fn brute_force_paths(g: &Digraph, src: NodeId, dst: NodeId) -> Vec<Path> {
    fn dfs(
        g: &Digraph,
        cur: NodeId,
        dst: NodeId,
        visited: &mut Vec<bool>,
        stack: &mut Vec<EdgeId>,
        out: &mut Vec<Path>,
    ) {
        if cur == dst {
            out.push(Path::from_edges(g, stack.clone()));
            return;
        }
        for &e in g.out_edges(cur) {
            let v = g.dst(e);
            if !visited[v.index()] {
                visited[v.index()] = true;
                stack.push(e);
                dfs(g, v, dst, visited, stack, out);
                stack.pop();
                visited[v.index()] = false;
            }
        }
    }
    let mut visited = vec![false; g.node_count()];
    visited[src.index()] = true;
    let mut out = Vec::new();
    dfs(g, src, dst, &mut visited, &mut Vec::new(), &mut out);
    out
}

/// Floyd–Warshall reference distances.
fn floyd_warshall(g: &Digraph) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for e in g.edges() {
        let (a, b) = (g.src(e).index(), g.dst(e).index());
        d[a][b] = d[a][b].min(g.weight(e));
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if d[i][k] + d[k][j] < d[i][j] {
                    d[i][j] = d[i][k] + d[k][j];
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dijkstra_matches_floyd_warshall(g in arb_graph()) {
        let fw = floyd_warshall(&g);
        for s in g.nodes() {
            let sp = dijkstra::dijkstra(&g, s);
            for t in g.nodes() {
                let a = sp.dist(t);
                let b = fw[s.index()][t.index()];
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "dist({s:?},{t:?}): dijkstra {a}, fw {b}");
            }
        }
    }

    #[test]
    fn yen_matches_brute_force(g in arb_graph(), k in 1usize..12) {
        let (src, dst) = (NodeId(0), NodeId((g.node_count() - 1) as u32));
        let yen = k_shortest_paths(&g, src, dst, k);
        let mut brute = brute_force_paths(&g, src, dst);
        brute.sort_by(|a, b| a.weight(&g).total_cmp(&b.weight(&g)));
        prop_assert_eq!(yen.len(), brute.len().min(k));
        // Weights agree position by position (paths may tie arbitrarily).
        for (y, b) in yen.iter().zip(&brute) {
            prop_assert!((y.weight(&g) - b.weight(&g)).abs() <= 1e-9,
                "weights diverge: {} vs {}", y.weight(&g), b.weight(&g));
        }
        // Yen's paths are simple, distinct, and genuinely in the graph.
        let mut seen = HashSet::new();
        for p in &yen {
            prop_assert!(p.is_simple());
            prop_assert!(seen.insert(p.edges.clone()));
        }
    }

    #[test]
    fn undirected_hop_distances_symmetric(g in arb_graph()) {
        for a in g.nodes() {
            let da = bfs::hop_distances(&g, a);
            for b in g.nodes() {
                let db = bfs::hop_distances(&g, b);
                prop_assert_eq!(da[b.index()], db[a.index()]);
            }
        }
    }

    #[test]
    fn diameter_is_max_of_eccentricities(g in arb_graph()) {
        let diam = bfs::diameter(&g).expect("connected by construction");
        let max_ecc = g
            .nodes()
            .map(|n| bfs::eccentricity(&g, n).unwrap())
            .max()
            .unwrap();
        prop_assert_eq!(diam, max_ecc);
    }
}
