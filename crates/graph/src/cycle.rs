//! Dynamic overlay digraph with reference-counted edges and cycle queries.
//!
//! Heuristic (2) of Section 5.2 prefers candidate routes that "form a
//! noncyclic graph with existing routes": cycles in the *route-dependency
//! graph* (link servers as vertices, consecutive servers of a route as
//! edges) create queuing feedback and inflate the delay fixed point. The
//! route set evolves one route at a time, so this structure supports
//! incremental edge insertion/removal with multiplicities and a
//! would-adding-these-edges-create-a-cycle query.

use std::collections::HashMap;

/// A dynamic directed graph over `usize` vertices with edge multiplicities.
#[derive(Clone, Debug, Default)]
pub struct DynDigraph {
    n: usize,
    /// out[u] maps v -> multiplicity of edge (u, v).
    out: Vec<HashMap<usize, usize>>,
}

impl DynDigraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            out: vec![HashMap::new(); n],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Multiplicity of edge `(u, v)`.
    pub fn multiplicity(&self, u: usize, v: usize) -> usize {
        self.out[u].get(&v).copied().unwrap_or(0)
    }

    /// Adds one instance of edge `(u, v)`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        *self.out[u].entry(v).or_insert(0) += 1;
    }

    /// Removes one instance of edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if the edge is not present.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        let m = self.out[u]
            .get_mut(&v)
            .expect("removing edge that is not present");
        *m -= 1;
        if *m == 0 {
            self.out[u].remove(&v);
        }
    }

    /// Adds the consecutive-pair edges of a vertex sequence (a route).
    pub fn add_chain(&mut self, chain: &[usize]) {
        for w in chain.windows(2) {
            self.add_edge(w[0], w[1]);
        }
    }

    /// Removes the consecutive-pair edges of a vertex sequence.
    pub fn remove_chain(&mut self, chain: &[usize]) {
        for w in chain.windows(2) {
            self.remove_edge(w[0], w[1]);
        }
    }

    /// True if a directed path from `from` to `to` exists (iterative DFS).
    pub fn has_path(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.n];
        let mut stack = vec![from];
        visited[from] = true;
        while let Some(u) = stack.pop() {
            for &v in self.out[u].keys() {
                if v == to {
                    return true;
                }
                if !visited[v] {
                    visited[v] = true;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// True if the graph currently contains a directed cycle (Kahn).
    pub fn has_cycle(&self) -> bool {
        let mut indeg = vec![0usize; self.n];
        for u in 0..self.n {
            for (&v, &m) in &self.out[u] {
                // Self-loops are cycles regardless of the topological order.
                if u == v && m > 0 {
                    return true;
                }
                indeg[v] += m.min(1);
            }
        }
        let mut stack: Vec<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut removed = 0;
        let mut alive = vec![true; self.n];
        while let Some(u) = stack.pop() {
            alive[u] = false;
            removed += 1;
            for &v in self.out[u].keys() {
                if alive[v] {
                    indeg[v] -= 1;
                    if indeg[v] == 0 {
                        stack.push(v);
                    }
                }
            }
        }
        removed != self.n
    }

    /// True if adding the consecutive-pair edges of `chain` would create a
    /// directed cycle. The graph is not modified.
    ///
    /// Assumes the current graph is acyclic (the intended usage: routes are
    /// only committed while acyclicity is preserved, or the caller has
    /// already given up on acyclicity and stops calling this).
    pub fn chain_would_create_cycle(&mut self, chain: &[usize]) -> bool {
        // A chain may itself revisit vertices; simplest correct check:
        // temporarily insert, run has_cycle, remove.
        self.add_chain(chain);
        let cyc = self.has_cycle();
        self.remove_chain(chain);
        cyc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_acyclic() {
        let g = DynDigraph::new(4);
        assert!(!g.has_cycle());
    }

    #[test]
    fn chain_is_acyclic() {
        let mut g = DynDigraph::new(4);
        g.add_chain(&[0, 1, 2, 3]);
        assert!(!g.has_cycle());
        assert!(g.has_path(0, 3));
        assert!(!g.has_path(3, 0));
    }

    #[test]
    fn back_edge_creates_cycle() {
        let mut g = DynDigraph::new(3);
        g.add_chain(&[0, 1, 2]);
        // A forward shortcut 0 -> 2 keeps the graph a DAG.
        assert!(!g.chain_would_create_cycle(&[0, 2]));
        // 2 -> 0 closes the loop through 0 -> 1 -> 2.
        assert!(g.chain_would_create_cycle(&[2, 0]));
        assert!(!g.has_cycle(), "query must not mutate");
    }

    #[test]
    fn would_create_cycle_is_side_effect_free() {
        let mut g = DynDigraph::new(3);
        g.add_chain(&[0, 1]);
        let before = g.multiplicity(0, 1);
        let _ = g.chain_would_create_cycle(&[1, 2, 0]);
        assert_eq!(g.multiplicity(0, 1), before);
        assert_eq!(g.multiplicity(1, 2), 0);
    }

    #[test]
    fn multiplicity_tracked_and_removal_exact() {
        let mut g = DynDigraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.multiplicity(0, 1), 2);
        g.remove_edge(0, 1);
        assert_eq!(g.multiplicity(0, 1), 1);
        g.remove_edge(0, 1);
        assert_eq!(g.multiplicity(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn removing_absent_edge_panics() {
        let mut g = DynDigraph::new(2);
        g.remove_edge(0, 1);
    }

    #[test]
    fn self_loop_is_cycle() {
        let mut g = DynDigraph::new(2);
        g.add_edge(1, 1);
        assert!(g.has_cycle());
    }

    #[test]
    fn two_node_cycle() {
        let mut g = DynDigraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(g.has_cycle());
        g.remove_edge(1, 0);
        assert!(!g.has_cycle());
    }

    #[test]
    fn parallel_edges_do_not_fake_acyclicity() {
        let mut g = DynDigraph::new(3);
        g.add_chain(&[0, 1, 2]);
        g.add_chain(&[0, 1, 2]);
        assert!(!g.has_cycle());
        g.add_chain(&[2, 0]);
        assert!(g.has_cycle());
        g.remove_chain(&[2, 0]);
        assert!(!g.has_cycle());
    }

    #[test]
    fn chain_revisiting_vertices_detected() {
        let mut g = DynDigraph::new(4);
        // The chain itself contains a cycle: 0 -> 1 -> 0.
        assert!(g.chain_would_create_cycle(&[0, 1, 0]));
    }

    #[test]
    fn remove_chain_restores_acyclicity_queries() {
        let mut g = DynDigraph::new(5);
        g.add_chain(&[0, 1, 2, 3, 4]);
        g.remove_chain(&[0, 1, 2, 3, 4]);
        assert!(!g.has_path(0, 4));
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(g.multiplicity(u, v), 0);
            }
        }
    }
}
