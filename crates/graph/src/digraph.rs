//! Compact adjacency-list directed multigraph.
//!
//! Nodes model routers; directed edges model *link servers* (the paper's
//! set `S`). An undirected physical link is added as a pair of directed
//! edges via [`Digraph::add_link`].

use std::fmt;

/// Index of a node (router) in a [`Digraph`].
///
/// Stored as `u32` to keep hot structures small (routing tables hold many
/// of these); convert with [`NodeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a directed edge (link server) in a [`Digraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node's position in the graph's node list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge's position in the graph's edge list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct EdgeData {
    src: NodeId,
    dst: NodeId,
    weight: f64,
}

/// A directed multigraph with `f64` edge weights and optional node labels.
///
/// Node and edge indices are dense and stable: nodes and edges can only be
/// added, never removed, so an [`EdgeId`] is a persistent identity for a
/// link server for the lifetime of a configuration.
#[derive(Clone, Debug, Default)]
pub struct Digraph {
    labels: Vec<String>,
    edges: Vec<EdgeData>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
}

impl Digraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` unlabeled nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Self::new();
        for i in 0..n {
            g.add_node(format!("n{i}"));
        }
        g
    }

    /// Adds a node with a human-readable label; returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.into());
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst` with the given weight; returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range or the weight is negative
    /// or non-finite (Dijkstra requires non-negative weights).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) -> EdgeId {
        assert!(src.index() < self.labels.len(), "src out of range");
        assert!(dst.index() < self.labels.len(), "dst out of range");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge weight must be finite and non-negative"
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeData { src, dst, weight });
        self.out[src.index()].push(id);
        self.inc[dst.index()].push(id);
        id
    }

    /// Adds an undirected link as two directed edges; returns `(a->b, b->a)`.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, weight: f64) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b, weight), self.add_edge(b, a, weight))
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of directed edges (link servers).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The label given to a node at creation.
    pub fn label(&self, n: NodeId) -> &str {
        &self.labels[n.index()]
    }

    /// Source node of an edge.
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of an edge.
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// Weight of an edge.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.edges[e.index()].weight
    }

    /// Outgoing edges of a node.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out[n.index()]
    }

    /// Incoming edges of a node.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.inc[n.index()]
    }

    /// Out-degree of a node.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out[n.index()].len()
    }

    /// In-degree of a node — the paper's per-router fan-in `N` when the
    /// topology was built with [`Digraph::add_link`].
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.inc[n.index()].len()
    }

    /// Maximum in-degree over all nodes (the paper's uniform `N`).
    pub fn max_in_degree(&self) -> usize {
        (0..self.labels.len())
            .map(|i| self.inc[i].len())
            .max()
            .unwrap_or(0)
    }

    /// Successor nodes of `n` (with multiplicity, in edge order).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[n.index()].iter().map(move |&e| self.dst(e))
    }

    /// Finds a directed edge from `a` to `b`, if one exists.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.out[a.index()]
            .iter()
            .copied()
            .find(|&e| self.dst(e) == b)
    }

    /// Renders the graph in Graphviz DOT format (directed; labels from
    /// node labels, edge weight as label when not 1.0).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph g {\n");
        for n in self.nodes() {
            writeln!(out, "  n{} [label=\"{}\"];", n.0, self.label(n)).unwrap();
        }
        for e in self.edges() {
            let w = self.weight(e);
            if w == 1.0 {
                writeln!(out, "  n{} -> n{};", self.src(e).0, self.dst(e).0).unwrap();
            } else {
                writeln!(
                    out,
                    "  n{} -> n{} [label=\"{w}\"];",
                    self.src(e).0,
                    self.dst(e).0
                )
                .unwrap();
            }
        }
        out.push_str("}\n");
        out
    }
}

/// A directed path through a [`Digraph`], stored both as the node sequence
/// and the edge (link-server) sequence.
///
/// Invariant: `edges.len() + 1 == nodes.len()` for non-empty paths, and
/// `edges[i]` connects `nodes[i]` to `nodes[i + 1]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed edges; `edges[i]` goes from `nodes[i]` to `nodes[i+1]`.
    pub edges: Vec<EdgeId>,
}

impl Path {
    /// Builds a path from an edge sequence, recovering the node sequence.
    ///
    /// # Panics
    /// Panics if consecutive edges are not adjacent in `g`.
    pub fn from_edges(g: &Digraph, edges: Vec<EdgeId>) -> Self {
        let mut nodes = Vec::with_capacity(edges.len() + 1);
        for (i, &e) in edges.iter().enumerate() {
            if i == 0 {
                nodes.push(g.src(e));
            } else {
                assert_eq!(g.src(e), *nodes.last().unwrap(), "edges do not form a path");
            }
            nodes.push(g.dst(e));
        }
        Path { nodes, edges }
    }

    /// Source node, if the path is non-empty.
    pub fn source(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// Destination node, if the path is non-empty.
    pub fn target(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Number of hops (edges).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Total weight of the path in `g`.
    pub fn weight(&self, g: &Digraph) -> f64 {
        self.edges.iter().map(|&e| g.weight(e)).sum()
    }

    /// True if no node repeats (loopless path).
    pub fn is_simple(&self) -> bool {
        let mut seen = vec![false; 0];
        let max = self.nodes.iter().map(|n| n.index()).max().unwrap_or(0);
        seen.resize(max + 1, false);
        for n in &self.nodes {
            if seen[n.index()] {
                return false;
            }
            seen[n.index()] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Digraph, [NodeId; 3]) {
        let mut g = Digraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_link(a, b, 1.0);
        g.add_link(b, c, 1.0);
        g.add_link(c, a, 1.0);
        (g, [a, b, c])
    }

    #[test]
    fn add_link_creates_edge_pair() {
        let (g, [a, b, _]) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 6);
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.src(e), a);
        assert_eq!(g.dst(e), b);
        let back = g.find_edge(b, a).unwrap();
        assert_ne!(e, back);
    }

    #[test]
    fn degrees_match_links() {
        let (g, [a, _, _]) = triangle();
        assert_eq!(g.in_degree(a), 2);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.max_in_degree(), 2);
    }

    #[test]
    fn path_from_edges_reconstructs_nodes() {
        let (g, [a, b, c]) = triangle();
        let e1 = g.find_edge(a, b).unwrap();
        let e2 = g.find_edge(b, c).unwrap();
        let p = Path::from_edges(&g, vec![e1, e2]);
        assert_eq!(p.nodes, vec![a, b, c]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(), Some(a));
        assert_eq!(p.target(), Some(c));
        assert!((p.weight(&g) - 2.0).abs() < 1e-12);
        assert!(p.is_simple());
    }

    #[test]
    #[should_panic(expected = "edges do not form a path")]
    fn path_from_disconnected_edges_panics() {
        let (g, [a, b, c]) = triangle();
        let e1 = g.find_edge(a, b).unwrap();
        let e2 = g.find_edge(c, a).unwrap();
        let _ = Path::from_edges(&g, vec![e1, e2]);
    }

    #[test]
    fn non_simple_path_detected() {
        let (g, [a, b, _]) = triangle();
        let ab = g.find_edge(a, b).unwrap();
        let ba = g.find_edge(b, a).unwrap();
        let p = Path::from_edges(&g, vec![ab, ba]);
        assert!(!p.is_simple());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut g = Digraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), -1.0);
    }

    #[test]
    fn empty_path_accessors() {
        let p = Path::default();
        assert!(p.is_empty());
        assert_eq!(p.source(), None);
        assert_eq!(p.target(), None);
        assert!(p.is_simple());
    }

    #[test]
    fn dot_export_mentions_every_node_and_edge() {
        let (g, _) = triangle();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph g {"));
        assert_eq!(dot.matches("label=").count(), 3); // unit weights unlabeled
        assert_eq!(dot.matches("->").count(), 6);
        assert!(dot.contains("n0 [label=\"a\"]"));
    }

    #[test]
    fn dot_export_labels_non_unit_weights() {
        let mut g = Digraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 2.5);
        assert!(g.to_dot().contains("label=\"2.5\""));
    }

    #[test]
    fn multigraph_parallel_edges_allowed() {
        let mut g = Digraph::with_nodes(2);
        let e1 = g.add_edge(NodeId(0), NodeId(1), 1.0);
        let e2 = g.add_edge(NodeId(0), NodeId(1), 2.0);
        assert_ne!(e1, e2);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(1)), 2);
    }
}
