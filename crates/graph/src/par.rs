//! Minimal chunked parallel map built on `std::thread::scope`.
//!
//! The workspace's data-parallel loops (per-server delay updates in the
//! fixed-point solver, per-source Dijkstra in APSP, candidate-route
//! evaluation) are all "map an index range through a pure function". This
//! helper covers that shape without pulling in a full work-stealing
//! runtime: each worker owns a disjoint chunk of the output vector
//! (`chunks_mut`), so no locks or unsafe code are needed.

/// Maps `0..n` through `f` in parallel using up to `threads` workers.
///
/// Falls back to a serial loop when `n` is small or `threads <= 1`, so it
/// is safe to call unconditionally from inner loops. Output order matches
/// index order. `f` must be freely callable from multiple threads.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    const SERIAL_CUTOFF: usize = 32;
    if threads <= 1 || n <= SERIAL_CUTOFF {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (ci, slice) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            let base = ci * chunk;
            s.spawn(move || {
                for (j, slot) in slice.iter_mut().enumerate() {
                    *slot = Some(f(base + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("par_map slot unfilled"))
        .collect()
}

/// A reasonable default worker count: available parallelism, capped.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_serial_map() {
        let serial: Vec<u64> = (0..1000).map(|i| (i * i) as u64).collect();
        let parallel = par_map(1000, 4, |i| (i * i) as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_elements() {
        let v: Vec<u32> = par_map(0, 4, |_| unreachable!());
        assert!(v.is_empty());
    }

    #[test]
    fn one_thread_is_serial() {
        let v = par_map(100, 1, |i| i + 1);
        assert_eq!(v[99], 100);
    }

    #[test]
    fn every_index_called_exactly_once() {
        let calls = AtomicUsize::new(0);
        let v = par_map(5000, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 5000);
        assert_eq!(v.len(), 5000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(i, x);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let v = par_map(40, 64, |i| i * 2);
        assert_eq!(v[39], 78);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
