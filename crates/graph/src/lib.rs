//! Graph substrate for the `uba` workspace.
//!
//! The paper models a diffserv network as a graph `G = (S, E)` of *link
//! servers* (Section 3): routers are vertices, and every directed link is a
//! server where packets queue for the output capacity. This crate provides
//! the graph machinery every other crate builds on:
//!
//! * [`Digraph`] — a compact adjacency-list directed multigraph whose edges
//!   double as link-server identities ([`EdgeId`]).
//! * [`dijkstra`] — weighted single-source shortest paths with path
//!   reconstruction and node/edge filtering (needed by Yen's algorithm).
//! * [`bfs`] — unweighted hop distances, eccentricities and the network
//!   diameter `L` used by Theorem 4.
//! * [`yen`] — Yen's k-shortest loopless paths, the candidate-route
//!   generator of the Section 5.2 heuristic.
//! * [`cycle`] — a dynamic overlay digraph with reference-counted edges and
//!   cycle queries, used to prefer candidate routes that keep the
//!   route-dependency graph acyclic (heuristic (2) of Section 5.2).
//! * [`apsp`] — all-pairs shortest paths, serial and parallel.
//! * [`par`] — a small scoped-thread chunked parallel map used by the
//!   parallel solvers.
//!
//! Everything is implemented from scratch on `std`; no external crates
//! are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apsp;
pub mod bfs;
pub mod cycle;
pub mod digraph;
pub mod dijkstra;
pub mod par;
pub mod yen;

pub use cycle::DynDigraph;
pub use digraph::{Digraph, EdgeId, NodeId, Path};
pub use dijkstra::{dijkstra, dijkstra_filtered, ShortestPaths};
pub use yen::{k_shortest_paths, k_shortest_paths_filtered};
