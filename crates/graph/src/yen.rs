//! Yen's algorithm for the k shortest loopless paths.
//!
//! The Section 5.2 route-selection heuristic needs, for every
//! source/destination pair, "a group of candidate routes" to choose among.
//! We generate those candidates as the k shortest simple paths by weight.

use crate::digraph::{Digraph, EdgeId, NodeId, Path};
use crate::dijkstra::dijkstra_filtered;
use std::collections::HashSet;

/// Computes up to `k` shortest loopless paths from `src` to `dst`, in
/// non-decreasing order of total weight.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// simple paths. Returns an empty vector when `dst` is unreachable or
/// `src == dst`.
///
/// # Examples
/// ```
/// use uba_graph::{Digraph, NodeId, k_shortest_paths};
/// // A triangle: direct link plus a two-hop detour.
/// let mut g = Digraph::with_nodes(3);
/// g.add_link(NodeId(0), NodeId(1), 1.0);
/// g.add_link(NodeId(1), NodeId(2), 1.0);
/// g.add_link(NodeId(0), NodeId(2), 1.0);
/// let paths = k_shortest_paths(&g, NodeId(0), NodeId(2), 5);
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].len(), 1);
/// assert_eq!(paths[1].len(), 2);
/// ```
pub fn k_shortest_paths(g: &Digraph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    k_shortest_paths_filtered(g, src, dst, k, |_| true)
}

/// [`k_shortest_paths`] restricted to edges accepted by `edge_ok` —
/// used to route around failed links without renumbering edge ids.
pub fn k_shortest_paths_filtered(
    g: &Digraph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    edge_ok: impl Fn(EdgeId) -> bool,
) -> Vec<Path> {
    if k == 0 || src == dst {
        return Vec::new();
    }
    let first = match dijkstra_filtered(g, src, |_| true, &edge_ok).path_to(g, dst) {
        Some(p) => p,
        None => return Vec::new(),
    };
    let mut accepted: Vec<Path> = vec![first];
    // Candidate pool; kept sorted on demand. Small k makes this cheap.
    let mut candidates: Vec<(f64, Path)> = Vec::new();
    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    seen.insert(accepted[0].edges.clone());

    while accepted.len() < k {
        let prev = accepted.last().unwrap().clone();
        for i in 0..prev.len() {
            let spur_node = prev.nodes[i];
            let root_nodes = &prev.nodes[..=i];
            let root_edges = &prev.edges[..i];

            // Ban the next edge of every accepted path that shares this
            // exact root (edge-wise — node-wise comparison would over-ban
            // on multigraphs), so the spur path must deviate here.
            let mut banned_edges: HashSet<EdgeId> = HashSet::new();
            for p in &accepted {
                if p.len() > i && p.edges[..i] == *root_edges {
                    banned_edges.insert(p.edges[i]);
                }
            }
            // Ban root nodes (except the spur node) to keep paths simple.
            let banned_nodes: HashSet<NodeId> = root_nodes[..i].iter().copied().collect();

            let sp = dijkstra_filtered(
                g,
                spur_node,
                |n| !banned_nodes.contains(&n),
                |e| edge_ok(e) && !banned_edges.contains(&e),
            );
            if let Some(spur) = sp.path_to(g, dst) {
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                if seen.insert(edges.clone()) {
                    let total = Path::from_edges(g, edges);
                    debug_assert!(total.is_simple());
                    let w = total.weight(g);
                    candidates.push((w, total));
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the cheapest candidate (stable tie-break on edge ids for
        // determinism).
        let best = candidates
            .iter()
            .enumerate()
            .min_by(|(_, (wa, pa)), (_, (wb, pb))| {
                wa.total_cmp(wb).then_with(|| pa.edges.cmp(&pb.edges))
            })
            .map(|(i, _)| i)
            .unwrap();
        let (_, path) = candidates.swap_remove(best);
        accepted.push(path);
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic Yen example-style graph:
    ///
    /// ```text
    ///      1 --1-- 3
    ///     /|       |\
    ///    1 |2     2| 1
    ///   /  |       |  \
    ///  0   +---4---+   5
    ///   \  |       |  /
    ///    2 |       | 2
    ///     \|       |/
    ///      2 --3-- 4
    /// ```
    fn mesh() -> Digraph {
        let mut g = Digraph::with_nodes(6);
        let e = |g: &mut Digraph, a: u32, b: u32, w: f64| {
            g.add_link(NodeId(a), NodeId(b), w);
        };
        e(&mut g, 0, 1, 1.0);
        e(&mut g, 0, 2, 2.0);
        e(&mut g, 1, 2, 2.0);
        e(&mut g, 1, 3, 1.0);
        e(&mut g, 2, 4, 3.0);
        e(&mut g, 3, 4, 2.0);
        e(&mut g, 3, 5, 1.0);
        e(&mut g, 4, 5, 2.0);
        g
    }

    #[test]
    fn shortest_first_and_sorted() {
        let g = mesh();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(5), 4);
        assert!(!ps.is_empty());
        // First is the true shortest: 0-1-3-5 with weight 3.
        assert_eq!(
            ps[0].nodes,
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(5)]
        );
        let weights: Vec<f64> = ps.iter().map(|p| p.weight(&g)).collect();
        for w in weights.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "not sorted: {weights:?}");
        }
    }

    #[test]
    fn all_paths_simple_and_distinct() {
        let g = mesh();
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(5), 10);
        let mut seen = HashSet::new();
        for p in &ps {
            assert!(p.is_simple());
            assert_eq!(p.source(), Some(NodeId(0)));
            assert_eq!(p.target(), Some(NodeId(5)));
            assert!(seen.insert(p.edges.clone()), "duplicate path");
        }
        assert!(ps.len() >= 4);
    }

    #[test]
    fn k_zero_and_same_endpoints_empty() {
        let g = mesh();
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(5), 0).is_empty());
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(0), 3).is_empty());
    }

    #[test]
    fn unreachable_target_empty() {
        let mut g = mesh();
        let island = g.add_node("island");
        assert!(k_shortest_paths(&g, NodeId(0), island, 3).is_empty());
    }

    #[test]
    fn fewer_paths_than_requested() {
        // A line has exactly one simple path between its ends.
        let mut g = Digraph::with_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0);
        g.add_link(NodeId(1), NodeId(2), 1.0);
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(2), 5);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn counts_simple_paths_in_small_complete_graph() {
        // K4: simple paths between two fixed nodes = 1 direct + 2 length-2 +
        // 2 length-3 = 5.
        let mut g = Digraph::with_nodes(4);
        for a in 0..4u32 {
            for b in (a + 1)..4u32 {
                g.add_link(NodeId(a), NodeId(b), 1.0);
            }
        }
        let ps = k_shortest_paths(&g, NodeId(0), NodeId(3), 100);
        assert_eq!(ps.len(), 5);
    }

    #[test]
    fn filtered_avoids_banned_edges() {
        let g = mesh();
        // Ban the 1-3 link (both directions): the true shortest path
        // 0-1-3-5 becomes unavailable.
        let banned: Vec<EdgeId> = g
            .edges()
            .filter(|&e| {
                let (a, b) = (g.src(e), g.dst(e));
                (a == NodeId(1) && b == NodeId(3)) || (a == NodeId(3) && b == NodeId(1))
            })
            .collect();
        let ps = k_shortest_paths_filtered(&g, NodeId(0), NodeId(5), 5, |e| !banned.contains(&e));
        assert!(!ps.is_empty());
        for p in &ps {
            for e in &p.edges {
                assert!(!banned.contains(e), "banned edge used");
            }
        }
    }

    #[test]
    fn filter_can_disconnect() {
        let mut g = Digraph::with_nodes(2);
        let e = g.add_edge(NodeId(0), NodeId(1), 1.0);
        let ps = k_shortest_paths_filtered(&g, NodeId(0), NodeId(1), 3, |x| x != e);
        assert!(ps.is_empty());
    }

    #[test]
    fn deterministic_output() {
        let g = mesh();
        let a = k_shortest_paths(&g, NodeId(0), NodeId(5), 6);
        let b = k_shortest_paths(&g, NodeId(0), NodeId(5), 6);
        assert_eq!(a, b);
    }
}
