//! Unweighted (hop-count) breadth-first search utilities.
//!
//! The paper's Theorem 4 bounds depend on the network diameter `L` — "the
//! maximum length of the shortest paths in G between any pair of hosts"
//! (Section 3) — which is a hop-count quantity, computed here.

use crate::digraph::{Digraph, NodeId};
use std::collections::VecDeque;

/// Hop distances from `source` to every node; `usize::MAX` if unreachable.
pub fn hop_distances(g: &Digraph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut q = VecDeque::new();
    dist[source.index()] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for v in g.successors(u) {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `source`: the maximum finite hop distance from it.
///
/// Returns `None` if some node is unreachable from `source`.
pub fn eccentricity(g: &Digraph, source: NodeId) -> Option<usize> {
    let dist = hop_distances(g, source);
    let mut ecc = 0;
    for &d in &dist {
        if d == usize::MAX {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// The diameter `L` of the graph in hops.
///
/// Returns `None` for an empty or non-strongly-connected graph.
pub fn diameter(g: &Digraph) -> Option<usize> {
    if g.node_count() == 0 {
        return None;
    }
    let mut diam = 0;
    for n in g.nodes() {
        diam = diam.max(eccentricity(g, n)?);
    }
    Some(diam)
}

/// True if every node can reach every other node.
pub fn is_strongly_connected(g: &Digraph) -> bool {
    if g.node_count() == 0 {
        return true;
    }
    g.nodes()
        .all(|n| hop_distances(g, n).iter().all(|&d| d != usize::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Digraph {
        let mut g = Digraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_link(NodeId(i as u32), NodeId(i as u32 + 1), 1.0);
        }
        g
    }

    #[test]
    fn line_distances() {
        let g = line(5);
        let d = hop_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn line_diameter() {
        assert_eq!(diameter(&line(5)), Some(4));
        assert_eq!(diameter(&line(2)), Some(1));
    }

    #[test]
    fn single_node_diameter_zero() {
        let g = Digraph::with_nodes(1);
        assert_eq!(diameter(&g), Some(0));
    }

    #[test]
    fn empty_graph_has_no_diameter() {
        assert_eq!(diameter(&Digraph::new()), None);
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let mut g = line(3);
        g.add_node("island");
        assert_eq!(diameter(&g), None);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn directed_cycle_is_strongly_connected() {
        let mut g = Digraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(0), 1.0);
        assert!(is_strongly_connected(&g));
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn one_way_edge_breaks_strong_connectivity() {
        let mut g = Digraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        assert!(!is_strongly_connected(&g));
        assert_eq!(eccentricity(&g, NodeId(1)), None);
    }

    #[test]
    fn eccentricity_of_line_center() {
        let g = line(5);
        assert_eq!(eccentricity(&g, NodeId(2)), Some(2));
    }

    #[test]
    fn ring_diameter_is_half() {
        let mut g = Digraph::with_nodes(6);
        for i in 0..6u32 {
            g.add_link(NodeId(i), NodeId((i + 1) % 6), 1.0);
        }
        assert_eq!(diameter(&g), Some(3));
    }
}
