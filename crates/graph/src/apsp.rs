//! All-pairs shortest paths by repeated Dijkstra, serial and parallel.
//!
//! Route selection orders source/destination pairs by decreasing shortest
//! distance (heuristic (1) of Section 5.2), which needs the full distance
//! matrix. The per-source runs are independent, so the parallel variant
//! farms them out with [`crate::par::par_map`].

use crate::digraph::{Digraph, NodeId};
use crate::dijkstra::{dijkstra, ShortestPaths};
use crate::par::par_map;

/// Dense all-pairs shortest-path distance matrix.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<f64>,
}

impl DistanceMatrix {
    /// Distance from `a` to `b` (`INFINITY` if unreachable).
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> f64 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Largest finite distance in the matrix (weighted diameter), or `None`
    /// if any pair is unreachable or the matrix is empty.
    pub fn weighted_diameter(&self) -> Option<f64> {
        let mut m: f64 = 0.0;
        if self.n == 0 {
            return None;
        }
        for &d in &self.dist {
            if !d.is_finite() {
                return None;
            }
            m = m.max(d);
        }
        Some(m)
    }

    fn from_trees(n: usize, trees: &[ShortestPaths]) -> Self {
        let mut dist = Vec::with_capacity(n * n);
        for t in trees {
            for j in 0..n {
                dist.push(t.dist(NodeId(j as u32)));
            }
        }
        DistanceMatrix { n, dist }
    }
}

/// Serial all-pairs shortest paths.
pub fn apsp(g: &Digraph) -> DistanceMatrix {
    let n = g.node_count();
    let trees: Vec<ShortestPaths> = (0..n).map(|i| dijkstra(g, NodeId(i as u32))).collect();
    DistanceMatrix::from_trees(n, &trees)
}

/// Parallel all-pairs shortest paths using `threads` workers.
pub fn apsp_parallel(g: &Digraph, threads: usize) -> DistanceMatrix {
    let n = g.node_count();
    let trees = par_map(n, threads, |i| dijkstra(g, NodeId(i as u32)));
    DistanceMatrix::from_trees(n, &trees)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> Digraph {
        let mut g = Digraph::with_nodes(n as usize);
        for i in 0..n {
            g.add_link(NodeId(i), NodeId((i + 1) % n), 1.0);
        }
        g
    }

    #[test]
    fn ring_distances_symmetric() {
        let g = ring(8);
        let m = apsp(&g);
        assert_eq!(m.get(NodeId(0), NodeId(4)), 4.0);
        assert_eq!(m.get(NodeId(0), NodeId(7)), 1.0);
        for a in 0..8u32 {
            for b in 0..8u32 {
                assert_eq!(m.get(NodeId(a), NodeId(b)), m.get(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn diagonal_is_zero() {
        let m = apsp(&ring(5));
        for i in 0..5u32 {
            assert_eq!(m.get(NodeId(i), NodeId(i)), 0.0);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let g = ring(16);
        let a = apsp(&g);
        let b = apsp_parallel(&g, 4);
        for i in 0..16u32 {
            for j in 0..16u32 {
                assert_eq!(a.get(NodeId(i), NodeId(j)), b.get(NodeId(i), NodeId(j)));
            }
        }
    }

    #[test]
    fn weighted_diameter_of_ring() {
        let m = apsp(&ring(8));
        assert_eq!(m.weighted_diameter(), Some(4.0));
    }

    #[test]
    fn disconnected_has_no_weighted_diameter() {
        let mut g = ring(4);
        g.add_node("island");
        let m = apsp(&g);
        assert_eq!(m.weighted_diameter(), None);
        assert!(!m.get(NodeId(0), NodeId(4)).is_finite());
    }

    #[test]
    fn empty_graph() {
        let m = apsp(&Digraph::new());
        assert!(m.is_empty());
        assert_eq!(m.weighted_diameter(), None);
    }
}
