//! Single-source shortest paths (Dijkstra) with optional node/edge filters.
//!
//! The filtered variant is what Yen's algorithm needs to compute spur
//! paths: it runs Dijkstra on the subgraph obtained by removing a set of
//! nodes and a set of edges, without copying the graph.

use crate::digraph::{Digraph, EdgeId, NodeId, Path};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
///
/// Distances are edge-weight sums; unreachable nodes have `f64::INFINITY`.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    prev_edge: Vec<Option<EdgeId>>,
}

impl ShortestPaths {
    /// The source the tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest distance from the source to `n` (`INFINITY` if unreachable).
    pub fn dist(&self, n: NodeId) -> f64 {
        self.dist[n.index()]
    }

    /// True if `n` is reachable from the source.
    pub fn reachable(&self, n: NodeId) -> bool {
        self.dist[n.index()].is_finite()
    }

    /// Reconstructs the shortest path to `t`, or `None` if unreachable.
    ///
    /// The path to the source itself is the empty path.
    pub fn path_to(&self, g: &Digraph, t: NodeId) -> Option<Path> {
        if !self.reachable(t) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = t;
        while let Some(e) = self.prev_edge[cur.index()] {
            edges.push(e);
            cur = g.src(e);
        }
        debug_assert_eq!(cur, self.source);
        edges.reverse();
        if edges.is_empty() {
            Some(Path {
                nodes: vec![self.source],
                edges,
            })
        } else {
            Some(Path::from_edges(g, edges))
        }
    }
}

/// Min-heap entry ordered by distance; ties broken by node id for
/// determinism across runs.
#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on BinaryHeap (a max-heap).
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Dijkstra over the whole graph.
///
/// # Examples
/// ```
/// use uba_graph::{Digraph, NodeId, dijkstra};
/// let mut g = Digraph::with_nodes(3);
/// g.add_link(NodeId(0), NodeId(1), 1.0);
/// g.add_link(NodeId(1), NodeId(2), 2.0);
/// let sp = dijkstra(&g, NodeId(0));
/// assert_eq!(sp.dist(NodeId(2)), 3.0);
/// assert_eq!(sp.path_to(&g, NodeId(2)).unwrap().len(), 2);
/// ```
pub fn dijkstra(g: &Digraph, source: NodeId) -> ShortestPaths {
    dijkstra_filtered(g, source, |_| true, |_| true)
}

/// Dijkstra restricted to nodes and edges accepted by the filters.
///
/// The source is always expanded even if `node_ok(source)` is false (Yen's
/// spur node is on the root path that the node filter removes).
pub fn dijkstra_filtered(
    g: &Digraph,
    source: NodeId,
    node_ok: impl Fn(NodeId) -> bool,
    edge_ok: impl Fn(EdgeId) -> bool,
) -> ShortestPaths {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_edge = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for &e in g.out_edges(u) {
            if !edge_ok(e) {
                continue;
            }
            let v = g.dst(e);
            if !node_ok(v) || done[v.index()] {
                continue;
            }
            let nd = d + g.weight(e);
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                prev_edge[v.index()] = Some(e);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        prev_edge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 --1-- 1 --1-- 2
    ///  \______3______/
    fn diamondish() -> Digraph {
        let mut g = Digraph::with_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0);
        g.add_link(NodeId(1), NodeId(2), 1.0);
        g.add_link(NodeId(0), NodeId(2), 3.0);
        g
    }

    #[test]
    fn prefers_cheaper_two_hop_path() {
        let g = diamondish();
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist(NodeId(2)), 2.0);
        let p = sp.path_to(&g, NodeId(2)).unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn direct_edge_wins_when_cheaper() {
        let mut g = Digraph::with_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0);
        g.add_link(NodeId(1), NodeId(2), 1.0);
        g.add_link(NodeId(0), NodeId(2), 1.5);
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist(NodeId(2)), 1.5);
        assert_eq!(sp.path_to(&g, NodeId(2)).unwrap().len(), 1);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut g = Digraph::with_nodes(2);
        g.add_node("isolated");
        g.add_link(NodeId(0), NodeId(1), 1.0);
        let sp = dijkstra(&g, NodeId(0));
        assert!(!sp.reachable(NodeId(2)));
        assert!(sp.path_to(&g, NodeId(2)).is_none());
    }

    #[test]
    fn path_to_source_is_empty() {
        let g = diamondish();
        let sp = dijkstra(&g, NodeId(0));
        let p = sp.path_to(&g, NodeId(0)).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.nodes, vec![NodeId(0)]);
    }

    #[test]
    fn node_filter_forces_detour() {
        let g = diamondish();
        let sp = dijkstra_filtered(&g, NodeId(0), |n| n != NodeId(1), |_| true);
        assert_eq!(sp.dist(NodeId(2)), 3.0);
        assert_eq!(sp.path_to(&g, NodeId(2)).unwrap().len(), 1);
    }

    #[test]
    fn edge_filter_forces_detour() {
        let g = diamondish();
        let banned = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let sp = dijkstra_filtered(&g, NodeId(0), |_| true, |e| e != banned);
        assert_eq!(sp.dist(NodeId(2)), 3.0);
    }

    #[test]
    fn respects_directionality() {
        let mut g = Digraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let sp = dijkstra(&g, NodeId(1));
        assert!(!sp.reachable(NodeId(0)));
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut g = Digraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 0.0);
        g.add_edge(NodeId(1), NodeId(2), 0.0);
        let sp = dijkstra(&g, NodeId(0));
        assert_eq!(sp.dist(NodeId(2)), 0.0);
        assert_eq!(sp.path_to(&g, NodeId(2)).unwrap().len(), 2);
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-cost paths 0->1->3 and 0->2->3; result must be stable.
        let mut g = Digraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 1.0);
        g.add_edge(NodeId(1), NodeId(3), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let p1 = dijkstra(&g, NodeId(0)).path_to(&g, NodeId(3)).unwrap();
        let p2 = dijkstra(&g, NodeId(0)).path_to(&g, NodeId(3)).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.weight(&g), 2.0);
    }
}
