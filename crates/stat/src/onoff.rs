//! On/off source model and Monte Carlo validation.

use uba_obs::SplitMix64;

/// An on/off traffic class: peak rate while talking, probability of
/// being in the talking state at a random instant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnOffClass {
    /// Peak rate `h` in bits/s (what deterministic admission budgets).
    pub peak_rate: f64,
    /// Activity factor `p ∈ (0, 1)` (speech is classically ~0.35–0.45).
    pub activity: f64,
}

impl OnOffClass {
    /// Creates the class, validating parameters.
    pub fn new(peak_rate: f64, activity: f64) -> Self {
        assert!(peak_rate > 0.0 && peak_rate.is_finite(), "peak rate");
        assert!(
            (0.0..1.0).contains(&activity) && activity > 0.0,
            "activity in (0,1)"
        );
        Self {
            peak_rate,
            activity,
        }
    }

    /// The paper's VoIP flow as an on/off source with 40% voice activity.
    pub fn voip() -> Self {
        Self::new(32_000.0, 0.4)
    }

    /// Long-run mean rate `p·h`.
    pub fn mean_rate(&self) -> f64 {
        self.activity * self.peak_rate
    }
}

/// Monte Carlo estimate of the instantaneous overflow probability
/// `P(h · Bin(n, p) > c)`: samples activity states for `n` flows per
/// trial. Deterministic for a given seed.
pub fn monte_carlo_violation(
    class: OnOffClass,
    n: usize,
    budget: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let mut rng = SplitMix64::new(seed);
    let threshold = budget / class.peak_rate;
    let mut violations = 0usize;
    for _ in 0..trials {
        let mut active = 0usize;
        for _ in 0..n {
            if rng.next_f64() < class.activity {
                active += 1;
            }
        }
        if active as f64 > threshold {
            violations += 1;
        }
    }
    violations as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::binomial_tail;

    #[test]
    fn voip_mean_rate() {
        let v = OnOffClass::voip();
        assert!((v.mean_rate() - 12_800.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_tracks_exact_tail() {
        let class = OnOffClass::new(1000.0, 0.3);
        let n = 100;
        let budget = 40.0 * 1000.0; // allow 40 simultaneous talkers
        let exact = binomial_tail(n, 0.3, 40);
        let mc = monte_carlo_violation(class, n, budget, 200_000, 42);
        assert!((mc - exact).abs() < 0.01, "mc {mc} vs exact {exact}");
    }

    #[test]
    fn monte_carlo_deterministic() {
        let class = OnOffClass::voip();
        let a = monte_carlo_violation(class, 50, 20.0 * 32_000.0, 10_000, 7);
        let b = monte_carlo_violation(class, 50, 20.0 * 32_000.0, 10_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_when_budget_covers_everything() {
        let class = OnOffClass::voip();
        let n = 30;
        let budget = n as f64 * class.peak_rate;
        assert_eq!(monte_carlo_violation(class, n, budget, 1000, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "activity")]
    fn activity_one_rejected() {
        OnOffClass::new(1000.0, 1.0);
    }
}
