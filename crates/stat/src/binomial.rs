//! Binomial overflow tails: exact, Chernoff, and the KL-divergence form.

/// Kullback–Leibler divergence between Bernoulli(a) and Bernoulli(p),
/// `D(a‖p) = a·ln(a/p) + (1−a)·ln((1−a)/(1−p))`, in nats.
///
/// Defined for `a, p ∈ [0, 1]`; boundary cases use the usual `0·ln 0 = 0`
/// convention and return `+∞` where the supports separate.
pub fn kl_bernoulli(a: f64, p: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&p),
        "probabilities"
    );
    let term = |x: f64, y: f64| -> f64 {
        if x == 0.0 {
            0.0
        } else if y == 0.0 {
            f64::INFINITY
        } else {
            x * (x / y).ln()
        }
    };
    term(a, p) + term(1.0 - a, 1.0 - p)
}

/// Exact binomial upper tail `P(Bin(n, p) > k)`, computed in log space
/// for numerical stability (usable to `n` in the tens of thousands).
pub fn binomial_tail(n: usize, p: f64, k: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability");
    if k >= n {
        return 0.0;
    }
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    // ln C(n, j) p^j (1-p)^(n-j) accumulated from j = k+1 ..= n via
    // ln-gamma-free incremental ratios, summed with log-sum-exp.
    let lp = p.ln();
    let lq = (1.0 - p).ln();
    // Start at j0 = k+1: ln C(n, j0) via sum of ln terms.
    let j0 = k + 1;
    let mut ln_c = 0.0f64;
    for i in 0..j0 {
        ln_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    let mut ln_term = ln_c + j0 as f64 * lp + (n - j0) as f64 * lq;
    let mut max_ln = ln_term;
    let mut terms = vec![ln_term];
    for j in j0 + 1..=n {
        // C(n, j) = C(n, j-1) * (n-j+1)/j
        ln_term += ((n - j + 1) as f64).ln() - (j as f64).ln() + lp - lq;
        terms.push(ln_term);
        if ln_term > max_ln {
            max_ln = ln_term;
        }
    }
    let sum: f64 = terms.iter().map(|&t| (t - max_ln).exp()).sum();
    (max_ln + sum.ln()).exp().min(1.0)
}

/// Chernoff bound on the overflow tail `P(h·Bin(n, p) > c)`:
/// `exp(−n·D(a‖p))` with `a = c/(n·h)`, valid for `a > p`; returns `1`
/// when the mean already exceeds the budget (no useful bound).
pub fn chernoff_tail(n: usize, p: f64, h: f64, c: f64) -> f64 {
    assert!(h > 0.0 && c >= 0.0, "rates");
    if n == 0 {
        return 0.0;
    }
    let a = (c / (n as f64 * h)).min(1.0);
    if a <= p {
        return 1.0;
    }
    (-(n as f64) * kl_bernoulli(a, p)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_zero_at_equal() {
        for p in [0.1, 0.4, 0.9] {
            assert!(kl_bernoulli(p, p).abs() < 1e-15);
        }
    }

    #[test]
    fn kl_positive_and_grows_with_separation() {
        let d1 = kl_bernoulli(0.5, 0.4);
        let d2 = kl_bernoulli(0.7, 0.4);
        assert!(d1 > 0.0);
        assert!(d2 > d1);
    }

    #[test]
    fn kl_boundary_cases() {
        assert_eq!(kl_bernoulli(0.0, 0.5), (2.0f64).ln());
        assert_eq!(kl_bernoulli(1.0, 0.5), (2.0f64).ln());
        assert_eq!(kl_bernoulli(0.5, 0.0), f64::INFINITY);
    }

    #[test]
    fn exact_tail_small_case() {
        // Bin(3, 0.5): P(X > 1) = P(2) + P(3) = 3/8 + 1/8 = 0.5.
        assert!((binomial_tail(3, 0.5, 1) - 0.5).abs() < 1e-12);
        // P(X > 2) = 1/8.
        assert!((binomial_tail(3, 0.5, 2) - 0.125).abs() < 1e-12);
        assert_eq!(binomial_tail(3, 0.5, 3), 0.0);
    }

    #[test]
    fn exact_tail_matches_complement() {
        // P(X > k) + P(X <= k) = 1, via the symmetric tail at p = 0.5:
        // P(Bin(n, 0.5) > k) = P(Bin(n, 0.5) < n-k-1+1).
        let n = 20;
        for k in 0..n {
            let upper = binomial_tail(n, 0.5, k);
            let lower = 1.0 - binomial_tail(n, 0.5, n - k - 1);
            assert!((upper - lower).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn exact_tail_degenerate_p() {
        assert_eq!(binomial_tail(10, 0.0, 3), 0.0);
        assert_eq!(binomial_tail(10, 1.0, 3), 1.0);
    }

    #[test]
    fn chernoff_dominates_exact() {
        let (p, h) = (0.35, 64_000.0);
        for n in [10usize, 50, 200, 1000] {
            for frac in [0.5, 0.6, 0.8] {
                let c = frac * n as f64 * h; // budget as fraction of peak sum
                let k = (c / h).floor() as usize;
                let exact = binomial_tail(n, p, k);
                let bound = chernoff_tail(n, p, h, c);
                assert!(
                    bound + 1e-15 >= exact,
                    "n={n}, frac={frac}: chernoff {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn chernoff_useless_below_mean() {
        assert_eq!(chernoff_tail(100, 0.5, 1.0, 40.0), 1.0);
    }

    #[test]
    fn large_n_stability() {
        let t = binomial_tail(20_000, 0.4, 8_600);
        assert!(t > 0.0 && t < 1.0);
        // Chernoff agrees on the exponential scale.
        let b = chernoff_tail(20_000, 0.4, 1.0, 8_600.0);
        assert!(b >= t);
        assert!(b.ln() - t.ln() < 0.05 * t.ln().abs() + 10.0);
    }
}
