//! Configuration-time statistical thresholds and multiplexing gain.
//!
//! The run-time mechanism is unchanged from the deterministic system: a
//! per-link flow counter compared against a configured threshold. This
//! module computes that threshold for a target violation probability and
//! quantifies the win over deterministic peak-rate budgeting.

use crate::binomial::binomial_tail;
use crate::onoff::OnOffClass;

/// A per-link statistical admission threshold.
#[derive(Clone, Copy, Debug)]
pub struct StatThreshold {
    /// Maximum concurrently admitted flows.
    pub max_flows: usize,
    /// Exact violation probability at `max_flows` (`≤` the configured ε).
    pub violation: f64,
    /// The configured target ε.
    pub epsilon: f64,
}

/// Largest `n` such that `P(h·Bin(n, p) > budget) ≤ ε` (exact binomial
/// tail; the threshold search is a configuration-time cost).
///
/// Flows whose peaks fit the budget outright are always admissible, so
/// the result is at least `⌊budget/h⌋`.
///
/// # Examples
/// ```
/// use uba_stat::{max_flows, OnOffClass};
/// let speech = OnOffClass::voip(); // 32 kb/s peak, 40% activity
/// let budget = 100.0 * speech.peak_rate; // fits 100 always-on calls
/// let t = max_flows(speech, budget, 1e-6);
/// assert!(t.max_flows > 100);      // statistical multiplexing gain
/// assert!(t.violation <= 1e-6);    // at the configured risk
/// ```
pub fn max_flows(class: OnOffClass, budget: f64, epsilon: f64) -> StatThreshold {
    assert!(budget >= 0.0 && budget.is_finite(), "budget");
    assert!(
        (0.0..1.0).contains(&epsilon) && epsilon > 0.0,
        "epsilon in (0,1)"
    );
    let k = (budget / class.peak_rate).floor() as usize; // simultaneous talkers that fit
    let deterministic = k;
    // The tail P(Bin(n,p) > k) is increasing in n; exponential + binary
    // search for the crossing point.
    let tail = |n: usize| binomial_tail(n, class.activity, k);
    if tail(deterministic.max(1)) > epsilon && deterministic == 0 {
        return StatThreshold {
            max_flows: 0,
            violation: 0.0,
            epsilon,
        };
    }
    let mut lo = deterministic.max(1);
    if tail(lo) > epsilon {
        // Even the deterministic count violates? Impossible: with n = k
        // flows, Bin(n,p) <= n = k, tail = 0. Guard anyway.
        return StatThreshold {
            max_flows: deterministic,
            violation: 0.0,
            epsilon,
        };
    }
    let mut hi = lo.max(1);
    while tail(hi) <= epsilon {
        hi *= 2;
        if hi > 10_000_000 {
            break; // p ~ 0 pathology; cap the search
        }
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if tail(mid) <= epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    StatThreshold {
        max_flows: lo,
        violation: tail(lo),
        epsilon,
    }
}

/// Multiplexing gain: statistically admitted flows over deterministically
/// admitted flows for the same budget.
pub fn multiplexing_gain(class: OnOffClass, budget: f64, epsilon: f64) -> f64 {
    let det = (budget / class.peak_rate).floor().max(1.0);
    max_flows(class, budget, epsilon).max_flows as f64 / det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_at_least_deterministic() {
        let class = OnOffClass::voip();
        let budget = 30.0 * class.peak_rate;
        let t = max_flows(class, budget, 1e-5);
        assert!(t.max_flows >= 30);
        assert!(t.violation <= 1e-5);
    }

    #[test]
    fn threshold_monotone_in_epsilon() {
        let class = OnOffClass::voip();
        let budget = 100.0 * class.peak_rate;
        let strict = max_flows(class, budget, 1e-9).max_flows;
        let loose = max_flows(class, budget, 1e-3).max_flows;
        assert!(loose >= strict);
    }

    #[test]
    fn threshold_is_maximal() {
        // One more flow must break epsilon.
        let class = OnOffClass::voip();
        let budget = 50.0 * class.peak_rate;
        let t = max_flows(class, budget, 1e-6);
        let k = (budget / class.peak_rate).floor() as usize;
        let next = crate::binomial::binomial_tail(t.max_flows + 1, class.activity, k);
        assert!(next > 1e-6, "threshold not maximal: next tail {next}");
    }

    #[test]
    fn gain_exceeds_one_and_grows_with_budget() {
        let class = OnOffClass::voip();
        let g_small = multiplexing_gain(class, 20.0 * class.peak_rate, 1e-5);
        let g_large = multiplexing_gain(class, 500.0 * class.peak_rate, 1e-5);
        assert!(g_small >= 1.0);
        assert!(
            g_large > g_small,
            "law of large numbers: {g_small} -> {g_large}"
        );
        // Upper limit: 1/activity.
        assert!(g_large <= 1.0 / class.activity + 1e-9);
    }

    #[test]
    fn tiny_budget_admits_nothing() {
        let class = OnOffClass::voip();
        // Budget below one peak: zero talkers fit, and even one admitted
        // flow violates with probability p = 0.4 > eps, so nothing is
        // admissible.
        let t = max_flows(class, 0.5 * class.peak_rate, 0.05);
        assert_eq!(t.max_flows, 0);
    }

    #[test]
    fn tiny_budget_with_loose_epsilon_admits_one() {
        let class = OnOffClass::new(32_000.0, 0.4);
        // eps above the activity factor: a single flow's violation
        // probability (0.4) is acceptable.
        let t = max_flows(class, 0.5 * class.peak_rate, 0.5);
        assert!(t.max_flows >= 1);
        assert!(t.violation <= 0.5);
    }
}
