//! Statistical guarantees for utilization-based admission control.
//!
//! The paper closes (Section 7) by noting that "for many applications,
//! deterministic guarantees are not necessary … We are therefore
//! investigating how to extend our methodology to take into account
//! statistical guarantees." This crate is that extension, built to keep
//! the paper's core property intact: **run-time admission control remains
//! a per-link counter comparison** — only the configuration-time
//! threshold changes.
//!
//! Model: voice flows are on/off — while talking (probability `p`,
//! *activity factor*) a flow needs its peak rate `h`; while silent it
//! needs nothing. Deterministic admission must budget every flow at `h`.
//! Statistical admission budgets for the event "too many flows talk at
//! once": on a link with class budget `c`, admit up to `n*` flows where
//!
//! ```text
//! P( h · Binomial(n*, p)  >  c )  ≤  ε
//! ```
//!
//! for a configured violation probability `ε` (the bufferless
//! multiplexing model). The crate provides three evaluations of that tail
//! — exact binomial, Chernoff bound (the classic effective-bandwidth
//! form), and Monte Carlo — plus the configuration-time threshold search
//! [`max_flows`] and the resulting multiplexing-gain accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod binomial;
pub mod onoff;

pub use admission::{max_flows, multiplexing_gain, StatThreshold};
pub use binomial::{binomial_tail, chernoff_tail, kl_bernoulli};
pub use onoff::{monte_carlo_violation, OnOffClass};
