//! Property tests for the statistical-admission mathematics.

// Gated behind the non-default `prop-tests` feature: the `proptest`
// dev-dependency is not declared so the default build stays hermetic
// (offline, no registry). To run: re-add `proptest = "1"` under
// [dev-dependencies] and `cargo test --features prop-tests`.
#![cfg(feature = "prop-tests")]

use proptest::prelude::*;
use uba_stat::{binomial_tail, chernoff_tail, kl_bernoulli, max_flows, OnOffClass};

proptest! {
    /// The Chernoff bound dominates the exact binomial tail everywhere in
    /// its valid region.
    #[test]
    fn chernoff_always_dominates(
        n in 1usize..500,
        p in 0.05f64..0.95,
        frac in 0.05f64..0.999,
    ) {
        let h = 1000.0;
        let c = frac * n as f64 * h;
        let k = (c / h).floor() as usize;
        let exact = binomial_tail(n, p, k);
        let bound = chernoff_tail(n, p, h, c);
        prop_assert!(bound + 1e-12 >= exact, "n={n} p={p} frac={frac}: {bound} < {exact}");
    }

    /// The exact tail is monotone: more flows => larger overflow
    /// probability; higher allowance => smaller.
    #[test]
    fn tail_monotonicity(n in 1usize..300, p in 0.05f64..0.95, k in 0usize..300) {
        prop_assume!(k <= n);
        let t = binomial_tail(n, p, k);
        prop_assert!(binomial_tail(n + 1, p, k) + 1e-12 >= t);
        prop_assert!(binomial_tail(n, p, k + 1) <= t + 1e-12);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    /// KL divergence is non-negative and zero only at equality.
    #[test]
    fn kl_nonnegative(a in 0.01f64..0.99, p in 0.01f64..0.99) {
        let d = kl_bernoulli(a, p);
        prop_assert!(d >= -1e-15);
        if (a - p).abs() > 1e-6 {
            prop_assert!(d > 0.0);
        }
    }

    /// The configured threshold really meets its epsilon, and one more
    /// flow would not.
    #[test]
    fn threshold_tight(budget_flows in 1usize..200, eps_exp in 2i32..9, activity in 0.1f64..0.8) {
        let class = OnOffClass::new(32_000.0, activity);
        let budget = budget_flows as f64 * class.peak_rate;
        let eps = 10f64.powi(-eps_exp);
        let t = max_flows(class, budget, eps);
        prop_assert!(t.violation <= eps);
        if t.max_flows > 0 {
            let k = budget_flows; // talkers that fit
            let next = binomial_tail(t.max_flows + 1, activity, k);
            prop_assert!(next > eps, "not maximal: {} vs {eps}", next);
        }
    }

    /// Statistical admission never admits less than deterministic.
    #[test]
    fn gain_at_least_one(budget_flows in 1usize..300, activity in 0.1f64..0.9) {
        let class = OnOffClass::new(32_000.0, activity);
        let budget = budget_flows as f64 * class.peak_rate;
        let t = max_flows(class, budget, 1e-6);
        prop_assert!(t.max_flows >= budget_flows);
    }
}
