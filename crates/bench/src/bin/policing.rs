//! Experiment POL — the isolation claim: "the flow is policed to ensure
//! that abnormal behavior of a flow does not affect other flows"
//! (Section 1.1).
//!
//! A verified MCI configuration carries conforming voice flows plus one
//! rogue source that floods at a multiple of its contract. Reported: the
//! conforming flows' worst delay with policing off vs on, against the
//! configuration-time bound.
//!
//! Run with: `cargo run -p uba-bench --release --bin policing`

use uba::delay::fixed_point::{solve_two_class, SolveConfig};
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;
use uba::sim::{simulate, FlowSpec, SimConfig, SourceModel};

fn main() {
    let g = uba::topology::mci();
    let capacity = 2e6;
    let servers = Servers::from_topology(&g, capacity);
    let voip = TrafficClass::voip();
    let alpha = 0.2;
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).expect("connected");
    let mut routes = RouteSet::new(g.edge_count());
    for p in &paths {
        routes.push(Route::from_path(ClassId(0), p));
    }
    let analysis = solve_two_class(
        &servers,
        &voip,
        alpha,
        &routes,
        &SolveConfig::default(),
        None,
    );
    assert!(analysis.outcome.is_safe());
    let bound = analysis.route_delays.iter().cloned().fold(0.0, f64::max);

    // Conforming fill.
    let mut reserved = vec![0.0f64; servers.len()];
    let mut flows = Vec::new();
    let mut progress = true;
    while progress {
        progress = false;
        for (pair, path) in pairs.iter().zip(&paths) {
            let fits = path
                .edges
                .iter()
                .all(|e| reserved[e.index()] + voip.bucket.rate <= alpha * capacity + 1e-9);
            if fits {
                for e in &path.edges {
                    reserved[e.index()] += voip.bucket.rate;
                }
                flows.push(FlowSpec {
                    class: 0,
                    ingress: pair.src.0,
                    route: path.edges.iter().map(|e| e.0).collect(),
                    source: SourceModel::voip_greedy(0.0),
                });
                progress = true;
            }
        }
    }
    let conforming = flows.len();
    // One host goes rogue on its own access line: floods at 100x its
    // contract (the access link clips it at line rate, which already
    // saturates its first-hop server on its own).
    let rogue_route = paths[0].edges.iter().map(|e| e.0).collect::<Vec<_>>();
    flows.push(FlowSpec {
        class: 0,
        ingress: 999, // dedicated access line
        route: rogue_route,
        source: SourceModel::Rogue {
            period: 0.02,
            packet_bits: 640,
            factor: 100.0,
        },
    });

    println!("# POL: MCI (C=2 Mb/s), {conforming} conforming flows + 1 rogue (100x contract)");
    println!(
        "# analytic bound for conforming traffic: {:.2} ms",
        bound * 1e3
    );
    let caps = vec![capacity; servers.len()];
    for policed in [false, true] {
        let cfg = SimConfig {
            horizon: 0.6,
            deadlines: vec![voip.deadline],
            policers: policed.then(|| vec![(voip.bucket.burst, voip.bucket.rate)]),
        };
        let r = simulate(&caps, &flows, &cfg);
        println!(
            "policing {}: max delay {:.2} ms, misses {}, policer drops {}",
            if policed { "ON " } else { "OFF" },
            r.max_delay() * 1e3,
            r.total_misses(),
            r.classes[0].policed_drops,
        );
        if policed {
            assert!(
                r.max_delay() <= bound + 0.005,
                "policed network must stay within the bound"
            );
            assert_eq!(r.total_misses(), 0);
        }
    }
    println!("# with policing, the rogue is clipped to its contract and every guarantee holds.");
}
