//! Experiment X-TOPO — the Table 1 pipeline across topologies.
//!
//! Shows that the configuration methodology is not specific to the MCI
//! figure: for each topology, the Theorem 4 bounds (from its own `L` and
//! `N`), the SP baseline, and the Section 5.2 heuristic's maximum safe
//! utilization.
//!
//! Run with: `cargo run -p uba-bench --release --bin cross_topology`

use uba::graph::bfs;
use uba::prelude::*;

fn run(name: &str, g: &Digraph) {
    let diameter = bfs::diameter(g).expect("connected");
    let fan_in = g.max_in_degree().max(2);
    let servers = Servers::uniform(g, 100e6, fan_in);
    let voip = TrafficClass::voip();
    let pairs = all_ordered_pairs(g);
    let (lb, ub) = utilization_bounds(fan_in, diameter.max(1), &voip);
    let sp = max_utilization(g, &servers, &voip, &pairs, &Selector::ShortestPath, 0.005);
    let heur = max_utilization(
        g,
        &servers,
        &voip,
        &pairs,
        &Selector::Heuristic(HeuristicConfig::default()),
        0.005,
    );
    println!(
        "{name:<14} {:>3} {:>2} {:>2} | {lb:>5.2} {:>5.2} {:>5.2} {ub:>5.2} | {:>5.2}",
        g.node_count(),
        diameter,
        fan_in,
        sp.alpha,
        heur.alpha,
        heur.alpha / sp.alpha,
    );
}

fn main() {
    println!("# X-TOPO: Table 1 pipeline across topologies (VoIP class, C=100 Mb/s)");
    println!("# topology     nodes L  N  |   LB    SP  heur    UB | heur/SP");
    run("mci", &uba::topology::mci());
    run("nsfnet", &uba::topology::nsfnet());
    run("ring8", &uba::topology::ring(8));
    run("grid4x4", &uba::topology::grid(4, 4));
    run("torus4x4", &uba::topology::torus(4, 4));
    run("waxman20", &uba::topology::waxman(20, 0.4, 0.5, 11));
    println!("# invariant everywhere: LB <= SP <= UB and LB <= heur <= UB.");
}
