//! Experiments F-BD/F-BL/F-BN/F-BB — figure-style sweeps of the Theorem 4
//! utilization bounds.
//!
//! The paper presents the bounds as closed forms; these sweeps plot them
//! (as data series on stdout) over each parameter, holding the Section 6
//! values for the others: N=6, L=4, T=640 bit, ρ=32 kb/s, D=100 ms.
//!
//! Run with: `cargo run -p uba-bench --release --bin sweep_bounds -- [deadline|diameter|fanin|burst|all]`

use uba::prelude::*;

fn voip_with_deadline(d: f64) -> TrafficClass {
    TrafficClass::new("voip", LeakyBucket::new(640.0, 32_000.0), d)
}

fn sweep_deadline() {
    println!("# F-BD: bounds vs end-to-end deadline (N=6, L=4, T/rho=20ms)");
    println!("# D_ms lower upper");
    for ms in [20, 40, 60, 80, 100, 150, 200, 300, 500, 1000] {
        let cls = voip_with_deadline(ms as f64 / 1e3);
        let (lb, ub) = utilization_bounds(6, 4, &cls);
        println!("{ms} {lb:.4} {ub:.4}");
    }
}

fn sweep_diameter() {
    println!("# F-BL: bounds vs network diameter (N=6, D=100ms)");
    println!("# L lower upper");
    let cls = TrafficClass::voip();
    for l in 1..=10 {
        let (lb, ub) = utilization_bounds(6, l, &cls);
        println!("{l} {lb:.4} {ub:.4}");
    }
}

fn sweep_fanin() {
    println!("# F-BN: bounds vs router fan-in (L=4, D=100ms)");
    println!("# N lower upper");
    let cls = TrafficClass::voip();
    for n in 2..=16 {
        let (lb, ub) = utilization_bounds(n, 4, &cls);
        println!("{n} {lb:.4} {ub:.4}");
    }
}

fn sweep_burst() {
    println!("# F-BB: bounds vs burst ratio T/rho (N=6, L=4, D=100ms)");
    println!("# T_over_rho_ms lower upper");
    for ms in [1, 2, 5, 10, 20, 40, 80, 160] {
        let t_over_rho = ms as f64 / 1e3;
        let cls = TrafficClass::new("v", LeakyBucket::new(32_000.0 * t_over_rho, 32_000.0), 0.1);
        let (lb, ub) = utilization_bounds(6, 4, &cls);
        println!("{ms} {lb:.4} {ub:.4}");
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "deadline" => sweep_deadline(),
        "diameter" => sweep_diameter(),
        "fanin" => sweep_fanin(),
        "burst" => sweep_burst(),
        "all" => {
            sweep_deadline();
            println!();
            sweep_diameter();
            println!();
            sweep_fanin();
            println!();
            sweep_burst();
        }
        other => {
            eprintln!("unknown sweep '{other}'; use deadline|diameter|fanin|burst|all");
            std::process::exit(2);
        }
    }
}
