//! Experiment BURST — multi-seed A/B of admission-policy chains under
//! MMPP flow-arrival bursts.
//!
//! The utilization test admits any flow whose *declared* rate fits the
//! class budget — it cannot see that a slug of requests arriving
//! together will also send their traffic together. This harness builds
//! the adversarial case: flow requests arrive from a two-state MMPP
//! (quiet/burst), every admitted flow is an on/off source phase-locked
//! to its admission instant (peak 4× the declared rate during
//! on-phases), and everything crosses one shared 10 Mb/s link. A burst
//! of admissions then means a synchronized on-phase cohort that
//! transiently oversubscribes the link even though the utilization
//! budget holds — deadline misses the admission test said could not
//! happen.
//!
//! Three arms run against the *same* per-seed arrival sequence:
//!
//! * `always` — no admission control (calibration: how bad it gets),
//! * `util` — the `Static` utilization-only chain (today's controller),
//! * `adaptive` — utilization + token-bucket + AIMD overuse gating,
//!   which meters the admission *rate*, so a burst of requests cannot
//!   become a synchronized cohort.
//!
//! Each arm's admitted flows are handed to the packet simulator as
//! on/off sources over their admitted lifetime; the scoreboard is the
//! deadline-miss ratio and the rejection rate, per seed and averaged.
//!
//! Contract (both lanes): the utilization-only arm must actually
//! suffer misses under burst (otherwise the A/B is vacuous), and the
//! adaptive chain must strictly reduce the mean deadline-miss ratio
//! versus utilization-only.
//!
//! Writes `BENCH_burst.json` (validated by the `uba-obs` JSON parser)
//! in both modes. Run with:
//! `cargo run -p uba-bench --release --bin policy_burst`
//! (`policy_burst smoke` runs fewer seeds over a shorter window — the
//! `scripts/verify.sh` configuration.)

use std::fmt::Write as _;
use uba::admission::{
    AdmissionController, AimdParams, BackendKind, ChainKind, ConfigGeneration, FlowHandle,
    PolicyChain, PolicyConfig, RoutingTable,
};
use uba::obs::SplitMix64;
use uba::prelude::*;
use uba::sim::{simulate, SimConfig, SourceModel};
use uba::traffic::Mmpp;

/// Shared-link capacity, bits/s.
const LINK_BPS: f64 = 10e6;
/// Utilization share for the single class: 9 Mb/s budget = 90 declared
/// flows on the shared link.
const ALPHA: f64 = 0.9;
/// Declared (mean) per-flow rate ρ, bits/s.
const DECLARED_BPS: f64 = 100_000.0;
/// On-phase emission rate — 4× the declared mean.
const PEAK_BPS: f64 = 400_000.0;
const PACKET_BITS: u64 = 8_000;
const ON_S: f64 = 1.0;
const OFF_S: f64 = 3.0;
/// Admitted-flow lifetime, seconds (two on-phases per flow).
const LIFE_S: f64 = 8.0;
const DEADLINE_S: f64 = 0.1;
/// Leaf routers feeding the shared hub→sink link.
const SOURCES: usize = 24;
/// MMPP quiet/burst arrival rates (flow requests per second) and mean
/// dwell times: long-run mean 11.5/s ≈ 92 concurrent flows at `LIFE_S`
/// — right at the utilization budget, so bursts push past it.
const ARRIVAL_RATES: [f64; 2] = [2.0, 40.0];
const DWELL_S: [f64; 2] = [3.0, 1.0];
/// Virtual-clock step for the arrival driver, seconds.
const STEP_S: f64 = 0.05;

/// Star through a bottleneck: edges 0..SOURCES are leaf→hub, edge
/// SOURCES is the shared hub→sink link every flow crosses.
fn star() -> (Digraph, Vec<Pair>) {
    let hub = NodeId(SOURCES as u32);
    let sink = NodeId(SOURCES as u32 + 1);
    let mut g = Digraph::with_nodes(SOURCES + 2);
    for i in 0..SOURCES {
        g.add_link(NodeId(i as u32), hub, 1.0);
    }
    g.add_link(hub, sink, 1.0);
    let pairs = (0..SOURCES)
        .map(|i| Pair {
            src: NodeId(i as u32),
            dst: sink,
        })
        .collect();
    (g, pairs)
}

fn burst_class() -> TrafficClass {
    TrafficClass::new(
        "burst",
        LeakyBucket::new(PACKET_BITS as f64, DECLARED_BPS),
        DEADLINE_S,
    )
}

/// A fresh controller over the star with the given `[policy]` chain.
fn controller(g: &Digraph, pairs: &[Pair], cfg: &PolicyConfig) -> AdmissionController {
    let paths = sp_selection(g, pairs).expect("star is connected");
    let mut table = RoutingTable::new();
    table.insert_all(ClassId(0), paths.iter());
    let classes = ClassSet::single(burst_class());
    let caps = vec![LINK_BPS; g.edge_count()];
    let chain = PolicyChain::from_config(cfg, &[DECLARED_BPS]);
    AdmissionController::from_generation(ConfigGeneration::with_policy(
        table,
        &classes,
        &caps,
        &[ALPHA],
        BackendKind::Atomic,
        chain,
    ))
}

/// The adaptive arm's `[policy]`: a token bucket that refills at 8
/// flows/s (depth 8 flows), plus AIMD gated by the overuse detector.
fn adaptive_config() -> PolicyConfig {
    PolicyConfig {
        chain: ChainKind::Adaptive,
        bucket_rate_bps: 8.0 * DECLARED_BPS,
        bucket_burst_bits: 8.0 * DECLARED_BPS,
        aimd: AimdParams {
            min_rate_bps: 2.0 * DECLARED_BPS,
            max_rate_bps: 20.0 * DECLARED_BPS,
            decrease: 0.5,
            increase_bps: DECLARED_BPS,
        },
    }
}

/// One seed's flow-request sequence: (arrival time, leaf router).
fn arrivals(seed: u64, window: f64) -> Vec<(f64, usize)> {
    let mut rng = SplitMix64::new(seed);
    let mut mmpp = Mmpp::new(ARRIVAL_RATES, DWELL_S);
    let mut out = Vec::new();
    let mut t = 0.0;
    while t < window {
        let n = {
            let mut uni = || rng.range_f64(0.0, 1.0);
            mmpp.step(STEP_S, &mut uni)
        };
        for _ in 0..n {
            out.push((t, rng.index(SOURCES)));
        }
        t += STEP_S;
    }
    out
}

/// One arm × one seed on the scoreboard.
struct ArmCell {
    arm: &'static str,
    seed: u64,
    offered: usize,
    admitted: usize,
    rejection_rate: f64,
    packets: u64,
    misses: u64,
    miss_ratio: f64,
}

/// Replays `reqs` against `ctrl` (`None` = admit everything) on the
/// virtual clock, holding each admitted flow for `LIFE_S`, then
/// simulates the admitted on/off sources and scores deadline misses.
fn run_arm(
    arm: &'static str,
    seed: u64,
    ctrl: Option<&AdmissionController>,
    reqs: &[(f64, usize)],
    window: f64,
) -> ArmCell {
    let sink = NodeId(SOURCES as u32 + 1);
    let mut held: Vec<(f64, FlowHandle)> = Vec::new();
    let mut admitted: Vec<(f64, usize)> = Vec::new();
    for &(t, src) in reqs {
        // Departures first: a flow admitted at t0 frees its budget at
        // t0 + LIFE_S, exactly when its source stops emitting.
        held.retain(|(expiry, _)| *expiry > t);
        let ok = match ctrl {
            None => true,
            Some(c) => match c.try_admit_at(ClassId(0), NodeId(src as u32), sink, t) {
                Ok(h) => {
                    held.push((t + LIFE_S, h));
                    true
                }
                Err(_) => false,
            },
        };
        if ok {
            admitted.push((t, src));
        }
    }
    drop(held);

    let flows: Vec<uba::sim::FlowSpec> = admitted
        .iter()
        .map(|&(t, src)| uba::sim::FlowSpec {
            class: 0,
            ingress: src as u32,
            route: vec![src as u32, SOURCES as u32],
            source: SourceModel::OnOff {
                peak_bps: PEAK_BPS,
                packet_bits: PACKET_BITS,
                on_s: ON_S,
                off_s: OFF_S,
                start: t,
                stop: t + LIFE_S,
            },
        })
        .collect();
    let caps = vec![LINK_BPS; SOURCES + 1];
    let report = simulate(
        &caps,
        &flows,
        &SimConfig {
            horizon: window + LIFE_S + 1.0,
            deadlines: vec![DEADLINE_S],
            policers: None,
        },
    );
    let (packets, misses) = (report.total_packets, report.total_misses());
    ArmCell {
        arm,
        seed,
        offered: reqs.len(),
        admitted: admitted.len(),
        rejection_rate: 1.0 - admitted.len() as f64 / reqs.len().max(1) as f64,
        packets,
        misses,
        miss_ratio: if packets > 0 {
            misses as f64 / packets as f64
        } else {
            0.0
        },
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke" || a == "--smoke");
    let (seeds, window): (Vec<u64>, f64) = if smoke {
        (vec![1, 2], 12.0)
    } else {
        (vec![1, 2, 3, 4, 5], 20.0)
    };
    println!(
        "policy_burst{}: {} seed(s), {window} s arrival window, MMPP {:?}/s dwell {:?} s",
        if smoke { " (smoke)" } else { "" },
        seeds.len(),
        ARRIVAL_RATES,
        DWELL_S,
    );

    let (g, pairs) = star();
    let util_cfg = PolicyConfig::default();
    let adaptive_cfg = adaptive_config();
    let mut cells: Vec<ArmCell> = Vec::new();
    for &seed in &seeds {
        let reqs = arrivals(seed, window);
        // Fresh controllers per seed: policy state must not leak across
        // the A/B repetitions.
        let util = controller(&g, &pairs, &util_cfg);
        let adaptive = controller(&g, &pairs, &adaptive_cfg);
        for cell in [
            run_arm("always", seed, None, &reqs, window),
            run_arm("util", seed, Some(&util), &reqs, window),
            run_arm("adaptive", seed, Some(&adaptive), &reqs, window),
        ] {
            println!(
                "seed {seed} {:>8}: {:>3}/{:>3} admitted (rejection {:>5.1}%), \
                 {:>6} packets, {:>5} misses (ratio {:.4})",
                cell.arm,
                cell.admitted,
                cell.offered,
                cell.rejection_rate * 100.0,
                cell.packets,
                cell.misses,
                cell.miss_ratio,
            );
            cells.push(cell);
        }
    }

    let mean = |arm: &str, f: fn(&ArmCell) -> f64| -> f64 {
        let picked: Vec<f64> = cells.iter().filter(|c| c.arm == arm).map(f).collect();
        picked.iter().sum::<f64>() / picked.len() as f64
    };
    let miss_of = |arm: &str| mean(arm, |c| c.miss_ratio);
    let reject_of = |arm: &str| mean(arm, |c| c.rejection_rate);
    let (m_always, m_util, m_adaptive) = (miss_of("always"), miss_of("util"), miss_of("adaptive"));
    println!();
    println!(
        "mean deadline-miss ratio: always {m_always:.4}, util {m_util:.4}, \
         adaptive {m_adaptive:.4}"
    );
    println!(
        "mean rejection rate:      always {:.3}, util {:.3}, adaptive {:.3}",
        reject_of("always"),
        reject_of("util"),
        reject_of("adaptive"),
    );

    // ---- A/B gates. ----
    assert!(
        m_util > 0.0,
        "utilization-only must suffer deadline misses under the burst workload \
         (got {m_util}) — the A/B would be vacuous"
    );
    assert!(
        m_adaptive < m_util,
        "adaptive chain must strictly reduce the mean deadline-miss ratio: \
         adaptive {m_adaptive:.4} vs util {m_util:.4}"
    );
    println!("burst gate: adaptive {m_adaptive:.4} < util {m_util:.4} mean miss ratio  ✓");

    // ---- Trajectory point (written in both lanes). ----
    let mut body = String::new();
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"arm\": \"{}\", \"seed\": {}, \"offered\": {}, \"admitted\": {}, \
             \"rejection_rate\": {:.4}, \"packets\": {}, \"misses\": {}, \
             \"miss_ratio\": {:.5}}}{}",
            c.arm,
            c.seed,
            c.offered,
            c.admitted,
            c.rejection_rate,
            c.packets,
            c.misses,
            c.miss_ratio,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"policy_burst\",\n",
            "  \"smoke\": {},\n",
            "  \"seeds\": {:?},\n",
            "  \"arrival_window_s\": {},\n",
            "  \"mean_miss_ratio_always\": {:.5},\n",
            "  \"mean_miss_ratio_util\": {:.5},\n",
            "  \"mean_miss_ratio_adaptive\": {:.5},\n",
            "  \"mean_rejection_rate_util\": {:.4},\n",
            "  \"mean_rejection_rate_adaptive\": {:.4},\n",
            "  \"cells\": [\n{}  ]\n",
            "}}\n"
        ),
        smoke,
        seeds,
        window,
        m_always,
        m_util,
        m_adaptive,
        reject_of("util"),
        reject_of("adaptive"),
        body,
    );
    uba::obs::json::parse(&json).expect("trajectory JSON must parse");
    std::fs::write("BENCH_burst.json", &json).expect("write BENCH_burst.json");
    println!("wrote BENCH_burst.json");
}
