//! Experiment M-C — multi-class (Theorem 5) configuration on the MCI
//! topology.
//!
//! Three real-time classes (voice / video / soft-bulk) under static
//! priority; the table shows, per utilization split, the Figure 2 verdict
//! and each class's worst end-to-end delay bound against its deadline.
//!
//! Run with: `cargo run -p uba-bench --release --bin multiclass_demo`

use uba::delay::fixed_point::SolveConfig;
use uba::delay::multiclass::solve_multiclass;
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;

fn main() {
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);

    let mut classes = ClassSet::new();
    let ids = [
        classes.push(TrafficClass::voip()),
        classes.push(TrafficClass::new(
            "video",
            LeakyBucket::new(64_000.0, 2_000_000.0),
            0.3,
        )),
        classes.push(TrafficClass::new(
            "bulk-rt",
            LeakyBucket::new(256_000.0, 5_000_000.0),
            1.0,
        )),
    ];

    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).expect("connected");
    let mut routes = RouteSet::new(g.edge_count());
    for &class in &ids {
        for p in &paths {
            routes.push(Route::from_path(class, p));
        }
    }

    println!("# M-C: MCI, SP routes for all pairs x 3 classes (voice>video>bulk)");
    println!("# a_voice a_video a_bulk verdict worst_voice_ms worst_video_ms worst_bulk_ms");
    let splits = [
        [0.02, 0.05, 0.10],
        [0.05, 0.10, 0.10],
        [0.05, 0.15, 0.15],
        [0.10, 0.15, 0.15],
        [0.10, 0.20, 0.20],
        [0.15, 0.25, 0.25],
    ];
    for alphas in splits {
        let r = solve_multiclass(
            &servers,
            &classes,
            &alphas,
            &routes,
            &SolveConfig::default(),
            None,
        );
        // Worst end-to-end delay per class over its routes.
        let mut worst = [0.0f64; 3];
        for (rt, &rd) in routes.routes().iter().zip(&r.route_delays) {
            let c = rt.class.index();
            worst[c] = worst[c].max(rd);
        }
        println!(
            "{:.2} {:.2} {:.2} {} {:.2} {:.2} {:.2}",
            alphas[0],
            alphas[1],
            alphas[2],
            if r.outcome.is_safe() {
                "SAFE"
            } else {
                "UNSAFE"
            },
            worst[0] * 1e3,
            worst[1] * 1e3,
            worst[2] * 1e3,
        );
    }
}
