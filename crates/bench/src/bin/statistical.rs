//! Experiment STAT — the Section 7 extension: statistical guarantees.
//!
//! For the paper's VoIP class treated as on/off speech (40% activity),
//! computes per-link statistical admission thresholds at several target
//! violation probabilities ε, the multiplexing gain over deterministic
//! peak-rate budgeting, and a Monte Carlo check that the configured ε is
//! actually met. The run-time admission mechanism is unchanged — only the
//! configured per-link flow cap differs.
//!
//! Run with: `cargo run -p uba-bench --release --bin statistical`

use uba::stat::{max_flows, monte_carlo_violation, multiplexing_gain, OnOffClass};

fn main() {
    let class = OnOffClass::voip();
    // The paper's setting: on a 100 Mb/s link at the heuristic's verified
    // alpha = 0.45, the deterministic class budget is:
    let budget = 0.45 * 100e6;
    let det = (budget / class.peak_rate) as usize;
    println!(
        "# STAT: VoIP as on/off speech (peak 32 kb/s, activity {}), link budget {:.1} Mb/s",
        class.activity,
        budget / 1e6
    );
    println!("# deterministic (peak-rate) cap: {det} flows/link");
    println!("# epsilon stat_cap gain exact_violation monte_carlo");
    for eps_exp in [3, 5, 7, 9] {
        let eps = 10f64.powi(-eps_exp);
        let t = max_flows(class, budget, eps);
        let gain = multiplexing_gain(class, budget, eps);
        // Monte Carlo with enough trials to resolve 1e-3; deeper epsilons
        // are checked against the exact tail instead.
        let trials = 2_000_000usize;
        let mc = monte_carlo_violation(class, t.max_flows, budget, trials, 2026);
        println!(
            "1e-{eps_exp} {} {:.3} {:.3e} {:.3e}",
            t.max_flows, gain, t.violation, mc
        );
        assert!(t.violation <= eps);
        assert!(
            mc <= eps.max(3.0 / trials as f64) * 3.0 + 1e-3,
            "MC blew epsilon"
        );
    }
    println!(
        "# gain -> 1/activity = {:.2} as budgets grow (law of large numbers)",
        1.0 / class.activity
    );
}
