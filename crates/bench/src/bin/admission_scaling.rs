//! Experiment SCALE — multi-core admission throughput and contention.
//!
//! The paper's run-time claim is that admission is a constant-time
//! utilization test per link, so throughput should scale with cores
//! instead of collapsing on a global lock. This harness sweeps worker
//! threads × reservation backend ({`Atomic`, `Sharded(8)`}) over the MCI
//! backbone, an 8×8 torus, and a deliberately bottlenecked `hotlink`
//! star (every pair crosses one shared 10 Mb/s link, so the contention
//! counters cannot stay dark), measuring per cell:
//!
//! * admit+release throughput (ops/sec, wall clock),
//! * sampled decision latency p50/p99 (`admission.admit_ns`, windowed
//!   via [`Snapshot::delta_since`] so each cell reads only its own
//!   samples),
//! * CAS retries per operation (`admission.retries_per_op.*` interval
//!   mean — the direct contention signal),
//! * the sharded backend's cross-shard borrow/steal/spurious-reject
//!   counters.
//!
//! A second sweep drives the batched admission fast path: bursts of
//! `batch ∈ {1, 8, 32}` same-pair arrivals through `try_admit_batch`,
//! single-threaded on MCI (cells carry `batch ≥ 1`; the per-flow
//! `try_admit` cells carry `batch = 0`).
//!
//! Contract (machine-independent, *relative* gates only — absolute
//! ops/sec depend on the host):
//!
//! * scaling: `ops(T) / ops(1) ≥ max(0.5, 0.45 · min(T, cores))` — on a
//!   multi-core host threads must actually scale; on a starved host the
//!   sweep must at least not collapse under oversubscription (the
//!   bottlenecked `hotlink` topology is exempt: it serializes on one
//!   budget cell *by design*);
//! * backends: at the top thread count the sharded backend stays within
//!   a floor factor of atomic (and is expected to lead once per-link
//!   contention dominates on ≥4 cores);
//! * batching: `ops(batch=32) ≥ 1.5 · ops(batch=1)` per backend — the
//!   aggregated reserve + amortized pin/trace/metrics must actually pay;
//! * correctness tripwires: `spurious_rejects == 0` in every sharded
//!   cell (the two-phase borrow protocol makes them structurally
//!   impossible), the sharded hotlink cells must record cross-shard
//!   borrows (the contended workload exercises phase 2), and on hosts
//!   with ≥4 real cores the contended hotlink cells must observe CAS
//!   retries;
//! * telemetry: every cell must observe latency samples and retry
//!   counts — the observatory cannot be silently dark.
//!
//! The full run writes `BENCH_admission.json` (validated by the
//! `uba-obs` JSON parser) as a machine-readable trajectory point.
//!
//! Run with: `cargo run -p uba-bench --release --bin admission_scaling`
//! (`admission_scaling smoke` runs 1–2 threads on MCI only with loose
//! floors and skips the JSON write — the `scripts/verify.sh`
//! configuration.)

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;
use uba::admission::{AdmissionController, BackendKind, FlowHandle, FlowSpec, RoutingTable};
use uba::obs::SnapshotValue;
use uba::prelude::*;
use uba_bench::PaperSetting;

/// Reserved-rate window each worker keeps open, so reservations
/// accumulate and the release path runs as often as the admit path.
const WINDOW: usize = 32;

/// One measured sweep cell.
struct Cell {
    topology: &'static str,
    backend: &'static str,
    threads: usize,
    /// Burst size through `try_admit_batch`; `0` means the per-flow
    /// `try_admit` path.
    batch: usize,
    ops_per_sec: f64,
    /// Throughput relative to the 1-thread cell of the same
    /// (topology, backend) column.
    scaling: f64,
    p50_admit_ns: f64,
    p99_admit_ns: f64,
    latency_samples: u64,
    retries_per_op: f64,
    borrows: f64,
    steals: f64,
    spurious_rejects: f64,
}

/// Builds a metered controller over SP routes for `pairs` on `g`.
fn controller(
    g: &Digraph,
    servers: &Servers,
    voip: &TrafficClass,
    pairs: &[Pair],
    alpha: f64,
    kind: BackendKind,
) -> AdmissionController {
    let paths = sp_selection(g, pairs).expect("topology must be connected");
    let mut table = RoutingTable::new();
    table.insert_all(ClassId(0), paths.iter());
    let classes = ClassSet::single(voip.clone());
    let caps: Vec<f64> = (0..servers.len()).map(|k| servers.capacity_at(k)).collect();
    AdmissionController::with_backend(table, &classes, &caps, &[alpha], kind)
}

/// Runs one cell: `threads` workers, each admitting over a disjoint
/// stride of `pairs` with a rotating window of held flows. Returns
/// (ops/sec, total decisions) — workers flush their metric buffers at
/// thread exit, so the caller's registry delta sees everything.
fn run_cell(
    ctrl: &AdmissionController,
    pairs: &[Pair],
    threads: usize,
    iters: usize,
) -> (f64, u64) {
    let t0 = Instant::now();
    let mut admitted_total = 0u64;
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let ctrl = ctrl.clone();
                s.spawn(move || {
                    // Disjoint stride: worker t owns pairs t, t+T, t+2T, …
                    // so no two workers hammer the same route head-on by
                    // construction, and contention comes from genuinely
                    // shared links.
                    let mine: Vec<Pair> = pairs.iter().copied().skip(t).step_by(threads).collect();
                    let mine = if mine.is_empty() {
                        pairs.to_vec()
                    } else {
                        mine
                    };
                    let mut held = VecDeque::with_capacity(WINDOW + 1);
                    let mut admitted = 0u64;
                    for i in 0..iters {
                        let p = mine[i % mine.len()];
                        if let Ok(h) = ctrl.try_admit(ClassId(0), p.src, p.dst) {
                            admitted += 1;
                            held.push_back(h);
                            if held.len() > WINDOW {
                                held.pop_front();
                            }
                        }
                    }
                    drop(held);
                    admitted
                })
            })
            .collect();
        for w in workers {
            admitted_total += w.join().unwrap();
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    assert!(admitted_total > 0, "workload must admit flows");
    let ops = (threads * iters) as f64;
    (ops / dt.max(1e-9), ops as u64)
}

/// Star-through-a-bottleneck: `sources` leaf routers feed one hub, and
/// every (leaf → sink) pair crosses the single hub→sink link. At 10 Mb/s
/// and α = 0.3 that link budgets ≈93 voip flows — less than the workers'
/// combined held windows — so admissions genuinely contend for one
/// budget cell and the CAS-retry / cross-shard-borrow telemetry has to
/// fire.
fn hotlink(sources: usize) -> (Digraph, Vec<Pair>) {
    let hub = NodeId(sources as u32);
    let sink = NodeId(sources as u32 + 1);
    let mut g = Digraph::with_nodes(sources + 2);
    for i in 0..sources {
        g.add_link(NodeId(i as u32), hub, 1.0);
    }
    g.add_link(hub, sink, 1.0);
    let pairs = (0..sources)
        .map(|i| Pair {
            src: NodeId(i as u32),
            dst: sink,
        })
        .collect();
    (g, pairs)
}

/// Runs one batched cell: a single worker admitting `iters` flows in
/// bursts of `batch` same-pair arrivals through `try_admit_batch`, with
/// the same rotating held window as [`run_cell`]. Returns flow-decisions
/// per second (comparable with the per-flow cells).
fn run_batch_cell(ctrl: &AdmissionController, pairs: &[Pair], batch: usize, iters: usize) -> f64 {
    let t0 = Instant::now();
    let mut held: VecDeque<FlowHandle> = VecDeque::with_capacity(WINDOW + batch);
    let mut specs: Vec<FlowSpec> = Vec::with_capacity(batch);
    let mut admitted = 0u64;
    let mut burst = 0usize;
    let mut done = 0usize;
    while done < iters {
        let n = batch.min(iters - done);
        let p = pairs[burst % pairs.len()];
        burst += 1;
        specs.clear();
        specs.resize(
            n,
            FlowSpec {
                class: ClassId(0),
                src: p.src,
                dst: p.dst,
            },
        );
        for h in ctrl.try_admit_batch(&specs).flows.into_iter().flatten() {
            admitted += 1;
            held.push_back(h);
        }
        while held.len() > WINDOW {
            held.pop_front();
        }
        done += n;
    }
    drop(held);
    let dt = t0.elapsed().as_secs_f64();
    assert!(admitted > 0, "batched workload must admit flows");
    iters as f64 / dt.max(1e-9)
}

/// Histogram digest (count, p50, p99, mean) for `name` in a delta
/// snapshot; zeros when absent or empty.
fn hist(d: &uba::obs::Snapshot, name: &str) -> (u64, f64, f64, f64) {
    match d.get(name) {
        Some(SnapshotValue::Histogram {
            count,
            p50,
            p99,
            mean,
            ..
        }) => (
            *count,
            p50.unwrap_or(0.0),
            p99.unwrap_or(0.0),
            mean.unwrap_or(0.0),
        ),
        _ => (0, 0.0, 0.0, 0.0),
    }
}

fn gauge(d: &uba::obs::Snapshot, name: &str) -> f64 {
    match d.get(name) {
        Some(SnapshotValue::Gauge(v)) => *v,
        _ => 0.0,
    }
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (thread_counts, iters): (Vec<usize>, usize) = if smoke {
        (vec![1, 2], 20_000)
    } else {
        (vec![1, 2, 4, 8], 120_000)
    };
    // Relative floors. The smoke lane only guards against pathological
    // collapse (serialization on a lock would show up as ≪ 0.2); the
    // full gate demands real scaling on real cores.
    let scale_floor = |threads: usize| -> f64 {
        if smoke {
            0.2
        } else {
            (0.45 * threads.min(cores) as f64).max(0.5)
        }
    };
    let backend_floor = if smoke || cores < 4 { 0.4 } else { 0.8 };

    let setting = PaperSetting::new();
    let torus = uba::topology::torus(8, 8);
    let torus_servers = Servers::uniform(&torus, 100e6, 4);
    let torus_pairs: Vec<Pair> = all_ordered_pairs(&torus).into_iter().step_by(12).collect();
    let (hot_g, hot_pairs) = hotlink(16);
    let hot_servers = Servers::uniform(&hot_g, 10e6, 4);

    let mut topologies: Vec<(&'static str, &Digraph, &Servers, &[Pair])> = vec![(
        "mci",
        &setting.g,
        &setting.servers,
        setting.pairs.as_slice(),
    )];
    if !smoke {
        topologies.push(("torus8x8", &torus, &torus_servers, torus_pairs.as_slice()));
    }
    // The contended star runs in both lanes: its gates are about
    // telemetry liveness, not throughput, so the smoke lane covers them.
    topologies.push(("hotlink", &hot_g, &hot_servers, hot_pairs.as_slice()));
    let backends: [(&'static str, BackendKind); 2] = [
        ("atomic", BackendKind::Atomic),
        ("sharded8", BackendKind::Sharded(8)),
    ];

    println!(
        "admission_scaling{}: {} core(s), threads {:?}, {} iters/thread",
        if smoke { " (smoke)" } else { "" },
        cores,
        thread_counts,
        iters
    );

    let registry = uba::obs::global();
    let mut cells: Vec<Cell> = Vec::new();
    for (topo_name, g, servers, pairs) in &topologies {
        for (backend_name, kind) in backends {
            let ctrl = controller(g, servers, &setting.voip, pairs, 0.3, kind);
            // Warm-up: fault in routes and metric handles outside the
            // measured window.
            run_cell(&ctrl, pairs, 1, iters / 10);
            let mut base_ops = 0.0f64;
            for &threads in &thread_counts {
                ctrl.refresh_gauges();
                let before = registry.snapshot();
                let (ops_per_sec, _decisions) = run_cell(&ctrl, pairs, threads, iters);
                ctrl.refresh_gauges();
                let d = registry.snapshot().delta_since(&before);

                let (lat_n, p50, p99, _) = hist(&d, "admission.admit_ns");
                let retry_name = match kind {
                    BackendKind::Atomic => "admission.retries_per_op.atomic",
                    BackendKind::Sharded(_) => "admission.retries_per_op.sharded",
                };
                let (retry_n, _, _, retries_per_op) = hist(&d, retry_name);
                if threads == thread_counts[0] {
                    base_ops = ops_per_sec;
                }
                let cell = Cell {
                    topology: topo_name,
                    backend: backend_name,
                    threads,
                    batch: 0,
                    ops_per_sec,
                    scaling: ops_per_sec / base_ops,
                    p50_admit_ns: p50,
                    p99_admit_ns: p99,
                    latency_samples: lat_n,
                    retries_per_op,
                    // Lifetime counters of this cell's backend (gauges
                    // refreshed above), not interval deltas.
                    borrows: gauge(&registry.snapshot(), "admission.sharded.borrows"),
                    steals: gauge(&registry.snapshot(), "admission.sharded.steals"),
                    spurious_rejects: gauge(
                        &registry.snapshot(),
                        "admission.sharded.spurious_rejects",
                    ),
                };
                println!(
                    "{:>8} {:>8} T={}: {:>10.0} ops/s (x{:.2}), admit p50 {:>6.0} ns p99 \
                     {:>7.0} ns ({} samples), {:.4} retries/op",
                    cell.topology,
                    cell.backend,
                    cell.threads,
                    cell.ops_per_sec,
                    cell.scaling,
                    cell.p50_admit_ns,
                    cell.p99_admit_ns,
                    cell.latency_samples,
                    cell.retries_per_op,
                );
                assert!(lat_n > 0, "latency sampling must fire in every cell");
                assert!(retry_n > 0, "retry telemetry must cover every decision");
                cells.push(cell);
            }
        }
    }

    // ---- Batched admission sweep (single-threaded bursts on MCI). ----
    let batch_sizes: [usize; 3] = [1, 8, 32];
    for (backend_name, kind) in backends {
        let ctrl = controller(
            &setting.g,
            &setting.servers,
            &setting.voip,
            &setting.pairs,
            0.3,
            kind,
        );
        run_batch_cell(&ctrl, &setting.pairs, 1, iters / 10);
        let mut base_ops = 0.0f64;
        for &batch in &batch_sizes {
            ctrl.refresh_gauges();
            let before = registry.snapshot();
            let ops_per_sec = run_batch_cell(&ctrl, &setting.pairs, batch, iters);
            ctrl.refresh_gauges();
            let d = registry.snapshot().delta_since(&before);
            let (lat_n, p50, p99, _) = hist(&d, "admission.admit_ns");
            let retry_name = match kind {
                BackendKind::Atomic => "admission.retries_per_op.atomic",
                BackendKind::Sharded(_) => "admission.retries_per_op.sharded",
            };
            let (retry_n, _, _, retries_per_op) = hist(&d, retry_name);
            if batch == batch_sizes[0] {
                base_ops = ops_per_sec;
            }
            let cell = Cell {
                topology: "mci",
                backend: backend_name,
                threads: 1,
                batch,
                ops_per_sec,
                scaling: ops_per_sec / base_ops,
                p50_admit_ns: p50,
                p99_admit_ns: p99,
                latency_samples: lat_n,
                retries_per_op,
                borrows: gauge(&registry.snapshot(), "admission.sharded.borrows"),
                steals: gauge(&registry.snapshot(), "admission.sharded.steals"),
                spurious_rejects: gauge(&registry.snapshot(), "admission.sharded.spurious_rejects"),
            };
            println!(
                "{:>8} {:>8} B={}: {:>10.0} flows/s (x{:.2} vs B=1), admit p50 {:>6.0} ns \
                 ({} samples)",
                cell.topology,
                cell.backend,
                cell.batch,
                cell.ops_per_sec,
                cell.scaling,
                cell.p50_admit_ns,
                cell.latency_samples,
            );
            assert!(lat_n > 0, "latency sampling must fire in every batch cell");
            assert!(retry_n > 0, "retry telemetry must cover every batch");
            cells.push(cell);
        }
    }

    // ---- Relative gates. ----
    for cell in &cells {
        // The hotlink star serializes on one budget cell by design, and
        // batch cells are single-threaded: neither is a scaling claim.
        if cell.topology == "hotlink" || cell.batch > 0 {
            continue;
        }
        let floor = scale_floor(cell.threads);
        assert!(
            cell.scaling >= floor,
            "{}/{} at {} threads scaled x{:.2}, floor x{floor:.2}",
            cell.topology,
            cell.backend,
            cell.threads,
            cell.scaling
        );
    }
    let top = *thread_counts.last().unwrap();
    for (topo_name, ..) in &topologies {
        if *topo_name == "hotlink" {
            continue;
        }
        let ops_of = |backend: &str| {
            cells
                .iter()
                .find(|c| {
                    c.topology == *topo_name
                        && c.backend == backend
                        && c.threads == top
                        && c.batch == 0
                })
                .map(|c| c.ops_per_sec)
                .unwrap()
        };
        let (atomic, sharded) = (ops_of("atomic"), ops_of("sharded8"));
        assert!(
            sharded >= backend_floor * atomic,
            "{topo_name}: sharded {sharded:.0} ops/s below {backend_floor} x atomic \
             {atomic:.0} ops/s at {top} threads"
        );
    }

    // Batching must amortize: one pinned generation, one aggregated
    // reserve per touched link, one tracepoint per burst.
    const BATCH_FLOOR: f64 = 1.5;
    for (backend_name, _) in backends {
        let ops_at = |batch: usize| {
            cells
                .iter()
                .find(|c| c.backend == backend_name && c.batch == batch)
                .map(|c| c.ops_per_sec)
                .unwrap()
        };
        let (b1, b32) = (ops_at(1), ops_at(32));
        assert!(
            b32 >= BATCH_FLOOR * b1,
            "{backend_name}: batch=32 {b32:.0} flows/s below {BATCH_FLOOR} x batch=1 {b1:.0}"
        );
    }

    // Two-phase tripwires: spurious rejects are structurally impossible,
    // and the contended star must actually exercise cross-shard borrows.
    for c in cells.iter().filter(|c| c.backend == "sharded8") {
        assert!(
            c.spurious_rejects == 0.0,
            "{}/{} T={} B={}: {} spurious rejects (two-phase borrow must eliminate them)",
            c.topology,
            c.backend,
            c.threads,
            c.batch,
            c.spurious_rejects
        );
    }
    assert!(
        cells
            .iter()
            .any(|c| c.topology == "hotlink" && c.backend == "sharded8" && c.borrows > 0.0),
        "hotlink never exercised cross-shard borrowing"
    );
    // CAS retries need true parallelism: on a single core a
    // compare-exchange only fails if preemption lands inside the
    // ~10 ns load→CAS window, which a short run may never observe.
    if !smoke && cores >= 4 {
        let contended_retries: f64 = cells
            .iter()
            .filter(|c| c.topology == "hotlink" && c.threads >= 4)
            .map(|c| c.retries_per_op)
            .sum();
        assert!(
            contended_retries > 0.0,
            "hotlink at >=4 threads on {cores} cores must observe CAS retries"
        );
    }
    println!();
    println!(
        "scaling gate: every non-hotlink cell >= its adaptive floor ({} core(s)); sharded >= \
         {backend_floor}x atomic at {top} threads; batch=32 >= {BATCH_FLOOR}x batch=1; \
         spurious_rejects == 0 in every sharded cell  ✓",
        cores
    );

    if smoke {
        println!("smoke mode: skipping BENCH_admission.json write");
        return;
    }

    // ---- Trajectory point. ----
    let mut body = String::new();
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            body,
            "    {{\"topology\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \"batch\": {}, \
             \"ops_per_sec\": {:.0}, \"scaling\": {:.3}, \"p50_admit_ns\": {:.0}, \
             \"p99_admit_ns\": {:.0}, \"latency_samples\": {}, \"retries_per_op\": {:.5}, \
             \"borrows\": {:.0}, \"steals\": {:.0}, \"spurious_rejects\": {:.0}}}{}",
            c.topology,
            c.backend,
            c.threads,
            c.batch,
            c.ops_per_sec,
            c.scaling,
            c.p50_admit_ns,
            c.p99_admit_ns,
            c.latency_samples,
            c.retries_per_op,
            c.borrows,
            c.steals,
            c.spurious_rejects,
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"admission_scaling\",\n",
            "  \"cores\": {},\n",
            "  \"threads\": {:?},\n",
            "  \"iters_per_thread\": {},\n",
            "  \"backend_floor\": {},\n",
            "  \"batch_floor\": {},\n",
            "  \"cells\": [\n{}  ]\n",
            "}}\n"
        ),
        cores, thread_counts, iters, backend_floor, BATCH_FLOOR, body,
    );
    uba::obs::json::parse(&json).expect("trajectory JSON must parse");
    std::fs::write("BENCH_admission.json", &json).expect("write BENCH_admission.json");
    println!("wrote BENCH_admission.json");
}
