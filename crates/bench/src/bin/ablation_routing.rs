//! Experiment A-RS — ablation of the Section 5.2 route-selection
//! sub-heuristics.
//!
//! The paper's heuristic combines three rules: (1) pairs in decreasing
//! distance order, (2) prefer candidates keeping the route-dependency
//! graph acyclic, (3) pick the minimum-delay safe candidate. This binary
//! measures the maximum safe utilization on the MCI topology for every
//! on/off combination, plus a sweep over the candidate count k.
//!
//! Run with: `cargo run -p uba-bench --release --bin ablation_routing`

use uba::prelude::*;

fn run(
    g: &Digraph,
    servers: &Servers,
    voip: &TrafficClass,
    pairs: &[Pair],
    cfg: HeuristicConfig,
) -> f64 {
    max_utilization(g, servers, voip, pairs, &Selector::Heuristic(cfg), 0.005).alpha
}

fn main() {
    let threads = uba::graph::par::default_threads();
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    let pairs = all_ordered_pairs(&g);

    let sp = max_utilization(&g, &servers, &voip, &pairs, &Selector::ShortestPath, 0.005);
    println!("SP baseline: alpha* = {:.3}", sp.alpha);
    println!();
    println!("| dist-order | acyclic-pref | min-delay | k  | alpha* |");
    println!("|------------|--------------|-----------|----|--------|");
    for order in [true, false] {
        for acyclic in [true, false] {
            for mindelay in [true, false] {
                let cfg = HeuristicConfig {
                    k_candidates: 8,
                    order_by_distance: order,
                    prefer_acyclic: acyclic,
                    min_delay_choice: mindelay,
                    threads,
                    ..Default::default()
                };
                let alpha = run(&g, &servers, &voip, &pairs, cfg);
                println!(
                    "| {:<10} | {:<12} | {:<9} | 8  | {:.3}  |",
                    order, acyclic, mindelay, alpha
                );
            }
        }
    }
    println!();
    println!("| k (full heuristic) | alpha* |");
    println!("|--------------------|--------|");
    for k in [1usize, 2, 4, 8, 16] {
        let cfg = HeuristicConfig {
            k_candidates: k,
            threads,
            ..Default::default()
        };
        let alpha = run(&g, &servers, &voip, &pairs, cfg);
        println!("| {k:<18} | {alpha:.3}  |");
    }
}
