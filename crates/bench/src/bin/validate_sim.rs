//! Experiment V-SIM — packet-level validation of the analytic bounds.
//!
//! For a sweep of utilizations on the MCI topology (at reduced capacity so
//! flow counts stay tractable), fill the network to the admission limit
//! with adversarial synchronized sources, simulate, and report observed
//! worst-case delay against the configuration-time bound.
//!
//! Run with: `cargo run -p uba-bench --release --bin validate_sim`

use uba::delay::fixed_point::{solve_two_class, SolveConfig};
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;
use uba::sim::{simulate, FlowSpec, SimConfig, SourceModel};

fn main() {
    let g = uba::topology::mci();
    let capacity = 2e6; // scaled down from 100 Mb/s: same analysis, fewer flows
    let servers = Servers::from_topology(&g, capacity);
    let voip = TrafficClass::voip();
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).expect("connected");
    let mut routes = RouteSet::new(g.edge_count());
    for p in &paths {
        routes.push(Route::from_path(ClassId(0), p));
    }

    println!("# V-SIM: MCI (C=2 Mb/s, per-topology fan-in), SP routes, greedy fill");
    println!("# alpha verdict flows packets bound_ms sim_max_ms sim_mean_ms misses");
    for alpha in [0.05, 0.10, 0.15, 0.20, 0.25, 0.30] {
        let analysis = solve_two_class(
            &servers,
            &voip,
            alpha,
            &routes,
            &SolveConfig::default(),
            None,
        );
        if !analysis.outcome.is_safe() {
            println!("{alpha:.2} UNVERIFIED - - - - - -");
            continue;
        }
        let bound = analysis.route_delays.iter().cloned().fold(0.0, f64::max);

        // Greedy fill to the admission limit.
        let mut reserved = vec![0.0f64; servers.len()];
        let mut flows = Vec::new();
        let mut progress = true;
        while progress {
            progress = false;
            for (pair, path) in pairs.iter().zip(&paths) {
                let fits = path
                    .edges
                    .iter()
                    .all(|e| reserved[e.index()] + voip.bucket.rate <= alpha * capacity + 1e-9);
                if fits {
                    for e in &path.edges {
                        reserved[e.index()] += voip.bucket.rate;
                    }
                    flows.push(FlowSpec {
                        class: 0,
                        ingress: pair.src.0,
                        route: path.edges.iter().map(|e| e.0).collect(),
                        source: SourceModel::voip_greedy(0.0),
                    });
                    progress = true;
                }
            }
        }
        let report = simulate(
            &vec![capacity; servers.len()],
            &flows,
            &SimConfig {
                horizon: 0.3,
                deadlines: vec![voip.deadline],
                policers: None,
            },
        );
        println!(
            "{alpha:.2} SAFE {} {} {:.2} {:.2} {:.3} {}",
            flows.len(),
            report.total_packets,
            bound * 1e3,
            report.max_delay() * 1e3,
            report.classes[0].mean_delay * 1e3,
            report.total_misses(),
        );
        assert!(
            report.max_delay() <= bound + 0.005,
            "bound violated at alpha {alpha}"
        );
        assert_eq!(report.total_misses(), 0);
    }
    println!("# all simulated maxima below the analytic bounds; zero misses ✓");
}
