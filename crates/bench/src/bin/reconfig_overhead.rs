//! Experiment RECONFIG — cost of versioned configuration on the admit
//! path.
//!
//! Live reconfiguration makes every `try_admit` resolve the current
//! `ConfigGeneration` first: one atomic epoch load validating a
//! thread-local generation cache. That machinery is only acceptable if
//! the fixed-configuration admit path is essentially unchanged. This
//! harness measures the same admit+release loop on one unmetered
//! controller two ways — through `try_admit` (epoch load + cache check
//! per admission) and through `try_admit_on` with a pre-resolved
//! generation (the fixed-configuration baseline) — in interleaved
//! batches so frequency drift and cache warm-up hit both subjects
//! equally, and reports the median per-batch overhead.
//!
//! Contract: median overhead below 5%.
//!
//! Run with: `cargo run -p uba-bench --release --bin reconfig_overhead`
//! (`reconfig_overhead smoke` runs a shorter loop with a looser bound —
//! the `scripts/verify.sh` configuration.)

use std::sync::Arc;
use std::time::Instant;
use uba::admission::{AdmissionController, ConfigGeneration};
use uba::prelude::*;
use uba_bench::PaperSetting;

/// One measured batch through the versioned path: every admission
/// resolves the current generation before reserving.
fn batch_current(ctrl: &AdmissionController, pairs: &[Pair], iters: usize) -> f64 {
    let t0 = Instant::now();
    let mut admitted = 0usize;
    for i in 0..iters {
        let p = pairs[i % pairs.len()];
        if let Ok(handle) = ctrl.try_admit(ClassId(0), p.src, p.dst) {
            admitted += 1;
            drop(handle);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(admitted > 0, "workload must exercise the admit path");
    std::hint::black_box(admitted);
    dt
}

/// The same batch against an explicitly pinned generation — no epoch
/// load, no cache check: what the admit path cost before configurations
/// were versioned.
fn batch_pinned(
    ctrl: &AdmissionController,
    generation: &Arc<ConfigGeneration>,
    pairs: &[Pair],
    iters: usize,
) -> f64 {
    let t0 = Instant::now();
    let mut admitted = 0usize;
    for i in 0..iters {
        let p = pairs[i % pairs.len()];
        if let Ok(handle) = ctrl.try_admit_on(generation, ClassId(0), p.src, p.dst) {
            admitted += 1;
            drop(handle);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(admitted > 0, "workload must exercise the admit path");
    std::hint::black_box(admitted);
    dt
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let (rounds, iters, bound_pct) = if smoke {
        (7, 20_000, 50.0)
    } else {
        (15, 200_000, 5.0)
    };

    let setting = PaperSetting::new();
    // Unmetered, so the measured delta is exactly the generation-pointer
    // machinery — not instrumentation (obs_overhead covers that).
    let (_, ctrl) = setting.controller_pair(0.3);
    let generation = ctrl.current_generation();
    let pairs = &setting.pairs;

    // Warm-up: fault in routes, branch predictors, and the cache slot.
    batch_current(&ctrl, pairs, iters / 4);
    batch_pinned(&ctrl, &generation, pairs, iters / 4);

    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which subject goes first within the round.
        let (t_current, t_pinned) = if round % 2 == 0 {
            let c = batch_current(&ctrl, pairs, iters);
            let p = batch_pinned(&ctrl, &generation, pairs, iters);
            (c, p)
        } else {
            let p = batch_pinned(&ctrl, &generation, pairs, iters);
            let c = batch_current(&ctrl, pairs, iters);
            (c, p)
        };
        let pct = (t_current / t_pinned - 1.0) * 100.0;
        ratios.push(pct);
        println!(
            "round {round:>2}: versioned {:>8.3} ms, pinned {:>8.3} ms, overhead {pct:+6.2}%",
            t_current * 1e3,
            t_pinned * 1e3,
        );
    }

    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    println!();
    println!(
        "median generation-pointer overhead: {median:+.2}% over {rounds} rounds of {iters} \
         admits (bound {bound_pct}%)"
    );
    assert!(
        median < bound_pct,
        "versioned admit path {median:.2}% over pinned baseline, bound {bound_pct}%"
    );
    println!("overhead check: median < {bound_pct}%  ✓");
}
