//! Experiment CS — configuration-pipeline speed gate.
//!
//! The paper's pitch is that delay analysis is paid once, at configuration
//! time — which makes the configuration pipeline (§5.3 binary search ×
//! §5.2 heuristic × Eq. 11–14 fixed point) the dominant compute path.
//! This harness times the incremental engine against the retained
//! reference paths, *in the same run*, so the speedup claim is measured
//! and not remembered:
//!
//! * **cold solver sweeps** — dense reference (`SolveConfig.incremental =
//!   false`) vs. worklist sweep on the full MCI shortest-path route set;
//! * **candidate evaluation** — the pre-optimization clone-the-route-set
//!   path (`HeuristicConfig.tentative_eval = false` + dense solver) vs.
//!   zero-clone tentative evaluation, on MCI and on a larger 8×8 torus;
//! * **heuristic α\* search** — `max_utilization` (shared Yen candidates,
//!   tentative evaluation) vs. a faithful reconstruction of the pre-PR
//!   pipeline: per-probe uncached selection with clone-based evaluation
//!   over the dense solver;
//! * **SP α\* search** — warm-started probes vs. cold probes.
//!
//! Contract: candidate evaluation and the heuristic search beat the
//! reference by a floor margin, and both pipelines agree on α\* (±tol).
//! The full run writes `BENCH_config.json` (validated by the `uba-obs`
//! JSON parser) as a machine-readable trajectory point for future PRs.
//!
//! Run with: `cargo run -p uba-bench --release --bin config_speed`
//! (`config_speed smoke` runs reduced iterations with looser floors and
//! skips the JSON write — the `scripts/verify.sh` configuration.)

use std::time::Instant;
use uba::graph::bfs;
use uba::prelude::*;
use uba_bench::PaperSetting;

/// Search tolerance matching `table1`.
const TOL: f64 = 0.005;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// The dense/cloning reference configuration: the pre-optimization
/// pipeline expressed through the retained flags.
fn reference_cfg() -> HeuristicConfig {
    HeuristicConfig {
        tentative_eval: false,
        solver: SolveConfig {
            incremental: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The §5.3 bisection, shared by the reference searches so the probe
/// sequence is identical to `max_utilization`'s.
fn bisect(
    g: &Digraph,
    servers: &Servers,
    class: &TrafficClass,
    mut probe: impl FnMut(f64) -> bool,
) -> (f64, usize) {
    let diameter = bfs::diameter(g).expect("connected");
    let fan_in = (0..servers.len())
        .map(|k| servers.fan_in_at(k))
        .max()
        .unwrap();
    let (lb, ub) = utilization_bounds(fan_in, diameter.max(1), class);
    let hi_cap = ub.min(1.0 - 1e-9);
    let mut probes = 0usize;
    let mut run = |a: f64, probes: &mut usize| {
        *probes += 1;
        probe(a)
    };
    let mut best = 0.0f64;
    let (mut lo, mut hi);
    if run(lb.min(hi_cap), &mut probes) {
        lo = lb.min(hi_cap);
        hi = hi_cap;
        best = lo;
    } else {
        lo = 0.0;
        hi = lb.min(hi_cap);
    }
    while hi - lo > TOL {
        let mid = 0.5 * (lo + hi);
        if run(mid, &mut probes) {
            lo = mid;
            best = mid;
        } else {
            hi = mid;
        }
    }
    (best, probes)
}

/// Times one candidate-evaluation pass: every path in `candidates`
/// verified against the committed `routes` + `base` fixed point.
/// Returns (seconds, safe-count) for the reference and fast paths.
fn time_candidate_pass(
    servers: &Servers,
    class: &TrafficClass,
    alpha: f64,
    routes: &RouteSet,
    base: &[f64],
    candidates: &[Path],
    fast: bool,
) -> (f64, usize) {
    let solver = SolveConfig::default();
    let dense = SolveConfig {
        incremental: false,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut safe = 0usize;
    for p in candidates {
        let tentative = Route::from_path(ClassId(0), p);
        let r = if fast {
            with_thread_scratch(|sc| {
                solve_two_class_with(
                    servers,
                    class,
                    alpha,
                    routes,
                    Some(&tentative),
                    &solver,
                    Some(base),
                    sc,
                )
            })
        } else {
            let mut trial = routes.clone();
            trial.push(tentative);
            solve_two_class(servers, class, alpha, &trial, &dense, Some(base))
        };
        safe += r.outcome.is_safe() as usize;
    }
    (t0.elapsed().as_secs_f64(), safe)
}

/// Candidate-evaluation benchmark on one topology: committed SP routes
/// for half the pairs, the other half's SP paths as candidates.
/// Returns (median ref seconds, median fast seconds).
fn bench_candidates(
    label: &str,
    g: &Digraph,
    servers: &Servers,
    class: &TrafficClass,
    alpha: f64,
    pairs: &[Pair],
    rounds: usize,
) -> (f64, f64) {
    let paths = sp_selection(g, pairs).expect("pairs must be connected");
    let mut routes = RouteSet::new(g.edge_count());
    let mut candidates = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        if i % 2 == 0 {
            routes.push(Route::from_path(ClassId(0), p));
        } else {
            candidates.push(p.clone());
        }
    }
    let base = solve_two_class(
        servers,
        class,
        alpha,
        &routes,
        &SolveConfig::default(),
        None,
    );
    assert!(
        base.outcome.is_safe(),
        "{label}: committed base must be safe at alpha {alpha}"
    );

    let mut t_ref = Vec::with_capacity(rounds);
    let mut t_fast = Vec::with_capacity(rounds);
    // Warm-up both subjects once, then interleave.
    time_candidate_pass(
        servers,
        class,
        alpha,
        &routes,
        &base.delays,
        &candidates,
        false,
    );
    time_candidate_pass(
        servers,
        class,
        alpha,
        &routes,
        &base.delays,
        &candidates,
        true,
    );
    for round in 0..rounds {
        let order_fast_first = round % 2 == 1;
        let (a, safe_a) = time_candidate_pass(
            servers,
            class,
            alpha,
            &routes,
            &base.delays,
            &candidates,
            order_fast_first,
        );
        let (b, safe_b) = time_candidate_pass(
            servers,
            class,
            alpha,
            &routes,
            &base.delays,
            &candidates,
            !order_fast_first,
        );
        assert_eq!(safe_a, safe_b, "{label}: verdicts must agree");
        let (r, f) = if order_fast_first { (b, a) } else { (a, b) };
        t_ref.push(r);
        t_fast.push(f);
    }
    let (r, f) = (median(&mut t_ref), median(&mut t_fast));
    println!(
        "{label}: {} candidates over {} committed routes — reference {:>8.3} ms, \
         incremental {:>8.3} ms, speedup {:.2}x",
        candidates.len(),
        routes.len(),
        r * 1e3,
        f * 1e3,
        r / f
    );
    (r, f)
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    // Reduced iterations + looser floors for the verify.sh smoke lane;
    // the full run is the perf gate proper.
    let (rounds, cand_floor, search_floor) = if smoke { (3, 1.05, 1.2) } else { (9, 1.3, 2.0) };

    let setting = PaperSetting::new();
    let (g, servers, voip) = (&setting.g, &setting.servers, &setting.voip);
    let pairs = if smoke {
        setting.pair_subset(3)
    } else {
        setting.pairs.clone()
    };
    println!(
        "config_speed{}: MCI {} routers / {} servers, {} pairs, {} rounds",
        if smoke { " (smoke)" } else { "" },
        g.node_count(),
        g.edge_count(),
        pairs.len(),
        rounds
    );
    let counters = uba::delay::metrics::solver();
    let (skipped0, touched0) = (
        counters.sweeps_skipped.get(),
        counters.servers_touched.get(),
    );

    // ---- 1. Cold solver sweeps: dense vs. incremental, full SP set. ----
    let sp_paths = sp_selection(g, &pairs).expect("MCI is connected");
    let mut sp_routes = RouteSet::new(g.edge_count());
    for p in &sp_paths {
        sp_routes.push(Route::from_path(ClassId(0), p));
    }
    let alpha_cold = 0.45;
    let dense_cfg = SolveConfig {
        incremental: false,
        ..Default::default()
    };
    let mut t_dense = Vec::new();
    let mut t_inc = Vec::new();
    for _ in 0..rounds.max(5) {
        let t0 = Instant::now();
        let rd = solve_two_class(servers, voip, alpha_cold, &sp_routes, &dense_cfg, None);
        t_dense.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let ri = solve_two_class(
            servers,
            voip,
            alpha_cold,
            &sp_routes,
            &SolveConfig::default(),
            None,
        );
        t_inc.push(t0.elapsed().as_secs_f64());
        assert_eq!(rd.outcome, ri.outcome);
        assert_eq!(rd.delays, ri.delays, "incremental must match dense bitwise");
    }
    let (cold_dense, cold_inc) = (median(&mut t_dense), median(&mut t_inc));
    println!(
        "cold solve (alpha {alpha_cold}, {} routes): dense {:>8.3} ms, incremental {:>8.3} ms \
         ({:.2}x)",
        sp_routes.len(),
        cold_dense * 1e3,
        cold_inc * 1e3,
        cold_dense / cold_inc
    );

    // ---- 2. Candidate evaluation: MCI and a larger torus. ----
    let (mci_cand_ref, mci_cand_fast) =
        bench_candidates("candidates/mci", g, servers, voip, 0.45, &pairs, rounds);
    let torus = uba::topology::torus(8, 8);
    let torus_servers = Servers::uniform(&torus, 100e6, 4);
    let torus_pairs: Vec<Pair> = all_ordered_pairs(&torus)
        .into_iter()
        .step_by(if smoke { 48 } else { 12 })
        .collect();
    let (torus_cand_ref, torus_cand_fast) = bench_candidates(
        "candidates/torus8x8",
        &torus,
        &torus_servers,
        voip,
        0.2,
        &torus_pairs,
        rounds,
    );
    for (label, r, f) in [
        ("mci", mci_cand_ref, mci_cand_fast),
        ("torus8x8", torus_cand_ref, torus_cand_fast),
    ] {
        assert!(
            r / f >= cand_floor,
            "candidate evaluation on {label} only {:.2}x over reference (floor {cand_floor}x)",
            r / f
        );
    }

    // ---- 3. Heuristic alpha* search: optimized vs. pre-PR pipeline. ----
    let heur_cfg = HeuristicConfig::default();
    let ref_cfg = reference_cfg();
    let mut t_heur_ref = Vec::new();
    let mut t_heur_fast = Vec::new();
    let mut alpha_fast = 0.0;
    let mut alpha_ref = 0.0;
    let search_rounds = if smoke { 1 } else { 3 };
    for _ in 0..search_rounds {
        let t0 = Instant::now();
        let (a_ref, _probes) = bisect(g, servers, voip, |alpha| {
            select_routes(g, servers, voip, alpha, &pairs, &ref_cfg).is_ok()
        });
        t_heur_ref.push(t0.elapsed().as_secs_f64());
        alpha_ref = a_ref;

        let t0 = Instant::now();
        let r = max_utilization(
            g,
            servers,
            voip,
            &pairs,
            &Selector::Heuristic(heur_cfg.clone()),
            TOL,
        );
        t_heur_fast.push(t0.elapsed().as_secs_f64());
        alpha_fast = r.alpha;
    }
    let (heur_ref, heur_fast) = (median(&mut t_heur_ref), median(&mut t_heur_fast));
    println!(
        "heuristic search: reference {:>8.1} ms (alpha* {alpha_ref:.3}), optimized {:>8.1} ms \
         (alpha* {alpha_fast:.3}), speedup {:.2}x",
        heur_ref * 1e3,
        heur_fast * 1e3,
        heur_ref / heur_fast
    );
    assert!(
        (alpha_fast - alpha_ref).abs() <= TOL + 1e-9,
        "optimized pipeline moved alpha*: {alpha_fast} vs reference {alpha_ref}"
    );
    assert!(
        heur_ref / heur_fast >= search_floor,
        "heuristic search only {:.2}x over the pre-PR baseline (floor {search_floor}x)",
        heur_ref / heur_fast
    );

    // ---- 4. SP alpha* search: warm-started vs. cold probes. ----
    // The reference probe mirrors the pre-PR cost model: a cold dense
    // solve plus the Selection materialization every feasible probe pays.
    let t0 = Instant::now();
    let (sp_alpha_ref, _): (f64, usize) = bisect(g, servers, voip, |alpha| {
        let r = solve_two_class(servers, voip, alpha, &sp_routes, &dense_cfg, None);
        let safe = r.outcome.is_safe();
        if safe {
            std::hint::black_box((pairs.to_vec(), sp_paths.clone(), sp_routes.clone(), r));
        }
        safe
    });
    let sp_ref = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let sp = max_utilization(g, servers, voip, &pairs, &Selector::ShortestPath, TOL);
    let sp_fast = t0.elapsed().as_secs_f64();
    println!(
        "SP search: reference {:>8.2} ms (alpha* {sp_alpha_ref:.3}), warm-started {:>8.2} ms \
         (alpha* {:.3}), speedup {:.2}x",
        sp_ref * 1e3,
        sp_fast * 1e3,
        sp.alpha,
        sp_ref / sp_fast
    );
    assert!(
        (sp.alpha - sp_alpha_ref).abs() <= TOL + 1e-9,
        "SP search moved alpha*: {} vs reference {sp_alpha_ref}",
        sp.alpha
    );

    let skipped = counters.sweeps_skipped.get() - skipped0;
    let touched = counters.servers_touched.get() - touched0;
    println!(
        "solver sweep economy this run: {skipped} route sweeps skipped, {touched} server \
         evaluations performed"
    );
    assert!(skipped > 0, "incremental runs must skip some sweeps");

    println!();
    println!(
        "perf gate: candidates >= {cand_floor}x on every topology, heuristic search >= \
         {search_floor}x  ✓"
    );

    if smoke {
        println!("smoke mode: skipping BENCH_config.json write");
        return;
    }

    // ---- Trajectory point. ----
    let us = |s: f64| (s * 1e6).round();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"config_speed\",\n",
            "  \"pairs\": {},\n",
            "  \"cold_solve\": {{\"dense_us\": {}, \"incremental_us\": {}}},\n",
            "  \"candidate_eval\": {{\n",
            "    \"mci\": {{\"reference_us\": {}, \"incremental_us\": {}, \"speedup\": {:.2}}},\n",
            "    \"torus8x8\": {{\"reference_us\": {}, \"incremental_us\": {}, \"speedup\": {:.2}}}\n",
            "  }},\n",
            "  \"heuristic_search\": {{\"reference_us\": {}, \"optimized_us\": {}, ",
            "\"speedup\": {:.2}, \"alpha\": {:.3}}},\n",
            "  \"sp_search\": {{\"reference_us\": {}, \"optimized_us\": {}, ",
            "\"speedup\": {:.2}, \"alpha\": {:.3}}},\n",
            "  \"solver_counters\": {{\"sweeps_skipped\": {}, \"servers_touched\": {}}}\n",
            "}}\n"
        ),
        pairs.len(),
        us(cold_dense),
        us(cold_inc),
        us(mci_cand_ref),
        us(mci_cand_fast),
        mci_cand_ref / mci_cand_fast,
        us(torus_cand_ref),
        us(torus_cand_fast),
        torus_cand_ref / torus_cand_fast,
        us(heur_ref),
        us(heur_fast),
        heur_ref / heur_fast,
        alpha_fast,
        us(sp_ref),
        us(sp_fast),
        sp_ref / sp_fast,
        sp.alpha,
        skipped,
        touched,
    );
    uba::obs::json::parse(&json).expect("trajectory JSON must parse");
    std::fs::write("BENCH_config.json", &json).expect("write BENCH_config.json");
    println!("wrote BENCH_config.json");
}
