//! Experiment T1 — reproduces **Table 1** of the paper.
//!
//! Setting (Section 6): MCI backbone topology (L = 4, N = 6), 100 Mbit/s
//! links, VoIP class (T = 640 bit, ρ = 32 kbit/s, D = 100 ms), flows
//! possible between every ordered router pair. Reported: the Theorem 4
//! bounds and the maximum safe utilization achieved by shortest-path
//! routing vs. the Section 5.2 heuristic.
//!
//! Paper's row:  lower 0.30 | SP 0.33 | heuristic 0.45 | upper 0.61.
//!
//! Run with: `cargo run -p uba-bench --release --bin table1`

use std::time::Instant;
use uba::prelude::*;

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(uba::graph::par::default_threads);

    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    let pairs = all_ordered_pairs(&g);
    println!(
        "MCI backbone: {} routers, {} link servers, {} ordered pairs, {} threads",
        g.node_count(),
        g.edge_count(),
        pairs.len(),
        threads
    );

    let (lb, ub) = utilization_bounds(6, 4, &voip);

    let t = Instant::now();
    let sp = max_utilization(&g, &servers, &voip, &pairs, &Selector::ShortestPath, 0.005);
    let sp_time = t.elapsed();

    let cfg = HeuristicConfig {
        threads,
        ..Default::default()
    };
    let t = Instant::now();
    let heur = max_utilization(
        &g,
        &servers,
        &voip,
        &pairs,
        &Selector::Heuristic(cfg),
        0.005,
    );
    let heur_time = t.elapsed();

    println!();
    println!("Table 1: Maximum Utilization");
    println!("| Lower Bound | SP   | Our Heuristics | Upper Bound |");
    println!(
        "| {:.2}        | {:.2} | {:.2}           | {:.2}        |",
        lb, sp.alpha, heur.alpha, ub
    );
    println!();
    println!("paper:  | 0.30        | 0.33 | 0.45           | 0.61        |");
    println!();
    println!(
        "SP search: {} probes in {:.2?}; heuristic search: {} probes in {:.2?}",
        sp.probes.len(),
        sp_time,
        heur.probes.len(),
        heur_time
    );
    println!(
        "heuristic / SP utilization ratio: {:.2} (paper: ~1.36)",
        heur.alpha / sp.alpha
    );

    // Shape assertions (the reproduction contract).
    assert!(lb <= sp.alpha + 0.005, "SP below the lower bound");
    assert!(sp.alpha < heur.alpha, "heuristic must beat SP");
    assert!(heur.alpha <= ub + 0.005, "heuristic above the upper bound");
    println!("\nshape check: LB <= SP < heuristic <= UB  ✓");
}
