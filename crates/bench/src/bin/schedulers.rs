//! Experiment SCHED — the paper's forwarding-path claim (Sections 2/4):
//! class-based static priority suffices for the guaranteed class and is
//! cheaper per packet than guaranteed-rate schedulers.
//!
//! Same filled network, four disciplines; reports per-class delays and
//! engine throughput (a proxy for per-packet scheduling cost).
//!
//! Run with: `cargo run -p uba-bench --release --bin schedulers`

use std::time::Instant;
use uba::prelude::*;
use uba::sim::{simulate_with, Discipline, FlowSpec, SimConfig, SourceModel};

fn main() {
    let g = uba::topology::mci();
    let capacity = 2e6;
    let rate = 32_000.0;
    let alpha = 0.25;
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).expect("connected");

    // Greedy fill with high-priority voice; add one low-priority bulk
    // flow per core link's worth of traffic.
    let mut reserved = vec![0.0f64; g.edge_count()];
    let mut flows = Vec::new();
    let mut progress = true;
    while progress {
        progress = false;
        for (pair, path) in pairs.iter().zip(&paths) {
            let fits = path
                .edges
                .iter()
                .all(|e| reserved[e.index()] + rate <= alpha * capacity + 1e-9);
            if fits {
                for e in &path.edges {
                    reserved[e.index()] += rate;
                }
                flows.push(FlowSpec {
                    class: 0,
                    ingress: pair.src.0,
                    route: path.edges.iter().map(|e| e.0).collect(),
                    source: SourceModel::voip_greedy(0.0),
                });
                progress = true;
            }
        }
    }
    // Best-effort background: greedy bulk on every 10th pair.
    for (pair, path) in pairs.iter().zip(&paths).step_by(10) {
        flows.push(FlowSpec {
            class: 1,
            ingress: pair.src.0,
            route: path.edges.iter().map(|e| e.0).collect(),
            source: SourceModel::GreedyOnOff {
                burst_bits: 128_000.0,
                rate_bps: 0.5 * capacity,
                packet_bits: 8000,
                start: 0.0,
            },
        });
    }
    println!(
        "# SCHED: MCI (C=2 Mb/s), {} voice flows + {} bulk flows",
        flows.iter().filter(|f| f.class == 0).count(),
        flows.iter().filter(|f| f.class == 1).count()
    );

    let cfg = SimConfig {
        horizon: 0.2,
        deadlines: vec![0.1, f64::INFINITY],
        policers: None,
    };
    let disciplines: Vec<(&str, Discipline)> = vec![
        ("static-priority", Discipline::StaticPriority),
        ("fifo", Discipline::Fifo),
        (
            "wfq(9:1)",
            Discipline::Wfq {
                weights: vec![9.0, 1.0],
            },
        ),
        (
            "virtual-clock",
            Discipline::VirtualClock {
                rates: vec![alpha * capacity, 0.7 * capacity],
            },
        ),
    ];
    println!(
        "# discipline voice_p50_ms voice_p99_ms voice_max_ms bulk_max_ms packets wall_ms Mevents/s"
    );
    for (name, d) in disciplines {
        let t0 = Instant::now();
        let r = simulate_with(&vec![capacity; g.edge_count()], &flows, &cfg, &d);
        let wall = t0.elapsed();
        let q = |p: f64| r.histograms[0].quantile(p).unwrap_or(0.0) * 1e3;
        println!(
            "{name:<16} {:>8.2} {:>8.2} {:>8.3} {:>10.1} {:>8} {:>8.1} {:>8.2}",
            q(0.5),
            q(0.99),
            r.classes[0].max_delay * 1e3,
            r.classes[1].max_delay * 1e3,
            r.total_packets,
            wall.as_secs_f64() * 1e3,
            r.events as f64 / wall.as_secs_f64() / 1e6,
        );
    }
    println!("# expectation: static priority minimizes voice delay at the highest event rate;");
    println!("# FIFO lets bulk bursts invade the voice class.");
}
