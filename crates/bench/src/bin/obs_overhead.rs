//! Experiment OBS — instrumentation overhead of the admit path.
//!
//! The `uba-obs` counters and the path-length histogram live directly on
//! the admission fast path, so the registry is only acceptable if it
//! costs (nearly) nothing there. This harness measures the same
//! admit+release loop on two controllers built from the same routing
//! table — one metered (the default), one built with
//! `AdmissionController::new_unmetered` — in interleaved batches so
//! frequency drift and cache warm-up hit both subjects equally, and
//! reports the median per-batch overhead.
//!
//! Contract: median overhead below 5%.
//!
//! Run with: `cargo run -p uba-bench --release --bin obs_overhead`
//! (`obs_overhead smoke` runs a shorter loop with a looser bound — the
//! `scripts/verify.sh` configuration.)

use std::time::Instant;
use uba::admission::AdmissionController;
use uba::prelude::*;
use uba_bench::PaperSetting;

/// One measured batch: round-robin admit+release over the pair set.
/// Low alpha keeps a couple of flows per link admissible, so the loop
/// exercises the full reserve/rollback/release CAS machinery without
/// saturating into the pure-reject path.
fn batch(ctrl: &AdmissionController, pairs: &[Pair], iters: usize) -> f64 {
    let t0 = Instant::now();
    let mut admitted = 0usize;
    for i in 0..iters {
        let p = pairs[i % pairs.len()];
        if let Ok(handle) = ctrl.try_admit(ClassId(0), p.src, p.dst) {
            admitted += 1;
            drop(handle);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(admitted > 0, "workload must exercise the admit path");
    std::hint::black_box(admitted);
    dt
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let (rounds, iters, bound_pct) = if smoke {
        (7, 20_000, 50.0)
    } else {
        (15, 200_000, 5.0)
    };

    let setting = PaperSetting::new();
    let (metered, unmetered) = setting.controller_pair(0.3);
    let pairs = &setting.pairs;

    // Warm-up: fault in routes, branch predictors, and the metric handles.
    batch(&metered, pairs, iters / 4);
    batch(&unmetered, pairs, iters / 4);

    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which subject goes first within the round.
        let (t_metered, t_plain) = if round % 2 == 0 {
            let m = batch(&metered, pairs, iters);
            let u = batch(&unmetered, pairs, iters);
            (m, u)
        } else {
            let u = batch(&unmetered, pairs, iters);
            let m = batch(&metered, pairs, iters);
            (m, u)
        };
        let pct = (t_metered / t_plain - 1.0) * 100.0;
        ratios.push(pct);
        println!(
            "round {round:>2}: metered {:>8.3} ms, unmetered {:>8.3} ms, overhead {pct:+6.2}%",
            t_metered * 1e3,
            t_plain * 1e3,
        );
    }

    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    println!();
    println!(
        "median instrumentation overhead: {median:+.2}% over {rounds} rounds of {iters} admits \
         (bound {bound_pct}%)"
    );
    assert!(
        median < bound_pct,
        "instrumented admit path {median:.2}% over baseline, bound {bound_pct}%"
    );
    println!("overhead check: median < {bound_pct}%  ✓");
}
