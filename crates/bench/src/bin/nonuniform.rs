//! Experiment NU — per-link (non-uniform) utilization assignments.
//!
//! The paper assigns one `α` network-wide, but its run-time admission
//! test is per-link, so nothing stops configuration from giving different
//! links different shares. Starting from the uniform SP maximum on the
//! MCI topology, a coordinate-ascent pass greedily raises individual
//! links' shares while the Theorem 3 fixed point stays safe. The metric
//! is total reservable real-time bandwidth `Σ_k α_k·C`.
//!
//! Run with: `cargo run -p uba-bench --release --bin nonuniform`

use uba::delay::fixed_point::{solve_two_class_nonuniform, SolveConfig};
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;

fn main() {
    let g = uba::topology::mci();
    let servers = Servers::uniform(&g, 100e6, 6);
    let voip = TrafficClass::voip();
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).expect("connected");
    let mut routes = RouteSet::new(g.edge_count());
    for p in &paths {
        routes.push(Route::from_path(ClassId(0), p));
    }
    let used = routes.used_servers(ClassId(0));
    let used_count = used.iter().filter(|&&u| u).count();

    // Uniform baseline from the Section 5.3 search.
    let sp = max_utilization(&g, &servers, &voip, &pairs, &Selector::ShortestPath, 0.005);
    let base_alpha = sp.alpha;
    println!(
        "# NU: MCI, SP routes; uniform SP alpha* = {base_alpha:.3} over {used_count} used servers"
    );

    let cfg = SolveConfig::default();
    let mut alphas = vec![base_alpha; servers.len()];
    let check = |alphas: &[f64]| {
        solve_two_class_nonuniform(&servers, &voip, alphas, &routes, &cfg, None)
            .outcome
            .is_safe()
    };
    assert!(check(&alphas), "uniform baseline must verify");

    // Coordinate ascent: several passes with shrinking step.
    let mut raised = 0usize;
    for step in [0.08, 0.04, 0.02, 0.01] {
        for k in 0..servers.len() {
            if !used[k] {
                continue;
            }
            loop {
                let old = alphas[k];
                let candidate = (old + step).min(0.98);
                if candidate <= old {
                    break;
                }
                alphas[k] = candidate;
                if check(&alphas) {
                    raised += 1;
                } else {
                    alphas[k] = old;
                    break;
                }
            }
        }
    }

    let uniform_total: f64 = base_alpha * used_count as f64;
    let shaped_total: f64 = (0..servers.len())
        .filter(|&k| used[k])
        .map(|k| alphas[k])
        .sum();
    let min_a = (0..servers.len())
        .filter(|&k| used[k])
        .map(|k| alphas[k])
        .fold(f64::INFINITY, f64::min);
    let max_a = (0..servers.len())
        .filter(|&k| used[k])
        .map(|k| alphas[k])
        .fold(0.0, f64::max);
    println!("# ascent steps accepted: {raised}");
    println!("# per-link alpha range after shaping: [{min_a:.3}, {max_a:.3}]");
    println!(
        "uniform total reservable bandwidth : {:.2} Gb/s",
        uniform_total * 100e6 / 1e9
    );
    println!(
        "shaped  total reservable bandwidth : {:.2} Gb/s  (+{:.1}%)",
        shaped_total * 100e6 / 1e9,
        100.0 * (shaped_total / uniform_total - 1.0)
    );
    assert!(check(&alphas));
    assert!(shaped_total >= uniform_total - 1e-9);
}
