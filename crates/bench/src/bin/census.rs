//! Experiment CEN — route-structure census: why SP's achievable
//! utilization differs across MCI renderings (EXPERIMENTS.md §T1).
//!
//! For SP and heuristic route sets on several topologies, prints route
//! length distribution and mixing depth (mean over a route's hops of the
//! deepest upstream prefix feeding each hop) next to the achieved α.
//!
//! Run with: `cargo run -p uba-bench --release --bin census`

use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;
use uba::routing::census::census;

fn routes_of(paths: &[Path], edge_count: usize) -> RouteSet {
    let mut rs = RouteSet::new(edge_count);
    for p in paths {
        rs.push(Route::from_path(ClassId(0), p));
    }
    rs
}

fn report(name: &str, g: &Digraph) {
    let servers = Servers::uniform(g, 100e6, g.max_in_degree().max(2));
    let voip = TrafficClass::voip();
    let pairs = all_ordered_pairs(g);

    let sp = max_utilization(g, &servers, &voip, &pairs, &Selector::ShortestPath, 0.005);
    let sp_paths = sp_selection(g, &pairs).unwrap();
    let sp_census = census(&routes_of(&sp_paths, g.edge_count()));

    let heur = max_utilization(
        g,
        &servers,
        &voip,
        &pairs,
        &Selector::Heuristic(HeuristicConfig::default()),
        0.005,
    );
    let heur_census = heur.selection.as_ref().map(|sel| census(&sel.routes));

    println!("{name}:");
    println!(
        "  SP   : alpha*={:.3}  max_len={}  worst mixing depth={:.2}  lengths={:?}",
        sp.alpha,
        sp_census.max_route_length(),
        sp_census.worst_mixing_depth(),
        sp_census.route_lengths,
    );
    if let Some(hc) = heur_census {
        println!(
            "  heur : alpha*={:.3}  max_len={}  worst mixing depth={:.2}  lengths={:?}",
            heur.alpha,
            hc.max_route_length(),
            hc.worst_mixing_depth(),
            hc.route_lengths,
        );
    }
}

fn main() {
    println!("# CEN: route census — mixing depth vs achieved utilization");
    report("mci", &uba::topology::mci());
    report("nsfnet", &uba::topology::nsfnet());
    report("grid4x4", &uba::topology::grid(4, 4));
    println!(
        "# deeper mixing on the worst route => lower verifiable alpha (see EXPERIMENTS.md §T1)"
    );
}
