//! Experiment TRACE — flight-recorder overhead of the admit path.
//!
//! PR 3 put audit-trail tracepoints directly on the admission fast path
//! (one event per admit/reject/release into `uba_obs::trace::global()`).
//! The recorder is only acceptable there if recording stays cheap:
//! thread-buffered publishes amortize the ring lock to 1/128 events, and
//! a *disabled* recorder must cost a single relaxed load. This harness
//! measures the same admit+release loop on one metered controller with
//! the global recorder enabled vs. disabled — interleaved batches, as in
//! `obs_overhead`, so frequency drift and cache warm-up hit both
//! subjects equally — and reports the median per-batch overhead.
//!
//! Contract: median overhead below 45%. Unlike `obs_overhead` (whose
//! buffered counters cost ~1–2ns against the same loop and hold a 5%
//! bound), an enabled flight recorder writes a full 48-byte event per
//! admit *and* per release — measured ≈17ns each after batching the
//! clock reads and the publish lock — against an admit+release loop
//! that itself runs in ~120ns. A 5% relative bound would require
//! ~3ns/event, below the cost of a single thread-local push; the bound
//! here pins the *measured* ≈33% median with headroom for noisy
//! machines, and the assertion exists to catch regressions (a
//! per-event clock read or lock acquisition trips it immediately —
//! both were observed at +80% and worse before batching).
//!
//! Run with: `cargo run -p uba-bench --release --bin trace_overhead`
//! (`trace_overhead smoke` runs a shorter loop with a looser bound — the
//! `scripts/verify.sh` configuration.)

use std::time::Instant;
use uba::admission::AdmissionController;
use uba::obs::trace;
use uba::prelude::*;
use uba_bench::PaperSetting;

/// One measured batch: round-robin admit+release over the pair set.
/// Low alpha keeps a couple of flows per link admissible, so tracing
/// sees the full admit/reject/release event mix.
fn batch(ctrl: &AdmissionController, pairs: &[Pair], iters: usize) -> f64 {
    let t0 = Instant::now();
    let mut admitted = 0usize;
    for i in 0..iters {
        let p = pairs[i % pairs.len()];
        if let Ok(handle) = ctrl.try_admit(ClassId(0), p.src, p.dst) {
            admitted += 1;
            drop(handle);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(admitted > 0, "workload must exercise the admit path");
    std::hint::black_box(admitted);
    dt
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let (rounds, iters, bound_pct) = if smoke {
        (7, 20_000, 60.0)
    } else {
        (15, 200_000, 45.0)
    };

    let setting = PaperSetting::new();
    let (metered, _) = setting.controller_pair(0.3);
    let pairs = &setting.pairs;
    let tracer = trace::global();

    // Warm-up both configurations: fault in routes, the thread-local
    // trace buffer, and the metric handles.
    tracer.set_enabled(true);
    batch(&metered, pairs, iters / 4);
    tracer.set_enabled(false);
    batch(&metered, pairs, iters / 4);

    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which subject goes first within the round. The ring
        // is drained between batches so enabled rounds pay steady-state
        // overwrite cost, not an ever-deeper queue.
        let run = |on: bool| -> f64 {
            tracer.set_enabled(on);
            let t = batch(&metered, pairs, iters);
            tracer.set_enabled(false);
            tracer.drain();
            t
        };
        let (t_traced, t_plain) = if round % 2 == 0 {
            let t = run(true);
            let p = run(false);
            (t, p)
        } else {
            let p = run(false);
            let t = run(true);
            (t, p)
        };
        let pct = (t_traced / t_plain - 1.0) * 100.0;
        ratios.push(pct);
        println!(
            "round {round:>2}: traced {:>8.3} ms, untraced {:>8.3} ms, overhead {pct:+6.2}%",
            t_traced * 1e3,
            t_plain * 1e3,
        );
    }

    // Sanity: the enabled rounds really recorded decisions.
    tracer.set_enabled(true);
    batch(&metered, pairs, pairs.len());
    tracer.set_enabled(false);
    let drained = tracer.drain();
    assert!(
        !drained.events.is_empty(),
        "flight recorder captured nothing"
    );

    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    println!();
    println!(
        "median tracing overhead: {median:+.2}% over {rounds} rounds of {iters} admits \
         (bound {bound_pct}%)"
    );
    assert!(
        median < bound_pct,
        "traced admit path {median:.2}% over baseline, bound {bound_pct}%"
    );
    println!("overhead check: median < {bound_pct}%  ✓");
}
