//! Experiment SLO — admit-path overhead of live SLO evaluation.
//!
//! `uba-cli serve` runs an [`SloEngine`] against full registry
//! snapshots on a polling thread while the admission fast path (which
//! now also feeds the per-class arrival estimators and the overuse
//! detector at every flush) keeps admitting. The engine is only
//! acceptable if a polling evaluator — snapshotting and evaluating
//! every 2 ms, several times faster than serve's per-churn-batch
//! cadence — leaves the admit path unmoved, *including on a single
//! core*, where every microsecond the evaluator spends is stolen from
//! the admit path directly. (A zero-sleep evaluator is deliberately not
//! the subject: full-registry snapshots in a spin loop measure
//! timeslicing and cacheline ping-pong, a load no polling consumer
//! generates.)
//!
//! Protocol: the same interleaved admit+release batches as
//! `obs_overhead`, on one metered controller; odd batches run quiet,
//! even batches run with the hostile evaluator thread alive. Reports
//! the median per-batch overhead.
//!
//! Contract: median overhead below 5%.
//!
//! Run with: `cargo run -p uba-bench --release --bin slo_overhead`
//! (`slo_overhead smoke` runs a shorter loop with a looser bound — the
//! `scripts/verify.sh` configuration.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use uba::admission::AdmissionController;
use uba::obs::{standard_rules, SloConfig, SloEngine};
use uba::prelude::*;
use uba_bench::PaperSetting;

/// One measured batch: round-robin admit+release over the pair set
/// (identical to the `obs_overhead` workload).
fn batch(ctrl: &AdmissionController, pairs: &[Pair], iters: usize) -> f64 {
    let t0 = Instant::now();
    let mut admitted = 0usize;
    for i in 0..iters {
        let p = pairs[i % pairs.len()];
        if let Ok(handle) = ctrl.try_admit(ClassId(0), p.src, p.dst) {
            admitted += 1;
            drop(handle);
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    assert!(admitted > 0, "workload must exercise the admit path");
    std::hint::black_box(admitted);
    dt
}

/// Runs `batch` while an evaluator thread snapshots the global registry
/// and closes an SLO window every 2 ms. The batch only starts once
/// the evaluator has anchored and closed its first window, so every
/// measured admit overlaps live evaluation.
fn batch_under_evaluation(ctrl: &AdmissionController, pairs: &[Pair], iters: usize) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicBool::new(false));
    let evaluator = {
        let stop = Arc::clone(&stop);
        let started = Arc::clone(&started);
        std::thread::spawn(move || {
            let mut engine =
                SloEngine::new(uba::obs::global(), standard_rules(&SloConfig::default()));
            engine.evaluate(uba::obs::global().snapshot()); // anchor
            let mut windows = 0u64;
            while !stop.load(Ordering::Relaxed) {
                engine.evaluate(uba::obs::global().snapshot());
                windows += 1;
                started.store(true, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            windows
        })
    };
    while !started.load(Ordering::Relaxed) {
        std::thread::yield_now();
    }
    let dt = batch(ctrl, pairs, iters);
    stop.store(true, Ordering::Relaxed);
    let windows = evaluator.join().expect("evaluator thread");
    assert!(windows > 0, "the evaluator must close at least one window");
    dt
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke");
    let (rounds, iters, bound_pct) = if smoke {
        (7, 20_000, 50.0)
    } else {
        (15, 200_000, 5.0)
    };

    let setting = PaperSetting::new();
    let (metered, _) = setting.controller_pair(0.3);
    let pairs = &setting.pairs;

    // Warm-up: fault in routes, branch predictors, metric handles, and
    // the slo.* gauge registrations.
    batch(&metered, pairs, iters / 4);
    batch_under_evaluation(&metered, pairs, iters / 4);

    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // Alternate which subject goes first within the round.
        let (t_evaluated, t_quiet) = if round % 2 == 0 {
            let e = batch_under_evaluation(&metered, pairs, iters);
            let q = batch(&metered, pairs, iters);
            (e, q)
        } else {
            let q = batch(&metered, pairs, iters);
            let e = batch_under_evaluation(&metered, pairs, iters);
            (e, q)
        };
        let pct = (t_evaluated / t_quiet - 1.0) * 100.0;
        ratios.push(pct);
        println!(
            "round {round:>2}: evaluated {:>8.3} ms, quiet {:>8.3} ms, overhead {pct:+6.2}%",
            t_evaluated * 1e3,
            t_quiet * 1e3,
        );
    }

    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    println!();
    println!(
        "median SLO-evaluation overhead: {median:+.2}% over {rounds} rounds of {iters} admits \
         (bound {bound_pct}%)"
    );
    assert!(
        median < bound_pct,
        "admit path under SLO evaluation {median:.2}% over quiet baseline, bound {bound_pct}%"
    );
    println!("overhead check: median < {bound_pct}%  ✓");
}
