//! Shared helpers for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and figures
//! (see `DESIGN.md` §4 for the experiment index); the Criterion benches in
//! `benches/` measure the run-time claims (admission latency, solver
//! scaling, parallel speedup).
#![forbid(unsafe_code)]

use uba::admission::{AdmissionController, RoutingTable};
use uba::prelude::*;

/// The paper's Section 6 setting: MCI topology, uniform 100 Mbit/s links,
/// fan-in 6, VoIP class, all ordered pairs.
pub struct PaperSetting {
    /// The MCI backbone approximation.
    pub g: Digraph,
    /// Uniform servers (C = 100 Mb/s, N = 6).
    pub servers: Servers,
    /// The VoIP class.
    pub voip: TrafficClass,
    /// All 342 ordered router pairs.
    pub pairs: Vec<Pair>,
}

impl PaperSetting {
    /// Builds the setting.
    pub fn new() -> Self {
        let g = uba::topology::mci();
        let servers = Servers::uniform(&g, 100e6, 6);
        let pairs = all_ordered_pairs(&g);
        Self {
            g,
            servers,
            voip: TrafficClass::voip(),
            pairs,
        }
    }

    /// A reduced pair set (every `step`-th pair) for cheaper runs.
    pub fn pair_subset(&self, step: usize) -> Vec<Pair> {
        self.pairs.iter().copied().step_by(step).collect()
    }

    /// Stands up a ready-to-use admission controller from a selection.
    pub fn controller(&self, sel: &Selection, alpha: f64) -> AdmissionController {
        let mut table = RoutingTable::new();
        table.insert_all(ClassId(0), sel.paths.iter());
        let classes = ClassSet::single(self.voip.clone());
        let caps: Vec<f64> = (0..self.servers.len())
            .map(|k| self.servers.capacity_at(k))
            .collect();
        AdmissionController::new(table, &classes, &caps, &[alpha])
    }

    /// Metered + unmetered controllers over the same SP routing table —
    /// the two subjects of the `obs_overhead` benchmark.
    pub fn controller_pair(&self, alpha: f64) -> (AdmissionController, AdmissionController) {
        let paths = sp_selection(&self.g, &self.pairs).expect("the MCI backbone is connected");
        let mut table = RoutingTable::new();
        table.insert_all(ClassId(0), paths.iter());
        let classes = ClassSet::single(self.voip.clone());
        let caps: Vec<f64> = (0..self.servers.len())
            .map(|k| self.servers.capacity_at(k))
            .collect();
        (
            AdmissionController::new(table.clone(), &classes, &caps, &[alpha]),
            AdmissionController::new_unmetered(table, &classes, &caps, &[alpha]),
        )
    }
}

impl Default for PaperSetting {
    fn default() -> Self {
        Self::new()
    }
}
