//! Microbenchmarks of the analytical primitives: envelope algebra,
//! Theorem 3, the exact binomial tail, and the scenario parser.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uba::delay::bound::theorem3_delay;
use uba::prelude::*;
use uba::stat::{binomial_tail, max_flows, OnOffClass};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis");

    let a = Envelope::leaky_bucket(640.0, 32_000.0, 100e6);
    let b = Envelope::leaky_bucket(64_000.0, 2e6, 100e6).shift(0.003);
    group.bench_function("envelope_sum_cap_delay", |be| {
        be.iter(|| {
            let agg = black_box(&a).sum(black_box(&b)).min_with_line(10e6);
            black_box(agg.delay(10e6))
        })
    });

    let bucket = LeakyBucket::new(640.0, 32_000.0);
    group.bench_function("theorem3_delay", |be| {
        be.iter(|| black_box(theorem3_delay(black_box(0.45), bucket, 6, 0.013)))
    });

    group.bench_function("binomial_tail_n3000", |be| {
        be.iter(|| black_box(binomial_tail(3000, 0.4, 1406)))
    });

    group.sample_size(20);
    group.bench_function("stat_threshold_search", |be| {
        be.iter(|| black_box(max_flows(OnOffClass::voip(), 45e6, 1e-5)))
    });

    let scenario_text = std::fs::read_to_string("../cli/scenarios/multiclass.toml")
        .unwrap_or_else(|_| {
            "[topology]\nkind = \"ring\"\nn = 8\n[[class]]\nname = \"v\"\nburst = 640\nrate = 32000\ndeadline = 0.1\n".to_string()
        });
    group.bench_function("toml_lite_parse", |be| {
        be.iter(|| black_box(uba_cli::parse(black_box(&scenario_text))))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
