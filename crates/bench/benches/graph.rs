//! Graph substrate microbenchmarks: Dijkstra, Yen, APSP serial vs
//! parallel, diameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uba::graph::apsp::{apsp, apsp_parallel};
use uba::graph::{bfs, dijkstra, k_shortest_paths, NodeId};

fn bench_graph(c: &mut Criterion) {
    let mci = uba::topology::mci();
    let wax = uba::topology::waxman(300, 0.4, 0.4, 7);

    let mut group = c.benchmark_group("graph");
    group.bench_function("dijkstra_waxman300", |b| {
        b.iter(|| black_box(dijkstra::dijkstra(&wax, NodeId(0))))
    });
    group.bench_function("yen_k8_mci", |b| {
        b.iter(|| black_box(k_shortest_paths(&mci, NodeId(12), NodeId(14), 8)))
    });
    group.bench_function("diameter_mci", |b| {
        b.iter(|| black_box(bfs::diameter(&mci)))
    });

    group.sample_size(20);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("apsp_waxman300", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    if t == 1 {
                        black_box(apsp(&wax))
                    } else {
                        black_box(apsp_parallel(&wax, t))
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
