//! Experiment S-AC — the scalability claim: utilization-based admission
//! stays O(path length) while intserv-style per-flow admission grows with
//! the number of established flows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uba::admission::{PerFlowAdmission, RoutingTable};
use uba::delay::servers::Servers;
use uba::prelude::*;
use uba_bench::PaperSetting;

fn bench_admission(c: &mut Criterion) {
    let setting = PaperSetting::new();
    let alpha = 0.45;
    let sel = select_routes(
        &setting.g,
        &setting.servers,
        &setting.voip,
        alpha,
        &setting.pairs,
        &HeuristicConfig::default(),
    )
    .expect("configurable");

    let mut group = c.benchmark_group("admission");

    // Utilization-based controller at several background loads: latency
    // must stay flat.
    for &background in &[0usize, 1_000, 10_000, 50_000] {
        let ctrl = setting.controller(&sel, alpha);
        let mut held = Vec::with_capacity(background);
        let mut it = setting.pairs.iter().cycle();
        while held.len() < background {
            let p = it.next().unwrap();
            match ctrl.try_admit(ClassId(0), p.src, p.dst) {
                Ok(h) => held.push(h),
                Err(_) => break, // budget exhausted before target load
            }
        }
        let probe = setting.pairs[setting.pairs.len() / 2];
        group.bench_with_input(
            BenchmarkId::new("utilization_based", background),
            &background,
            |b, _| {
                b.iter(|| {
                    // Admit + release one flow (drop releases).
                    if let Ok(h) = ctrl.try_admit(ClassId(0), probe.src, probe.dst) {
                        black_box(&h);
                    }
                })
            },
        );
        drop(held);
    }

    // Per-flow baseline: latency grows with established flows. (Reduced
    // flow counts — each decision re-analyzes the whole network.)
    group.sample_size(10);
    for &background in &[0usize, 50, 200, 800] {
        let mut table = RoutingTable::new();
        table.insert_all(ClassId(0), sel.paths.iter());
        let classes = ClassSet::single(setting.voip.clone());
        let servers = Servers::uniform(&setting.g, 100e6, 6);
        let baseline = PerFlowAdmission::new(table, classes, servers);
        let mut it = setting.pairs.iter().cycle();
        let mut admitted = 0usize;
        while admitted < background {
            let p = it.next().unwrap();
            if baseline.try_admit(ClassId(0), p.src, p.dst).is_some() {
                admitted += 1;
            }
        }
        let probe = setting.pairs[setting.pairs.len() / 2];
        group.bench_with_input(
            BenchmarkId::new("per_flow_baseline", background),
            &background,
            |b, _| {
                b.iter(|| {
                    if let Some(id) = baseline.try_admit(ClassId(0), probe.src, probe.dst) {
                        baseline.release(id);
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
