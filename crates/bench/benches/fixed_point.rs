//! Experiment P-PAR (solver part) — cost of the Eq. (14) fixed-point
//! verification: cold vs warm start, serial vs parallel, and scaling with
//! topology size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uba::delay::fixed_point::{solve_two_class, SolveConfig};
use uba::delay::routeset::{Route, RouteSet};
use uba::prelude::*;
use uba_bench::PaperSetting;

fn mci_routes(setting: &PaperSetting) -> RouteSet {
    let paths = sp_selection(&setting.g, &setting.pairs).unwrap();
    let mut routes = RouteSet::new(setting.g.edge_count());
    for p in &paths {
        routes.push(Route::from_path(ClassId(0), p));
    }
    routes
}

fn bench_fixed_point(c: &mut Criterion) {
    let setting = PaperSetting::new();
    let routes = mci_routes(&setting);
    let cfg = SolveConfig::default();

    let mut group = c.benchmark_group("fixed_point");
    group.bench_function("mci_sp_cold", |b| {
        b.iter(|| {
            black_box(solve_two_class(
                &setting.servers,
                &setting.voip,
                0.4,
                &routes,
                &cfg,
                None,
            ))
        })
    });

    // Warm start from a slightly smaller alpha's fixed point.
    let warm_base = solve_two_class(&setting.servers, &setting.voip, 0.39, &routes, &cfg, None);
    assert!(warm_base.outcome.is_safe());
    group.bench_function("mci_sp_warm", |b| {
        b.iter(|| {
            black_box(solve_two_class(
                &setting.servers,
                &setting.voip,
                0.4,
                &routes,
                &cfg,
                Some(&warm_base.delays),
            ))
        })
    });

    // Scaling with topology size (random Waxman, SP routes over all
    // pairs).
    group.sample_size(10);
    for &n in &[25usize, 50, 100] {
        let g = uba::topology::waxman(n, 0.4, 0.4, 42);
        let servers = Servers::uniform(&g, 100e6, g.max_in_degree().max(2));
        let pairs = all_ordered_pairs(&g);
        let paths = sp_selection(&g, &pairs).unwrap();
        let mut rs = RouteSet::new(g.edge_count());
        for p in &paths {
            rs.push(Route::from_path(ClassId(0), p));
        }
        group.bench_with_input(BenchmarkId::new("waxman_cold", n), &n, |b, _| {
            b.iter(|| {
                black_box(solve_two_class(
                    &servers,
                    &TrafficClass::voip(),
                    0.1,
                    &rs,
                    &cfg,
                    None,
                ))
            })
        });
        let par_cfg = SolveConfig {
            threads: 4,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("waxman_cold_par4", n), &n, |b, _| {
            b.iter(|| {
                black_box(solve_two_class(
                    &servers,
                    &TrafficClass::voip(),
                    0.1,
                    &rs,
                    &par_cfg,
                    None,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_point);
criterion_main!(benches);
