//! Discrete-event simulator throughput (events/second) on a filled
//! network.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use uba::prelude::*;
use uba::sim::{simulate, FlowSpec, SimConfig, SourceModel};

fn filled_ring_flows(alpha: f64, capacity: f64) -> (Vec<f64>, Vec<FlowSpec>) {
    let g = uba::topology::ring(8);
    let rate = 32_000.0;
    let pairs = all_ordered_pairs(&g);
    let paths = sp_selection(&g, &pairs).unwrap();
    let mut reserved = vec![0.0f64; g.edge_count()];
    let mut flows = Vec::new();
    let mut progress = true;
    while progress {
        progress = false;
        for (pair, path) in pairs.iter().zip(&paths) {
            let fits = path
                .edges
                .iter()
                .all(|e| reserved[e.index()] + rate <= alpha * capacity + 1e-9);
            if fits {
                for e in &path.edges {
                    reserved[e.index()] += rate;
                }
                flows.push(FlowSpec {
                    class: 0,
                    ingress: pair.src.0,
                    route: path.edges.iter().map(|e| e.0).collect(),
                    source: SourceModel::voip_greedy(0.0),
                });
                progress = true;
            }
        }
    }
    (vec![capacity; g.edge_count()], flows)
}

fn bench_simulator(c: &mut Criterion) {
    let (caps, flows) = filled_ring_flows(0.25, 2e6);
    let cfg = SimConfig {
        horizon: 0.3,
        deadlines: vec![0.1],
        policers: None,
    };
    // Count events once for throughput normalization.
    let probe = simulate(&caps, &flows, &cfg);
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(probe.events));
    group.sample_size(20);
    group.bench_function("ring8_filled_events", |b| {
        b.iter(|| black_box(simulate(&caps, &flows, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
