//! Configuration-time costs: SP selection, the 5.2 heuristic, and the 5.3
//! binary search (what a network operator pays per reconfiguration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uba::prelude::*;
use uba_bench::PaperSetting;

fn bench_routing(c: &mut Criterion) {
    let setting = PaperSetting::new();

    let mut group = c.benchmark_group("routing");
    group.bench_function("sp_selection_342_pairs", |b| {
        b.iter(|| black_box(sp_selection(&setting.g, &setting.pairs).unwrap()))
    });

    let subset = setting.pair_subset(6); // 57 pairs
    group.sample_size(10);
    group.bench_function("heuristic_57_pairs_alpha0.4", |b| {
        b.iter(|| {
            black_box(
                select_routes(
                    &setting.g,
                    &setting.servers,
                    &setting.voip,
                    0.4,
                    &subset,
                    &HeuristicConfig::default(),
                )
                .unwrap(),
            )
        })
    });

    group.bench_function("max_util_sp_full", |b| {
        b.iter(|| {
            black_box(max_utilization(
                &setting.g,
                &setting.servers,
                &setting.voip,
                &setting.pairs,
                &Selector::ShortestPath,
                0.005,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
