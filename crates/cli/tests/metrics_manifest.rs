//! `docs/metrics-manifest.txt` ↔ live registry agreement, both ways.
//!
//! Replays the canonical manifest scenario (`scenarios/ring_small.toml`
//! — single-class, so it exercises the delay solver, admission churn +
//! saturation, and the packet simulator) through `cmd_metrics`, then
//! diffs the metric names the process-global registry actually holds
//! against the manifest the xtask linter enforces:
//!
//! * every live registry name must appear in the manifest (a metric was
//!   added without regenerating the file), and
//! * every metric line in the manifest must come back from the registry
//!   (a metric was renamed or removed and the manifest went stale).
//!
//! `trace.*` lines are tracepoint kinds, not registry entries; they are
//! checked against `EventKind` names separately below.

use std::collections::BTreeSet;
use std::path::Path;

use uba_cli::commands::{cmd_metrics, render_global_metrics};
use uba_cli::Scenario;

fn manifest_lines() -> Vec<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/metrics-manifest.txt");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

fn live_registry_names() -> BTreeSet<String> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios/ring_small.toml");
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let sc = Scenario::from_str(&text).expect("canonical scenario parses");
    cmd_metrics(&sc, true).expect("canonical scenario runs");
    render_global_metrics(true)
        .lines()
        .map(|line| {
            uba::obs::json::parse(line)
                .expect("registry emits valid JSON lines")
                .get("name")
                .and_then(|v| v.as_str().map(str::to_owned))
                .expect("every metric line has a name")
        })
        .collect()
}

#[test]
fn manifest_and_registry_agree_in_both_directions() {
    let manifest = manifest_lines();
    let metric_lines: BTreeSet<String> = manifest
        .iter()
        .filter(|l| !l.starts_with("trace."))
        .cloned()
        .collect();
    let live = live_registry_names();

    let unmanifested: Vec<_> = live.difference(&metric_lines).collect();
    assert!(
        unmanifested.is_empty(),
        "registry metrics missing from docs/metrics-manifest.txt \
         (regenerate it — see the file header): {unmanifested:?}"
    );

    let stale: Vec<_> = metric_lines.difference(&live).collect();
    assert!(
        stale.is_empty(),
        "manifest lines no longer produced by the canonical scenario \
         (regenerate docs/metrics-manifest.txt): {stale:?}"
    );
}

#[test]
fn manifest_trace_kinds_match_event_kinds() {
    let manifest_traces: BTreeSet<String> = manifest_lines()
        .into_iter()
        .filter(|l| l.starts_with("trace."))
        .collect();
    let live: BTreeSet<String> = uba::obs::EventKind::ALL
        .iter()
        .map(|k| format!("trace.{}", k.as_str()))
        .collect();
    assert_eq!(
        manifest_traces, live,
        "trace.* manifest lines must mirror EventKind::as_str"
    );
}
