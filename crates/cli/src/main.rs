//! `uba-cli` — scenario-driven interface to the uba library.
//!
//! ```text
//! uba-cli bounds      <scenario.toml>
//! uba-cli verify      <scenario.toml>
//! uba-cli maximize    <scenario.toml> [sp|heuristic] [--threads N]
//! uba-cli simulate    <scenario.toml> [horizon_seconds]
//! uba-cli metrics     <scenario.toml> [--json]
//! uba-cli explain     <scenario.toml> [--json]
//! uba-cli reconfigure <old.toml> <new.toml> [--json]
//! uba-cli serve       <scenario.toml> --port N [--bind ADDR]
//! uba-cli watch       --port N [--bind ADDR] [--interval-ms MS] [--iterations K]
//! ```
//!
//! Any command also accepts `--metrics` to append a dump of the
//! process-global metrics registry after its normal output.

use uba_cli::commands::{
    cmd_bounds, cmd_explain, cmd_maximize, cmd_metrics, cmd_reconfigure, cmd_simulate, cmd_verify,
    render_global_metrics,
};
use uba_cli::flags::{take_flag, take_parsed, take_value};
use uba_cli::Scenario;

fn usage() -> ! {
    eprintln!(
        "usage: uba-cli <bounds|verify|maximize|simulate|metrics|explain|reconfigure|serve|watch> <scenario.toml> [args]\n\
         \n\
         bounds      — Theorem 4 utilization window for each class\n\
         verify      — Figure 2 verification of the scenario's alphas on SP routes\n\
         maximize    — Section 5.3 binary search; optional selector sp|heuristic (default heuristic)\n\
         \x20             --threads N fans candidate verification and solver sweeps across N workers\n\
         simulate    — packet-level validation; optional horizon in seconds (default 0.3)\n\
         metrics     — exercise every instrumented layer, then dump the metrics registry\n\
         explain     — replay admissions to saturation and diagnose every rejection\n\
         \x20             (first failing link, observed vs. budget utilization, headroom)\n\
         reconfigure — live-migration rehearsal from <old.toml> to <new.toml>: saturate the\n\
         \x20             old configuration, hot-swap the new one, report kept/stranded flows\n\
         \x20             and the budget delta\n\
         serve       — run a scenario loop and expose /metrics (Prometheus), /snapshot,\n\
         \x20             /trace, /slo, /alerts, and POST /reconfigure (hot reload);\n\
         \x20             requires --port N\n\
         watch       — poll a running serve endpoint's /snapshot + /slo and print a\n\
         \x20             one-line-per-rule SLO status each interval; requires --port N\n\
         \n\
         flags: --metrics         append a metrics-registry dump after any command\n\
         \x20       --json            (metrics, explain, reconfigure) line-oriented JSON\n\
         \x20       --bind ADDR       (serve, watch) address (default 127.0.0.1)\n\
         \x20       --interval-ms MS  (watch) poll interval (default 1000)\n\
         \x20       --iterations K    (watch) stop after K polls (default: run forever)"
    );
    std::process::exit(2);
}

fn fail(msg: String) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let dump_metrics = take_flag(&mut args, "--metrics");
    let json = take_flag(&mut args, "--json");
    let threads = take_parsed(
        &mut args,
        "--threads",
        "a positive integer",
        |&n: &usize| n >= 1,
    )
    .unwrap_or_else(|e| fail(e))
    .unwrap_or(1);
    let port: Option<u16> = take_parsed(&mut args, "--port", "a port number", |&p: &u16| p >= 1)
        .unwrap_or_else(|e| fail(e));
    let bind = take_value(&mut args, "--bind")
        .unwrap_or_else(|e| fail(e))
        .unwrap_or_else(|| "127.0.0.1".into());
    let interval_ms = take_parsed(
        &mut args,
        "--interval-ms",
        "a positive integer",
        |&n: &u64| n >= 1,
    )
    .unwrap_or_else(|e| fail(e))
    .unwrap_or(1000);
    let iterations: Option<usize> = take_parsed(
        &mut args,
        "--iterations",
        "a positive integer",
        |&n: &usize| n >= 1,
    )
    .unwrap_or_else(|e| fail(e));
    // `watch` talks to a running server: no scenario file to load.
    if args.first().map(String::as_str) == Some("watch") {
        let Some(port) = port else {
            eprintln!("watch requires --port N");
            std::process::exit(2);
        };
        if let Err(e) = uba_cli::serve::watch(&format!("{bind}:{port}"), interval_ms, iterations) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    if args.len() < 2 {
        usage();
    }
    let command = args[0].as_str();
    let scenario = match Scenario::from_path(&args[1]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario error: {e}");
            std::process::exit(1);
        }
    };
    let result = match command {
        "bounds" => cmd_bounds(&scenario),
        "verify" => cmd_verify(&scenario),
        "maximize" => cmd_maximize(
            &scenario,
            args.get(2).map(String::as_str).unwrap_or("heuristic"),
            threads,
        ),
        "simulate" => {
            let horizon = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.3);
            cmd_simulate(&scenario, horizon)
        }
        "metrics" => cmd_metrics(&scenario, json),
        "explain" => cmd_explain(&scenario, json),
        "reconfigure" => {
            let Some(new_path) = args.get(2) else {
                eprintln!("reconfigure requires <old.toml> <new.toml>");
                std::process::exit(2);
            };
            match Scenario::from_path(new_path) {
                Ok(new_sc) => cmd_reconfigure(&scenario, &new_sc, json),
                Err(e) => {
                    eprintln!("scenario error: {e}");
                    std::process::exit(1);
                }
            }
        }
        "serve" => {
            let Some(port) = port else {
                eprintln!("serve requires --port N");
                std::process::exit(2);
            };
            let listener = match std::net::TcpListener::bind((bind.as_str(), port)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot bind {bind}:{port}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "serving on http://{bind}:{port} — GET /metrics (Prometheus), /snapshot, \
                 /trace, /slo, /alerts (JSON-lines), POST /reconfigure (hot reload)"
            );
            uba_cli::serve::serve(&scenario, listener, None, Some(&args[1])).map(|()| String::new())
        }
        _ => usage(),
    };
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    if dump_metrics && command != "metrics" {
        println!();
        print!("{}", render_global_metrics(json));
    }
}
