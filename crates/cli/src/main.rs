//! `uba-cli` — scenario-driven interface to the uba library.
//!
//! ```text
//! uba-cli bounds   <scenario.toml>
//! uba-cli verify   <scenario.toml>
//! uba-cli maximize <scenario.toml> [sp|heuristic] [--threads N]
//! uba-cli simulate <scenario.toml> [horizon_seconds]
//! uba-cli metrics  <scenario.toml> [--json]
//! uba-cli explain  <scenario.toml> [--json]
//! uba-cli serve    <scenario.toml> --port N
//! ```
//!
//! Any command also accepts `--metrics` to append a dump of the
//! process-global metrics registry after its normal output.

use uba_cli::commands::{
    cmd_bounds, cmd_explain, cmd_maximize, cmd_metrics, cmd_simulate, cmd_verify,
    render_global_metrics,
};
use uba_cli::Scenario;

fn usage() -> ! {
    eprintln!(
        "usage: uba-cli <bounds|verify|maximize|simulate|metrics|explain|serve> <scenario.toml> [args]\n\
         \n\
         bounds   — Theorem 4 utilization window for each class\n\
         verify   — Figure 2 verification of the scenario's alphas on SP routes\n\
         maximize — Section 5.3 binary search; optional selector sp|heuristic (default heuristic)\n\
         \x20          --threads N fans candidate verification and solver sweeps across N workers\n\
         simulate — packet-level validation; optional horizon in seconds (default 0.3)\n\
         metrics  — exercise every instrumented layer, then dump the metrics registry\n\
         explain  — replay admissions to saturation and diagnose every rejection\n\
         \x20          (first failing link, observed vs. budget utilization, headroom)\n\
         serve    — run a scenario loop and expose /metrics (Prometheus text)\n\
         \x20          and /trace (flight-recorder JSON-lines); requires --port N\n\
         \n\
         flags: --metrics  append a metrics-registry dump after any command\n\
         \x20       --json     (metrics, explain) line-oriented JSON instead of the table"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let dump_metrics = {
        let before = args.len();
        args.retain(|a| a != "--metrics");
        args.len() != before
    };
    let json = {
        let before = args.len();
        args.retain(|a| a != "--json");
        args.len() != before
    };
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--threads requires a value");
                std::process::exit(2);
            }
            let n = match args[i + 1].parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("--threads expects a positive integer, got '{}'", args[i + 1]);
                    std::process::exit(2);
                }
            };
            args.drain(i..=i + 1);
            n
        }
        None => 1,
    };
    let port = match args.iter().position(|a| a == "--port") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--port requires a value");
                std::process::exit(2);
            }
            let p = match args[i + 1].parse::<u16>() {
                Ok(p) if p >= 1 => p,
                _ => {
                    eprintln!("--port expects a port number, got '{}'", args[i + 1]);
                    std::process::exit(2);
                }
            };
            args.drain(i..=i + 1);
            Some(p)
        }
        None => None,
    };
    if args.len() < 2 {
        usage();
    }
    let command = args[0].as_str();
    let scenario = match Scenario::from_path(&args[1]) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scenario error: {e}");
            std::process::exit(1);
        }
    };
    let result = match command {
        "bounds" => cmd_bounds(&scenario),
        "verify" => cmd_verify(&scenario),
        "maximize" => cmd_maximize(
            &scenario,
            args.get(2).map(String::as_str).unwrap_or("heuristic"),
            threads,
        ),
        "simulate" => {
            let horizon = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.3);
            cmd_simulate(&scenario, horizon)
        }
        "metrics" => cmd_metrics(&scenario, json),
        "explain" => cmd_explain(&scenario, json),
        "serve" => {
            let Some(port) = port else {
                eprintln!("serve requires --port N");
                std::process::exit(2);
            };
            let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot bind 127.0.0.1:{port}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "serving on http://127.0.0.1:{port} — GET /metrics (Prometheus), /trace (JSON-lines)"
            );
            uba_cli::serve::serve(&scenario, listener, None).map(|()| String::new())
        }
        _ => usage(),
    };
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    if dump_metrics && command != "metrics" {
        println!();
        print!("{}", render_global_metrics(json));
    }
}
