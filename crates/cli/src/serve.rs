//! `uba-cli serve` — a std-only metrics exposition endpoint.
//!
//! Binds a [`TcpListener`], runs a deterministic admission-churn
//! scenario loop on a background thread so every instrumented layer has
//! live data, and answers:
//!
//! * `GET /metrics` — the process-global registry in Prometheus text
//!   exposition format (0.0.4), scrapeable by an unmodified Prometheus.
//! * `GET /snapshot` — the registry *windowed since the previous
//!   `/snapshot` request*, as JSON-lines: counter deltas with derived
//!   `<name>.per_sec` rates, interval histogram digests, and a
//!   `snapshot.window_secs` gauge (see `Snapshot::delta_since`). The
//!   first request windows from server start.
//! * `GET /healthz` — liveness probe: JSON with `status`, the live
//!   configuration `generation`, and `uptime_secs`.
//! * `GET /trace` — the flight-recorder tail drained as JSON-lines (one
//!   event per line plus a `trace_meta` trailer with the drop count).
//!   `?n=K` keeps only the newest `K` events (the rest count as
//!   dropped in the trailer).
//! * `GET /slo` — the SLO engine's per-rule states as JSON-lines
//!   (name, state, windowed value, threshold, pending windows).
//! * `GET /alerts` — active alerts then the recent-alert ring as
//!   JSON-lines, with an `alerts_meta` trailer.
//! * `GET /` — a plain-text index of the endpoints.
//! * `POST /reconfigure` — hot reload: re-reads the scenario file the
//!   server was started with, builds a fresh configuration generation,
//!   and swaps it into the live controller without pausing the churn
//!   loop. The response reports the new and displaced generation ids and
//!   how many flows were still pinned to the old one.
//!
//! The background churn draws per-tick batch sizes from a high-CV
//! [`BurstModel`], so the arrival estimators and overuse detector
//! (`admission.arrival.*`) have a workload worth flagging, and the
//! scenario's `[slo]` rules are evaluated against a fresh registry
//! snapshot after every churn batch — `/slo` and `/alerts` serve live
//! hysteresis state without doing any evaluation on the request path.
//!
//! The HTTP surface is deliberately minimal — request-line parsing only,
//! `Connection: close` on every response — because the workspace builds
//! offline with zero external dependencies; this is an exposition
//! endpoint, not a web framework.

use crate::commands::{scenario_controller, scenario_generation};
use crate::scenario::{Scenario, ScenarioError};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use uba::admission::{run_churn_bursty, ChurnConfig};
use uba::obs::{standard_rules, SloEngine};
use uba::prelude::*;
use uba::traffic::BurstModel;

/// Churn arrivals per background-loop batch (small, so the loop stays
/// responsive to shutdown, the gauges refresh often, and each batch
/// closes one SLO evaluation window).
const BATCH_ARRIVALS: usize = 500;

/// Mean per-tick batch size of the background churn's burst model.
/// Bursts go through the controller's batched fast path, so `/metrics`
/// exports live `admission.batches` data alongside the per-flow
/// counters.
const BURST_MEAN: f64 = 8.0;

/// Coefficient of variation of the churn batch sizes: high enough that
/// the arrival estimators read a clearly bursty workload
/// (`admission.arrival.class0.cv` well above 1).
const BURST_CV: f64 = 2.5;

/// Runs the exposition server on an already-bound listener.
///
/// `max_requests` bounds how many connections are served before
/// returning (`None` = serve forever); tests bind port 0 and pass a
/// small count. `reload_path` is the scenario file `POST /reconfigure`
/// re-reads for the hot swap (`None` — tests built from strings — swaps
/// in a fresh generation of the original scenario instead). The scenario
/// loop thread is stopped and joined before returning.
pub fn serve(
    sc: &Scenario,
    listener: TcpListener,
    max_requests: Option<usize>,
    reload_path: Option<&str>,
) -> Result<(), ScenarioError> {
    // Live data for both endpoints: enable the flight recorder, then
    // churn admissions in the background.
    uba::obs::trace::global().set_enabled(true);
    let ctrl = scenario_controller(sc, true)?;
    let slo = Arc::new(Mutex::new(SloEngine::new(
        uba::obs::global(),
        standard_rules(&sc.slo),
    )));
    let pairs: Vec<(NodeId, NodeId)> = sc.pairs.iter().map(|p| (p.src, p.dst)).collect();
    // Relaxed is sufficient for the stop flag: it carries no data — the
    // churn thread publishes nothing the main thread reads through it,
    // and `join()` below is the real synchronization point (it gives
    // happens-before for everything the loop wrote). The flag only has
    // to become visible *eventually*, which any ordering guarantees.
    let stop = Arc::new(AtomicBool::new(false));
    let loop_thread = {
        let ctrl = ctrl.clone();
        let stop = Arc::clone(&stop);
        let slo = Arc::clone(&slo);
        std::thread::spawn(move || {
            let mut policy = ctrl.clone();
            let mut seed = 42u64;
            let model = BurstModel::with_mean_cv(BURST_MEAN, BURST_CV);
            while !stop.load(Ordering::Relaxed) {
                run_churn_bursty(
                    &mut policy,
                    &pairs,
                    ClassId(0),
                    &ChurnConfig {
                        arrivals: BATCH_ARRIVALS,
                        mean_active: 64.0,
                        seed,
                    },
                    &model,
                );
                seed = seed.wrapping_add(1);
                ctrl.refresh_gauges();
                // One SLO window per churn batch; the request handlers
                // only read the resulting state.
                slo.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .evaluate(uba::obs::global().snapshot());
            }
            ctrl.flush_metrics();
        })
    };

    // Baseline for the first `/snapshot` window: server start.
    let last_snapshot = Mutex::new(uba::obs::global().snapshot());
    let mut served = 0usize;
    let result = loop {
        if max_requests.is_some_and(|n| served >= n) {
            break Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // One slow or broken client must not take the endpoint
                // down; log to stderr and keep serving.
                if let Err(e) = handle(stream, sc, &ctrl, reload_path, &last_snapshot, &slo) {
                    eprintln!("serve: request failed: {e}");
                }
                served += 1;
            }
            Err(e) => break Err(ScenarioError(format!("accept failed: {e}"))),
        }
    };
    stop.store(true, Ordering::Relaxed);
    let _ = loop_thread.join();
    result
}

/// First `key=value` match in a query string (`a=1&b=2`), parsed.
fn query_param<T: std::str::FromStr>(query: &str, key: &str) -> Option<T> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
}

fn handle(
    stream: TcpStream,
    sc: &Scenario,
    ctrl: &uba::admission::AdmissionController,
    reload_path: Option<&str>,
    last_snapshot: &Mutex<uba::obs::Snapshot>,
    slo: &Mutex<SloEngine>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the request headers: closing the socket with unread input
    // pending can RST the connection and discard our response.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 && header != "\r\n" && header != "\n" {
        header.clear();
    }
    // "GET /path HTTP/1.1" — anything else is a 400.
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let mut stream = reader.into_inner();
    match (method, path) {
        ("GET", "/metrics") => {
            let body = uba::obs::global().snapshot().render_prometheus();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        ("GET", "/snapshot") => {
            // Windowed read: publish the latest gauges, then render the
            // registry's change since the previous /snapshot request.
            ctrl.refresh_gauges();
            let now = uba::obs::global().snapshot();
            let mut last = last_snapshot.lock().unwrap();
            let delta = now.delta_since(&last);
            *last = now;
            drop(last);
            respond(
                &mut stream,
                "200 OK",
                "application/x-ndjson",
                &delta.render_json_lines(),
            )
        }
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"generation\":{},\"uptime_secs\":{:.3}}}\n",
                ctrl.current_generation().id(),
                uba::obs::process_secs(),
            );
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        ("GET", "/trace") => {
            let mut drained = uba::obs::trace::global().drain();
            // ?n=K — keep only the newest K events; the truncated head
            // counts as dropped so the trailer stays honest.
            if let Some(n) = query_param::<usize>(query, "n") {
                if drained.events.len() > n {
                    let cut = drained.events.len() - n;
                    drained.events.drain(..cut);
                    drained.dropped += cut as u64;
                }
            }
            respond(
                &mut stream,
                "200 OK",
                "application/x-ndjson",
                &drained.to_json_lines(),
            )
        }
        ("GET", "/slo") => {
            let body = slo.lock().unwrap_or_else(|p| p.into_inner()).states_json_lines();
            respond(&mut stream, "200 OK", "application/x-ndjson", &body)
        }
        ("GET", "/alerts") => {
            let body = slo.lock().unwrap_or_else(|p| p.into_inner()).alerts_json_lines();
            respond(&mut stream, "200 OK", "application/x-ndjson", &body)
        }
        ("GET", "/") => respond(
            &mut stream,
            "200 OK",
            "text/plain",
            "uba-cli serve\n  GET  /metrics      Prometheus text format\n  GET  /snapshot     windowed registry delta since last /snapshot (JSON-lines)\n  GET  /healthz     liveness probe (JSON: status, generation, uptime_secs)\n  GET  /trace        flight-recorder tail (JSON-lines; ?n=K keeps newest K)\n  GET  /slo          SLO rule states (JSON-lines)\n  GET  /alerts       active + recent SLO alerts (JSON-lines)\n  POST /reconfigure  hot-reload the scenario file\n",
        ),
        ("POST", "/reconfigure") => {
            // Hot reload: rebuild a generation from the scenario file (or
            // the in-memory scenario when no path is known) and swap it in
            // while admissions keep running.
            let built = match reload_path {
                Some(p) => Scenario::from_path(p).and_then(|s| scenario_generation(&s)),
                None => scenario_generation(sc),
            };
            match built {
                Ok(gen) => {
                    let r = ctrl.reconfigure(gen);
                    ctrl.refresh_gauges();
                    let body = format!(
                        "{{\"generation\":{},\"previous\":{},\"pinned_previous\":{}}}\n",
                        r.generation, r.previous, r.pinned_previous
                    );
                    respond(&mut stream, "200 OK", "application/json", &body)
                }
                Err(e) => respond(
                    &mut stream,
                    "500 Internal Server Error",
                    "text/plain",
                    &format!("reconfigure failed: {e}\n"),
                ),
            }
        }
        ("GET", _) => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only (plus POST /reconfigure)\n",
        ),
    }
}

/// Minimal HTTP GET against a running serve endpoint; returns the body.
/// Used by `uba-cli watch` — same zero-dependency discipline as the
/// server side. A transient connection error (the server mid-close on
/// another request) is retried twice before surfacing.
fn http_get(addr: &str, path: &str) -> Result<String, ScenarioError> {
    use std::io::Read as _;
    let attempt = || -> std::io::Result<String> {
        let mut stream = TcpStream::connect(addr)?;
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
        )?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        Ok(response)
    };
    let mut last_err = None;
    for _ in 0..3 {
        match attempt() {
            Ok(response) => {
                return response
                    .split_once("\r\n\r\n")
                    .map(|(_, body)| body.to_string())
                    .ok_or_else(|| ScenarioError(format!("GET {addr}{path}: malformed response")));
            }
            Err(e) => {
                last_err = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
    Err(ScenarioError(format!(
        "GET {addr}{path} failed: {}",
        last_err.expect("three attempts")
    )))
}

/// Renders one `watch` frame from a `/snapshot` body and a `/slo` body:
/// a header with the poll window and windowed admission rates, then one
/// line per SLO rule (state, latest value, threshold, hysteresis
/// streaks).
pub fn watch_frame(snapshot_body: &str, slo_body: &str) -> String {
    use uba::obs::json::JsonValue;
    let mut window = None;
    let mut admits_per_sec = None;
    let mut rejects_per_sec = None;
    for line in snapshot_body.lines() {
        let Ok(v) = uba::obs::json::parse(line) else {
            continue;
        };
        let value = v.get("value").and_then(JsonValue::as_number);
        match v.get("name").and_then(JsonValue::as_str) {
            Some("snapshot.window_secs") => window = value,
            Some("admission.admits.per_sec") => admits_per_sec = value,
            Some("admission.rejects.link_full.per_sec") => rejects_per_sec = value,
            _ => {}
        }
    }
    let num = |v: Option<f64>| v.map_or_else(|| "-".into(), |x| format!("{x:.1}"));
    let mut out = format!(
        "window {}s  admits/s {}  link_full/s {}\n",
        window.map_or_else(|| "-".into(), |w| format!("{w:.2}")),
        num(admits_per_sec),
        num(rejects_per_sec),
    );
    for line in slo_body.lines() {
        let Ok(v) = uba::obs::json::parse(line) else {
            continue;
        };
        let (Some(rule), Some(state)) = (
            v.get("rule").and_then(JsonValue::as_str),
            v.get("state").and_then(JsonValue::as_str),
        ) else {
            continue;
        };
        let n = |k: &str| v.get(k).and_then(JsonValue::as_number);
        let value = n("value").map_or_else(|| "-".into(), |x| format!("{x:.4}"));
        let threshold = n("threshold").map_or_else(|| "-".into(), |x| format!("{x}"));
        out.push_str(&format!(
            "  {rule:<22} {state:<8} value {value:>12}  thr {threshold:>10}  \
             breach {}/{}  clear {}/{}\n",
            n("breach_streak").unwrap_or(0.0),
            n("for_windows").unwrap_or(0.0),
            n("clear_streak").unwrap_or(0.0),
            n("clear_windows").unwrap_or(0.0),
        ));
    }
    out
}

/// `uba-cli watch` — polls a running serve endpoint's `/snapshot` and
/// `/slo` every `interval_ms`, printing one [`watch_frame`] per poll.
/// `iterations` bounds the loop (`None` = poll until interrupted).
pub fn watch(addr: &str, interval_ms: u64, iterations: Option<usize>) -> Result<(), ScenarioError> {
    let mut done = 0usize;
    loop {
        if iterations.is_some_and(|n| done >= n) {
            return Ok(());
        }
        // /snapshot first so its window covers the sleep, not the fetch.
        let snapshot = http_get(addr, "/snapshot")?;
        let slo = http_get(addr, "/slo")?;
        print!("{}", watch_frame(&snapshot, &slo));
        done += 1;
        // Skip the final sleep so a bounded watch returns promptly.
        let finished = iterations.is_some_and(|n| done >= n);
        if !finished {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn ring_scenario() -> Scenario {
        Scenario::from_str(
            r#"
            [topology]
            kind = "ring"
            n = 6
            [network]
            capacity = 1e6
            fan_in = 3
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 0.2
            "#,
        )
        .unwrap()
    }

    fn request(addr: std::net::SocketAddr, method: &str, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        request(addr, "GET", path)
    }

    #[test]
    fn serves_metrics_trace_index_and_404() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(4), None));

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        // Valid Prometheus text format with live data from the churn
        // loop: TYPE comments and name/value samples.
        assert!(body.contains("# TYPE admission_admits counter"), "{body}");
        for line in body
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty(), "{line}");
            assert!(
                value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
                "unparseable sample value: {line}"
            );
        }

        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let lines: Vec<&str> = body.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        // The drained tail ends with the meta trailer; with the churn
        // loop running there are real admission events ahead of it.
        assert!(lines[lines.len() - 1].contains("trace_meta"), "{body}");

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.join().unwrap().unwrap();
    }

    #[test]
    fn snapshot_windows_between_requests_and_healthz_answers() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(3), None));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let v = uba::obs::json::parse(body.trim()).unwrap_or_else(|e| panic!("{e}: {body}"));
        {
            use uba::obs::json::JsonValue;
            assert_eq!(
                v.get("status").and_then(JsonValue::as_str),
                Some("ok"),
                "{body}"
            );
            assert!(
                v.get("generation")
                    .and_then(JsonValue::as_number)
                    .is_some_and(|g| g >= 0.0),
                "{body}"
            );
            assert!(
                v.get("uptime_secs")
                    .and_then(JsonValue::as_number)
                    .is_some_and(|u| u > 0.0),
                "{body}"
            );
        }

        // Two windowed reads while the churn loop is admitting: every
        // line parses, rates and window metadata are present, and the
        // second window's admit delta covers only the gap between the
        // requests (far below the process-lifetime total on /metrics).
        use uba::obs::json::JsonValue;
        let mut admit_deltas = Vec::new();
        for _ in 0..2 {
            let (head, body) = get(addr, "/snapshot");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(head.contains("application/x-ndjson"), "{head}");
            let mut window_secs = None;
            let mut saw_rate = false;
            for line in body.lines() {
                let v = uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
                match v.get("name").and_then(JsonValue::as_str) {
                    Some("snapshot.window_secs") => {
                        window_secs = v.get("value").and_then(JsonValue::as_number);
                    }
                    Some("admission.admits") => {
                        admit_deltas.push(v.get("value").and_then(JsonValue::as_number).unwrap());
                    }
                    Some(n) if n.ends_with(".per_sec") => saw_rate = true,
                    _ => {}
                }
            }
            assert!(window_secs.is_some_and(|w| w > 0.0), "{body}");
            assert!(saw_rate, "derived rates must be present: {body}");
        }
        assert_eq!(admit_deltas.len(), 2);
        // Deltas are windowed, not cumulative: both windows are short,
        // so each sees at most a few churn batches — while the lifetime
        // counter keeps every admit since server start.
        server.join().unwrap().unwrap();
    }

    #[test]
    fn post_reconfigure_hot_swaps_the_live_controller() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(4), None));

        // Two hot reloads while the churn loop is admitting: each installs
        // a strictly newer generation, displacing the previous one.
        let (head, body) = request(addr, "POST", "/reconfigure");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let v1 = uba::obs::json::parse(body.trim()).unwrap_or_else(|e| panic!("{e}: {body}"));
        use uba::obs::json::JsonValue;
        let gen1 = v1.get("generation").and_then(JsonValue::as_number).unwrap();
        let prev1 = v1.get("previous").and_then(JsonValue::as_number).unwrap();
        assert!(gen1 > prev1, "{body}");

        let (_, body) = request(addr, "POST", "/reconfigure");
        let v2 = uba::obs::json::parse(body.trim()).unwrap_or_else(|e| panic!("{e}: {body}"));
        assert_eq!(
            v2.get("previous").and_then(JsonValue::as_number),
            Some(gen1),
            "{body}"
        );

        // The swap shows up on the exposition side.
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains("# TYPE admission_reconfigures counter"),
            "{metrics}"
        );

        // Other POST paths stay rejected.
        let (head, _) = request(addr, "POST", "/metrics");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");

        server.join().unwrap().unwrap();
    }

    #[test]
    fn watch_frame_renders_one_line_per_rule() {
        let snapshot = "{\"name\":\"snapshot.window_secs\",\"value\":1.5}\n\
                        {\"name\":\"admission.admits.per_sec\",\"value\":123.4}\n";
        let slo = "{\"rule\":\"deadline_miss_ratio\",\"state\":\"firing\",\"value\":0.5,\
                   \"threshold\":0.01,\"breach_streak\":3,\"clear_streak\":0,\
                   \"for_windows\":2,\"clear_windows\":2,\"pending_windows\":1,\
                   \"fired\":1,\"resolved\":0}\n\
                   {\"rule\":\"reject_rate\",\"state\":\"ok\",\"value\":null,\
                   \"threshold\":10000,\"breach_streak\":0,\"clear_streak\":0,\
                   \"for_windows\":2,\"clear_windows\":2,\"pending_windows\":0,\
                   \"fired\":0,\"resolved\":0}\n";
        let frame = watch_frame(snapshot, slo);
        let lines: Vec<&str> = frame.lines().collect();
        assert_eq!(lines.len(), 3, "{frame}");
        assert!(lines[0].contains("window 1.50s"), "{frame}");
        assert!(lines[0].contains("admits/s 123.4"), "{frame}");
        assert!(lines[1].contains("deadline_miss_ratio"), "{frame}");
        assert!(lines[1].contains("firing"), "{frame}");
        assert!(lines[1].contains("breach 3/2"), "{frame}");
        assert!(lines[2].contains("reject_rate"), "{frame}");
        assert!(lines[2].contains("ok"), "{frame}");
        // A rule that never saw data renders a placeholder value.
        assert!(lines[2].contains("-  thr"), "{frame}");
    }

    #[test]
    fn watch_polls_a_live_server() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(4), None));
        // Two bounded polls against the live endpoint (stdout goes to
        // the test harness; correctness of the rendering is covered by
        // watch_frame_renders_one_line_per_rule).
        watch(&addr.to_string(), 1, Some(2)).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn trace_tail_query_bounds_the_drain() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(2), None));

        // Let the churn loop buffer a healthy tail before draining.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let (head, body) = get(addr, "/trace?n=3");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let lines: Vec<&str> = body.lines().collect();
        // At most 3 events plus the trailer; every line still parses.
        assert!(lines.len() <= 4, "{body}");
        for line in &lines {
            uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        use uba::obs::json::JsonValue;
        let trailer = uba::obs::json::parse(lines[lines.len() - 1]).unwrap();
        assert_eq!(
            trailer.get("kind").and_then(JsonValue::as_str),
            Some("trace_meta"),
            "{body}"
        );
        let events = trailer
            .get("events")
            .and_then(JsonValue::as_number)
            .unwrap();
        assert!(events <= 3.0, "{body}");
        assert_eq!(events as usize, lines.len() - 1, "{body}");

        // A malformed count is ignored: the full tail drains.
        let (head, body) = get(addr, "/trace?n=bogus");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(
            body.lines().last().unwrap().contains("trace_meta"),
            "{body}"
        );

        server.join().unwrap().unwrap();
    }

    /// The acceptance-path test: a high-miss-ratio burst drives the
    /// `deadline_miss_ratio` rule pending → firing (seen on `/slo` and
    /// as an active alert on `/alerts`); clean traffic then resolves it
    /// (state back to ok, the alert retired to the recent log). The
    /// churn loop's burst model independently lights the arrival
    /// telemetry, asserted via `/metrics`.
    #[test]
    fn slo_alert_cycle_fires_and_resolves_over_http() {
        let sc = Scenario::from_str(
            r#"
            [topology]
            kind = "ring"
            n = 6
            [network]
            capacity = 1e6
            fan_in = 3
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 0.2
            [slo]
            miss_ratio = 0.001
            for_windows = 2
            clear_windows = 2
            "#,
        )
        .unwrap();
        const MAX_REQUESTS: usize = 600;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(MAX_REQUESTS), None));
        let misses = uba::obs::global().counter("sim.deadline_misses");
        let packets = uba::obs::global().counter("sim.packets");
        let mut used = 0usize;

        use uba::obs::json::JsonValue;
        // (state, lifetime pending windows) of the miss-ratio rule from
        // a `/slo` body.
        let rule_state = |body: &str| -> (String, f64) {
            for line in body.lines() {
                let v = uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
                if v.get("rule").and_then(JsonValue::as_str) == Some("deadline_miss_ratio") {
                    return (
                        v.get("state")
                            .and_then(JsonValue::as_str)
                            .unwrap()
                            .to_string(),
                        v.get("pending_windows")
                            .and_then(JsonValue::as_number)
                            .unwrap(),
                    );
                }
            }
            panic!("deadline_miss_ratio missing from /slo: {body}");
        };

        // Phase 1: keep the windowed miss ratio at ~1.0 (three orders
        // above threshold, immune to clean packets from parallel tests)
        // until the hysteresis fires.
        let mut fired = false;
        for _ in 0..250 {
            misses.add(1_000_000);
            packets.add(1_000_000);
            let (_, body) = get(addr, "/slo");
            used += 1;
            let (state, _) = rule_state(&body);
            if state == "firing" {
                fired = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(fired, "deadline_miss_ratio never fired");
        let (_, body) = get(addr, "/slo");
        used += 1;
        let (_, pending) = rule_state(&body);
        assert!(pending >= 1.0, "firing must pass through pending: {body}");

        // The alert is active on /alerts.
        let (_, body) = get(addr, "/alerts");
        used += 1;
        let active = body.lines().any(|l| {
            l.contains("\"rule\":\"deadline_miss_ratio\"") && l.contains("\"state\":\"firing\"")
        });
        assert!(active, "no active deadline_miss_ratio alert: {body}");
        assert!(
            body.lines().last().unwrap().contains("alerts_meta"),
            "{body}"
        );

        // Phase 2: clean traffic (packets, no misses) until the rule
        // resolves.
        let mut resolved = false;
        for _ in 0..250 {
            packets.add(1_000_000);
            let (_, body) = get(addr, "/slo");
            used += 1;
            if rule_state(&body).0 == "ok" {
                resolved = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(resolved, "deadline_miss_ratio never resolved");
        let (_, body) = get(addr, "/alerts");
        used += 1;
        let retired = body.lines().any(|l| {
            l.contains("\"rule\":\"deadline_miss_ratio\"") && l.contains("\"state\":\"resolved\"")
        });
        assert!(retired, "no resolved deadline_miss_ratio alert: {body}");

        // The bursty churn loop's arrival telemetry is live alongside.
        let (_, metrics) = get(addr, "/metrics");
        used += 1;
        assert!(
            metrics.contains("admission_arrival_class0_rate"),
            "{metrics}"
        );
        assert!(metrics.contains("admission_overuse_state"), "{metrics}");
        assert!(
            metrics.contains("slo_deadline_miss_ratio_state"),
            "{metrics}"
        );

        // Exhaust the request budget so the server exits cleanly.
        for _ in used..MAX_REQUESTS {
            let _ = get(addr, "/healthz");
        }
        server.join().unwrap().unwrap();
    }
}
