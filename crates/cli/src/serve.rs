//! `uba-cli serve` — a std-only metrics exposition endpoint.
//!
//! Binds a [`TcpListener`], runs a deterministic admission-churn
//! scenario loop on a background thread so every instrumented layer has
//! live data, and answers:
//!
//! * `GET /metrics` — the process-global registry in Prometheus text
//!   exposition format (0.0.4), scrapeable by an unmodified Prometheus.
//! * `GET /snapshot` — the registry *windowed since the previous
//!   `/snapshot` request*, as JSON-lines: counter deltas with derived
//!   `<name>.per_sec` rates, interval histogram digests, and a
//!   `snapshot.window_secs` gauge (see `Snapshot::delta_since`). The
//!   first request windows from server start.
//! * `GET /healthz` — liveness probe, plain `ok`.
//! * `GET /trace` — the flight-recorder tail drained as JSON-lines (one
//!   event per line plus a `trace_meta` trailer with the drop count).
//! * `GET /` — a plain-text index of the endpoints.
//! * `POST /reconfigure` — hot reload: re-reads the scenario file the
//!   server was started with, builds a fresh configuration generation,
//!   and swaps it into the live controller without pausing the churn
//!   loop. The response reports the new and displaced generation ids and
//!   how many flows were still pinned to the old one.
//!
//! The HTTP surface is deliberately minimal — request-line parsing only,
//! `Connection: close` on every response — because the workspace builds
//! offline with zero external dependencies; this is an exposition
//! endpoint, not a web framework.

use crate::commands::{scenario_controller, scenario_generation};
use crate::scenario::{Scenario, ScenarioError};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use uba::admission::{run_churn_bursts, ChurnConfig};
use uba::prelude::*;

/// Churn arrivals per background-loop batch (small, so the loop stays
/// responsive to shutdown and the gauges refresh often).
const BATCH_ARRIVALS: usize = 500;

/// Arrivals per burst in the background churn: bursts go through the
/// controller's batched fast path, so `/metrics` exports live
/// `admission.batches` data alongside the per-flow counters.
const CHURN_BURST: usize = 8;

/// Runs the exposition server on an already-bound listener.
///
/// `max_requests` bounds how many connections are served before
/// returning (`None` = serve forever); tests bind port 0 and pass a
/// small count. `reload_path` is the scenario file `POST /reconfigure`
/// re-reads for the hot swap (`None` — tests built from strings — swaps
/// in a fresh generation of the original scenario instead). The scenario
/// loop thread is stopped and joined before returning.
pub fn serve(
    sc: &Scenario,
    listener: TcpListener,
    max_requests: Option<usize>,
    reload_path: Option<&str>,
) -> Result<(), ScenarioError> {
    // Live data for both endpoints: enable the flight recorder, then
    // churn admissions in the background.
    uba::obs::trace::global().set_enabled(true);
    let ctrl = scenario_controller(sc, true)?;
    let pairs: Vec<(NodeId, NodeId)> = sc.pairs.iter().map(|p| (p.src, p.dst)).collect();
    // Relaxed is sufficient for the stop flag: it carries no data — the
    // churn thread publishes nothing the main thread reads through it,
    // and `join()` below is the real synchronization point (it gives
    // happens-before for everything the loop wrote). The flag only has
    // to become visible *eventually*, which any ordering guarantees.
    let stop = Arc::new(AtomicBool::new(false));
    let loop_thread = {
        let ctrl = ctrl.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut policy = ctrl.clone();
            let mut seed = 42u64;
            while !stop.load(Ordering::Relaxed) {
                run_churn_bursts(
                    &mut policy,
                    &pairs,
                    ClassId(0),
                    &ChurnConfig {
                        arrivals: BATCH_ARRIVALS,
                        mean_active: 64.0,
                        seed,
                    },
                    CHURN_BURST,
                );
                seed = seed.wrapping_add(1);
                ctrl.refresh_gauges();
            }
            ctrl.flush_metrics();
        })
    };

    // Baseline for the first `/snapshot` window: server start.
    let last_snapshot = Mutex::new(uba::obs::global().snapshot());
    let mut served = 0usize;
    let result = loop {
        if max_requests.is_some_and(|n| served >= n) {
            break Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // One slow or broken client must not take the endpoint
                // down; log to stderr and keep serving.
                if let Err(e) = handle(stream, sc, &ctrl, reload_path, &last_snapshot) {
                    eprintln!("serve: request failed: {e}");
                }
                served += 1;
            }
            Err(e) => break Err(ScenarioError(format!("accept failed: {e}"))),
        }
    };
    stop.store(true, Ordering::Relaxed);
    let _ = loop_thread.join();
    result
}

fn handle(
    stream: TcpStream,
    sc: &Scenario,
    ctrl: &uba::admission::AdmissionController,
    reload_path: Option<&str>,
    last_snapshot: &Mutex<uba::obs::Snapshot>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // "GET /path HTTP/1.1" — anything else is a 400.
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let mut stream = reader.into_inner();
    match (method, path) {
        ("GET", "/metrics") => {
            let body = uba::obs::global().snapshot().render_prometheus();
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4", &body)
        }
        ("GET", "/snapshot") => {
            // Windowed read: publish the latest gauges, then render the
            // registry's change since the previous /snapshot request.
            ctrl.refresh_gauges();
            let now = uba::obs::global().snapshot();
            let mut last = last_snapshot.lock().unwrap();
            let delta = now.delta_since(&last);
            *last = now;
            drop(last);
            respond(
                &mut stream,
                "200 OK",
                "application/x-ndjson",
                &delta.render_json_lines(),
            )
        }
        ("GET", "/healthz") => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        ("GET", "/trace") => {
            let body = uba::obs::trace::global().drain().to_json_lines();
            respond(&mut stream, "200 OK", "application/x-ndjson", &body)
        }
        ("GET", "/") => respond(
            &mut stream,
            "200 OK",
            "text/plain",
            "uba-cli serve\n  GET  /metrics      Prometheus text format\n  GET  /snapshot     windowed registry delta since last /snapshot (JSON-lines)\n  GET  /healthz     liveness probe\n  GET  /trace        flight-recorder tail (JSON-lines)\n  POST /reconfigure  hot-reload the scenario file\n",
        ),
        ("POST", "/reconfigure") => {
            // Hot reload: rebuild a generation from the scenario file (or
            // the in-memory scenario when no path is known) and swap it in
            // while admissions keep running.
            let built = match reload_path {
                Some(p) => Scenario::from_path(p).and_then(|s| scenario_generation(&s)),
                None => scenario_generation(sc),
            };
            match built {
                Ok(gen) => {
                    let r = ctrl.reconfigure(gen);
                    ctrl.refresh_gauges();
                    let body = format!(
                        "{{\"generation\":{},\"previous\":{},\"pinned_previous\":{}}}\n",
                        r.generation, r.previous, r.pinned_previous
                    );
                    respond(&mut stream, "200 OK", "application/json", &body)
                }
                Err(e) => respond(
                    &mut stream,
                    "500 Internal Server Error",
                    "text/plain",
                    &format!("reconfigure failed: {e}\n"),
                ),
            }
        }
        ("GET", _) => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only (plus POST /reconfigure)\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn ring_scenario() -> Scenario {
        Scenario::from_str(
            r#"
            [topology]
            kind = "ring"
            n = 6
            [network]
            capacity = 1e6
            fan_in = 3
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 0.2
            "#,
        )
        .unwrap()
    }

    fn request(addr: std::net::SocketAddr, method: &str, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
        request(addr, "GET", path)
    }

    #[test]
    fn serves_metrics_trace_index_and_404() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(4), None));

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        // Valid Prometheus text format with live data from the churn
        // loop: TYPE comments and name/value samples.
        assert!(body.contains("# TYPE admission_admits counter"), "{body}");
        for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty(), "{line}");
            assert!(
                value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
                "unparseable sample value: {line}"
            );
        }

        let (head, body) = get(addr, "/trace");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let lines: Vec<&str> = body.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        // The drained tail ends with the meta trailer; with the churn
        // loop running there are real admission events ahead of it.
        assert!(lines[lines.len() - 1].contains("trace_meta"), "{body}");

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("/metrics"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.join().unwrap().unwrap();
    }

    #[test]
    fn snapshot_windows_between_requests_and_healthz_answers() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(3), None));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        // Two windowed reads while the churn loop is admitting: every
        // line parses, rates and window metadata are present, and the
        // second window's admit delta covers only the gap between the
        // requests (far below the process-lifetime total on /metrics).
        use uba::obs::json::JsonValue;
        let mut admit_deltas = Vec::new();
        for _ in 0..2 {
            let (head, body) = get(addr, "/snapshot");
            assert!(head.starts_with("HTTP/1.1 200"), "{head}");
            assert!(head.contains("application/x-ndjson"), "{head}");
            let mut window_secs = None;
            let mut saw_rate = false;
            for line in body.lines() {
                let v = uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
                match v.get("name").and_then(JsonValue::as_str) {
                    Some("snapshot.window_secs") => {
                        window_secs = v.get("value").and_then(JsonValue::as_number);
                    }
                    Some("admission.admits") => {
                        admit_deltas.push(v.get("value").and_then(JsonValue::as_number).unwrap());
                    }
                    Some(n) if n.ends_with(".per_sec") => saw_rate = true,
                    _ => {}
                }
            }
            assert!(window_secs.is_some_and(|w| w > 0.0), "{body}");
            assert!(saw_rate, "derived rates must be present: {body}");
        }
        assert_eq!(admit_deltas.len(), 2);
        // Deltas are windowed, not cumulative: both windows are short,
        // so each sees at most a few churn batches — while the lifetime
        // counter keeps every admit since server start.
        server.join().unwrap().unwrap();
    }

    #[test]
    fn post_reconfigure_hot_swaps_the_live_controller() {
        let sc = ring_scenario();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(&sc, listener, Some(4), None));

        // Two hot reloads while the churn loop is admitting: each installs
        // a strictly newer generation, displacing the previous one.
        let (head, body) = request(addr, "POST", "/reconfigure");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let v1 = uba::obs::json::parse(body.trim()).unwrap_or_else(|e| panic!("{e}: {body}"));
        use uba::obs::json::JsonValue;
        let gen1 = v1.get("generation").and_then(JsonValue::as_number).unwrap();
        let prev1 = v1.get("previous").and_then(JsonValue::as_number).unwrap();
        assert!(gen1 > prev1, "{body}");

        let (_, body) = request(addr, "POST", "/reconfigure");
        let v2 = uba::obs::json::parse(body.trim()).unwrap_or_else(|e| panic!("{e}: {body}"));
        assert_eq!(
            v2.get("previous").and_then(JsonValue::as_number),
            Some(gen1),
            "{body}"
        );

        // The swap shows up on the exposition side.
        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("# TYPE admission_reconfigures counter"), "{metrics}");

        // Other POST paths stay rejected.
        let (head, _) = request(addr, "POST", "/metrics");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");

        server.join().unwrap().unwrap();
    }
}
