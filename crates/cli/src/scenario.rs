//! Scenario files: a declarative description of a network, its traffic
//! classes, and the pair demand, loadable by every CLI command.

use crate::toml_lite::{parse, Document, Table, Value};
use uba::admission::{AimdParams, ChainKind, PolicyConfig};
use uba::graph::{Digraph, NodeId};
use uba::obs::SloConfig;
use uba::prelude::*;

/// A fully resolved scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The router-level topology.
    pub graph: Digraph,
    /// Per-server parameters.
    pub servers: Servers,
    /// Real-time classes, priority order.
    pub classes: ClassSet,
    /// Per-class utilization shares (used by `verify`).
    pub alphas: Vec<f64>,
    /// Demanded pairs.
    pub pairs: Vec<Pair>,
    /// SLO thresholds and hysteresis (the `[slo]` section; defaults
    /// apply when absent). Consumed by `serve` and `metrics`.
    pub slo: SloConfig,
    /// Admission-policy pipeline configuration (the `[policy]` section;
    /// a utilization-only `static` chain when absent). Consumed by every
    /// command that builds an [`uba::admission::AdmissionController`],
    /// including `serve` hot-reload.
    pub policy: PolicyConfig,
}

/// Scenario loading error: parse error or semantic problem.
#[derive(Debug)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn bad(msg: impl Into<String>) -> ScenarioError {
    ScenarioError(msg.into())
}

fn num(t: &Table, key: &str) -> Result<f64, ScenarioError> {
    t.get(key)
        .and_then(Value::as_number)
        .ok_or_else(|| bad(format!("missing numeric key '{key}'")))
}

fn num_or(t: &Table, key: &str, default: f64) -> Result<f64, ScenarioError> {
    match t.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_number()
            .ok_or_else(|| bad(format!("key '{key}' must be numeric"))),
    }
}

fn string_or<'a>(t: &'a Table, key: &str, default: &'a str) -> Result<&'a str, ScenarioError> {
    match t.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_str()
            .ok_or_else(|| bad(format!("key '{key}' must be a string"))),
    }
}

fn build_topology(t: &Table) -> Result<Digraph, ScenarioError> {
    let kind = string_or(t, "kind", "mci")?;
    let n = num_or(t, "n", 8.0)? as usize;
    Ok(match kind {
        "mci" => uba::topology::mci(),
        "nsfnet" => uba::topology::nsfnet(),
        "ring" => uba::topology::ring(n),
        "line" => uba::topology::line(n),
        "star" => uba::topology::star(n),
        "mesh" => uba::topology::full_mesh(n),
        "grid" => uba::topology::grid(num_or(t, "w", 4.0)? as usize, num_or(t, "h", 4.0)? as usize),
        "torus" => {
            uba::topology::torus(num_or(t, "w", 4.0)? as usize, num_or(t, "h", 4.0)? as usize)
        }
        "waxman" => uba::topology::waxman(
            n,
            num_or(t, "alpha", 0.4)?,
            num_or(t, "beta", 0.5)?,
            num_or(t, "seed", 1.0)? as u64,
        ),
        "dumbbell" => uba::topology::dumbbell(
            num_or(t, "leaves", 3.0)? as usize,
            num_or(t, "bottleneck", 1.0)? as usize,
        ),
        "fat_tree" => uba::topology::fat_tree(
            num_or(t, "cores", 2.0)? as usize,
            num_or(t, "pods", 3.0)? as usize,
            num_or(t, "hosts", 2.0)? as usize,
        ),
        other => return Err(bad(format!("unknown topology kind '{other}'"))),
    })
}

/// Parses the optional `[slo]` section against [`SloConfig::default`]:
/// `miss_ratio`, `reject_per_sec`, `max_share`, `admit_p99_ns`,
/// `for_windows`, `clear_windows`. Window counts must be ≥ 1.
fn parse_slo(t: Option<&Table>) -> Result<SloConfig, ScenarioError> {
    let d = SloConfig::default();
    let Some(t) = t else { return Ok(d) };
    let windows = |key: &str, default: u32| -> Result<u32, ScenarioError> {
        let n = num_or(t, key, default as f64)?;
        if n < 1.0 || n.fract() != 0.0 {
            return Err(bad(format!("slo.{key} must be a positive integer")));
        }
        Ok(n as u32)
    };
    Ok(SloConfig {
        miss_ratio: num_or(t, "miss_ratio", d.miss_ratio)?,
        reject_per_sec: num_or(t, "reject_per_sec", d.reject_per_sec)?,
        max_share: num_or(t, "max_share", d.max_share)?,
        admit_p99_ns: num_or(t, "admit_p99_ns", d.admit_p99_ns)?,
        for_windows: windows("for_windows", d.for_windows)?,
        clear_windows: windows("clear_windows", d.clear_windows)?,
    })
}

/// Parses the optional `[policy]` section against
/// [`PolicyConfig::default`]: `chain` (`"static"`, `"token_bucket"`,
/// `"adaptive"`), `bucket_rate_bps`, `bucket_burst_bits`, and the AIMD
/// knobs `aimd_min_rate_bps`, `aimd_max_rate_bps`, `aimd_decrease`,
/// `aimd_increase_bps`.
fn parse_policy(t: Option<&Table>) -> Result<PolicyConfig, ScenarioError> {
    let d = PolicyConfig::default();
    let Some(t) = t else { return Ok(d) };
    let chain = ChainKind::parse(string_or(t, "chain", d.chain.as_str())?).ok_or_else(|| {
        bad("policy.chain must be one of \"static\", \"token_bucket\", \"adaptive\"")
    })?;
    let positive = |key: &str, v: f64| -> Result<f64, ScenarioError> {
        if v > 0.0 && v.is_finite() {
            Ok(v)
        } else {
            Err(bad(format!("policy.{key} must be positive")))
        }
    };
    let decrease = num_or(t, "aimd_decrease", d.aimd.decrease)?;
    if decrease <= 0.0 || decrease >= 1.0 || decrease.is_nan() {
        return Err(bad("policy.aimd_decrease must be in (0, 1)"));
    }
    Ok(PolicyConfig {
        chain,
        bucket_rate_bps: positive(
            "bucket_rate_bps",
            num_or(t, "bucket_rate_bps", d.bucket_rate_bps)?,
        )?,
        bucket_burst_bits: positive(
            "bucket_burst_bits",
            num_or(t, "bucket_burst_bits", d.bucket_burst_bits)?,
        )?,
        aimd: AimdParams {
            min_rate_bps: positive(
                "aimd_min_rate_bps",
                num_or(t, "aimd_min_rate_bps", d.aimd.min_rate_bps)?,
            )?,
            max_rate_bps: positive(
                "aimd_max_rate_bps",
                num_or(t, "aimd_max_rate_bps", d.aimd.max_rate_bps)?,
            )?,
            decrease,
            increase_bps: positive(
                "aimd_increase_bps",
                num_or(t, "aimd_increase_bps", d.aimd.increase_bps)?,
            )?,
        },
    })
}

impl Scenario {
    /// Loads a scenario from TOML-subset text.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(input: &str) -> Result<Self, ScenarioError> {
        let doc: Document = parse(input).map_err(|e| bad(e.to_string()))?;

        let topo_table = doc.table("topology").cloned().unwrap_or_default();
        let graph = build_topology(&topo_table)?;

        let net = doc.table("network").cloned().unwrap_or_default();
        let capacity = num_or(&net, "capacity", 100e6)?;
        let fan_in = num_or(&net, "fan_in", 0.0)? as usize;
        let servers = if fan_in == 0 {
            Servers::uniform(&graph, capacity, graph.max_in_degree().max(1))
        } else {
            Servers::uniform(&graph, capacity, fan_in)
        };

        let mut classes = ClassSet::new();
        let mut alphas = Vec::new();
        let class_tables = doc.array("class");
        if class_tables.is_empty() {
            classes.push(TrafficClass::voip());
            alphas.push(0.3);
        } else {
            for ct in class_tables {
                let name = string_or(ct, "name", "class")?.to_string();
                let burst = num(ct, "burst")?;
                let rate = num(ct, "rate")?;
                let deadline = num(ct, "deadline")?;
                classes.push(TrafficClass::new(
                    name,
                    LeakyBucket::new(burst, rate),
                    deadline,
                ));
                alphas.push(num_or(ct, "alpha", 0.1)?);
            }
        }

        let pt = doc.table("pairs").cloned().unwrap_or_default();
        let mode = string_or(&pt, "mode", "all")?;
        let pairs = match mode {
            "all" => {
                let step = num_or(&pt, "step", 1.0)? as usize;
                all_ordered_pairs(&graph)
                    .into_iter()
                    .step_by(step.max(1))
                    .collect()
            }
            "list" => {
                let list = pt
                    .get("list")
                    .and_then(Value::as_array)
                    .ok_or_else(|| bad("pairs.mode = \"list\" needs pairs.list"))?;
                let mut out = Vec::new();
                for v in list {
                    let s = v.as_str().ok_or_else(|| bad("pair entries are strings"))?;
                    let (a, b) = s
                        .split_once('-')
                        .ok_or_else(|| bad(format!("pair '{s}' is not 'src-dst'")))?;
                    let parse_node = |x: &str| -> Result<NodeId, ScenarioError> {
                        let id: u32 = x
                            .trim()
                            .parse()
                            .map_err(|_| bad(format!("bad router id '{x}'")))?;
                        if (id as usize) < graph.node_count() {
                            Ok(NodeId(id))
                        } else {
                            Err(bad(format!("router {id} outside topology")))
                        }
                    };
                    out.push(Pair {
                        src: parse_node(a)?,
                        dst: parse_node(b)?,
                    });
                }
                out
            }
            other => return Err(bad(format!("unknown pairs mode '{other}'"))),
        };

        let slo = parse_slo(doc.table("slo"))?;
        let policy = parse_policy(doc.table("policy"))?;

        Ok(Scenario {
            graph,
            servers,
            classes,
            alphas,
            pairs,
            slo,
            policy,
        })
    }

    /// Loads a scenario from a file path.
    pub fn from_path(path: &str) -> Result<Self, ScenarioError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| bad(format!("cannot read '{path}': {e}")))?;
        Self::from_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_give_paper_setting() {
        let s = Scenario::from_str("").unwrap();
        assert_eq!(s.graph.node_count(), 19);
        assert_eq!(s.classes.len(), 1);
        assert_eq!(s.pairs.len(), 342);
        assert_eq!(s.servers.fan_in_at(0), 6);
    }

    #[test]
    fn explicit_scenario() {
        let s = Scenario::from_str(
            r#"
            [topology]
            kind = "ring"
            n = 6
            [network]
            capacity = 1e6
            fan_in = 4
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 0.25
            [pairs]
            mode = "list"
            list = ["0-3", "2-5"]
            "#,
        )
        .unwrap();
        assert_eq!(s.graph.node_count(), 6);
        assert_eq!(s.servers.capacity_at(0), 1e6);
        assert_eq!(s.servers.fan_in_at(0), 4);
        assert_eq!(s.alphas, vec![0.25]);
        assert_eq!(s.pairs.len(), 2);
        assert_eq!(s.pairs[0].src, NodeId(0));
        assert_eq!(s.pairs[0].dst, NodeId(3));
    }

    #[test]
    fn pair_step_subsamples() {
        let s = Scenario::from_str("[pairs]\nmode = \"all\"\nstep = 10").unwrap();
        assert_eq!(s.pairs.len(), 35);
    }

    #[test]
    fn bad_pair_rejected() {
        let e = Scenario::from_str("[pairs]\nmode = \"list\"\nlist = [\"0-99\"]").unwrap_err();
        assert!(e.0.contains("outside topology"));
    }

    #[test]
    fn multiclass_scenario() {
        let s = Scenario::from_str(
            r#"
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 0.1
            [[class]]
            name = "video"
            burst = 64000
            rate = 2e6
            deadline = 0.3
            alpha = 0.2
            "#,
        )
        .unwrap();
        assert_eq!(s.classes.len(), 2);
        assert_eq!(s.alphas, vec![0.1, 0.2]);
    }

    #[test]
    fn slo_section_defaults_and_overrides() {
        let s = Scenario::from_str("").unwrap();
        assert_eq!(s.slo, SloConfig::default());
        let s = Scenario::from_str(
            r#"
            [slo]
            miss_ratio = 0.05
            for_windows = 3
            "#,
        )
        .unwrap();
        assert_eq!(s.slo.miss_ratio, 0.05);
        assert_eq!(s.slo.for_windows, 3);
        // Untouched keys keep their defaults.
        assert_eq!(s.slo.clear_windows, SloConfig::default().clear_windows);
        assert_eq!(s.slo.max_share, SloConfig::default().max_share);
    }

    #[test]
    fn slo_window_counts_must_be_positive_integers() {
        for bad in ["for_windows = 0", "clear_windows = 1.5"] {
            let e = Scenario::from_str(&format!("[slo]\n{bad}")).unwrap_err();
            assert!(e.0.contains("positive integer"), "{e}");
        }
    }

    #[test]
    fn policy_section_defaults_and_overrides() {
        let s = Scenario::from_str("").unwrap();
        assert_eq!(s.policy.chain, ChainKind::Static);
        let s = Scenario::from_str(
            r#"
            [policy]
            chain = "adaptive"
            bucket_rate_bps = 320000
            bucket_burst_bits = 64000
            aimd_decrease = 0.5
            "#,
        )
        .unwrap();
        assert_eq!(s.policy.chain, ChainKind::Adaptive);
        assert_eq!(s.policy.bucket_rate_bps, 320_000.0);
        assert_eq!(s.policy.bucket_burst_bits, 64_000.0);
        assert_eq!(s.policy.aimd.decrease, 0.5);
        // Untouched keys keep their defaults.
        let d = PolicyConfig::default();
        assert_eq!(s.policy.aimd.min_rate_bps, d.aimd.min_rate_bps);
        assert_eq!(s.policy.aimd.increase_bps, d.aimd.increase_bps);
    }

    #[test]
    fn policy_section_rejects_bad_values() {
        for (toml, needle) in [
            ("chain = \"rsvp\"", "policy.chain"),
            ("bucket_rate_bps = 0", "must be positive"),
            ("chain = \"adaptive\"\naimd_decrease = 1.0", "in (0, 1)"),
            ("aimd_min_rate_bps = -5", "must be positive"),
        ] {
            let e = Scenario::from_str(&format!("[policy]\n{toml}")).unwrap_err();
            assert!(e.0.contains(needle), "{toml}: {e}");
        }
    }

    #[test]
    fn unknown_topology_rejected() {
        let e = Scenario::from_str("[topology]\nkind = \"hypercube\"").unwrap_err();
        assert!(e.0.contains("unknown topology"));
    }
}
