//! A small TOML-subset parser, implemented from scratch so the workspace
//! stays within its vetted dependency set.
//!
//! Supported grammar (enough for scenario files, nothing more):
//!
//! ```text
//! # comment
//! [section]             — table header
//! [[section]]           — array-of-tables element
//! key = 1.5             — float/integer (also 1e6, 0.5, -3)
//! key = "text"          — string (no escapes beyond \" and \\)
//! key = true | false    — boolean
//! key = [v, v, ...]     — homogeneous array of the above scalars
//! ```
//!
//! Dotted keys, inline tables, multi-line strings, and dates are not
//! supported and produce errors, not silent misparses.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed scalar or array value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Any number (TOML integers are folded into `f64`; scenario
    /// quantities are physical anyway).
    Number(f64),
    /// A quoted string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// A homogeneous array.
    Array(Vec<Value>),
}

impl Value {
    /// The number, if this is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// One `[section]` (or one `[[section]]` element): key → value.
pub type Table = BTreeMap<String, Value>;

/// A parsed document.
#[derive(Clone, Debug, Default)]
pub struct Document {
    /// Keys before any section header.
    pub root: Table,
    /// `[name]` sections (last definition wins; duplicates are an error).
    pub tables: BTreeMap<String, Table>,
    /// `[[name]]` arrays of tables, in file order.
    pub arrays: BTreeMap<String, Vec<Table>>,
}

impl Document {
    /// Looks up a `[section]`.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up the `[[section]]` list (empty slice if absent).
    pub fn array(&self, name: &str) -> &[Table] {
        self.arrays.get(name).map(|v| &v[..]).unwrap_or(&[])
    }
}

/// A parse error with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn valid_key(k: &str) -> bool {
    !k.is_empty()
        && k.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, ParseError> {
    let s = s.trim();
    if s.starts_with('"') {
        if !s.ends_with('"') || s.len() < 2 {
            return Err(err(line, "unterminated string"));
        }
        let inner = &s[1..s.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '"' {
                return Err(err(line, "unescaped quote inside string"));
            }
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    other => return Err(err(line, format!("bad escape {other:?}"))),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    s.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| err(line, format!("cannot parse value '{s}'")))
}

fn parse_value(s: &str, line: usize) -> Result<Value, ParseError> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(err(line, "unterminated array"));
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::Array(Vec::new()));
        }
        // Split at top level commas; strings may contain commas.
        let mut items = Vec::new();
        let mut depth_str = false;
        let mut start = 0usize;
        let bytes = inner.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'"' if i == 0 || bytes[i - 1] != b'\\' => {
                    // Toggle unless escaped.
                    depth_str = !depth_str;
                }
                b',' if !depth_str => {
                    items.push(&inner[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        items.push(&inner[start..]);
        let parsed: Result<Vec<Value>, _> =
            items.into_iter().map(|x| parse_scalar(x, line)).collect();
        let parsed = parsed?;
        // Homogeneity check.
        if parsed
            .windows(2)
            .any(|w| std::mem::discriminant(&w[0]) != std::mem::discriminant(&w[1]))
        {
            return Err(err(line, "mixed-type array"));
        }
        return Ok(Value::Array(parsed));
    }
    parse_scalar(s, line)
}

/// Strips a trailing comment that is outside any string.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a document.
///
/// Keys accumulate into one scratch [`Table`] that is committed to its
/// destination when the next section header (or the end of input)
/// arrives — the parser never reaches back into the document for a
/// "current" table, so there is no panic-capable lookup on the parse
/// path (xtask's parser-unwrap rule keeps it that way).
pub fn parse(input: &str) -> Result<Document, ParseError> {
    enum Target {
        Root,
        Table(String),
        ArrayElem(String),
    }
    fn commit(doc: &mut Document, target: Target, table: Table) {
        match target {
            Target::Root => doc.root = table,
            Target::Table(name) => {
                doc.tables.insert(name, table);
            }
            Target::ArrayElem(name) => {
                doc.arrays.entry(name).or_default().push(table);
            }
        }
    }
    let mut doc = Document::default();
    let mut target = Target::Root;
    let mut current = Table::new();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[") {
            let Some(name) = h.strip_suffix("]]") else {
                return Err(err(lineno, "malformed [[header]]"));
            };
            let name = name.trim();
            if !valid_key(name) {
                return Err(err(lineno, format!("bad section name '{name}'")));
            }
            let prev = std::mem::replace(&mut target, Target::ArrayElem(name.to_string()));
            commit(&mut doc, prev, std::mem::take(&mut current));
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            let Some(name) = h.strip_suffix(']') else {
                return Err(err(lineno, "malformed [header]"));
            };
            let name = name.trim();
            if !valid_key(name) {
                return Err(err(lineno, format!("bad section name '{name}'")));
            }
            let prev = std::mem::replace(&mut target, Target::Table(name.to_string()));
            commit(&mut doc, prev, std::mem::take(&mut current));
            if doc.tables.contains_key(name) {
                return Err(err(lineno, format!("duplicate section '{name}'")));
            }
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(err(lineno, "expected 'key = value'"));
        };
        let key = line[..eq].trim();
        if !valid_key(key) {
            return Err(err(lineno, format!("bad key '{key}'")));
        }
        let value = parse_value(&line[eq + 1..], lineno)?;
        if current.insert(key.to_string(), value).is_some() {
            return Err(err(lineno, format!("duplicate key '{key}'")));
        }
    }
    commit(&mut doc, target, current);
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_sections() {
        let doc = parse(
            r#"
            top = 1
            [net]
            capacity = 1e8     # bits per second
            name = "backbone"
            enabled = true
            "#,
        )
        .unwrap();
        assert_eq!(doc.root["top"], Value::Number(1.0));
        let net = doc.table("net").unwrap();
        assert_eq!(net["capacity"], Value::Number(1e8));
        assert_eq!(net["name"].as_str(), Some("backbone"));
        assert_eq!(net["enabled"].as_bool(), Some(true));
    }

    #[test]
    fn array_of_tables() {
        let doc = parse(
            r#"
            [[class]]
            name = "voip"
            rate = 32000
            [[class]]
            name = "video"
            rate = 2e6
            "#,
        )
        .unwrap();
        let classes = doc.array("class");
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0]["name"].as_str(), Some("voip"));
        assert_eq!(classes[1]["rate"].as_number(), Some(2e6));
    }

    #[test]
    fn arrays() {
        let doc = parse(r#"xs = [1, 2.5, -3] "#).unwrap();
        let xs = doc.root["xs"].as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[2].as_number(), Some(-3.0));
        let doc = parse(r#"ss = ["a,b", "c"]"#).unwrap();
        assert_eq!(doc.root["ss"].as_array().unwrap()[0].as_str(), Some("a,b"));
        assert_eq!(parse("e = []").unwrap().root["e"], Value::Array(vec![]));
    }

    #[test]
    fn strings_with_escapes_and_hashes() {
        let doc = parse(r#"s = "a \"q\" # not comment" # real comment"#).unwrap();
        assert_eq!(doc.root["s"].as_str(), Some(r#"a "q" # not comment"#));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("x = [1, \"a\"]")
            .unwrap_err()
            .message
            .contains("mixed"));
        assert!(parse("[dup]\n[dup]")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse("[t]\nk = 1\nk = 2")
            .unwrap_err()
            .message
            .contains("duplicate key"));
        assert!(parse("k = \"unterminated").is_err());
        assert!(parse("[bad name]").is_err());
    }

    #[test]
    fn numbers_in_many_shapes() {
        for (s, v) in [("1", 1.0), ("-2", -2.0), ("1e6", 1e6), ("0.25", 0.25)] {
            let doc = parse(&format!("x = {s}")).unwrap();
            assert_eq!(doc.root["x"].as_number(), Some(v), "{s}");
        }
    }

    /// Every way we know of for input to be malformed: the parser must
    /// return `Err` (never panic) on each. The corpus is the regression
    /// net for the accumulate-and-commit rewrite of `parse` — several
    /// entries (keys after `[[`-headers, headers with trailing junk)
    /// would have hit the old panic-capable table lookups on a buggy
    /// commit path.
    #[test]
    fn malformed_corpus_errors_without_panicking() {
        let corpus: &[&str] = &[
            "",
            "=",
            "= 1",
            "k =",
            "k",
            "[",
            "]",
            "[]",
            "[[",
            "[[]]",
            "[[x]",
            "[x]]",
            "[x] junk",
            "[ spaced name ]",
            "[\"quoted\"]",
            "[[class]\nname = 1",
            "k = [1, [2]]",
            "k = [1,",
            "k = \"\\q\"",
            "k = 'single'",
            "k = tru",
            "k = nan_but_not",
            "k = 1 2",
            "k = @",
            "k.sub = 1",
            "0bad = 1", // digit-leading bare keys are legal TOML
            "k = \"unterminated\nnext = 2",
            "[t]\nk = 1\n[t]\nk = 2",
            "[[a]]\n[a]\nk = 1\nk = 1",
            "\u{0}k = 1",
            "k\u{0} = 1",
        ];
        for (i, src) in corpus.iter().enumerate() {
            match parse(src) {
                Err(_) => {}
                Ok(doc) => {
                    // A handful of entries are *valid* (empty input,
                    // odd-but-legal shapes); they must at least not
                    // panic and must round through Document cleanly.
                    let _ = (doc.root.len(), doc.tables.len(), doc.arrays.len());
                    assert!(
                        matches!(i, 0 | 25),
                        "corpus entry {i} ({src:?}) unexpectedly parsed"
                    );
                }
            }
        }
    }

    /// Commit-on-header semantics: keys land in the section whose header
    /// most recently preceded them, empty sections still exist, and the
    /// root table keeps only pre-header keys.
    #[test]
    fn sections_commit_exactly_where_they_started() {
        let doc =
            parse("root_key = 1\n[empty]\n[t]\nk = 2\n[[a]]\nx = 3\n[[a]]\nx = 4\n[u]\nk = 5\n")
                .unwrap();
        assert_eq!(doc.root.len(), 1);
        assert_eq!(doc.root["root_key"], Value::Number(1.0));
        assert_eq!(doc.table("empty"), Some(&Table::new()));
        assert_eq!(doc.table("t").unwrap()["k"], Value::Number(2.0));
        assert_eq!(doc.table("u").unwrap()["k"], Value::Number(5.0));
        let a = doc.array("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0]["x"], Value::Number(3.0));
        assert_eq!(a[1]["x"], Value::Number(4.0));
    }
}
