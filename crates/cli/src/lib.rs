//! Library side of the `uba-cli` binary: scenario files and command
//! implementations (kept in a lib so they are unit-testable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod flags;
pub mod scenario;
pub mod serve;
pub mod toml_lite;

pub use scenario::Scenario;
pub use toml_lite::{parse, Document, Value};
