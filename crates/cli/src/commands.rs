//! CLI command implementations. Each returns its report as a `String`
//! so the binary stays a thin printer and the logic stays testable.

use crate::scenario::{Scenario, ScenarioError};
use std::fmt::Write as _;
use uba::admission::{
    run_churn, AdmissionController, BackendKind, ChurnConfig, ConfigGeneration, Explain,
    ExplainVerdict, PolicyChain, Reject, RoutingTable,
};
use uba::delay::fixed_point::SolveConfig;
use uba::delay::routeset::{Route, RouteSet};
use uba::delay::verify::verify;
use uba::graph::bfs;
use uba::prelude::*;
use uba::sim::{simulate, FlowSpec, SimConfig, SourceModel};

/// Renders the process-global metrics registry (the `--metrics` flag and
/// the tail of the `metrics` subcommand).
pub fn render_global_metrics(json: bool) -> String {
    let snap = uba::obs::global().snapshot();
    if json {
        snap.render_json_lines()
    } else {
        snap.render_table()
    }
}

/// `bounds`: Theorem 4 window for each class of the scenario.
pub fn cmd_bounds(sc: &Scenario) -> Result<String, ScenarioError> {
    let diameter = bfs::diameter(&sc.graph)
        .ok_or_else(|| ScenarioError("topology is not strongly connected".into()))?;
    let fan_in = (0..sc.servers.len())
        .map(|k| sc.servers.fan_in_at(k))
        .max()
        .unwrap_or(2)
        .max(2);
    let mut out = String::new();
    writeln!(out, "diameter L = {diameter}, fan-in N = {fan_in}").unwrap();
    for (_, class) in sc.classes.iter() {
        let (lb, ub) = utilization_bounds(fan_in, diameter.max(1), class);
        writeln!(
            out,
            "class {:<10} T/rho = {:>6.1} ms, D = {:>6.1} ms  ->  alpha* in [{lb:.3}, {ub:.3}]",
            class.name,
            class.burst_time() * 1e3,
            class.deadline * 1e3
        )
        .unwrap();
    }
    Ok(out)
}

/// `verify`: SP routes for every pair and class, Figure 2 verification at
/// the scenario's alphas.
pub fn cmd_verify(sc: &Scenario) -> Result<String, ScenarioError> {
    let paths = sp_selection(&sc.graph, &sc.pairs)
        .map_err(|p| ScenarioError(format!("no route for pair {p:?}")))?;
    let mut routes = RouteSet::new(sc.graph.edge_count());
    for (ci, _) in sc.classes.iter() {
        for p in &paths {
            routes.push(Route::from_path(ci, p));
        }
    }
    let report = verify(
        &sc.servers,
        &sc.classes,
        &sc.alphas,
        &routes,
        &SolveConfig::default(),
    );
    let mut out = String::new();
    writeln!(
        out,
        "verification: {}",
        if report.safe { "SUCCESS" } else { "FAILURE" }
    )
    .unwrap();
    writeln!(out, "outcome: {:?}", report.outcome).unwrap();
    writeln!(out, "iterations: {}", report.iterations).unwrap();
    if report.worst_slack.is_finite() {
        writeln!(out, "worst slack: {:.3} ms", report.worst_slack * 1e3).unwrap();
    }
    for (i, (_, class)) in sc.classes.iter().enumerate() {
        let worst = report.server_delays[i].iter().cloned().fold(0.0, f64::max);
        writeln!(
            out,
            "class {:<10} worst per-server delay {:.3} ms",
            class.name,
            worst * 1e3
        )
        .unwrap();
    }
    Ok(out)
}

/// `maximize`: Section 5.3 binary search; multi-class scenarios use the
/// §5.4 trade-off ray (scenario alphas as the weight vector). `threads`
/// fans out candidate verification and the solver sweeps (1 = serial).
pub fn cmd_maximize(
    sc: &Scenario,
    selector_name: &str,
    threads: usize,
) -> Result<String, ScenarioError> {
    if threads == 0 {
        return Err(ScenarioError("--threads must be at least 1".into()));
    }
    if sc.classes.len() != 1 {
        return cmd_maximize_multiclass(sc, threads);
    }
    let (_, class) = sc.classes.iter().next().unwrap();
    let heuristic_cfg = HeuristicConfig {
        threads,
        solver: SolveConfig {
            threads,
            ..Default::default()
        },
        ..Default::default()
    };
    let selector = match selector_name {
        "sp" => Selector::ShortestPath,
        "heuristic" => Selector::Heuristic(heuristic_cfg),
        other => {
            return Err(ScenarioError(format!(
                "unknown selector '{other}' (use sp|heuristic)"
            )))
        }
    };
    let r = max_utilization(&sc.graph, &sc.servers, class, &sc.pairs, &selector, 0.005);
    let mut out = String::new();
    writeln!(
        out,
        "theorem 4 window: [{:.3}, {:.3}]",
        r.bounds.0, r.bounds.1
    )
    .unwrap();
    writeln!(out, "selector: {selector_name}").unwrap();
    writeln!(out, "maximum safe utilization: {:.3}", r.alpha).unwrap();
    writeln!(out, "probes: {}", r.probes.len()).unwrap();
    if let Some(sel) = &r.selection {
        let longest = sel.paths.iter().map(Path::len).max().unwrap_or(0);
        writeln!(
            out,
            "routes committed: {} (longest {longest} hops)",
            sel.paths.len()
        )
        .unwrap();
        writeln!(
            out,
            "worst route delay: {:.3} ms (deadline {:.1} ms)",
            sel.route_delays.iter().cloned().fold(0.0, f64::max) * 1e3,
            class.deadline * 1e3
        )
        .unwrap();
    }
    Ok(out)
}

/// Multi-class maximize: scale the scenario's alphas as a ray until the
/// Theorem 5 verification stops succeeding.
fn cmd_maximize_multiclass(sc: &Scenario, threads: usize) -> Result<String, ScenarioError> {
    use uba::routing::{max_utilization_ray, Demand};
    let demands: Vec<Demand> = sc
        .classes
        .iter()
        .flat_map(|(ci, _)| sc.pairs.iter().map(move |&pair| Demand { class: ci, pair }))
        .collect();
    let cfg = HeuristicConfig {
        threads,
        solver: SolveConfig {
            threads,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = max_utilization_ray(
        &sc.graph,
        &sc.servers,
        &sc.classes,
        &sc.alphas,
        &demands,
        &cfg,
        0.01,
    );
    let mut out = String::new();
    writeln!(out, "trade-off ray weights: {:?}", sc.alphas).unwrap();
    writeln!(out, "maximum safe scale t = {:.3}", r.t).unwrap();
    for ((_, class), alpha) in sc.classes.iter().zip(&r.alphas) {
        writeln!(out, "class {:<10} alpha = {:.3}", class.name, alpha).unwrap();
    }
    writeln!(out, "probes: {}", r.probes.len()).unwrap();
    if let Some(sel) = &r.selection {
        writeln!(out, "routes committed: {}", sel.paths.len()).unwrap();
    }
    Ok(out)
}

/// `simulate`: SP routes, greedy fill to the class-0 budget, adversarial
/// sources, packet simulation against the analytic bound.
pub fn cmd_simulate(sc: &Scenario, horizon: f64) -> Result<String, ScenarioError> {
    if sc.classes.len() != 1 {
        return Err(ScenarioError(
            "simulate handles single-class scenarios".into(),
        ));
    }
    let (_, class) = sc.classes.iter().next().unwrap();
    let alpha = sc.alphas[0];
    let paths = sp_selection(&sc.graph, &sc.pairs)
        .map_err(|p| ScenarioError(format!("no route for pair {p:?}")))?;
    let mut routes = RouteSet::new(sc.graph.edge_count());
    for p in &paths {
        routes.push(Route::from_path(ClassId(0), p));
    }
    let analysis = uba::delay::fixed_point::solve_two_class(
        &sc.servers,
        class,
        alpha,
        &routes,
        &SolveConfig::default(),
        None,
    );
    if !analysis.outcome.is_safe() {
        return Err(ScenarioError(format!(
            "alpha {alpha} does not verify ({:?}); lower it before simulating",
            analysis.outcome
        )));
    }
    let bound = analysis.route_delays.iter().cloned().fold(0.0, f64::max);

    let mut reserved = vec![0.0f64; sc.servers.len()];
    let mut flows = Vec::new();
    let mut progress = true;
    while progress {
        progress = false;
        for (pair, path) in sc.pairs.iter().zip(&paths) {
            let fits = path.edges.iter().all(|e| {
                reserved[e.index()] + class.bucket.rate
                    <= alpha * sc.servers.capacity_at(e.index()) + 1e-9
            });
            if fits {
                for e in &path.edges {
                    reserved[e.index()] += class.bucket.rate;
                }
                flows.push(FlowSpec {
                    class: 0,
                    ingress: pair.src.0,
                    route: path.edges.iter().map(|e| e.0).collect(),
                    source: SourceModel::GreedyOnOff {
                        burst_bits: class.bucket.burst,
                        rate_bps: class.bucket.rate,
                        packet_bits: (class.bucket.burst as u64).max(64),
                        start: 0.0,
                    },
                });
                progress = true;
            }
        }
    }
    let caps: Vec<f64> = (0..sc.servers.len())
        .map(|k| sc.servers.capacity_at(k))
        .collect();
    let report = simulate(
        &caps,
        &flows,
        &SimConfig {
            horizon,
            deadlines: vec![class.deadline],
            policers: None,
        },
    );
    let mut out = String::new();
    writeln!(out, "flows admitted by greedy fill: {}", flows.len()).unwrap();
    writeln!(out, "packets delivered: {}", report.total_packets).unwrap();
    writeln!(out, "analytic bound: {:.3} ms", bound * 1e3).unwrap();
    writeln!(
        out,
        "simulated max / mean delay: {:.3} / {:.3} ms",
        report.max_delay() * 1e3,
        report.classes[0].mean_delay * 1e3
    )
    .unwrap();
    writeln!(out, "deadline misses: {}", report.total_misses()).unwrap();
    Ok(out)
}

/// `metrics`: exercise every instrumented layer on the scenario —
/// Figure 2 verification (delay solver), an admission churn workload
/// plus saturation to the first link-full rejection (admission
/// controller), a short packet simulation, and one SLO evaluation
/// window over the scenario's `[slo]` rules — then dump the metrics
/// registry.
pub fn cmd_metrics(sc: &Scenario, json: bool) -> Result<String, ScenarioError> {
    let mut out = String::new();

    // 1. Delay analysis: SP routes, Figure 2 verification.
    let paths = sp_selection(&sc.graph, &sc.pairs)
        .map_err(|p| ScenarioError(format!("no route for pair {p:?}")))?;
    let mut routes = RouteSet::new(sc.graph.edge_count());
    for (ci, _) in sc.classes.iter() {
        for p in &paths {
            routes.push(Route::from_path(ci, p));
        }
    }
    let solver_metrics = uba::delay::metrics::solver();
    let (skipped0, touched0) = (
        solver_metrics.sweeps_skipped.get(),
        solver_metrics.servers_touched.get(),
    );
    let report = verify(
        &sc.servers,
        &sc.classes,
        &sc.alphas,
        &routes,
        &SolveConfig::default(),
    );
    writeln!(
        out,
        "verification: {} ({} iterations)",
        if report.safe { "SUCCESS" } else { "FAILURE" },
        report.iterations
    )
    .unwrap();
    writeln!(
        out,
        "solver sweep economy: {} route sweeps skipped, {} server evaluations",
        solver_metrics.sweeps_skipped.get() - skipped0,
        solver_metrics.servers_touched.get() - touched0,
    )
    .unwrap();

    // 2. Admission: churn workload, then saturate until a link fills —
    // through the scenario's policy chain, like `explain` and `serve`.
    let caps: Vec<f64> = (0..sc.servers.len())
        .map(|k| sc.servers.capacity_at(k))
        .collect();
    let ctrl = scenario_controller(sc, true)?;
    let pairs: Vec<(NodeId, NodeId)> = sc.pairs.iter().map(|p| (p.src, p.dst)).collect();
    let mut policy = ctrl.clone();
    let churn = run_churn(
        &mut policy,
        &pairs,
        ClassId(0),
        &ChurnConfig {
            arrivals: 2_000,
            mean_active: 64.0,
            seed: 42,
        },
    );
    writeln!(
        out,
        "churn: {} offered, {} accepted, blocking {:.1}%, mean admit {:.0} ns",
        churn.offered,
        churn.accepted,
        churn.blocking() * 100.0,
        churn.mean_admit_ns
    )
    .unwrap();
    let mut held = Vec::new();
    let mut sample = None;
    'saturate: loop {
        let mut progress = false;
        for &(src, dst) in &pairs {
            match ctrl.try_admit(ClassId(0), src, dst) {
                Ok(h) => {
                    held.push(h);
                    progress = true;
                }
                Err(r @ Reject::LinkFull { .. }) => {
                    sample = Some(r);
                    break 'saturate;
                }
                Err(Reject::NoRoute | Reject::Policy { .. }) => {}
            }
        }
        if !progress {
            break;
        }
    }
    ctrl.refresh_gauges();
    match sample {
        Some(Reject::LinkFull {
            server,
            class,
            reserved_bps,
            budget_bps,
        }) => {
            let share = if budget_bps > 0.0 {
                100.0 * reserved_bps / budget_bps
            } else {
                0.0
            };
            writeln!(
                out,
                "saturation: {} flows held; first rejection at server {server}, \
                 class {} ({}), reserved {:.1}/{:.1} kb/s ({share:.1}% of budget)",
                held.len(),
                class.index(),
                sc.classes.get(class).name,
                reserved_bps / 1e3,
                budget_bps / 1e3,
            )
            .unwrap();
        }
        _ => {
            writeln!(out, "saturation: {} flows held; no link filled", held.len()).unwrap();
        }
    }
    drop(held);
    ctrl.flush_metrics();

    // 3. A short packet simulation (single-class scenarios only).
    if sc.classes.len() == 1 {
        let (_, class) = sc.classes.iter().next().unwrap();
        let flows: Vec<FlowSpec> = sc
            .pairs
            .iter()
            .zip(&paths)
            .take(16)
            .map(|(pair, path)| FlowSpec {
                class: 0,
                ingress: pair.src.0,
                route: path.edges.iter().map(|e| e.0).collect(),
                source: SourceModel::GreedyOnOff {
                    burst_bits: class.bucket.burst,
                    rate_bps: class.bucket.rate,
                    packet_bits: (class.bucket.burst as u64).max(64),
                    start: 0.0,
                },
            })
            .collect();
        let sim_report = simulate(
            &caps,
            &flows,
            &SimConfig {
                horizon: 0.05,
                deadlines: vec![class.deadline],
                policers: None,
            },
        );
        writeln!(
            out,
            "simulation: {} packets, {} deadline misses",
            sim_report.total_packets,
            sim_report.total_misses()
        )
        .unwrap();
    }

    // 4. SLO engine: anchor, then close one evaluation window over
    // everything the sections above produced, so the `slo.*` gauges and
    // counters are registered and live in the dump below.
    let mut slo = uba::obs::SloEngine::new(uba::obs::global(), uba::obs::standard_rules(&sc.slo));
    slo.evaluate(uba::obs::global().snapshot());
    let firing = slo.evaluate(uba::obs::global().snapshot());
    writeln!(
        out,
        "slo: {} rules evaluated, {firing} firing, {} active alerts",
        uba::obs::standard_rules(&sc.slo).len(),
        slo.active_alerts().len()
    )
    .unwrap();

    writeln!(out).unwrap();
    out.push_str(&render_global_metrics(json));
    Ok(out)
}

/// SP routing table + per-server capacities for a scenario — the
/// config-time output every run-time construction starts from.
fn scenario_table(sc: &Scenario) -> Result<(RoutingTable, Vec<f64>), ScenarioError> {
    let paths = sp_selection(&sc.graph, &sc.pairs)
        .map_err(|p| ScenarioError(format!("no route for pair {p:?}")))?;
    let mut table = RoutingTable::new();
    for (ci, _) in sc.classes.iter() {
        for p in &paths {
            table.insert(ci, p);
        }
    }
    let caps: Vec<f64> = (0..sc.servers.len())
        .map(|k| sc.servers.capacity_at(k))
        .collect();
    Ok((table, caps))
}

/// The scenario's `[policy]` section instantiated against its class
/// rates — fresh stage state per call, as a generation install expects.
fn scenario_chain(sc: &Scenario) -> PolicyChain {
    let rates: Vec<f64> = sc.classes.iter().map(|(_, c)| c.bucket.rate).collect();
    PolicyChain::from_config(&sc.policy, &rates)
}

/// Builds the SP routing table and an admission controller for a
/// scenario — shared by `explain` and `serve`.
pub(crate) fn scenario_controller(
    sc: &Scenario,
    metered: bool,
) -> Result<AdmissionController, ScenarioError> {
    let generation = scenario_generation(sc)?;
    Ok(if metered {
        AdmissionController::from_generation(generation)
    } else {
        AdmissionController::from_generation_unmetered(generation)
    })
}

/// Builds an installable [`ConfigGeneration`] from a scenario — the unit
/// [`AdmissionController::reconfigure`] swaps in (the `reconfigure`
/// command and `serve`'s `POST /reconfigure`). The `[policy]` chain is
/// baked into the generation, so a hot-reload installs fresh policy
/// state alongside fresh budgets.
pub(crate) fn scenario_generation(sc: &Scenario) -> Result<ConfigGeneration, ScenarioError> {
    let (table, caps) = scenario_table(sc)?;
    Ok(ConfigGeneration::with_policy(
        table,
        &sc.classes,
        &caps,
        &sc.alphas,
        BackendKind::Atomic,
        scenario_chain(sc),
    ))
}

/// Total class budget across all servers of a generation, bits/s.
fn total_budget_bps(gen: &ConfigGeneration) -> f64 {
    let backend = gen.backend();
    let mut total = 0.0;
    for server in 0..backend.servers() {
        for class in 0..backend.classes() {
            total += backend.budget(server, class);
        }
    }
    total
}

/// `reconfigure`: a live-migration rehearsal. Admits the old scenario's
/// workload to saturation, installs the new scenario as a fresh
/// generation *while those flows are held*, and reports the migration:
/// which flows keep a route under the new configuration, which are
/// stranded, and how the total class budget moved. The old flows drain
/// against their own (retired) generation, exactly as a live controller
/// would behave.
pub fn cmd_reconfigure(
    old: &Scenario,
    new: &Scenario,
    json: bool,
) -> Result<String, ScenarioError> {
    let ctrl = scenario_controller(old, false)?;
    // Deterministic saturation: round-robin over the pair list in file
    // order, every class, holding every admitted flow.
    let mut held: Vec<(uba::admission::FlowHandle, ClassId, usize)> = Vec::new();
    for (ci, _) in old.classes.iter() {
        loop {
            let mut progress = false;
            for (pi, pair) in old.pairs.iter().enumerate() {
                if let Ok(h) = ctrl.try_admit(ci, pair.src, pair.dst) {
                    held.push((h, ci, pi));
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
    }
    let admitted = held.len();

    let next = scenario_generation(new)?;
    let old_budget = total_budget_bps(&ctrl.current_generation());
    let new_budget = total_budget_bps(&next);
    // Flows survive the migration iff the new configuration still routes
    // their (src, dst, class); the rest are stranded on the retired
    // generation until they terminate.
    let (mut kept, mut stranded) = (0usize, 0usize);
    for (_, ci, pi) in &held {
        let pair = &old.pairs[*pi];
        if next.table().route(pair.src, pair.dst, *ci).is_some() {
            kept += 1;
        } else {
            stranded += 1;
        }
    }
    let report = ctrl.reconfigure(next);
    let headroom_delta = new_budget - old_budget;

    drop(held);
    let drained = ctrl.drain().is_drained();

    let mut out = String::new();
    if json {
        writeln!(
            out,
            "{{\"generation\":{},\"previous\":{},\"admitted\":{admitted},\"kept\":{kept},\
             \"stranded\":{stranded},\"pinned_previous\":{},\"headroom_delta_bps\":{:.1},\
             \"drained\":{drained}}}",
            report.generation, report.previous, report.pinned_previous, headroom_delta,
        )
        .unwrap();
        return Ok(out);
    }
    writeln!(
        out,
        "reconfigure: generation {} -> {}",
        report.previous, report.generation
    )
    .unwrap();
    writeln!(out, "flows held under old configuration: {admitted}").unwrap();
    writeln!(out, "  kept (still routable):  {kept}").unwrap();
    writeln!(out, "  stranded (route gone):  {stranded}").unwrap();
    writeln!(
        out,
        "pinned to retired generation at swap: {}",
        report.pinned_previous
    )
    .unwrap();
    writeln!(
        out,
        "total class budget delta: {:+.1} kb/s",
        headroom_delta / 1e3
    )
    .unwrap();
    writeln!(out, "retired generation drained after release: {drained}").unwrap();
    Ok(out)
}

/// `explain`: replays the scenario's admission workload to saturation —
/// round-robin over the pair list in file order, every class — and
/// diagnoses each first rejection with the non-mutating dry run: the
/// path tried, the first failing link, and the class's observed vs.
/// budget utilization there. The replay has no randomness, so the report
/// is byte-identical across runs.
pub fn cmd_explain(sc: &Scenario, json: bool) -> Result<String, ScenarioError> {
    let ctrl = scenario_controller(sc, false)?;
    let mut held = Vec::new();
    let mut diagnoses: Vec<Explain> = Vec::new();
    for (ci, _) in sc.classes.iter() {
        // (pair index) -> already diagnosed, so each pair reports its
        // *first* rejection.
        let mut diagnosed = vec![false; sc.pairs.len()];
        loop {
            let mut progress = false;
            for (pi, pair) in sc.pairs.iter().enumerate() {
                match ctrl.try_admit(ci, pair.src, pair.dst) {
                    Ok(h) => {
                        held.push(h);
                        progress = true;
                    }
                    Err(_) if !diagnosed[pi] => {
                        diagnosed[pi] = true;
                        diagnoses.push(ctrl.explain(ci, pair.src, pair.dst));
                    }
                    Err(_) => {}
                }
            }
            if !progress {
                break;
            }
        }
    }
    let admitted = held.len();
    drop(held);

    let mut out = String::new();
    if json {
        for d in &diagnoses {
            writeln!(out, "{}", d.to_json_line()).unwrap();
        }
        return Ok(out);
    }
    writeln!(
        out,
        "{admitted} flows admitted before saturation; {} rejection diagnoses",
        diagnoses.len()
    )
    .unwrap();
    if diagnoses.is_empty() {
        return Ok(out);
    }
    writeln!(
        out,
        "{:<10} {:>4} {:>5} {:<13} {:>5} {:>13} {:>13} {:>7} {:>12}  stages",
        "class", "src", "dst", "verdict", "link", "reserved", "budget", "util", "headroom"
    )
    .unwrap();
    for d in &diagnoses {
        let link = d.link.map_or_else(|| "-".into(), |l| l.to_string());
        let (reserved, budget, util, headroom) = if d.verdict == ExplainVerdict::NoRoute {
            ("-".into(), "-".into(), "-".into(), "-".into())
        } else {
            (
                format!("{:.1} kb/s", d.reserved_bps / 1e3),
                format!("{:.1} kb/s", d.budget_bps / 1e3),
                format!("{:.1}%", d.observed_utilization() * 100.0),
                format!("{:.1} kb/s", d.headroom_bps() / 1e3),
            )
        };
        let stages = d
            .stages
            .iter()
            .map(|(name, v)| format!("{name}={}", v.as_str()))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(
            out,
            "{:<10} {:>4} {:>5} {:<13} {:>5} {:>13} {:>13} {:>7} {:>12}  {}",
            sc.classes.get(d.class).name,
            d.src.0,
            d.dst.0,
            d.verdict.as_str(),
            link,
            reserved,
            budget,
            util,
            headroom,
            stages,
        )
        .unwrap();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_scenario() -> Scenario {
        Scenario::from_str(
            r#"
            [topology]
            kind = "ring"
            n = 6
            [network]
            capacity = 1e6
            fan_in = 3
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 0.2
            "#,
        )
        .unwrap()
    }

    #[test]
    fn bounds_report() {
        let out = cmd_bounds(&ring_scenario()).unwrap();
        assert!(out.contains("diameter L = 3"));
        assert!(out.contains("alpha* in ["));
    }

    #[test]
    fn verify_report_safe() {
        let out = cmd_verify(&ring_scenario()).unwrap();
        assert!(out.contains("SUCCESS"), "{out}");
        assert!(out.contains("worst slack"));
    }

    #[test]
    fn verify_report_failure() {
        let mut sc = ring_scenario();
        sc.alphas = vec![0.99];
        let out = cmd_verify(&sc).unwrap();
        assert!(out.contains("FAILURE"), "{out}");
    }

    #[test]
    fn maximize_both_selectors() {
        let sc = ring_scenario();
        for sel in ["sp", "heuristic"] {
            let out = cmd_maximize(&sc, sel, 1).unwrap();
            assert!(out.contains("maximum safe utilization"), "{out}");
        }
        assert!(cmd_maximize(&sc, "magic", 1).is_err());
        assert!(cmd_maximize(&sc, "sp", 0).is_err());
    }

    #[test]
    fn maximize_threaded_matches_serial() {
        let sc = ring_scenario();
        let serial = cmd_maximize(&sc, "heuristic", 1).unwrap();
        let threaded = cmd_maximize(&sc, "heuristic", 4).unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn maximize_multiclass_uses_ray() {
        let sc = Scenario::from_str(
            r#"
            [topology]
            kind = "ring"
            n = 5
            [network]
            fan_in = 3
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 1.0
            [[class]]
            name = "video"
            burst = 64000
            rate = 2e6
            deadline = 0.3
            alpha = 2.0
            [pairs]
            mode = "all"
            step = 2
            "#,
        )
        .unwrap();
        let out = cmd_maximize(&sc, "heuristic", 1).unwrap();
        assert!(out.contains("maximum safe scale"), "{out}");
        assert!(out.contains("class voip"));
        assert!(out.contains("class video"));
    }

    #[test]
    fn simulate_respects_bound() {
        let out = cmd_simulate(&ring_scenario(), 0.2).unwrap();
        assert!(out.contains("deadline misses: 0"), "{out}");
    }

    #[test]
    fn metrics_report_surfaces_rejection_and_registry() {
        let out = cmd_metrics(&ring_scenario(), false).unwrap();
        // Saturation must hit a link-full rejection on a finite ring and
        // surface the class + observed-vs-budget utilization.
        assert!(out.contains("first rejection at server"), "{out}");
        assert!(out.contains("% of budget"), "{out}");
        // The solver's sweep-economy counters are summarized and dumped.
        assert!(out.contains("solver sweep economy"), "{out}");
        assert!(out.contains("delay.solve.sweeps_skipped"), "{out}");
        assert!(out.contains("delay.solve.servers_touched"), "{out}");
        // The registry dump includes all three instrumented layers.
        assert!(out.contains("admission.admits"), "{out}");
        assert!(out.contains("delay.solve.iterations"), "{out}");
        assert!(out.contains("sim.queue_depth"), "{out}");
        // ... plus the SLO engine and the arrival telemetry.
        assert!(out.contains("rules evaluated"), "{out}");
        assert!(out.contains("slo.deadline_miss_ratio.state"), "{out}");
        assert!(out.contains("admission.arrival.class0.rate"), "{out}");
        assert!(out.contains("admission.overuse_state"), "{out}");
    }

    #[test]
    fn metrics_report_json_mode_parses_back() {
        let out = cmd_metrics(&ring_scenario(), true).unwrap();
        let json_tail: Vec<&str> = out.lines().filter(|l| l.starts_with('{')).collect();
        assert!(!json_tail.is_empty(), "{out}");
        for line in json_tail {
            uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }

    #[test]
    fn explain_diagnoses_saturated_link_deterministically() {
        let sc = ring_scenario();
        let out = cmd_explain(&sc, false).unwrap();
        assert!(out.contains("flows admitted before saturation"), "{out}");
        assert!(out.contains("link_full"), "{out}");
        assert!(out.contains("kb/s"), "{out}");
        // alpha 0.2 on 1 Mb/s = 200 kb/s budget; 6 voip flows (192 kb/s)
        // fill it — the 8 kb/s headroom cannot fit a 7th 32 kb/s flow.
        assert!(out.contains("96.0%"), "{out}");
        assert!(out.contains("8.0 kb/s"), "{out}");
        // The replay has no randomness: byte-identical across runs.
        assert_eq!(out, cmd_explain(&sc, false).unwrap());
    }

    #[test]
    fn explain_on_oversubscribed_mci_names_saturated_link() {
        // The default scenario is the paper's MCI backbone; at a low
        // alpha the pair list over-subscribes it quickly.
        let sc = Scenario::from_str(
            r#"
            [network]
            capacity = 1e6
            [pairs]
            mode = "all"
            step = 8
            "#,
        )
        .unwrap();
        let out = cmd_explain(&sc, true).unwrap();
        assert_eq!(
            out,
            cmd_explain(&sc, true).unwrap(),
            "must be deterministic"
        );
        let mut saw_link_full = false;
        for line in out.lines() {
            let v = uba::obs::json::parse(line).unwrap_or_else(|e| panic!("{e}: {line}"));
            use uba::obs::json::JsonValue;
            if v.get("verdict").and_then(JsonValue::as_str) == Some("link_full") {
                saw_link_full = true;
                // The diagnosis names a concrete link with observed and
                // budgeted utilization for the rejected class.
                assert!(
                    v.get("link").and_then(JsonValue::as_number).is_some(),
                    "{line}"
                );
                let reserved = v
                    .get("reserved_bps")
                    .and_then(JsonValue::as_number)
                    .unwrap();
                let budget = v.get("budget_bps").and_then(JsonValue::as_number).unwrap();
                assert!(budget > 0.0 && reserved <= budget, "{line}");
                let rate = v
                    .get("flow_rate_bps")
                    .and_then(JsonValue::as_number)
                    .unwrap();
                assert!(
                    budget - reserved < rate,
                    "headroom must not fit the flow: {line}"
                );
            }
        }
        assert!(saw_link_full, "{out}");
    }

    #[test]
    fn explain_renders_policy_stage_verdicts() {
        let sc = Scenario::from_str(
            r#"
            [topology]
            kind = "ring"
            n = 6
            [network]
            capacity = 1e6
            fan_in = 3
            [[class]]
            name = "voip"
            burst = 640
            rate = 32000
            deadline = 0.1
            alpha = 0.2
            [policy]
            chain = "adaptive"
            bucket_rate_bps = 0.001
            bucket_burst_bits = 64000
            "#,
        )
        .unwrap();
        // Depth 64 kbit at 32 kb/s per flow = two token-bucket admits;
        // the ~non-refilling rate pins the bucket empty afterwards.
        let out = cmd_explain(&sc, false).unwrap();
        assert!(out.contains("policy_reject"), "{out}");
        assert!(out.contains("token_bucket=reject"), "{out}");
        assert!(out.contains("utilization="), "{out}");
        // JSON mode carries the stage list and the rejecting stage.
        let js = cmd_explain(&sc, true).unwrap();
        assert!(js.contains("\"stages\""), "{js}");
        assert!(js.contains("\"rejected_stage\":\"token_bucket\""), "{js}");
    }

    #[test]
    fn reconfigure_widened_budget_keeps_every_flow() {
        let old = ring_scenario();
        let mut new = ring_scenario();
        new.alphas = vec![0.4]; // double every link budget
        let out = cmd_reconfigure(&old, &new, false).unwrap();
        assert!(out.contains("reconfigure: generation"), "{out}");
        assert!(out.contains("stranded (route gone):  0"), "{out}");
        // alpha 0.2 -> 0.4 on 12 ring links of 1 Mb/s: +2400 kb/s.
        assert!(
            out.contains("total class budget delta: +2400.0 kb/s"),
            "{out}"
        );
        assert!(out.contains("drained after release: true"), "{out}");
    }

    #[test]
    fn reconfigure_reports_stranded_flows_and_json_parses() {
        let scenario_with_pairs = |pairs: &str| {
            Scenario::from_str(&format!(
                r#"
                [topology]
                kind = "ring"
                n = 6
                [network]
                capacity = 1e6
                fan_in = 3
                [[class]]
                name = "voip"
                burst = 640
                rate = 32000
                deadline = 0.1
                alpha = 0.2
                [pairs]
                mode = "list"
                list = [{pairs}]
                "#
            ))
            .unwrap()
        };
        let old = scenario_with_pairs("\"0-2\", \"1-3\"");
        let new = scenario_with_pairs("\"0-2\"");
        let out = cmd_reconfigure(&old, &new, true).unwrap();
        let v = uba::obs::json::parse(out.trim()).unwrap_or_else(|e| panic!("{e}: {out}"));
        use uba::obs::json::JsonValue;
        let num = |k: &str| v.get(k).and_then(JsonValue::as_number).unwrap();
        assert!(num("generation") > num("previous"));
        let admitted = num("admitted");
        assert!(admitted > 0.0);
        assert_eq!(num("kept") + num("stranded"), admitted);
        assert!(num("stranded") > 0.0, "pair 1-3 lost its route: {out}");
        assert_eq!(num("pinned_previous"), admitted);
        assert_eq!(num("headroom_delta_bps"), 0.0);
        assert_eq!(v.get("drained"), Some(&JsonValue::Bool(true)));
        // The rehearsal is deterministic (generation ids are
        // process-global and monotone, so compare everything else).
        let out2 = cmd_reconfigure(&old, &new, true).unwrap();
        let v2 = uba::obs::json::parse(out2.trim()).unwrap();
        let num2 = |k: &str| v2.get(k).and_then(JsonValue::as_number).unwrap();
        for k in [
            "admitted",
            "kept",
            "stranded",
            "pinned_previous",
            "headroom_delta_bps",
        ] {
            assert_eq!(num(k), num2(k), "field {k}: {out} vs {out2}");
        }
    }

    #[test]
    fn simulate_rejects_unsafe_alpha() {
        let mut sc = ring_scenario();
        sc.alphas = vec![0.99];
        assert!(cmd_simulate(&sc, 0.1).is_err());
    }
}
