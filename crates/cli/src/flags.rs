//! Minimal command-line flag extraction.
//!
//! The binary's flags (`--metrics`, `--json`, `--threads N`, `--port N`,
//! `--bind ADDR`) may appear anywhere on the command line; each helper
//! removes what it consumed from the argument vector, so positional
//! arguments can be read by index afterwards. Errors are returned as
//! user-facing strings — the binary prints them and exits 2.

use std::str::FromStr;

/// Removes every occurrence of the boolean flag `name`; true if at least
/// one was present.
pub fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != name);
    args.len() != before
}

/// Removes `name VALUE` from the arguments and returns the value, or
/// `None` when the flag is absent. Errors when the flag is the last
/// argument (no value to take).
pub fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} requires a value"));
    }
    let value = args[i + 1].clone();
    args.drain(i..=i + 1);
    Ok(Some(value))
}

/// Like [`take_value`] but parses the value, validating with `check`.
/// `expect` names the accepted form for the error message (e.g.
/// `"a positive integer"`).
pub fn take_parsed<T: FromStr>(
    args: &mut Vec<String>,
    name: &str,
    expect: &str,
    check: impl Fn(&T) -> bool,
) -> Result<Option<T>, String> {
    let Some(raw) = take_value(args, name)? else {
        return Ok(None);
    };
    match raw.parse::<T>() {
        Ok(v) if check(&v) => Ok(Some(v)),
        _ => Err(format!("{name} expects {expect}, got '{raw}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn flag_removed_wherever_it_appears() {
        for pos in 0..3 {
            let mut args = argv(&["a", "b"]);
            args.insert(pos, "--json".into());
            assert!(take_flag(&mut args, "--json"));
            assert_eq!(args, argv(&["a", "b"]), "insert position {pos}");
        }
        let mut args = argv(&["a", "b"]);
        assert!(!take_flag(&mut args, "--json"));
        assert_eq!(args, argv(&["a", "b"]));
    }

    #[test]
    fn flag_repeated_occurrences_all_removed() {
        let mut args = argv(&["--json", "a", "--json"]);
        assert!(take_flag(&mut args, "--json"));
        assert_eq!(args, argv(&["a"]));
    }

    #[test]
    fn value_taken_with_its_flag() {
        for pos in [0, 1, 2] {
            let mut args = argv(&["a", "b"]);
            args.insert(pos, "--bind".into());
            args.insert(pos + 1, "0.0.0.0".into());
            assert_eq!(
                take_value(&mut args, "--bind").unwrap().as_deref(),
                Some("0.0.0.0"),
                "insert position {pos}"
            );
            assert_eq!(args, argv(&["a", "b"]), "insert position {pos}");
        }
    }

    #[test]
    fn value_absent_is_none() {
        let mut args = argv(&["a", "b"]);
        assert_eq!(take_value(&mut args, "--bind").unwrap(), None);
        assert_eq!(args, argv(&["a", "b"]));
    }

    #[test]
    fn value_missing_is_an_error() {
        let mut args = argv(&["a", "--bind"]);
        let err = take_value(&mut args, "--bind").unwrap_err();
        assert!(err.contains("--bind requires a value"), "{err}");
    }

    #[test]
    fn parsed_value_validated() {
        let mut args = argv(&["--threads", "4", "x"]);
        let n: Option<usize> =
            take_parsed(&mut args, "--threads", "a positive integer", |&n| n >= 1).unwrap();
        assert_eq!(n, Some(4));
        assert_eq!(args, argv(&["x"]));
    }

    #[test]
    fn parsed_rejects_garbage_and_out_of_range() {
        for bad in ["zero", "-3", "0"] {
            let mut args = argv(&["--threads", bad]);
            let err =
                take_parsed::<usize>(&mut args, "--threads", "a positive integer", |&n| n >= 1)
                    .unwrap_err();
            assert!(err.contains("a positive integer"), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }
}
