//! Diffserv traffic classes and class sets.

use crate::bucket::LeakyBucket;

/// Index of a class within a [`ClassSet`]. Lower index = higher priority,
/// matching the paper's convention that Class 1 outranks Class 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

impl ClassId {
    /// Position in the class set's priority order.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A guaranteed-delay traffic class: a leaky-bucket profile shared by all
/// of its flows plus a class-wide end-to-end deadline `D` (Section 3: "all
/// flows in the same class are guaranteed the same delay").
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficClass {
    /// Human-readable name ("voice", "video", ...).
    pub name: String,
    /// Per-flow source policer `(T, ρ)`.
    pub bucket: LeakyBucket,
    /// End-to-end deadline `D` in seconds.
    pub deadline: f64,
}

impl TrafficClass {
    /// Creates a class, validating the deadline.
    ///
    /// # Panics
    /// Panics if the deadline is non-positive or non-finite.
    pub fn new(name: impl Into<String>, bucket: LeakyBucket, deadline: f64) -> Self {
        assert!(
            deadline.is_finite() && deadline > 0.0,
            "deadline must be positive and finite"
        );
        Self {
            name: name.into(),
            bucket,
            deadline,
        }
    }

    /// The paper's Section 6 voice-over-IP class: `T = 640` bits,
    /// `ρ = 32` kbit/s, `D = 100` ms.
    pub fn voip() -> Self {
        Self::new("voip", LeakyBucket::new(640.0, 32_000.0), 0.1)
    }

    /// Burst-to-rate ratio `T/ρ` in seconds (the bucket's time constant).
    pub fn burst_time(&self) -> f64 {
        self.bucket.burst / self.bucket.rate
    }
}

/// An ordered set of real-time classes, highest priority first.
///
/// Best-effort traffic is implicit: it occupies whatever priority level is
/// below every class here and never affects real-time delays under
/// class-based static priority (Section 5.1).
#[derive(Clone, Debug, Default)]
pub struct ClassSet {
    classes: Vec<TrafficClass>,
}

impl ClassSet {
    /// An empty class set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set with a single real-time class (the paper's two-class system:
    /// this class plus implicit best effort).
    pub fn single(class: TrafficClass) -> Self {
        let mut s = Self::new();
        s.push(class);
        s
    }

    /// Appends a class at the lowest real-time priority; returns its id.
    pub fn push(&mut self, class: TrafficClass) -> ClassId {
        self.classes.push(class);
        ClassId(self.classes.len() - 1)
    }

    /// Number of real-time classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if there are no real-time classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The class with the given id.
    pub fn get(&self, id: ClassId) -> &TrafficClass {
        &self.classes[id.index()]
    }

    /// Iterator over `(id, class)` in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &TrafficClass)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i), c))
    }

    /// Ids of all classes with *strictly higher* priority than `id`.
    pub fn higher_priority(&self, id: ClassId) -> impl Iterator<Item = ClassId> {
        (0..id.index()).map(ClassId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voip_matches_paper_parameters() {
        let v = TrafficClass::voip();
        assert_eq!(v.bucket.burst, 640.0);
        assert_eq!(v.bucket.rate, 32_000.0);
        assert_eq!(v.deadline, 0.1);
        assert!((v.burst_time() - 0.02).abs() < 1e-15);
    }

    #[test]
    fn push_assigns_priority_order() {
        let mut s = ClassSet::new();
        let hi = s.push(TrafficClass::voip());
        let lo = s.push(TrafficClass::new(
            "video",
            LeakyBucket::new(16_000.0, 1_000_000.0),
            0.2,
        ));
        assert_eq!(hi, ClassId(0));
        assert_eq!(lo, ClassId(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(hi).name, "voip");
    }

    #[test]
    fn higher_priority_lists_strictly_higher() {
        let mut s = ClassSet::new();
        for _ in 0..3 {
            s.push(TrafficClass::voip());
        }
        let above: Vec<ClassId> = s.higher_priority(ClassId(2)).collect();
        assert_eq!(above, vec![ClassId(0), ClassId(1)]);
        assert_eq!(s.higher_priority(ClassId(0)).count(), 0);
    }

    #[test]
    fn single_creates_one_class() {
        let s = ClassSet::single(TrafficClass::voip());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn iter_in_priority_order() {
        let mut s = ClassSet::new();
        s.push(TrafficClass::new("a", LeakyBucket::new(1.0, 1.0), 1.0));
        s.push(TrafficClass::new("b", LeakyBucket::new(1.0, 1.0), 1.0));
        let names: Vec<&str> = s.iter().map(|(_, c)| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "deadline")]
    fn zero_deadline_rejected() {
        TrafficClass::new("bad", LeakyBucket::new(1.0, 1.0), 0.0);
    }
}
