//! Leaky-bucket source characterization.

/// A leaky-bucket policer `(T, ρ)`: burst size `T` in bits, sustained rate
/// `ρ` in bits/second.
///
/// The paper assumes every flow of a class is policed by the same bucket at
/// the network entrance (Section 3): the traffic a source may emit in any
/// interval of length `I` is at most `min(C·I, T + ρ·I)` on a link of
/// capacity `C`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeakyBucket {
    /// Burst size `T` in bits.
    pub burst: f64,
    /// Average (token) rate `ρ` in bits/second.
    pub rate: f64,
}

impl LeakyBucket {
    /// Creates a bucket, validating that both parameters are positive and
    /// finite.
    ///
    /// # Panics
    /// Panics on non-finite or non-positive parameters; a zero-rate or
    /// zero-burst class would make the paper's delay formulas degenerate.
    pub fn new(burst: f64, rate: f64) -> Self {
        assert!(
            burst.is_finite() && burst > 0.0,
            "burst must be positive and finite"
        );
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive and finite"
        );
        Self { burst, rate }
    }

    /// Upper bound on traffic emitted during an interval of length `I`
    /// seconds, ignoring any link-rate cap: `T + ρ·I`.
    pub fn bound(&self, interval: f64) -> f64 {
        self.burst + self.rate * interval
    }

    /// Upper bound on traffic during `I` on a link of capacity `c`:
    /// `min(c·I, T + ρ·I)`.
    pub fn bound_capped(&self, interval: f64, c: f64) -> f64 {
        (c * interval).min(self.bound(interval))
    }

    /// The burst-drain time `T / (C − ρ)`: how long the bucket can emit at
    /// link rate before falling back to `ρ`.
    ///
    /// Returns `INFINITY` when `ρ ≥ c`.
    pub fn drain_time(&self, c: f64) -> f64 {
        if self.rate >= c {
            f64::INFINITY
        } else {
            self.burst / (c - self.rate)
        }
    }

    /// A bucket with the burst inflated by accumulated upstream jitter
    /// delay `y` (Theorem 1's `H_k`): `(T + ρ·y, ρ)`.
    pub fn jittered(&self, y: f64) -> Self {
        assert!(y >= 0.0 && y.is_finite(), "jitter delay must be >= 0");
        Self {
            burst: self.burst + self.rate * y,
            rate: self.rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voip() -> LeakyBucket {
        LeakyBucket::new(640.0, 32_000.0)
    }

    #[test]
    fn bound_is_affine() {
        let b = voip();
        assert_eq!(b.bound(0.0), 640.0);
        assert_eq!(b.bound(1.0), 32_640.0);
    }

    #[test]
    fn capped_bound_small_interval_limited_by_link() {
        let b = voip();
        let c = 100e6;
        // At tiny I the link cap C·I dominates.
        assert_eq!(b.bound_capped(1e-9, c), 1e-9 * c);
        // At large I the bucket dominates.
        assert_eq!(b.bound_capped(1.0, c), 32_640.0);
    }

    #[test]
    fn drain_time_voip() {
        let b = voip();
        let c = 100e6;
        let dt = b.drain_time(c);
        assert!((dt - 640.0 / (c - 32_000.0)).abs() < 1e-18);
    }

    #[test]
    fn drain_time_infinite_when_rate_exceeds_capacity() {
        let b = LeakyBucket::new(100.0, 10.0);
        assert_eq!(b.drain_time(10.0), f64::INFINITY);
        assert_eq!(b.drain_time(5.0), f64::INFINITY);
    }

    #[test]
    fn jittered_increases_burst_only() {
        let b = voip();
        let j = b.jittered(0.01);
        assert_eq!(j.rate, b.rate);
        assert!((j.burst - (640.0 + 320.0)).abs() < 1e-12);
    }

    #[test]
    fn jittered_zero_identity() {
        let b = voip();
        assert_eq!(b.jittered(0.0), b);
    }

    #[test]
    #[should_panic(expected = "burst must be positive")]
    fn zero_burst_rejected() {
        LeakyBucket::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn negative_rate_rejected() {
        LeakyBucket::new(1.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "jitter delay")]
    fn negative_jitter_rejected() {
        voip().jittered(-0.1);
    }
}
