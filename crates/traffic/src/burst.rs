//! Bursty arrival-batch sizing with a configurable coefficient of
//! variation.
//!
//! The paper's admission test is exercised by churn drivers that issue
//! flow requests in per-tick batches. A constant batch size produces
//! smooth offered load; real sources are bursty. [`BurstModel`] turns a
//! target `(mean, cv)` into a two-point ("on/off") batch-size
//! distribution: most ticks carry the quiet size `1`, and occasionally
//! a slug of `1 + spike` arrives, sized and weighted so the mean and
//! the coefficient of variation come out exactly as requested. This is
//! the discrete analogue of an on/off MMPP source and is what drives
//! the high-CV workloads the overuse detector
//! (`uba-admission`'s `arrival` module) is meant to flag.
//!
//! This crate has no dependencies, so the model is RNG-agnostic: each
//! draw consumes one caller-supplied uniform variate in `[0, 1)` (the
//! workspace callers pass `uba_obs::SplitMix64` output), keeping every
//! workload deterministic and replayable.

/// Two-point batch-size distribution with exact mean and CV.
///
/// With probability `p` a tick carries `1 + spike` arrivals, otherwise
/// `1`. Given a target mean `m > 1` and coefficient of variation `c`,
/// the solution of the two moment equations is
/// `spike = c²m²/(m−1) + (m−1)` and `p = (m−1)/spike`. `cv = 0`
/// degenerates to the constant batch `round(m)`.
#[derive(Clone, Copy, Debug)]
pub struct BurstModel {
    /// Probability of a spike tick.
    p: f64,
    /// Arrivals added on top of the quiet size on a spike tick.
    spike: u64,
    /// Quiet-tick batch size (1, or `round(m)` when `cv = 0`).
    quiet: u64,
}

impl BurstModel {
    /// Builds a model with the given batch-size mean (`> 1`) and
    /// coefficient of variation (`≥ 0`).
    ///
    /// The spike size is rounded to an integer and the spike
    /// probability re-solved against the rounded size, so the *mean*
    /// stays exact and only the CV absorbs sub-unit rounding error.
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean > 1.0 && mean.is_finite(),
            "mean batch size must exceed 1"
        );
        assert!(cv >= 0.0 && cv.is_finite(), "cv must be non-negative");
        let s = mean - 1.0;
        if cv == 0.0 {
            return Self {
                p: 0.0,
                spike: 0,
                quiet: mean.round().max(1.0) as u64,
            };
        }
        let var = (cv * mean) * (cv * mean);
        let spike = ((var + s * s) / s).round().max(s.ceil()) as u64;
        Self {
            p: (s / spike as f64).min(1.0),
            spike,
            quiet: 1,
        }
    }

    /// Batch size for one tick, from a uniform draw `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> u64 {
        if u < self.p {
            self.quiet + self.spike
        } else {
            self.quiet
        }
    }

    /// The exact mean batch size of the (rounded) distribution.
    pub fn mean(&self) -> f64 {
        self.quiet as f64 + self.p * self.spike as f64
    }

    /// The exact coefficient of variation of the (rounded)
    /// distribution.
    pub fn cv(&self) -> f64 {
        let s = self.spike as f64;
        let var = (self.p * s * s - (self.p * s) * (self.p * s)).max(0.0);
        var.sqrt() / self.mean()
    }

    /// Probability of a spike tick.
    pub fn spike_probability(&self) -> f64 {
        self.p
    }

    /// Batch size on a spike tick.
    pub fn spike_size(&self) -> u64 {
        self.quiet + self.spike
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cheap deterministic uniform sequence for tests (Weyl on the
    /// golden ratio); the real callers use SplitMix64.
    fn uniforms(n: usize) -> impl Iterator<Item = f64> {
        (1..=n).map(|i| (i as f64 * 0.618_033_988_749_894_9).fract())
    }

    #[test]
    fn moments_match_the_request() {
        for &(m, c) in &[(8.0, 2.0), (16.0, 3.0), (50.0, 1.5), (4.0, 4.0)] {
            let model = BurstModel::with_mean_cv(m, c);
            assert!(
                (model.mean() - m).abs() < 1e-9,
                "mean {} for ({m},{c})",
                model.mean()
            );
            // CV absorbs the integer rounding of the spike size.
            assert!(
                (model.cv() - c).abs() / c < 0.05,
                "cv {} for ({m},{c})",
                model.cv()
            );
        }
    }

    #[test]
    fn zero_cv_degenerates_to_a_constant_batch() {
        let model = BurstModel::with_mean_cv(8.0, 0.0);
        assert!(uniforms(1000).all(|u| model.sample(u) == 8));
        assert_eq!(model.mean(), 8.0);
        assert_eq!(model.cv(), 0.0);
    }

    #[test]
    fn empirical_mean_tracks_the_analytic_mean() {
        let model = BurstModel::with_mean_cv(8.0, 2.0);
        let n = 200_000;
        let total: u64 = uniforms(n).map(|u| model.sample(u)).sum();
        let empirical = total as f64 / n as f64;
        assert!(
            (empirical - model.mean()).abs() / model.mean() < 0.02,
            "empirical {empirical} vs {}",
            model.mean()
        );
    }

    #[test]
    fn high_cv_means_rare_large_spikes() {
        let model = BurstModel::with_mean_cv(8.0, 3.0);
        assert!(
            model.spike_probability() < 0.1,
            "{}",
            model.spike_probability()
        );
        assert!(model.spike_size() > 50, "{}", model.spike_size());
        // Quiet ticks are the common case.
        assert_eq!(model.sample(0.99), 1);
    }

    #[test]
    #[should_panic(expected = "mean batch size must exceed 1")]
    fn sub_unit_mean_is_rejected() {
        let _ = BurstModel::with_mean_cv(1.0, 2.0);
    }
}
