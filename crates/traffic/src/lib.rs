//! Traffic models for utilization-based admission control.
//!
//! Implements Section 3 of the paper:
//!
//! * [`LeakyBucket`] — the source policer `(T, ρ)`: traffic in any interval
//!   of length `I` is bounded by `min(C·I, T + ρ·I)`.
//! * [`TrafficClass`] / [`ClassSet`] — diffserv classes with per-class
//!   leaky-bucket parameters, end-to-end deadline `D_i`, and static
//!   priority order.
//! * [`Envelope`] — piecewise-linear *concave* traffic-constraint functions
//!   (Definition 2) with the algebra needed by the delay formulas: sums,
//!   integer scaling, jitter shifts `F(I + Y)`, capping by the link rate,
//!   and the busy-period maximization `max_{I>0}(F(I) − C·I)` of Eq. (3).
//! * [`BurstModel`] — an RNG-agnostic on/off batch-size distribution with
//!   exact mean and coefficient of variation, for driving bursty churn
//!   workloads against the admission path's arrival telemetry.
//! * [`Gamma`] / [`Mmpp`] — continuous-time arrival generators
//!   (gamma interarrivals with configurable CV; a two-state
//!   Markov-modulated Poisson source), the flow-arrival drivers behind
//!   the policy-pipeline burst benchmarks.
//!
//! All quantities are in bits, seconds, and bits/second.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod bucket;
pub mod burst;
pub mod class;
pub mod envelope;

pub use arrivals::{Gamma, Mmpp};
pub use bucket::LeakyBucket;
pub use burst::BurstModel;
pub use class::{ClassId, ClassSet, TrafficClass};
pub use envelope::Envelope;
