//! Piecewise-linear concave traffic-constraint functions.
//!
//! A traffic-constraint function `F(I)` (Definition 2) bounds the traffic a
//! stream may present in *any* interval of length `I`. Everything the
//! paper's delay machinery needs is closed over piecewise-linear concave
//! functions:
//!
//! * a leaky-bucket source is `min(C·I, T + ρ·I)`;
//! * aggregation (Eq. 2) is a pointwise *sum*;
//! * upstream jitter `Y` (Theorem 1 / Theorem 2.1 of Cruz) is a *shift*
//!   `F(I + Y)`;
//! * the physical per-input-link cap is a *min with the line* `C·I`;
//! * the worst-case delay (Eq. 3) is `max_{I>0}(F(I) − C·I) / C`, the
//!   scaled maximal vertical deviation above the service line.
//!
//! The representation is a list of breakpoints `(I, F(I))` with `I`
//! strictly increasing from `0`, plus the slope after the last breakpoint.
//! `F(0)` may be positive (an instantaneous burst).

/// A non-decreasing, concave, piecewise-linear function on `[0, ∞)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Breakpoints `(I, F(I))`, `I` strictly increasing, first `I == 0`.
    points: Vec<(f64, f64)>,
    /// Slope for `I` beyond the last breakpoint.
    final_slope: f64,
}

const EPS: f64 = 1e-9;

impl Envelope {
    /// The zero function.
    pub fn zero() -> Self {
        Self {
            points: vec![(0.0, 0.0)],
            final_slope: 0.0,
        }
    }

    /// A pure token bucket `σ + ρ·I` (no link-rate cap): an instantaneous
    /// burst `σ` plus sustained rate `ρ`.
    pub fn token_bucket(sigma: f64, rho: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "burst must be >= 0");
        assert!(rho >= 0.0 && rho.is_finite(), "rate must be >= 0");
        Self {
            points: vec![(0.0, sigma)],
            final_slope: rho,
        }
    }

    /// The line `rate · I` through the origin.
    pub fn line(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be >= 0");
        Self {
            points: vec![(0.0, 0.0)],
            final_slope: rate,
        }
    }

    /// A leaky-bucket source on a link of capacity `c`:
    /// `min(c·I, σ + ρ·I)` (Section 3).
    ///
    /// # Examples
    /// ```
    /// use uba_traffic::Envelope;
    /// // The paper's VoIP source on a 100 Mb/s link.
    /// let e = Envelope::leaky_bucket(640.0, 32_000.0, 100e6);
    /// assert_eq!(e.eval(0.0), 0.0);              // the link caps the origin
    /// assert!((e.eval(1.0) - 32_640.0) < 1e-9);  // burst + one second of rate
    /// // Aggregating 10 such flows against a 1 Mb/s server queues:
    /// let agg = e.scale(10.0);
    /// assert!(agg.delay(1e6).unwrap() >= 0.0);
    /// ```
    pub fn leaky_bucket(sigma: f64, rho: f64, c: f64) -> Self {
        Self::token_bucket(sigma, rho).min_with_line(c)
    }

    /// Builds an envelope from raw breakpoints; validates the invariants.
    ///
    /// # Panics
    /// Panics if breakpoints are not strictly increasing from `I = 0`,
    /// values are negative/non-finite, or the function would decrease.
    pub fn from_points(points: Vec<(f64, f64)>, final_slope: f64) -> Self {
        assert!(!points.is_empty(), "need at least one breakpoint");
        assert!(points[0].0 == 0.0, "first breakpoint must be at I = 0");
        assert!(
            final_slope >= 0.0 && final_slope.is_finite(),
            "final slope must be >= 0"
        );
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "breakpoints must strictly increase");
            assert!(w[0].1 <= w[1].1 + EPS, "envelope must be non-decreasing");
        }
        for &(x, v) in &points {
            assert!(x.is_finite() && v.is_finite() && v >= 0.0, "bad breakpoint");
        }
        let e = Self {
            points,
            final_slope,
        };
        debug_assert!(e.is_concave(), "envelope must be concave");
        e
    }

    /// The breakpoints, for inspection.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Slope beyond the last breakpoint — the long-run rate.
    pub fn final_slope(&self) -> f64 {
        self.final_slope
    }

    /// The burst at the origin, `F(0)`.
    pub fn burst(&self) -> f64 {
        self.points[0].1
    }

    /// Evaluates `F(I)`.
    pub fn eval(&self, i: f64) -> f64 {
        assert!(i >= 0.0, "envelope domain is [0, inf)");
        let pts = &self.points;
        // Find the last breakpoint with x <= i.
        let idx = match pts.binary_search_by(|&(x, _)| x.total_cmp(&i)) {
            Ok(k) => k,
            Err(0) => 0, // impossible given first x == 0, but stay safe
            Err(k) => k - 1,
        };
        let (x0, y0) = pts[idx];
        let slope = if idx + 1 < pts.len() {
            let (x1, y1) = pts[idx + 1];
            (y1 - y0) / (x1 - x0)
        } else {
            self.final_slope
        };
        y0 + slope * (i - x0)
    }

    /// True if segment slopes are non-increasing (within tolerance).
    pub fn is_concave(&self) -> bool {
        let mut prev = f64::INFINITY;
        for w in self.points.windows(2) {
            let s = (w[1].1 - w[0].1) / (w[1].0 - w[0].0);
            if s > prev * (1.0 + 1e-9) + EPS {
                return false;
            }
            prev = s;
        }
        self.final_slope <= prev * (1.0 + 1e-9) + EPS
    }

    /// Pointwise sum `F + G` (aggregation of streams, Eq. 2).
    pub fn sum(&self, other: &Envelope) -> Envelope {
        let mut xs: Vec<f64> = self
            .points
            .iter()
            .chain(other.points.iter())
            .map(|&(x, _)| x)
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() <= EPS * (1.0 + a.abs()));
        let points = xs
            .into_iter()
            .map(|x| (x, self.eval(x) + other.eval(x)))
            .collect();
        Envelope {
            points,
            final_slope: self.final_slope + other.final_slope,
        }
        .normalized()
    }

    /// Scales values by `k >= 0` (aggregating `k` identical flows when `k`
    /// is an integer; Theorem 1 uses `n_{k,j} · H_k(I)`).
    pub fn scale(&self, k: f64) -> Envelope {
        assert!(k >= 0.0 && k.is_finite(), "scale factor must be >= 0");
        Envelope {
            points: self.points.iter().map(|&(x, v)| (x, v * k)).collect(),
            final_slope: self.final_slope * k,
        }
    }

    /// The jitter shift `G(I) = F(I + y)` (Cruz's Theorem 2.1: after
    /// suffering at most `y` seconds of delay, a stream constrained by `F`
    /// is constrained by `F(I + y)`).
    pub fn shift(&self, y: f64) -> Envelope {
        assert!(y >= 0.0 && y.is_finite(), "shift must be >= 0");
        if y == 0.0 {
            return self.clone();
        }
        let mut points = vec![(0.0, self.eval(y))];
        for &(x, v) in &self.points {
            if x > y + EPS {
                points.push((x - y, v));
            }
        }
        Envelope {
            points,
            final_slope: self.final_slope,
        }
        .normalized()
    }

    /// Pointwise `min(F(I), c·I)` — the physical cap of a link of capacity
    /// `c` feeding a server.
    pub fn min_with_line(&self, c: f64) -> Envelope {
        assert!(c > 0.0 && c.is_finite(), "capacity must be positive");
        // h(x) = F(x) − c·x; crossings of h with 0 become new breakpoints.
        let mut xs: Vec<f64> = self.points.iter().map(|&(x, _)| x).collect();
        let h = |x: f64| self.eval(x) - c * x;
        // Interior crossings.
        for w in self.points.windows(2) {
            let (x0, x1) = (w[0].0, w[1].0);
            let (h0, h1) = (h(x0), h(x1));
            if (h0 > 0.0 && h1 < 0.0) || (h0 < 0.0 && h1 > 0.0) {
                let t = h0 / (h0 - h1);
                xs.push(x0 + t * (x1 - x0));
            }
        }
        // Crossing in the final open segment.
        let (xn, _) = *self.points.last().unwrap();
        let hn = h(xn);
        let hslope = self.final_slope - c;
        if hn > 0.0 && hslope < 0.0 {
            xs.push(xn + hn / -hslope);
        } else if hn < 0.0 && hslope > 0.0 {
            xs.push(xn + -hn / hslope);
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() <= EPS * (1.0 + a.abs()));
        let points: Vec<(f64, f64)> = xs
            .into_iter()
            .map(|x| (x, self.eval(x).min(c * x)))
            .collect();
        // Beyond the last breakpoint both branches are linear; the final
        // slope belongs to whichever branch is lower asymptotically.
        let final_slope = {
            let (xl, _) = *points.last().unwrap();
            let probe = xl + 1.0;
            if self.eval(probe) <= c * probe {
                self.final_slope
            } else {
                c
            }
        };
        Envelope {
            points,
            final_slope,
        }
        .normalized()
    }

    /// `max_{I >= 0} (F(I) − c·I)` and its arg-max, i.e. the worst-case
    /// backlog of Eq. (3); the delay is this divided by `c`.
    ///
    /// Returns `None` when the maximum is unbounded (`final_slope > c`,
    /// an unstable server).
    pub fn busy_max(&self, c: f64) -> Option<(f64, f64)> {
        assert!(c > 0.0 && c.is_finite(), "capacity must be positive");
        if self.final_slope > c + EPS {
            return None;
        }
        let mut best = (f64::NEG_INFINITY, 0.0);
        for &(x, v) in &self.points {
            let hv = v - c * x;
            if hv > best.0 {
                best = (hv, x);
            }
        }
        Some(best)
    }

    /// Worst-case queueing delay of a work-conserving server of capacity
    /// `c` fed by this aggregate: `max(0, busy_max / c)`. `None` if the
    /// server is unstable.
    pub fn delay(&self, c: f64) -> Option<f64> {
        self.busy_max(c).map(|(h, _)| (h / c).max(0.0))
    }

    /// Removes collinear interior breakpoints (keeps eval identical).
    fn normalized(mut self) -> Envelope {
        if self.points.len() < 2 {
            return self;
        }
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(self.points.len());
        out.push(self.points[0]);
        for i in 1..self.points.len() {
            let (x2, y2) = self.points[i];
            loop {
                if out.len() < 2 {
                    break;
                }
                let (x0, y0) = out[out.len() - 2];
                let (x1, y1) = out[out.len() - 1];
                let s01 = (y1 - y0) / (x1 - x0);
                let s12 = (y2 - y1) / (x2 - x1);
                if (s01 - s12).abs() <= EPS * (1.0 + s01.abs()) {
                    out.pop();
                } else {
                    break;
                }
            }
            out.push((x2, y2));
        }
        // Last interior point collinear with the final slope?
        while out.len() >= 2 {
            let (x0, y0) = out[out.len() - 2];
            let (x1, y1) = out[out.len() - 1];
            let s01 = (y1 - y0) / (x1 - x0);
            if (s01 - self.final_slope).abs() <= EPS * (1.0 + s01.abs()) {
                out.pop();
            } else {
                break;
            }
        }
        self.points = out;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 100e6;

    fn voip_source() -> Envelope {
        Envelope::leaky_bucket(640.0, 32_000.0, C)
    }

    #[test]
    fn token_bucket_eval() {
        let e = Envelope::token_bucket(100.0, 10.0);
        assert_eq!(e.eval(0.0), 100.0);
        assert_eq!(e.eval(2.0), 120.0);
        assert_eq!(e.burst(), 100.0);
    }

    #[test]
    fn leaky_bucket_has_knee_at_drain_time() {
        let e = voip_source();
        // Knee where C·I = 640 + 32000·I  =>  I* = 640 / (C − 32000).
        let knee = 640.0 / (C - 32_000.0);
        assert_eq!(e.eval(0.0), 0.0);
        assert!((e.eval(knee) - C * knee).abs() < 1e-3);
        assert!((e.eval(1.0) - 32_640.0).abs() < 1e-6);
        assert_eq!(e.final_slope(), 32_000.0);
        assert!(e.is_concave());
    }

    #[test]
    fn sum_is_pointwise() {
        let a = Envelope::token_bucket(10.0, 1.0);
        let b = Envelope::token_bucket(20.0, 2.0);
        let s = a.sum(&b);
        for &x in &[0.0, 0.5, 1.0, 3.0, 100.0] {
            assert!((s.eval(x) - (a.eval(x) + b.eval(x))).abs() < 1e-9);
        }
        assert_eq!(s.final_slope(), 3.0);
    }

    #[test]
    fn scale_matches_repeated_sum() {
        let a = voip_source();
        let threefold = a.scale(3.0);
        let summed = a.sum(&a).sum(&a);
        for &x in &[0.0, 1e-6, 1e-4, 0.01, 1.0] {
            assert!(
                (threefold.eval(x) - summed.eval(x)).abs() < 1e-6,
                "mismatch at {x}"
            );
        }
    }

    #[test]
    fn shift_advances_the_function() {
        let e = Envelope::token_bucket(100.0, 10.0);
        let s = e.shift(2.0);
        // F(I + 2) = 100 + 10(I + 2) = 120 + 10 I.
        assert!((s.eval(0.0) - 120.0).abs() < 1e-12);
        assert!((s.eval(1.0) - 130.0).abs() < 1e-12);
    }

    #[test]
    fn shift_zero_is_identity() {
        let e = voip_source();
        assert_eq!(e.shift(0.0), e);
    }

    #[test]
    fn shift_of_capped_envelope_keeps_concavity() {
        let e = voip_source().shift(0.003);
        assert!(e.is_concave());
        // Shifting past the knee leaves a pure token bucket.
        assert!((e.final_slope() - 32_000.0).abs() < 1e-9);
        assert!(e.burst() > 640.0);
    }

    #[test]
    fn min_with_line_caps_the_burst() {
        let tb = Envelope::token_bucket(1000.0, 10.0);
        let capped = tb.min_with_line(100.0);
        assert_eq!(capped.eval(0.0), 0.0);
        // Before the knee the line rules.
        assert!((capped.eval(1.0) - 100.0).abs() < 1e-9);
        // Knee at 1000/(100-10) ≈ 11.11; after it the bucket rules.
        assert!((capped.eval(20.0) - 1200.0).abs() < 1e-9);
        assert!(capped.is_concave());
    }

    #[test]
    fn min_with_line_when_line_never_binds() {
        let tb = Envelope::token_bucket(10.0, 1.0);
        // Rate cap far above: only near 0 does the line bind.
        let capped = tb.min_with_line(1e9);
        assert_eq!(capped.eval(0.0), 0.0);
        assert!((capped.eval(1.0) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn min_with_line_when_rate_exceeds_capacity() {
        // Bucket rate above capacity: after the burst clears, the cap rules
        // forever.
        let tb = Envelope::token_bucket(10.0, 200.0);
        let capped = tb.min_with_line(100.0);
        assert_eq!(capped.final_slope(), 100.0);
        assert!((capped.eval(1.0) - 100.0).abs() < 1e-9);
        assert!(capped.is_concave());
    }

    #[test]
    fn busy_max_of_stable_aggregate() {
        // 10 voip flows, each jitter-free: aggregate burst 6400 bits.
        let agg = Envelope::token_bucket(6400.0, 320_000.0).min_with_line(C);
        let (h, at) = agg.busy_max(C).unwrap();
        // Max of min(C·I, σ + ρI) − C·I is σ·(1 − ρ/C)... at the knee? The
        // curve is below C·I only at the knee onward; deviation maxes at the
        // knee: h = 0 there. For a single input link feeding a server of the
        // same capacity there is no queueing.
        assert!(h.abs() < 1e-6, "h = {h} at {at}");
    }

    #[test]
    fn busy_max_detects_instability() {
        let agg = Envelope::token_bucket(100.0, 2.0 * C);
        assert!(agg.busy_max(C).is_none());
        assert!(agg.delay(C).is_none());
    }

    #[test]
    fn delay_of_two_input_aggregate_positive() {
        // Two input links each delivering a capped burst: the server sees
        // more than C for a while and queues.
        let per_link = Envelope::token_bucket(1e6, 0.3 * C).min_with_line(C);
        let agg = per_link.sum(&per_link);
        let d = agg.delay(C).unwrap();
        assert!(d > 0.0);
        // Sanity: delay bounded by total burst / C.
        assert!(d <= 2.0 * 1e6 / C + 1e-9);
    }

    #[test]
    fn delay_at_exact_saturation_is_finite() {
        let agg = Envelope::token_bucket(1000.0, C);
        let d = agg.delay(C).unwrap();
        assert!((d - 1000.0 / C).abs() < 1e-12);
    }

    #[test]
    fn normalization_drops_collinear_points() {
        let e = Envelope::from_points(vec![(0.0, 0.0), (1.0, 10.0)], 10.0);
        let s = e.sum(&Envelope::zero());
        // The breakpoint at 1.0 is collinear with the final slope.
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn unsorted_points_rejected() {
        Envelope::from_points(vec![(0.0, 0.0), (2.0, 2.0), (1.0, 3.0)], 0.0);
    }

    #[test]
    #[should_panic(expected = "first breakpoint")]
    fn missing_origin_rejected() {
        Envelope::from_points(vec![(1.0, 0.0)], 0.0);
    }

    #[test]
    fn eval_outside_breakpoints_uses_final_slope() {
        let e = Envelope::from_points(vec![(0.0, 0.0), (1.0, 5.0)], 1.0);
        assert!((e.eval(3.0) - 7.0).abs() < 1e-12);
    }
}
