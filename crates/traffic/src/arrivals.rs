//! Continuous-time arrival generators with configurable burstiness.
//!
//! [`BurstModel`](crate::BurstModel) shapes *batch sizes* on a discrete
//! tick clock; the policy-pipeline benchmarks also need arrival
//! processes on a continuous clock, where burstiness lives in the
//! *timing*:
//!
//! * [`Gamma`] — gamma-distributed interarrival times with exact mean
//!   and coefficient of variation. `cv = 1` is Poisson, `cv > 1` is
//!   burstier than Poisson (the regime the AIMD overuse gate targets),
//!   `cv < 1` is smoother, `cv = 0` is a metronome.
//! * [`Mmpp`] — a two-state Markov-modulated Poisson process: the
//!   canonical quiet/burst source, with exponentially distributed
//!   dwell times per state and a Poisson arrival stream whose rate
//!   switches with the state.
//!
//! Like the rest of this crate, both are RNG-agnostic: every draw
//! consumes caller-supplied uniform variates in `[0, 1)` (workspace
//! callers pass `uba_obs::SplitMix64` output), so workloads stay
//! deterministic and replayable for a fixed seed.

use std::f64::consts::PI;

/// Keeps a uniform variate strictly inside `(0, 1)` so logs stay
/// finite.
fn interior(u: f64) -> f64 {
    u.clamp(1e-12, 1.0 - 1e-12)
}

/// A standard normal variate via Box–Muller from two uniforms.
fn normal(uniform: &mut impl FnMut() -> f64) -> f64 {
    let u1 = interior(uniform());
    let u2 = interior(uniform());
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Marsaglia–Tsang gamma sampler for shape `k ≥ 1`, scale 1.
fn std_gamma_ge_1(shape: f64, uniform: &mut impl FnMut() -> f64) -> f64 {
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(uniform);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u = interior(uniform());
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v3;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Gamma-distributed interarrival times with exact mean and CV.
///
/// A gamma with shape `k` and scale `θ` has mean `kθ` and coefficient
/// of variation `1/√k`, so a target `(mean, cv)` maps to
/// `k = 1/cv²`, `θ = mean·cv²`. Sampling uses Marsaglia–Tsang for
/// `k ≥ 1` and the `Gamma(k+1)·U^{1/k}` boost for `k < 1`.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
    mean: f64,
}

impl Gamma {
    /// Builds a sampler with the given interarrival mean (`> 0`) and
    /// coefficient of variation (`≥ 0`). `cv = 0` degenerates to a
    /// constant interval.
    pub fn with_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        assert!(cv >= 0.0 && cv.is_finite(), "cv must be non-negative");
        if cv == 0.0 {
            return Self {
                shape: f64::INFINITY,
                scale: 0.0,
                mean,
            };
        }
        let shape = 1.0 / (cv * cv);
        Self {
            shape,
            scale: mean / shape,
            mean,
        }
    }

    /// The requested mean interarrival time.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The requested coefficient of variation.
    pub fn cv(&self) -> f64 {
        if self.shape.is_finite() {
            1.0 / self.shape.sqrt()
        } else {
            0.0
        }
    }

    /// Draws one interarrival time. `uniform` supplies i.i.d. variates
    /// in `[0, 1)`; the number consumed per draw varies (rejection
    /// sampling), so replays must reuse the whole stream, not count
    /// draws.
    pub fn sample(&self, uniform: &mut impl FnMut() -> f64) -> f64 {
        if !self.shape.is_finite() {
            return self.mean;
        }
        let g = if self.shape >= 1.0 {
            std_gamma_ge_1(self.shape, uniform)
        } else {
            // Boost: Gamma(k) ~ Gamma(k+1) · U^{1/k} for k < 1.
            let u = interior(uniform());
            std_gamma_ge_1(self.shape + 1.0, uniform) * u.powf(1.0 / self.shape)
        };
        g * self.scale
    }
}

/// Poisson count for mean `lam` via Knuth's product method, chunked so
/// `e^{-λ}` never underflows.
fn poisson(lam: f64, uniform: &mut impl FnMut() -> f64) -> u64 {
    let mut remaining = lam;
    let mut count = 0u64;
    while remaining > 0.0 {
        let step = remaining.min(30.0);
        remaining -= step;
        let bound = (-step).exp();
        let mut prod = 1.0;
        loop {
            prod *= interior(uniform());
            if prod <= bound {
                break;
            }
            count += 1;
        }
    }
    count
}

/// Two-state Markov-modulated Poisson process.
///
/// The source alternates between state 0 (conventionally quiet) and
/// state 1 (burst). Dwell time in state `s` is exponential with mean
/// `dwell[s]`; while in state `s`, arrivals form a Poisson stream of
/// rate `rates[s]` per second. The long-run mean rate is the
/// dwell-weighted average of the two state rates.
#[derive(Clone, Copy, Debug)]
pub struct Mmpp {
    rates: [f64; 2],
    dwell: [f64; 2],
    state: usize,
    /// Time left in the current state, seconds.
    remaining: f64,
}

impl Mmpp {
    /// Builds a process starting in state 0 with a full mean dwell
    /// ahead of it (so the first draw of the dwell clock is
    /// deterministic and replays align).
    pub fn new(rates: [f64; 2], dwell: [f64; 2]) -> Self {
        assert!(
            rates.iter().all(|r| *r >= 0.0 && r.is_finite()),
            "rates must be non-negative"
        );
        assert!(
            dwell.iter().all(|d| *d > 0.0 && d.is_finite()),
            "dwell times must be positive"
        );
        Self {
            rates,
            dwell,
            state: 0,
            remaining: dwell[0],
        }
    }

    /// Builds a process whose modulating rate has the given long-run
    /// mean (`> 0`) and coefficient of variation, with the given mean
    /// dwell times. The two state rates are the unique two-point
    /// distribution on the dwell-weighted state probabilities matching
    /// both moments; the CV is capped by `√(π₀/π₁)` (beyond that the
    /// quiet rate would go negative).
    pub fn with_mean_cv(mean: f64, cv: f64, dwell: [f64; 2]) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean rate must be positive");
        assert!(cv >= 0.0 && cv.is_finite(), "cv must be non-negative");
        let p0 = dwell[0] / (dwell[0] + dwell[1]);
        let p1 = 1.0 - p0;
        let quiet = mean - cv * mean * (p1 / p0).sqrt();
        let burst = mean + cv * mean * (p0 / p1).sqrt();
        assert!(
            quiet >= 0.0,
            "cv {cv} too large for dwell split {p0:.3}/{p1:.3} (quiet rate negative)"
        );
        Self::new([quiet, burst], dwell)
    }

    /// The arrival rate of the current state, per second.
    pub fn rate(&self) -> f64 {
        self.rates[self.state]
    }

    /// The current state index (0 quiet, 1 burst).
    pub fn state(&self) -> usize {
        self.state
    }

    /// The long-run (dwell-weighted) mean arrival rate.
    pub fn mean_rate(&self) -> f64 {
        (self.rates[0] * self.dwell[0] + self.rates[1] * self.dwell[1])
            / (self.dwell[0] + self.dwell[1])
    }

    /// Advances the process by `dt` seconds and returns the number of
    /// arrivals in the interval. State flips mid-interval are handled
    /// exactly: the interval is split at each dwell expiry and each
    /// segment draws a Poisson count at its own state's rate.
    pub fn step(&mut self, dt: f64, uniform: &mut impl FnMut() -> f64) -> u64 {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be non-negative");
        let mut left = dt;
        let mut arrivals = 0u64;
        while left > 0.0 {
            let span = left.min(self.remaining);
            arrivals += poisson(self.rates[self.state] * span, uniform);
            left -= span;
            self.remaining -= span;
            if self.remaining <= 0.0 {
                self.state ^= 1;
                // Exponential dwell via inverse transform.
                self.remaining = -self.dwell[self.state] * interior(uniform()).ln();
            }
        }
        arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Inline SplitMix64 uniform stream (this crate has no deps; the
    /// real callers pass `uba_obs::SplitMix64`). A Weyl sequence is not
    /// enough here: rejection sampling and Knuth products need
    /// pair-wise-independent draws.
    fn uniform_stream() -> impl FnMut() -> f64 {
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn gamma_moments_track_the_request() {
        for &(m, c) in &[(0.5, 0.3), (1.0, 1.0), (0.25, 2.0), (2.0, 4.0)] {
            let g = Gamma::with_mean_cv(m, c);
            let mut u = uniform_stream();
            let n = 60_000;
            let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut u)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let cv = var.sqrt() / mean;
            assert!((mean - m).abs() / m < 0.05, "mean {mean} for ({m},{c})");
            assert!((cv - c).abs() / c < 0.1, "cv {cv} for ({m},{c})");
            assert!(xs.iter().all(|x| *x > 0.0));
        }
    }

    #[test]
    fn gamma_zero_cv_is_a_metronome() {
        let g = Gamma::with_mean_cv(0.125, 0.0);
        let mut u = uniform_stream();
        assert!((0..100).all(|_| g.sample(&mut u) == 0.125));
        assert_eq!(g.cv(), 0.0);
        assert_eq!(g.mean(), 0.125);
    }

    #[test]
    fn gamma_is_deterministic_for_the_same_stream() {
        let g = Gamma::with_mean_cv(1.0, 2.5);
        let mut u1 = uniform_stream();
        let mut u2 = uniform_stream();
        for _ in 0..1000 {
            assert_eq!(g.sample(&mut u1), g.sample(&mut u2));
        }
    }

    #[test]
    fn mmpp_long_run_rate_matches_the_dwell_weighted_mean() {
        let mut p = Mmpp::new([2.0, 40.0], [3.0, 1.0]);
        let mut u = uniform_stream();
        let mut total = 0u64;
        let horizon = 4000;
        for _ in 0..horizon {
            total += p.step(1.0, &mut u);
        }
        let empirical = total as f64 / horizon as f64;
        let analytic = p.mean_rate();
        assert!((analytic - 11.5).abs() < 1e-9);
        assert!(
            (empirical - analytic).abs() / analytic < 0.1,
            "empirical {empirical} vs {analytic}"
        );
    }

    #[test]
    fn mmpp_with_mean_cv_solves_the_two_point_moments() {
        let p = Mmpp::with_mean_cv(10.0, 1.0, [3.0, 1.0]);
        // π0 = 0.75, π1 = 0.25: quiet = 10 − 10·√(1/3), burst = 10 + 10·√3.
        let quiet = p.rates[0];
        let burst = p.rates[1];
        assert!((0.75 * quiet + 0.25 * burst - 10.0).abs() < 1e-9);
        let var = 0.75 * (quiet - 10.0).powi(2) + 0.25 * (burst - 10.0).powi(2);
        assert!((var.sqrt() / 10.0 - 1.0).abs() < 1e-9);
        assert!(quiet >= 0.0 && burst > quiet);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn mmpp_rejects_a_cv_that_needs_a_negative_rate() {
        let _ = Mmpp::with_mean_cv(10.0, 3.0, [1.0, 1.0]);
    }

    #[test]
    fn mmpp_burst_state_yields_more_arrivals() {
        let mut p = Mmpp::new([1.0, 50.0], [5.0, 5.0]);
        let mut u = uniform_stream();
        // Still inside the deterministic first dwell: quiet rate.
        let quiet = p.step(2.0, &mut u);
        assert_eq!(p.state(), 0);
        assert!(p.rate() == 1.0);
        // Force the flip and sample the burst state.
        let _ = p.step(3.0, &mut u);
        assert_eq!(p.state(), 1);
        assert!(p.rate() == 50.0);
        let burst = p.step(1.0_f64.min(p.remaining), &mut u);
        assert!(
            burst > quiet,
            "burst window {burst} should out-arrive quiet window {quiet}"
        );
    }

    #[test]
    fn mmpp_is_deterministic_for_the_same_stream() {
        let mut a = Mmpp::new([2.0, 40.0], [3.0, 1.0]);
        let mut b = Mmpp::new([2.0, 40.0], [3.0, 1.0]);
        let mut u1 = uniform_stream();
        let mut u2 = uniform_stream();
        for _ in 0..500 {
            assert_eq!(a.step(0.1, &mut u1), b.step(0.1, &mut u2));
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn poisson_chunking_survives_large_means() {
        // λ·span = 5000 would underflow e^{-λ} without chunking.
        let mut u = uniform_stream();
        let n = poisson(5000.0, &mut u);
        assert!((4000..6000).contains(&n), "{n}");
    }
}
