//! Property-based tests for the envelope algebra.
//!
//! These pin down the semantic contracts the delay analysis relies on:
//! closure under the operations, pointwise correctness, concavity, and the
//! busy-period maximum matching a brute-force grid search.

// Gated behind the non-default `prop-tests` feature: the `proptest`
// dev-dependency is not declared so the default build stays hermetic
// (offline, no registry). To run: re-add `proptest = "1"` under
// [dev-dependencies] and `cargo test --features prop-tests`.
#![cfg(feature = "prop-tests")]

use proptest::prelude::*;
use uba_traffic::Envelope;

/// Strategy: a modest leaky-bucket-ish envelope with random burst/rate/cap.
fn arb_bucket() -> impl Strategy<Value = (f64, f64, f64)> {
    (
        1.0..1e6f64, // sigma (bits)
        1.0..1e6f64, // rho (bits/s)
        1e3..1e8f64, // cap c (bits/s)
    )
}

fn arb_interval() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), 1e-9..1.0f64, 1.0..100.0f64,]
}

proptest! {
    #[test]
    fn min_with_line_is_pointwise_min((sigma, rho, c) in arb_bucket(), i in arb_interval()) {
        let tb = Envelope::token_bucket(sigma, rho);
        let capped = tb.min_with_line(c);
        let expect = tb.eval(i).min(c * i);
        let got = capped.eval(i);
        prop_assert!((got - expect).abs() <= 1e-6 * (1.0 + expect.abs()),
            "at {i}: got {got}, expect {expect}");
    }

    #[test]
    fn sum_is_pointwise_sum((s1, r1, c1) in arb_bucket(), (s2, r2, c2) in arb_bucket(), i in arb_interval()) {
        let a = Envelope::leaky_bucket(s1, r1, c1);
        let b = Envelope::leaky_bucket(s2, r2, c2);
        let s = a.sum(&b);
        let expect = a.eval(i) + b.eval(i);
        prop_assert!((s.eval(i) - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn shift_is_pointwise_shift((sigma, rho, c) in arb_bucket(), y in 0.0..10.0f64, i in arb_interval()) {
        let e = Envelope::leaky_bucket(sigma, rho, c);
        let shifted = e.shift(y);
        let expect = e.eval(i + y);
        prop_assert!((shifted.eval(i) - expect).abs() <= 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn operations_preserve_concavity((s1, r1, c1) in arb_bucket(), (s2, r2, c2) in arb_bucket(), y in 0.0..10.0f64) {
        let a = Envelope::leaky_bucket(s1, r1, c1);
        let b = Envelope::leaky_bucket(s2, r2, c2);
        prop_assert!(a.sum(&b).is_concave());
        prop_assert!(a.shift(y).is_concave());
        prop_assert!(a.scale(7.0).is_concave());
        prop_assert!(a.sum(&b).min_with_line(c1.min(c2)).is_concave());
    }

    #[test]
    fn operations_preserve_monotonicity((s1, r1, c1) in arb_bucket(), i in arb_interval(), di in 1e-6..10.0f64) {
        let e = Envelope::leaky_bucket(s1, r1, c1).shift(0.5).scale(3.0);
        prop_assert!(e.eval(i + di) + 1e-9 * (1.0 + e.eval(i).abs()) >= e.eval(i));
    }

    #[test]
    fn busy_max_matches_grid_search((s1, r1) in (1.0..1e5f64, 1.0..1e5f64), (s2, r2) in (1.0..1e5f64, 1.0..1e5f64)) {
        // Aggregate of two capped buckets against a server of capacity c.
        let c = 2e5f64;
        let link = 1.5e5f64;
        let a = Envelope::leaky_bucket(s1, r1, link);
        let b = Envelope::leaky_bucket(s2, r2, link);
        let agg = a.sum(&b);
        if agg.final_slope() > c {
            prop_assert!(agg.busy_max(c).is_none());
        } else {
            let (h, at) = agg.busy_max(c).unwrap();
            // The reported max is attained where claimed.
            prop_assert!((agg.eval(at) - c * at - h).abs() <= 1e-6 * (1.0 + h.abs()));
            // Grid search never beats it.
            let horizon = (s1 + s2) / (c - agg.final_slope()).max(1.0) + 1.0;
            for k in 0..=2000 {
                let x = horizon * k as f64 / 2000.0;
                let hx = agg.eval(x) - c * x;
                prop_assert!(hx <= h + 1e-6 * (1.0 + h.abs()),
                    "grid beats busy_max at {x}: {hx} > {h}");
            }
        }
    }

    #[test]
    fn delay_nonnegative_and_bounded_by_burst((s1, r1, c1) in arb_bucket()) {
        let c = c1;
        // Keep the aggregate stable: rate strictly below capacity.
        let rho = r1.min(0.9 * c);
        let agg = Envelope::token_bucket(s1, rho);
        let d = agg.delay(c).unwrap();
        prop_assert!(d >= 0.0);
        prop_assert!(d <= s1 / c + 1e-9);
    }

    #[test]
    fn scale_matches_sum_loop((sigma, rho, c) in arb_bucket(), n in 1usize..6, i in arb_interval()) {
        let e = Envelope::leaky_bucket(sigma, rho, c);
        let scaled = e.scale(n as f64);
        let mut summed = Envelope::zero();
        for _ in 0..n {
            summed = summed.sum(&e);
        }
        let (a, b) = (scaled.eval(i), summed.eval(i));
        prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
    }
}
