//! Parametric topology families.
//!
//! All generators produce bidirectional unit-weight links. The random
//! generator is seeded and deterministic, and always returns a connected
//! graph.

use uba_graph::{bfs, Digraph, NodeId};
use uba_obs::SplitMix64;

/// A line of `n >= 2` routers.
pub fn line(n: usize) -> Digraph {
    assert!(n >= 2, "line needs at least 2 routers");
    let mut g = Digraph::with_nodes(n);
    for i in 0..n - 1 {
        g.add_link(NodeId(i as u32), NodeId(i as u32 + 1), 1.0);
    }
    g
}

/// A ring of `n >= 3` routers.
pub fn ring(n: usize) -> Digraph {
    assert!(n >= 3, "ring needs at least 3 routers");
    let mut g = Digraph::with_nodes(n);
    for i in 0..n {
        g.add_link(NodeId(i as u32), NodeId(((i + 1) % n) as u32), 1.0);
    }
    g
}

/// A star: router 0 is the hub, `spokes >= 1` leaves around it.
pub fn star(spokes: usize) -> Digraph {
    assert!(spokes >= 1, "star needs at least one spoke");
    let mut g = Digraph::with_nodes(spokes + 1);
    for i in 1..=spokes {
        g.add_link(NodeId(0), NodeId(i as u32), 1.0);
    }
    g
}

/// A `w × h` grid (no wraparound).
pub fn grid(w: usize, h: usize) -> Digraph {
    assert!(w >= 1 && h >= 1 && w * h >= 2, "grid too small");
    let mut g = Digraph::with_nodes(w * h);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_link(id(x, y), id(x + 1, y), 1.0);
            }
            if y + 1 < h {
                g.add_link(id(x, y), id(x, y + 1), 1.0);
            }
        }
    }
    g
}

/// A `w × h` torus (grid with wraparound); `w, h >= 3` so no parallel
/// links arise.
pub fn torus(w: usize, h: usize) -> Digraph {
    assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3");
    let mut g = Digraph::with_nodes(w * h);
    let id = |x: usize, y: usize| NodeId((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            g.add_link(id(x, y), id((x + 1) % w, y), 1.0);
            g.add_link(id(x, y), id(x, (y + 1) % h), 1.0);
        }
    }
    g
}

/// A dumbbell: two stars of `leaves` routers joined by a chain of
/// `bottleneck_hops >= 1` links between the hubs — the canonical
/// congestion-study shape (all cross traffic shares the chain).
pub fn dumbbell(leaves: usize, bottleneck_hops: usize) -> Digraph {
    assert!(leaves >= 1, "dumbbell needs leaves");
    assert!(bottleneck_hops >= 1, "dumbbell needs a bottleneck");
    // Nodes: left hub, chain interior, right hub, then leaves.
    let chain_nodes = bottleneck_hops - 1;
    let mut g = Digraph::with_nodes(2 + chain_nodes + 2 * leaves);
    let left = NodeId(0);
    let right = NodeId((1 + chain_nodes) as u32);
    let mut prev = left;
    for i in 0..chain_nodes {
        let mid = NodeId((1 + i) as u32);
        g.add_link(prev, mid, 1.0);
        prev = mid;
    }
    g.add_link(prev, right, 1.0);
    let base = 2 + chain_nodes;
    for i in 0..leaves {
        g.add_link(left, NodeId((base + i) as u32), 1.0);
        g.add_link(right, NodeId((base + leaves + i) as u32), 1.0);
    }
    g
}

/// A two-level fat-tree-style topology: `cores` core routers, each of
/// `pods` pod routers linked to every core, and `hosts_per_pod` access
/// routers per pod. (A folded-Clos abstraction at router granularity —
/// rich path diversity between pods.)
pub fn fat_tree(cores: usize, pods: usize, hosts_per_pod: usize) -> Digraph {
    assert!(
        cores >= 1 && pods >= 2,
        "fat tree needs cores and >= 2 pods"
    );
    let mut g = Digraph::with_nodes(cores + pods + pods * hosts_per_pod);
    for p in 0..pods {
        let pod = NodeId((cores + p) as u32);
        for c in 0..cores {
            g.add_link(NodeId(c as u32), pod, 1.0);
        }
        for h in 0..hosts_per_pod {
            let host = NodeId((cores + pods + p * hosts_per_pod + h) as u32);
            g.add_link(pod, host, 1.0);
        }
    }
    g
}

/// A complete graph on `n >= 2` routers.
pub fn full_mesh(n: usize) -> Digraph {
    assert!(n >= 2, "mesh needs at least 2 routers");
    let mut g = Digraph::with_nodes(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_link(NodeId(a as u32), NodeId(b as u32), 1.0);
        }
    }
    g
}

/// Waxman-style random geometric topology on `n >= 2` routers.
///
/// Routers are placed uniformly in the unit square; a link between `u`
/// and `v` at distance `d` exists with probability
/// `beta · exp(−d / (alpha · √2))`. Connectivity is enforced afterwards
/// by linking each non-first component to its geometrically nearest
/// already-connected router, so the result is always connected.
/// Deterministic for a given seed.
pub fn waxman(n: usize, alpha: f64, beta: f64, seed: u64) -> Digraph {
    assert!(n >= 2, "waxman needs at least 2 routers");
    assert!(
        alpha > 0.0 && beta > 0.0 && beta <= 1.0,
        "bad waxman params"
    );
    let mut rng = SplitMix64::new(seed);
    let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    let dist = |a: usize, b: usize| -> f64 {
        let (dx, dy) = (pos[a].0 - pos[b].0, pos[a].1 - pos[b].1);
        (dx * dx + dy * dy).sqrt()
    };
    let mut g = Digraph::with_nodes(n);
    let max_d = std::f64::consts::SQRT_2;
    let mut connected = vec![false; n];
    for a in 0..n {
        for b in (a + 1)..n {
            let p = beta * (-dist(a, b) / (alpha * max_d)).exp();
            if rng.next_f64() < p {
                g.add_link(NodeId(a as u32), NodeId(b as u32), 1.0);
                connected[a] = true;
                connected[b] = true;
            }
        }
    }
    // Enforce global connectivity via union over BFS from node 0.
    loop {
        let reach = bfs::hop_distances(&g, NodeId(0));
        let orphan = (0..n).find(|&v| reach[v] == usize::MAX);
        match orphan {
            None => break,
            Some(v) => {
                // Attach to nearest reachable router.
                let target = (0..n)
                    .filter(|&u| reach[u] != usize::MAX)
                    .min_by(|&a, &b| dist(v, a).total_cmp(&dist(v, b)))
                    .expect("node 0 is always reachable");
                g.add_link(NodeId(v as u32), NodeId(target as u32), 1.0);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let g = line(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(bfs::diameter(&g), Some(4));
    }

    #[test]
    fn ring_shape() {
        let g = ring(8);
        assert_eq!(g.edge_count(), 16);
        assert_eq!(bfs::diameter(&g), Some(4));
        assert_eq!(g.max_in_degree(), 2);
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.max_in_degree(), 5);
        assert_eq!(bfs::diameter(&g), Some(2));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // Links: 2*4 horizontal + 3*3 vertical = 17.
        assert_eq!(g.edge_count(), 34);
        assert_eq!(bfs::diameter(&g), Some(2 + 3));
    }

    #[test]
    fn torus_shape() {
        let g = torus(4, 4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.max_in_degree(), 4);
        assert_eq!(bfs::diameter(&g), Some(4));
    }

    #[test]
    fn full_mesh_shape() {
        let g = full_mesh(5);
        assert_eq!(g.edge_count(), 20);
        assert_eq!(bfs::diameter(&g), Some(1));
        assert_eq!(g.max_in_degree(), 4);
    }

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell(3, 2);
        // 2 hubs + 1 chain node + 6 leaves.
        assert_eq!(g.node_count(), 9);
        assert!(bfs::is_strongly_connected(&g));
        // Leaf to opposite leaf: 1 + 2 + 1 = 4.
        assert_eq!(bfs::diameter(&g), Some(4));
        // Hubs carry leaves + chain.
        assert_eq!(g.in_degree(NodeId(0)), 4);
    }

    #[test]
    fn dumbbell_single_hop_bottleneck() {
        let g = dumbbell(2, 1);
        assert_eq!(g.node_count(), 6);
        assert_eq!(bfs::diameter(&g), Some(3));
    }

    #[test]
    fn fat_tree_shape() {
        let g = fat_tree(2, 3, 2);
        assert_eq!(g.node_count(), 2 + 3 + 6);
        assert!(bfs::is_strongly_connected(&g));
        // Host to host across pods: host-pod-core-pod-host = 4.
        assert_eq!(bfs::diameter(&g), Some(4));
        // Each pod router: cores + hosts.
        assert_eq!(g.in_degree(NodeId(2)), 4);
        // Path diversity: 2 disjoint core paths between any two pods.
        let paths = uba_graph::k_shortest_paths(&g, NodeId(2), NodeId(3), 4);
        assert!(paths.len() >= 2);
        assert_eq!(paths[0].len(), 2);
        assert_eq!(paths[1].len(), 2);
    }

    #[test]
    fn waxman_connected_and_deterministic() {
        for seed in 0..5u64 {
            let g = waxman(40, 0.4, 0.4, seed);
            assert!(bfs::is_strongly_connected(&g), "seed {seed}");
        }
        let a = waxman(30, 0.3, 0.5, 42);
        let b = waxman(30, 0.3, 0.5, 42);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn waxman_sparse_still_connected() {
        // Tiny beta: almost no probabilistic links; connectivity pass must
        // stitch everything together.
        let g = waxman(25, 0.1, 0.01, 7);
        assert!(bfs::is_strongly_connected(&g));
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn degenerate_line_rejected() {
        line(1);
    }
}
