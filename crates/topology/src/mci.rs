//! The MCI ISP backbone approximation (Figure 4 of the paper).
//!
//! The paper evaluates on "the MCI ISP backbone network" and reports only
//! two structural facts about it: diameter `L = 4` and maximum router
//! degree `N = 6`, with 100 Mbit/s links and every router acting as an
//! edge router. The figure itself is not machine-readable in the source
//! text, so this module encodes a 19-router, 29-link topology with a
//! meshy six-router national core (ring plus the three main diagonals),
//! six dual-homed regional attachments, six single-homed metros, and one
//! second-tier site — the structure of mid-1990s US backbones — chosen so
//! that both reported invariants hold *exactly* (asserted by unit tests
//! and debug assertions at construction).
//!
//! Every quantity in the paper's analysis depends on the topology only
//! through `L`, `N`, the capacities, and route structure, so matching
//! these invariants preserves the experiment's behaviour; the residual
//! difference in route *mixing depth* (how long the upstream prefixes
//! feeding a worst-case route are) is discussed in `EXPERIMENTS.md`.

use uba_graph::{bfs, Digraph, NodeId};

/// Number of routers in the MCI approximation.
pub const MCI_NODES: usize = 19;
/// Diameter of the MCI approximation (= the paper's `L`).
pub const MCI_DIAMETER: usize = 4;
/// Maximum router degree (= the paper's `N`).
pub const MCI_MAX_DEGREE: usize = 6;

/// City labels, cores first.
const LABELS: [&str; MCI_NODES] = [
    // 0..6: national core (ring + three diagonals)
    "SanFrancisco", // 0
    "LosAngeles",   // 1
    "Dallas",       // 2
    "Atlanta",      // 3
    "WashingtonDC", // 4
    "Chicago",      // 5
    // 6..12: dual-homed regional sites between adjacent cores
    "Seattle", // 6:  SF + LA
    "Phoenix", // 7:  LA + Dallas
    "Houston", // 8:  Dallas + Atlanta
    "Miami",   // 9:  Atlanta + DC
    "NewYork", // 10: DC + Chicago
    "Denver",  // 11: Chicago + SF
    // 12..18: single-homed metros, one per core
    "Sacramento", // 12: SF
    "SanDiego",   // 13: LA
    "Austin",     // 14: Dallas
    "Orlando",    // 15: Atlanta
    "Boston",     // 16: DC
    "Detroit",    // 17: Chicago
    // 18: second-tier site reached only through regionals
    "Portland", // 18: Seattle + Miami
];

/// Builds the MCI backbone approximation.
pub fn mci() -> Digraph {
    let mut g = Digraph::new();
    for label in LABELS {
        g.add_node(label);
    }
    let link = |g: &mut Digraph, a: usize, b: usize| {
        g.add_link(NodeId(a as u32), NodeId(b as u32), 1.0);
    };
    // Core ring (6 nodes) ...
    for i in 0..6 {
        link(&mut g, i, (i + 1) % 6);
    }
    // ... plus the three main diagonals: core diameter 2.
    link(&mut g, 0, 3);
    link(&mut g, 1, 4);
    link(&mut g, 2, 5);
    // Dual-homed regionals between adjacent cores.
    link(&mut g, 6, 0);
    link(&mut g, 6, 1);
    link(&mut g, 7, 1);
    link(&mut g, 7, 2);
    link(&mut g, 8, 2);
    link(&mut g, 8, 3);
    link(&mut g, 9, 3);
    link(&mut g, 9, 4);
    link(&mut g, 10, 4);
    link(&mut g, 10, 5);
    link(&mut g, 11, 5);
    link(&mut g, 11, 0);
    // Single-homed metros (filling each core's degree to 6).
    link(&mut g, 12, 0);
    link(&mut g, 13, 1);
    link(&mut g, 14, 2);
    link(&mut g, 15, 3);
    link(&mut g, 16, 4);
    link(&mut g, 17, 5);
    // Second-tier site reached only through regionals.
    link(&mut g, 18, 6);
    link(&mut g, 18, 9);

    debug_assert_eq!(bfs::diameter(&g), Some(MCI_DIAMETER));
    debug_assert_eq!(g.max_in_degree(), MCI_MAX_DEGREE);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_link_counts() {
        let g = mci();
        assert_eq!(g.node_count(), MCI_NODES);
        // 29 physical links = 58 directed link servers.
        assert_eq!(g.edge_count(), 58);
    }

    #[test]
    fn diameter_is_four() {
        assert_eq!(bfs::diameter(&mci()), Some(MCI_DIAMETER));
    }

    #[test]
    fn max_degree_is_six() {
        let g = mci();
        assert_eq!(g.max_in_degree(), MCI_MAX_DEGREE);
        // And it is attained by every core router.
        for i in 0..6u32 {
            assert_eq!(g.in_degree(NodeId(i)), 6, "core {i}");
        }
    }

    #[test]
    fn strongly_connected() {
        assert!(bfs::is_strongly_connected(&mci()));
    }

    #[test]
    fn in_and_out_degrees_match() {
        let g = mci();
        for n in g.nodes() {
            assert!(g.in_degree(n) >= 1);
            assert_eq!(g.in_degree(n), g.out_degree(n));
        }
    }

    #[test]
    fn labels_unique() {
        let g = mci();
        let mut seen = std::collections::HashSet::new();
        for n in g.nodes() {
            assert!(seen.insert(g.label(n).to_string()));
        }
    }

    #[test]
    fn diameter_attained_by_metro_pair() {
        // Sacramento (12, on SF) to Austin (14, on Dallas): 1 + 2 + 1 = 4.
        let g = mci();
        let d = bfs::hop_distances(&g, NodeId(12));
        assert_eq!(d[14], 4);
    }

    #[test]
    fn second_tier_site_within_reach() {
        // Portland reaches everything within the diameter.
        let g = mci();
        let d = bfs::hop_distances(&g, NodeId(18));
        assert!(d.iter().all(|&x| x <= MCI_DIAMETER));
    }
}
