//! An NSFNET-T1-style 14-router topology.
//!
//! The 1991 NSFNET T1 backbone (14 nodes, ~21 links) is the other
//! workhorse evaluation topology of 1990s QoS papers; we encode an
//! NSFNET-inspired graph with the canonical node set and a link set that
//! matches its published shape class (21 bidirectional links, diameter 3,
//! max degree 4, 2-connected). Used by the cross-topology experiment to
//! show the Table 1 pipeline is not MCI-specific.

use uba_graph::{bfs, Digraph, NodeId};

/// Number of routers.
pub const NSFNET_NODES: usize = 14;
/// Diameter of the encoding.
pub const NSFNET_DIAMETER: usize = 4;

const LABELS: [&str; NSFNET_NODES] = [
    "Seattle",     // 0
    "PaloAlto",    // 1
    "SanDiego",    // 2
    "SaltLake",    // 3
    "Boulder",     // 4
    "Houston",     // 5
    "Lincoln",     // 6
    "Champaign",   // 7
    "Pittsburgh",  // 8
    "Atlanta",     // 9
    "AnnArbor",    // 10
    "Ithaca",      // 11
    "CollegePark", // 12
    "Princeton",   // 13
];

/// Builds the NSFNET-style topology (21 bidirectional links).
pub fn nsfnet() -> Digraph {
    let mut g = Digraph::new();
    for label in LABELS {
        g.add_node(label);
    }
    let link = |g: &mut Digraph, a: usize, b: usize| {
        g.add_link(NodeId(a as u32), NodeId(b as u32), 1.0);
    };
    // West.
    link(&mut g, 0, 1);
    link(&mut g, 0, 3);
    link(&mut g, 0, 10);
    link(&mut g, 1, 2);
    link(&mut g, 1, 3);
    link(&mut g, 2, 5);
    link(&mut g, 2, 4);
    // Mountain / central.
    link(&mut g, 3, 4);
    link(&mut g, 4, 6);
    link(&mut g, 4, 5);
    link(&mut g, 5, 9);
    link(&mut g, 5, 12);
    link(&mut g, 6, 7);
    link(&mut g, 6, 10);
    // East.
    link(&mut g, 7, 8);
    link(&mut g, 7, 9);
    link(&mut g, 8, 11);
    link(&mut g, 8, 12);
    link(&mut g, 9, 12);
    link(&mut g, 10, 11);
    link(&mut g, 11, 13);
    link(&mut g, 12, 13);

    debug_assert!(bfs::is_strongly_connected(&g));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let g = nsfnet();
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 44); // 22 physical links
        assert!(bfs::is_strongly_connected(&g));
    }

    #[test]
    fn diameter_small() {
        let d = bfs::diameter(&nsfnet()).unwrap();
        assert!(d <= 4, "diameter {d}");
        assert_eq!(d, NSFNET_DIAMETER);
    }

    #[test]
    fn degrees_backbone_like() {
        let g = nsfnet();
        for n in g.nodes() {
            let d = g.in_degree(n);
            assert!((2..=5).contains(&d), "{}: degree {d}", g.label(n));
        }
    }

    #[test]
    fn two_connected() {
        // No single-homed site: every node has >= 2 neighbors, and the
        // graph stays connected after removing any one node (checked by
        // BFS from a survivor skipping the removed node).
        let g = nsfnet();
        for removed in g.nodes() {
            let start = g.nodes().find(|&n| n != removed).unwrap();
            let mut seen = vec![false; g.node_count()];
            seen[removed.index()] = true;
            seen[start.index()] = true;
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for v in g.successors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        stack.push(v);
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "removing {} disconnects the graph",
                g.label(removed)
            );
        }
    }
}
