//! Network topologies for the `uba` workspace.
//!
//! * [`mci`] — a 19-router approximation of the MCI ISP backbone used in
//!   the paper's Section 6 experiment (Figure 4), constructed to match the
//!   figure's stated invariants exactly: diameter `L = 4` and maximum
//!   router degree `N = 6`. See `DESIGN.md` §3 for the substitution note.
//! * [`generators`] — parametric families (line, ring, star, grid, torus,
//!   full mesh, Waxman-style random) for tests, ablations, and scaling
//!   benches.
//!
//! All generators return router-level [`Digraph`]s whose directed edges
//! are the link servers; every physical link is bidirectional and has unit
//! weight (hop-count routing, as in the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod mci;
pub mod nsfnet;

pub use generators::{dumbbell, fat_tree, full_mesh, grid, line, ring, star, torus, waxman};
pub use mci::mci;
pub use nsfnet::nsfnet;
