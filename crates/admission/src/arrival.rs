//! Burst/overuse telemetry: per-class arrival-rate and inter-arrival
//! CV estimators plus a GCC-style overuse detector. Observe-only.
//!
//! ROADMAP item 2 wants burst-aware *policies*; this module is the
//! measured foundation they compose over. Nothing here makes decisions:
//! the admit path counts per-class arrivals into its thread-local
//! metrics buffer (one `Cell` bump per decision), and once per buffer
//! flush the aggregated counts feed an [`ArrivalMonitor`] —
//! per class, an EWMA arrival-rate / inter-arrival-CV estimator
//! ([`ArrivalEstimator`]) and an overuse detector
//! ([`OveruseDetector`]) in the style of Google congestion control
//! (gradient of the observed rate against a slow baseline, compared to
//! a threshold, with a sustain time before latching). The results are
//! published as `admission.arrival.class<i>.rate` / `.cv` and
//! `admission.overuse_state` gauges, which the SLO engine
//! ([`uba_obs::slo`]) can consume like any other signal.
//!
//! Everything takes time as an explicit `t` parameter (seconds on the
//! caller's clock — the metrics layer passes
//! [`uba_obs::process_secs`]), so this module never reads a wall clock
//! (xtask rule 5) and tests replay scenarios deterministically.
//!
//! **Granularity caveat**: fed from the buffered metrics path, one
//! observation covers everything since the previous flush (up to
//! `FLUSH_EVERY` decisions), so the estimators see batch-granular
//! arrival counts, not individual arrival instants. Rates are exact in
//! the limit; the "CV" is the coefficient of variation of the
//! *short-window arrival rate* across batches — for a renewal process
//! observed in windows this tracks the classic inter-arrival CV (both
//! are 0 for deterministic arrivals, ~1 for Poisson, large for on/off
//! bursts), and unlike a per-batch gap estimate it still separates
//! smooth from bursty load when batches land on a regular flush
//! cadence (see the tests), at zero per-decision cost beyond the
//! counter bump.

/// Numerical floor below which a rate/gap is treated as zero.
const EPS: f64 = 1e-12;

/// EWMA arrival-rate and inter-arrival-CV estimator.
///
/// Updates are time-weighted: an observation after a gap `g` carries
/// weight `1 − exp(−g/τ)`, so the estimate's memory is `τ` seconds of
/// history regardless of how often the caller flushes.
#[derive(Clone, Debug)]
pub struct ArrivalEstimator {
    tau: f64,
    rate: f64,
    rate_sq: f64,
    obs: u64,
    last_t: Option<f64>,
    carry: u64,
    total: u64,
}

impl ArrivalEstimator {
    /// An estimator with time constant `tau` seconds (must be positive).
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0 && tau.is_finite(), "tau must be positive");
        Self {
            tau,
            rate: 0.0,
            rate_sq: 0.0,
            obs: 0,
            last_t: None,
            carry: 0,
            total: 0,
        }
    }

    /// Observes `n` arrivals at time `t` (seconds, monotone per
    /// estimator). `n = 0` is a heartbeat: it decays the rate toward
    /// zero so an idle class does not freeze at its last busy reading.
    pub fn observe_n(&mut self, t: f64, n: u64) {
        if !t.is_finite() {
            return;
        }
        self.total += n;
        let Some(last) = self.last_t else {
            self.last_t = Some(t);
            self.carry = n;
            return;
        };
        let gap = t - last;
        if gap <= EPS {
            // Same clock tick: fold into the next real gap.
            self.carry += n;
            return;
        }
        self.last_t = Some(t);
        let n = n + std::mem::take(&mut self.carry);
        let w = 1.0 - (-gap / self.tau).exp();
        // Short-window rate of this batch; its first two moments carry
        // the burstiness signal (see the module docs).
        let inst_rate = n as f64 / gap;
        self.rate += w * (inst_rate - self.rate);
        self.rate_sq += w * (inst_rate * inst_rate - self.rate_sq);
        self.obs += 1;
    }

    /// Smoothed arrivals per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Coefficient of variation of the short-window arrival rate
    /// (`0.0` until two batches have been observed). Smooth arrivals
    /// sit near 0; on/off bursty arrivals push to 1 and beyond.
    pub fn cv(&self) -> f64 {
        if self.obs < 2 || self.rate <= EPS {
            return 0.0;
        }
        let var = (self.rate_sq - self.rate * self.rate).max(0.0);
        var.sqrt() / self.rate
    }

    /// Lifetime arrivals observed.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Detector verdict. Encoded in the `admission.overuse_state` gauge as
/// `1.0` / `0.0` / `-1.0` respectively.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OveruseState {
    /// The observed rate is climbing past the baseline faster than the
    /// threshold, sustained: the class is overusing its recent budget.
    Overuse,
    /// Rate tracking its baseline.
    Normal,
    /// Rate sustainedly below baseline.
    Underuse,
}

impl OveruseState {
    /// Gauge encoding (`1` overuse, `0` normal, `-1` underuse).
    pub fn as_gauge(self) -> f64 {
        match self {
            OveruseState::Overuse => 1.0,
            OveruseState::Normal => 0.0,
            OveruseState::Underuse => -1.0,
        }
    }

    /// Stable lower-snake name for logs and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            OveruseState::Overuse => "overuse",
            OveruseState::Normal => "normal",
            OveruseState::Underuse => "underuse",
        }
    }
}

/// What a rate controller composing over the detector would do — the
/// GCC state map (overuse → back off, normal → probe up, underuse →
/// hold while queues drain). Advisory only; nothing acts on it yet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RateAction {
    /// Multiplicative decrease.
    Decrease,
    /// Additive increase.
    Increase,
    /// Hold the current rate.
    Hold,
}

/// GCC-style overuse detector over an observed-rate series.
///
/// Compares each observation's relative gradient against a slow EWMA
/// baseline: `(rate − baseline) / baseline`. A gradient beyond
/// `±threshold` must persist for `sustain` seconds before the state
/// latches to [`OveruseState::Overuse`] / [`OveruseState::Underuse`]
/// (the sustain guard is what keeps one bursty batch from flapping the
/// state); any in-band observation snaps back to normal. A cold-start
/// ramp from zero reads as overuse by design — a class whose arrival
/// rate is climbing faster than its history *is* overusing its recent
/// budget.
#[derive(Clone, Debug)]
pub struct OveruseDetector {
    threshold: f64,
    sustain: f64,
    tau: f64,
    baseline: f64,
    last_t: Option<f64>,
    /// `(is_overuse, since)` for the current out-of-band excursion.
    breach: Option<(bool, f64)>,
    state: OveruseState,
}

impl OveruseDetector {
    /// A detector with relative-gradient `threshold` (e.g. `0.25`),
    /// `sustain` seconds before latching, and baseline time constant
    /// `tau` seconds (slower than the rate estimator's).
    pub fn new(threshold: f64, sustain: f64, tau: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(sustain >= 0.0, "sustain must be non-negative");
        assert!(tau > 0.0, "tau must be positive");
        Self {
            threshold,
            sustain,
            tau,
            baseline: 0.0,
            last_t: None,
            breach: None,
            state: OveruseState::Normal,
        }
    }

    /// Feeds one rate observation at time `t`; returns the (possibly
    /// updated) state.
    pub fn update(&mut self, t: f64, rate: f64) -> OveruseState {
        if !t.is_finite() || !rate.is_finite() {
            return self.state;
        }
        let gradient = if self.baseline > EPS {
            (rate - self.baseline) / self.baseline
        } else if rate > EPS {
            // No history yet: any traffic is a full-scale ramp.
            1.0
        } else {
            0.0
        };
        // Baseline update after the comparison, so the gradient is
        // measured against history, not against itself.
        let gap = self.last_t.map_or(0.0, |last| (t - last).max(0.0));
        self.last_t = Some(t);
        let w = 1.0 - (-gap / self.tau).exp();
        self.baseline += w * (rate - self.baseline);

        let excursion = if gradient > self.threshold {
            Some(true)
        } else if gradient < -self.threshold {
            Some(false)
        } else {
            None
        };
        match excursion {
            None => {
                self.breach = None;
                self.state = OveruseState::Normal;
            }
            Some(over) => match self.breach {
                Some((dir, since)) if dir == over => {
                    if t - since >= self.sustain {
                        self.state = if over {
                            OveruseState::Overuse
                        } else {
                            OveruseState::Underuse
                        };
                    }
                }
                _ => {
                    self.breach = Some((over, t));
                    if self.sustain == 0.0 {
                        self.state = if over {
                            OveruseState::Overuse
                        } else {
                            OveruseState::Underuse
                        };
                    }
                }
            },
        }
        self.state
    }

    /// Current state.
    pub fn state(&self) -> OveruseState {
        self.state
    }

    /// The slow-EWMA rate baseline the gradient is measured against.
    pub fn baseline(&self) -> f64 {
        self.baseline
    }

    /// The GCC controller action the current state maps to.
    pub fn suggested_action(&self) -> RateAction {
        match self.state {
            OveruseState::Overuse => RateAction::Decrease,
            OveruseState::Normal => RateAction::Increase,
            OveruseState::Underuse => RateAction::Hold,
        }
    }
}

/// One estimator + detector per traffic class; the unit the buffered
/// metrics layer holds behind a mutex and feeds once per flush.
#[derive(Debug)]
pub struct ArrivalMonitor {
    classes: Vec<(ArrivalEstimator, OveruseDetector)>,
}

/// Rate-estimator time constant (seconds). Short enough that the serve
/// background loop's per-batch flushes converge within a test, long
/// enough to smooth single-batch noise.
pub const RATE_TAU: f64 = 0.25;

/// Detector baseline time constant — deliberately slower than
/// [`RATE_TAU`] so a sustained rate climb shows as a gradient against
/// history instead of being instantly absorbed.
pub const BASELINE_TAU: f64 = 2.0;

/// Detector relative-gradient threshold.
pub const OVERUSE_THRESHOLD: f64 = 0.25;

/// Detector sustain time (seconds) before latching out of normal.
pub const OVERUSE_SUSTAIN: f64 = 0.05;

impl ArrivalMonitor {
    /// A monitor for `classes` traffic classes (at least one).
    pub fn new(classes: usize) -> Self {
        Self {
            classes: (0..classes.max(1))
                .map(|_| {
                    (
                        ArrivalEstimator::new(RATE_TAU),
                        OveruseDetector::new(OVERUSE_THRESHOLD, OVERUSE_SUSTAIN, BASELINE_TAU),
                    )
                })
                .collect(),
        }
    }

    /// Number of classes tracked.
    pub fn classes(&self) -> usize {
        self.classes.len()
    }

    /// Feeds per-class arrival counts observed at time `t` (indexes
    /// beyond the class count fold into the last class, mirroring the
    /// metric layer's fixed slot array).
    pub fn observe(&mut self, t: f64, counts: &[u64]) {
        let last = self.classes.len() - 1;
        let mut folded = vec![0u64; self.classes.len()];
        for (i, &n) in counts.iter().enumerate() {
            folded[i.min(last)] += n;
        }
        for ((est, det), &n) in self.classes.iter_mut().zip(&folded) {
            est.observe_n(t, n);
            det.update(t, est.rate());
        }
    }

    /// Smoothed arrival rate of `class` (arrivals/sec).
    pub fn rate(&self, class: usize) -> f64 {
        self.classes.get(class).map_or(0.0, |(e, _)| e.rate())
    }

    /// Inter-arrival CV estimate of `class`.
    pub fn cv(&self, class: usize) -> f64 {
        self.classes.get(class).map_or(0.0, |(e, _)| e.cv())
    }

    /// Detector state of `class`.
    pub fn state(&self, class: usize) -> OveruseState {
        self.classes
            .get(class)
            .map_or(OveruseState::Normal, |(_, d)| d.state())
    }

    /// The worst state across classes (overuse dominates underuse
    /// dominates normal) — what the single `admission.overuse_state`
    /// gauge publishes.
    pub fn worst_state(&self) -> OveruseState {
        let mut worst = OveruseState::Normal;
        for (_, d) in &self.classes {
            match d.state() {
                OveruseState::Overuse => return OveruseState::Overuse,
                OveruseState::Underuse => worst = OveruseState::Underuse,
                OveruseState::Normal => {}
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_arrivals_converge_to_the_true_rate_with_low_cv() {
        let mut est = ArrivalEstimator::new(0.5);
        // 100 arrivals/sec in perfectly even 10ms batches of 1.
        for i in 0..1000 {
            est.observe_n(i as f64 * 0.01, 1);
        }
        assert!((est.rate() - 100.0).abs() < 5.0, "rate {}", est.rate());
        assert!(
            est.cv() < 0.05,
            "steady traffic must read smooth: {}",
            est.cv()
        );
        assert_eq!(est.total(), 1000);
    }

    #[test]
    fn bursty_arrivals_read_high_cv_at_the_same_mean_rate() {
        // Same 100/s mean as above, but delivered as 100-packet slugs
        // once a second: per-arrival gap estimates alternate wildly.
        let mut est = ArrivalEstimator::new(0.5);
        for i in 0..100 {
            est.observe_n(i as f64, 100);
            est.observe_n(i as f64 + 0.5, 0); // idle heartbeat between slugs
        }
        let mut smooth = ArrivalEstimator::new(0.5);
        for i in 0..10_000 {
            smooth.observe_n(i as f64 * 0.01, 1);
        }
        assert!(
            est.cv() > 3.0 * smooth.cv().max(0.01),
            "bursty {} vs smooth {}",
            est.cv(),
            smooth.cv()
        );
    }

    #[test]
    fn idle_heartbeats_decay_the_rate() {
        let mut est = ArrivalEstimator::new(0.1);
        for i in 0..100 {
            est.observe_n(i as f64 * 0.01, 10); // 1000/s
        }
        let busy = est.rate();
        assert!(busy > 500.0, "{busy}");
        for i in 0..100 {
            est.observe_n(1.0 + i as f64 * 0.01, 0);
        }
        assert!(est.rate() < busy / 100.0, "idle must decay: {}", est.rate());
    }

    #[test]
    fn same_tick_observations_fold_into_the_next_gap() {
        let mut a = ArrivalEstimator::new(0.5);
        let mut b = ArrivalEstimator::new(0.5);
        for i in 0..300 {
            let t = i as f64 * 0.01;
            a.observe_n(t, 3);
            // b sees the same arrivals split across same-tick calls;
            // only a boundary sliver (b's trailing carry) can differ,
            // and it decays with the EWMA.
            b.observe_n(t, 1);
            b.observe_n(t, 2);
        }
        assert!(
            (a.rate() - b.rate()).abs() < 0.1,
            "{} vs {}",
            a.rate(),
            b.rate()
        );
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn detector_latches_overuse_on_a_sustained_ramp_and_recovers() {
        let mut det = OveruseDetector::new(0.25, 0.05, 1.0);
        // Steady 100/s for a while: normal.
        let mut t = 0.0;
        for _ in 0..200 {
            det.update(t, 100.0);
            t += 0.01;
        }
        assert_eq!(det.state(), OveruseState::Normal);
        assert_eq!(det.suggested_action(), RateAction::Increase);
        // Rate triples and stays: overuse after the sustain window.
        for _ in 0..20 {
            det.update(t, 300.0);
            t += 0.01;
        }
        assert_eq!(det.state(), OveruseState::Overuse);
        assert_eq!(det.suggested_action(), RateAction::Decrease);
        // The baseline adapts to the new level; state returns to normal.
        for _ in 0..1000 {
            det.update(t, 300.0);
            t += 0.01;
        }
        assert_eq!(det.state(), OveruseState::Normal);
        // Collapse to a trickle: underuse, then normal again as the
        // baseline tracks down.
        for _ in 0..20 {
            det.update(t, 10.0);
            t += 0.01;
        }
        assert_eq!(det.state(), OveruseState::Underuse);
        assert_eq!(det.suggested_action(), RateAction::Hold);
    }

    #[test]
    fn one_spike_inside_the_sustain_window_does_not_latch() {
        let mut det = OveruseDetector::new(0.25, 0.05, 1.0);
        let mut t = 0.0;
        // Warm up long enough (≫ tau) that the baseline has converged
        // and the cold-start ramp has fully cleared.
        for _ in 0..1000 {
            det.update(t, 100.0);
            t += 0.01;
        }
        assert_eq!(det.state(), OveruseState::Normal);
        // A single out-of-band sample shorter than `sustain`:
        det.update(t, 500.0);
        t += 0.001;
        assert_eq!(det.update(t, 100.0), OveruseState::Normal);
    }

    #[test]
    fn monitor_folds_overflow_classes_and_reports_worst_state() {
        let mut mon = ArrivalMonitor::new(2);
        // Class 0 steady; class 1 gets everything from slots 1..4.
        for i in 0..200 {
            let t = i as f64 * 0.01;
            mon.observe(t, &[1, 5, 5, 5]);
        }
        assert!(mon.rate(0) > 50.0, "{}", mon.rate(0));
        assert!(
            mon.rate(1) > 10.0 * mon.rate(0),
            "{} vs {}",
            mon.rate(1),
            mon.rate(0)
        );
        assert_eq!(mon.rate(7), 0.0, "out-of-range class reads zero");
        // Ramp class 1 hard: worst state goes overuse.
        for i in 0..20 {
            let t = 2.0 + i as f64 * 0.01;
            mon.observe(t, &[1, 200]);
        }
        assert_eq!(mon.state(1), OveruseState::Overuse);
        assert_eq!(mon.worst_state(), OveruseState::Overuse);
        assert_eq!(OveruseState::Overuse.as_gauge(), 1.0);
        assert_eq!(OveruseState::Underuse.as_gauge(), -1.0);
        assert_eq!(OveruseState::Normal.as_str(), "normal");
    }
}
