//! Sync primitives for the lock-free admission core.
//!
//! The shimmed modules (`state`, `backend`, `generation`, `controller`)
//! import their atomics, `Arc`, and `Mutex` from here instead of
//! `std::sync` directly (the `xtask check` shim-purity rule enforces
//! it). A normal build re-exports `std` wholesale — the shim compiles
//! away entirely and the admit path is byte-for-byte what it was (the
//! `obs_overhead`/`reconfig_overhead` benches gate this). Under
//! `RUSTFLAGS="--cfg loom"` the same names resolve to `uba-loom`'s
//! modeled primitives, turning every atomic op and lock acquisition in
//! the reservation/reconfigure protocol into an explored schedule point
//! (see `tests/loom_models.rs`).

#[cfg(not(loom))]
pub(crate) use std::sync::{Arc, Mutex};

/// Atomics for the shimmed modules; `std::sync::atomic` unless `--cfg
/// loom` swaps in the model checker's versions.
#[cfg(not(loom))]
pub(crate) mod atomic {
    pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub(crate) use uba_loom::sync::{Arc, Mutex};

/// Atomics for the shimmed modules; `std::sync::atomic` unless `--cfg
/// loom` swaps in the model checker's versions.
#[cfg(loom)]
pub(crate) mod atomic {
    // `AtomicUsize` is only used by the sharded backend's home-shard
    // counter, which is `cfg(not(loom))` (the model uses the scheduler's
    // deterministic thread index instead), so it is not re-exported here.
    pub use uba_loom::sync::atomic::{AtomicU64, Ordering};
}

/// Pads (and aligns) `T` to two cache lines so adjacent slots of an
/// array never share a line. 128 bytes, not 64: Intel's spatial
/// prefetcher pulls line pairs, and aarch64 big cores have 128-byte
/// lines — padding to the pair kills both destructive-interference
/// modes. Used for the sharded backend's per-shard slots (the whole
/// point of striping a budget is that each stripe gets its own line;
/// see DESIGN.md §11 for the padding audit).
#[cfg(not(loom))]
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub T);

/// Under the model checker padding is pointless (there is no cache) and
/// alignment would only bloat the model state, so the shim is a
/// transparent wrapper with the same API.
#[cfg(loom)]
#[derive(Debug, Default)]
pub(crate) struct CachePadded<T>(pub T);

impl<T> CachePadded<T> {
    pub(crate) const fn new(value: T) -> Self {
        CachePadded(value)
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
