//! Sync primitives for the lock-free admission core.
//!
//! The shimmed modules (`state`, `backend`, `generation`, `controller`)
//! import their atomics, `Arc`, and `Mutex` from here instead of
//! `std::sync` directly (the `xtask check` shim-purity rule enforces
//! it). A normal build re-exports `std` wholesale — the shim compiles
//! away entirely and the admit path is byte-for-byte what it was (the
//! `obs_overhead`/`reconfig_overhead` benches gate this). Under
//! `RUSTFLAGS="--cfg loom"` the same names resolve to `uba-loom`'s
//! modeled primitives, turning every atomic op and lock acquisition in
//! the reservation/reconfigure protocol into an explored schedule point
//! (see `tests/loom_models.rs`).

#[cfg(not(loom))]
pub(crate) use std::sync::{Arc, Mutex};

/// Atomics for the shimmed modules; `std::sync::atomic` unless `--cfg
/// loom` swaps in the model checker's versions.
#[cfg(not(loom))]
pub(crate) mod atomic {
    pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub(crate) use uba_loom::sync::{Arc, Mutex};

/// Atomics for the shimmed modules; `std::sync::atomic` unless `--cfg
/// loom` swaps in the model checker's versions.
#[cfg(loom)]
pub(crate) mod atomic {
    // `AtomicUsize` is only used by the sharded backend's home-shard
    // counter, which is `cfg(not(loom))` (the model uses the scheduler's
    // deterministic thread index instead), so it is not re-exported here.
    pub use uba_loom::sync::atomic::{AtomicU64, Ordering};
}
