//! Lock-free per-(server, class) bandwidth accounting.
//!
//! The admission invariant the whole paper rests on: the reserved rate of
//! class `i` on any link never exceeds `α_i · C`. We enforce it with one
//! `AtomicU64` per (server, class) and a compare-exchange reservation
//! loop — admissions from any number of threads can proceed concurrently
//! without locks, and the budget check is exact (rates are accounted in
//! integer millibits/second, so no floating-point drift can accumulate).

use crate::sync::atomic::{AtomicU64, Ordering};

/// Rates are stored in millibits/second: exact integer accounting with
/// enough resolution for any practical rate.
pub(crate) const SCALE: f64 = 1000.0;

/// Largest millibit value that is exactly representable as an `f64`
/// (2^53). Above this, `rate * SCALE` silently loses integer precision
/// and the "exact accounting" invariant would be fiction; 2^53 mb/s is
/// ~9 Pb/s, far beyond any link this model describes.
pub(crate) const MAX_EXACT_MILLIBITS: f64 = 9_007_199_254_740_992.0;

pub(crate) fn to_millibits(rate: f64) -> u64 {
    assert!(rate >= 0.0 && rate.is_finite(), "rate must be >= 0");
    let mb = (rate * SCALE).round();
    assert!(
        mb <= MAX_EXACT_MILLIBITS,
        "rate {rate} bits/s exceeds exact millibit accounting range \
         ({MAX_EXACT_MILLIBITS} mb/s)"
    );
    mb as u64
}

/// Reserved-rate counters for every (server, class) pair.
#[derive(Debug)]
pub struct UtilizationState {
    servers: usize,
    classes: usize,
    /// Budget `α_i · C_k` per (server, class), millibits/s.
    budgets: Vec<u64>,
    /// Currently reserved rate per (server, class), millibits/s.
    // padding: cells are shared by every thread by design (one counter
    // per (server, class) is the whole point of the atomic backend), so
    // per-cell cache-line padding would only grow the table ~16x without
    // removing any sharing. Cross-thread isolation lives in the sharded
    // backend instead.
    reserved: Vec<AtomicU64>,
}

impl UtilizationState {
    /// Creates the state from per-server capacities and per-class
    /// utilization shares: budget of class `i` on server `k` is
    /// `alphas[i] * capacities[k]`.
    pub fn new(capacities: &[f64], alphas: &[f64]) -> Self {
        assert!(!alphas.is_empty(), "need at least one class");
        for &a in alphas {
            assert!((0.0..=1.0).contains(&a), "alpha must be in [0, 1]");
        }
        let servers = capacities.len();
        let classes = alphas.len();
        let mut budgets = Vec::with_capacity(servers * classes);
        for &c in capacities {
            assert!(c > 0.0 && c.is_finite(), "capacity must be positive");
            for &a in alphas {
                budgets.push(to_millibits(a * c));
            }
        }
        let reserved = (0..servers * classes).map(|_| AtomicU64::new(0)).collect();
        Self {
            servers,
            classes,
            budgets,
            reserved,
        }
    }

    /// Number of link servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    #[inline]
    fn idx(&self, server: usize, class: usize) -> usize {
        debug_assert!(server < self.servers && class < self.classes);
        server * self.classes + class
    }

    /// Attempts to reserve `rate` bits/s of class `class` on `server`.
    /// Returns `true` on success; never overshoots the budget.
    pub fn try_reserve(&self, server: usize, class: usize, rate: f64) -> bool {
        self.try_reserve_with_retries(server, class, rate).0
    }

    /// Like [`try_reserve`](Self::try_reserve), additionally reporting how
    /// many CAS retries the reservation loop took (0 on an uncontended
    /// cell) so contention is observable.
    pub fn try_reserve_with_retries(&self, server: usize, class: usize, rate: f64) -> (bool, u32) {
        let want = to_millibits(rate);
        let i = self.idx(server, class);
        let budget = self.budgets[i];
        let cell = &self.reserved[i];
        let mut cur = cell.load(Ordering::Relaxed);
        let mut retries = 0u32;
        loop {
            let Some(next) = cur.checked_add(want) else {
                return (false, retries);
            };
            if next > budget {
                return (false, retries);
            }
            // ordering: AcqRel — the success edge orders this reserve
            // against the release fetch_sub on the same cell, so a
            // reserve that consumes freed headroom happens-after the
            // flow teardown that freed it; failure reloads need no edge.
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return (true, retries),
                Err(actual) => {
                    cur = actual;
                    retries += 1;
                }
            }
        }
    }

    /// Whether reserving `rate` bits/s of `class` on `server` would
    /// succeed *right now*, without reserving anything. Uses the same
    /// exact integer-millibit predicate as
    /// [`try_reserve`](Self::try_reserve), so a dry-run diagnosis (the
    /// admission `explain` path) can never disagree with the real
    /// admission decision taken against the same state.
    pub fn would_fit(&self, server: usize, class: usize, rate: f64) -> bool {
        let want = to_millibits(rate);
        let i = self.idx(server, class);
        // ordering: Acquire pairs with the AcqRel reserve/release RMWs
        // so a dry run that observes freed headroom also observes the
        // teardown writes that freed it.
        let cur = self.reserved[i].load(Ordering::Acquire);
        match cur.checked_add(want) {
            Some(next) => next <= self.budgets[i],
            None => false,
        }
    }

    /// Releases a previously successful reservation.
    ///
    /// # Panics
    /// Panics if the release exceeds what is currently reserved — that is
    /// always an accounting bug in the caller.
    pub fn release(&self, server: usize, class: usize, rate: f64) {
        let amount = to_millibits(rate);
        let i = self.idx(server, class);
        // ordering: AcqRel — the release publishes the flow's teardown
        // to the next reserve CAS that consumes the freed headroom (the
        // counterpart of the reserve edge above).
        let prev = self.reserved[i].fetch_sub(amount, Ordering::AcqRel);
        assert!(
            prev >= amount,
            "release of {amount} exceeds reservation {prev} on server {server}"
        );
    }

    /// Reserved rate of `class` on `server` in bits/s.
    pub fn reserved(&self, server: usize, class: usize) -> f64 {
        // ordering: Acquire — diagnostics reads see a cell state no
        // older than any reservation the caller already observed.
        self.reserved[self.idx(server, class)].load(Ordering::Acquire) as f64 / SCALE
    }

    /// Budget of `class` on `server` in bits/s.
    pub fn budget(&self, server: usize, class: usize) -> f64 {
        self.budgets[self.idx(server, class)] as f64 / SCALE
    }

    /// Fraction of the class budget in use on `server` (0 when the class
    /// budget is zero).
    pub fn occupancy(&self, server: usize, class: usize) -> f64 {
        let b = self.budgets[self.idx(server, class)];
        if b == 0 {
            0.0
        } else {
            // ordering: Acquire — same advisory-read edge as `reserved`.
            self.reserved[self.idx(server, class)].load(Ordering::Acquire) as f64 / b as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn state() -> UtilizationState {
        // Two servers at 1 Mb/s, one class at 50%.
        UtilizationState::new(&[1e6, 1e6], &[0.5])
    }

    #[test]
    fn reserve_until_budget() {
        let s = state();
        // Budget 500 kb/s; 15 x 32 kb/s = 480 fits, 16th does not.
        for i in 0..15 {
            assert!(s.try_reserve(0, 0, 32_000.0), "reservation {i}");
        }
        assert!(!s.try_reserve(0, 0, 32_000.0));
        // Other server untouched.
        assert!(s.try_reserve(1, 0, 32_000.0));
    }

    #[test]
    fn release_restores_headroom() {
        let s = state();
        assert!(s.try_reserve(0, 0, 400_000.0));
        assert!(!s.try_reserve(0, 0, 200_000.0));
        s.release(0, 0, 400_000.0);
        assert!(s.try_reserve(0, 0, 500_000.0));
        assert_eq!(s.reserved(0, 0), 500_000.0);
    }

    #[test]
    fn exact_boundary_admission() {
        let s = state();
        assert!(s.try_reserve(0, 0, 500_000.0));
        assert!(!s.try_reserve(0, 0, 0.001));
        assert_eq!(s.occupancy(0, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds reservation")]
    fn over_release_panics() {
        let s = state();
        s.try_reserve(0, 0, 1000.0);
        s.release(0, 0, 2000.0);
    }

    #[test]
    fn per_class_budgets_independent() {
        let s = UtilizationState::new(&[1e6], &[0.3, 0.2]);
        assert_eq!(s.budget(0, 0), 300_000.0);
        assert_eq!(s.budget(0, 1), 200_000.0);
        assert!(s.try_reserve(0, 0, 300_000.0));
        // Class 0 full; class 1 unaffected.
        assert!(!s.try_reserve(0, 0, 1.0));
        assert!(s.try_reserve(0, 1, 200_000.0));
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        // 8 threads hammer one counter; at most budget/rate succeed.
        let s = Arc::new(UtilizationState::new(&[1e6], &[0.5]));
        let rate = 32_000.0;
        let max_ok = (500_000.0 / rate) as usize; // 15
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0usize;
                for _ in 0..100 {
                    if s.try_reserve(0, 0, rate) {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, max_ok);
        assert!(s.reserved(0, 0) <= 500_000.0);
    }

    #[test]
    fn concurrent_reserve_release_balances_to_zero() {
        let s = Arc::new(UtilizationState::new(&[1e8], &[0.5]));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let rate = 1000.0 + t as f64;
                for _ in 0..1000 {
                    if s.try_reserve(0, 0, rate) {
                        s.release(0, 0, rate);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.reserved(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        UtilizationState::new(&[1e6], &[1.5]);
    }

    #[test]
    fn millibits_exact_at_the_precision_boundary() {
        // The largest exactly-representable millibit count converts.
        assert_eq!(
            to_millibits(MAX_EXACT_MILLIBITS / SCALE),
            MAX_EXACT_MILLIBITS as u64
        );
    }

    #[test]
    #[should_panic(expected = "exceeds exact millibit accounting range")]
    fn millibits_overflow_rejected() {
        // 1e16 bits/s -> 1e19 millibits, past f64's exact-integer range.
        to_millibits(1e16);
    }
}
