//! Admission-path instrumentation.
//!
//! All counters live in a [`uba_obs::Registry`] (the process-global one
//! by default). The bare admit walk is ~100 ns, so even relaxed atomic
//! increments (a full fence each on x86) would cost tens of percent;
//! instead the hot-path events (admit + route length, release) go into a
//! **thread-local buffer** of plain integer cells and are published with
//! a few `fetch_add`s every [`FLUSH_EVERY`] events, when a thread exits,
//! when the buffer is adopted by a different metrics instance, and on
//! [`AdmissionMetrics::flush`] /
//! [`crate::AdmissionController::refresh_gauges`]. That keeps the
//! metered admit path within a few percent of the bare CAS walk —
//! `uba-bench`'s `obs_overhead` binary checks that claim. Rejection
//! counters stay direct atomics (the reject path already pays for state
//! reads), and the per-class utilization gauges are *not* updated per
//! admit; they are refreshed on demand by
//! [`crate::AdmissionController::refresh_gauges`] so the hot path never
//! pays for them.

use crate::arrival::ArrivalMonitor;
use crate::generation::BackendKind;
use crate::policy::STAGE_NAMES;
use crate::sync::CachePadded;
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Mutex};
use uba_obs::{Counter, Gauge, Histogram, Registry, Stopwatch};

/// Hot-path events buffered per thread before one atomic publish.
pub const FLUSH_EVERY: u32 = 1024;

/// Admission decisions between latency samples (per thread). Timing
/// every decision would put two clock reads (~tens of ns) on a ~100 ns
/// walk and blow the overhead budget; a 1-in-64 sample keeps the
/// amortized cost under a nanosecond per decision while still feeding
/// the `admission.admit_ns` histogram thousands of samples per second
/// under any real load. The histogram is therefore a statistical sample
/// of decision latency, not a census.
pub const LATENCY_SAMPLE_EVERY: u32 = 64;

/// Route-length slots in the thread-local buffer; the last slot absorbs
/// longer routes (far beyond any real diameter).
const HOP_SLOTS: usize = 32;

/// CAS-retry slots in the thread-local buffer; the last slot absorbs
/// pathological retry counts.
const RETRY_SLOTS: usize = 16;

/// Buffered latency samples between flushes. At one sample per
/// [`LATENCY_SAMPLE_EVERY`] decisions and a flush at least every
/// [`FLUSH_EVERY`] events, 32 slots cannot overflow; if external flush
/// patterns ever defeat that, the recorder falls through to a direct
/// histogram record.
const LAT_SLOTS: usize = 32;

/// Per-class arrival-count slots in the thread-local buffer; classes
/// beyond the last slot fold into it (mirrored by
/// [`ArrivalMonitor::observe`]).
const ARRIVAL_SLOTS: usize = 8;

/// Shared endpoint of the buffered arrival counts: the per-class
/// estimators/detectors ([`crate::arrival`]) plus the gauges they
/// publish. Fed once per thread-buffer flush — one clock read and one
/// uncontended mutex acquisition per [`FLUSH_EVERY`] hot-path events,
/// which is what keeps the observe-only telemetry inside the `<5%`
/// overhead budget (`slo_overhead` in `uba-bench` checks this).
#[derive(Debug)]
pub struct ArrivalSink {
    monitor: Mutex<ArrivalMonitor>,
    class_rate: Vec<Arc<Gauge>>,
    class_cv: Vec<Arc<Gauge>>,
    overuse_state: Arc<Gauge>,
}

impl ArrivalSink {
    fn new(registry: &Registry, classes: usize) -> Self {
        let classes = classes.max(1);
        Self {
            monitor: Mutex::new(ArrivalMonitor::new(classes)),
            class_rate: (0..classes)
                .map(|i| registry.gauge(&format!("admission.arrival.class{i}.rate")))
                .collect(),
            class_cv: (0..classes)
                .map(|i| registry.gauge(&format!("admission.arrival.class{i}.cv")))
                .collect(),
            overuse_state: registry.gauge("admission.overuse_state"),
        }
    }

    /// Feeds one batch of per-class arrival counts observed "now" (on
    /// the snapshot clock) and republishes the gauges. All-zero counts
    /// are meaningful: they are the idle heartbeat that decays the rate
    /// estimates.
    fn observe(&self, counts: &[u64]) {
        let t = uba_obs::process_secs();
        let mut mon = self.monitor.lock().unwrap_or_else(|p| p.into_inner());
        mon.observe(t, counts);
        for (i, g) in self.class_rate.iter().enumerate() {
            g.set(mon.rate(i));
        }
        for (i, g) in self.class_cv.iter().enumerate() {
            g.set(mon.cv(i));
        }
        self.overuse_state.set(mon.worst_state().as_gauge());
    }

    /// Smoothed arrival rate of `class` (offered admissions/sec).
    pub fn rate(&self, class: usize) -> f64 {
        let mon = self.monitor.lock().unwrap_or_else(|p| p.into_inner());
        mon.rate(class)
    }

    /// Inter-arrival CV estimate of `class`.
    pub fn cv(&self, class: usize) -> f64 {
        let mon = self.monitor.lock().unwrap_or_else(|p| p.into_inner());
        mon.cv(class)
    }

    /// Worst detector state across classes (the value behind the
    /// `admission.overuse_state` gauge).
    pub fn worst_state(&self) -> crate::arrival::OveruseState {
        let mon = self.monitor.lock().unwrap_or_else(|p| p.into_inner());
        mon.worst_state()
    }
}

/// Flush targets of the thread-local buffer (kept alive by the `Arc`s,
/// so the owner pointer below can never dangle).
struct HotHandles {
    admits: Arc<Counter>,
    releases: Arc<Counter>,
    path_hops: Arc<Histogram>,
    admit_ns: Arc<Histogram>,
    retries_atomic: Arc<Histogram>,
    retries_sharded: Arc<Histogram>,
    arrival: Arc<ArrivalSink>,
}

/// Per-thread buffered deltas for the admission hot path.
struct Pending {
    /// Identity of the owning metrics instance (its `admits` allocation).
    owner: Cell<*const Counter>,
    handles: RefCell<Option<HotHandles>>,
    admits: Cell<u64>,
    releases: Cell<u64>,
    hops: [Cell<u32>; HOP_SLOTS],
    /// Per-class offered-arrival counts (admits + link-full rejects)
    /// awaiting one [`ArrivalSink::observe`] call at flush.
    arrivals: [Cell<u32>; ARRIVAL_SLOTS],
    /// Per-decision CAS retry counts, one slot per retry count, split by
    /// backend kind (a thread can drive both kinds via different
    /// generations).
    retries_atomic: [Cell<u32>; RETRY_SLOTS],
    retries_sharded: [Cell<u32>; RETRY_SLOTS],
    /// Sampled decision latencies (ns) awaiting flush.
    lat: [Cell<f64>; LAT_SLOTS],
    lat_len: Cell<usize>,
    /// Decisions until the next latency sample.
    lat_countdown: Cell<u32>,
    /// Events since the last flush.
    ops: Cell<u32>,
}

impl Pending {
    const fn new() -> Self {
        Self {
            owner: Cell::new(std::ptr::null()),
            handles: RefCell::new(None),
            admits: Cell::new(0),
            releases: Cell::new(0),
            hops: [const { Cell::new(0) }; HOP_SLOTS],
            arrivals: [const { Cell::new(0) }; ARRIVAL_SLOTS],
            retries_atomic: [const { Cell::new(0) }; RETRY_SLOTS],
            retries_sharded: [const { Cell::new(0) }; RETRY_SLOTS],
            lat: [const { Cell::new(0.0) }; LAT_SLOTS],
            lat_len: Cell::new(0),
            lat_countdown: Cell::new(0),
            ops: Cell::new(0),
        }
    }

    /// Publishes the buffered deltas into the owner's shared counters.
    fn flush(&self) {
        self.ops.set(0);
        let handles = self.handles.borrow();
        let Some(h) = handles.as_ref() else {
            return;
        };
        let n = self.admits.replace(0);
        if n > 0 {
            h.admits.add(n);
        }
        let n = self.releases.replace(0);
        if n > 0 {
            h.releases.add(n);
        }
        for (i, c) in self.hops.iter().enumerate() {
            let n = c.replace(0);
            if n > 0 {
                h.path_hops.record_n(i as f64, n as u64);
            }
        }
        for (hist, slots) in [
            (&h.retries_atomic, &self.retries_atomic),
            (&h.retries_sharded, &self.retries_sharded),
        ] {
            for (i, c) in slots.iter().enumerate() {
                let n = c.replace(0);
                if n > 0 {
                    hist.record_n(i as f64, n as u64);
                }
            }
        }
        let lat_len = self.lat_len.replace(0);
        for cell in &self.lat[..lat_len] {
            h.admit_ns.record(cell.get());
        }
        let mut counts = [0u64; ARRIVAL_SLOTS];
        for (slot, c) in counts.iter_mut().zip(&self.arrivals) {
            *slot = u64::from(c.replace(0));
        }
        // Unconditional: an all-zero batch is the idle heartbeat that
        // lets the rate estimators decay between bursts.
        h.arrival.observe(&counts);
    }

    /// Re-points the buffer at `m`, flushing the previous owner's deltas.
    #[cold]
    fn adopt(&self, m: &AdmissionMetrics) {
        self.flush();
        self.owner.set(Arc::as_ptr(&m.admits));
        *self.handles.borrow_mut() = Some(HotHandles {
            admits: Arc::clone(&m.admits),
            releases: Arc::clone(&m.releases),
            path_hops: Arc::clone(&m.path_hops),
            admit_ns: Arc::clone(&m.admit_ns),
            retries_atomic: Arc::clone(&m.retries_atomic),
            retries_sharded: Arc::clone(&m.retries_sharded),
            arrival: Arc::clone(&m.arrival),
        });
    }

    #[inline]
    fn bump(&self) {
        let ops = self.ops.get() + 1;
        if ops >= FLUSH_EVERY {
            self.flush();
        } else {
            self.ops.set(ops);
        }
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        // Thread exit: publish whatever is still buffered.
        self.flush();
    }
}

thread_local! {
    // CachePadded: TLS blocks of different threads can be allocated
    // adjacently, and this buffer's counters are the hottest stores on
    // the admit path — padding keeps one thread's buffer from
    // false-sharing a cache line with a neighbor thread's (DESIGN.md §11
    // padding audit).
    static PENDING: CachePadded<Pending> = const { CachePadded::new(Pending::new()) };
}

/// Handles to every admission-layer metric.
///
/// Metric names (all under the `admission.` prefix):
///
/// | name | kind | meaning |
/// |---|---|---|
/// | `admission.admits` | counter | flows admitted |
/// | `admission.rejects.no_route` | counter | rejects: no configured route |
/// | `admission.rejects.link_full` | counter | rejects: some link at budget |
/// | `admission.rejects.link_full.class<i>` | counter | ditto, split by class |
/// | `admission.rejects.policy.<stage>` | counter | rejects by policy stage `<stage>` (one counter per [`STAGE_NAMES`] entry) |
/// | `admission.cas_retries` | counter | CAS reservation retries |
/// | `admission.releases` | counter | flows torn down |
/// | `admission.path_hops` | histogram | route length per admitted flow |
/// | `admission.class<i>.max_share` | gauge | peak budget share of class i |
/// | `admission.class<i>.reserved_bps` | gauge | total reserved rate of class i |
/// | `admission.generation` | gauge | id of the current config generation |
/// | `admission.generations.retired_pinned` | gauge | flows pinned to retired generations |
/// | `admission.reconfigures` | counter | generation swaps applied |
/// | `admission.reconfigure_ns` | histogram | swap latency (pointer install), ns |
/// | `admission.admit_ns` | histogram | sampled per-decision latency, ns (1 in [`LATENCY_SAMPLE_EVERY`]) |
/// | `admission.retries_per_op.atomic` | histogram | CAS retries per decision, atomic backend |
/// | `admission.retries_per_op.sharded` | histogram | CAS retries per decision, sharded backend |
/// | `admission.sharded.borrows` | gauge | cross-shard borrows (home shard partial) |
/// | `admission.sharded.steals` | gauge | cross-shard steals (home shard empty) |
/// | `admission.sharded.spurious_rejects` | gauge | contention-induced rejects (structurally 0 under the two-phase protocol; a tripwire) |
/// | `admission.batches` | counter | batched admission decisions ([`try_admit_batch`](crate::AdmissionController::try_admit_batch)) |
/// | `admission.batch_fallbacks` | counter | batches whose aggregate did not fit (re-tried flow-by-flow) |
/// | `admission.arrival.class<i>.rate` | gauge | EWMA offered-arrival rate of class i (admits + link-full rejects)/s |
/// | `admission.arrival.class<i>.cv` | gauge | inter-arrival CV estimate of class i (burstiness) |
/// | `admission.overuse_state` | gauge | GCC-style overuse detector, worst class: 1 overuse / 0 normal / −1 underuse |
#[derive(Clone, Debug)]
pub struct AdmissionMetrics {
    /// Flows admitted.
    pub admits: Arc<Counter>,
    /// Rejections because no route was configured.
    pub rejects_no_route: Arc<Counter>,
    /// Rejections because a link had no headroom (all classes).
    pub rejects_link_full: Arc<Counter>,
    /// Per-class split of the link-full rejections.
    pub rejects_link_full_class: Vec<Arc<Counter>>,
    /// Rejections by policy stage, indexed like [`STAGE_NAMES`]. Direct
    /// atomics like the other reject counters: a policy reject is off
    /// the admitted-flow hot path.
    pub rejects_policy: Vec<Arc<Counter>>,
    /// CAS retries across all reservation loops.
    pub cas_retries: Arc<Counter>,
    /// Flows released (handle dropped).
    pub releases: Arc<Counter>,
    /// Route length (hops) per admitted flow.
    pub path_hops: Arc<Histogram>,
    /// Per-class maximum budget share across servers (refreshed on demand).
    pub class_max_share: Vec<Arc<Gauge>>,
    /// Per-class total reserved rate in bits/s (refreshed on demand).
    pub class_reserved_bps: Vec<Arc<Gauge>>,
    /// Id of the currently installed configuration generation.
    pub generation: Arc<Gauge>,
    /// Flows still pinned to retired generations (refreshed by
    /// `drain`/`refresh_gauges`).
    pub retired_pinned: Arc<Gauge>,
    /// Configuration generation swaps applied.
    pub reconfigures: Arc<Counter>,
    /// Latency of the generation-pointer swap itself, nanoseconds.
    pub reconfigure_ns: Arc<Histogram>,
    /// Sampled admission-decision latency, nanoseconds (one decision in
    /// [`LATENCY_SAMPLE_EVERY`] is timed; see the module docs).
    pub admit_ns: Arc<Histogram>,
    /// CAS retries per decision on [`BackendKind::Atomic`] generations
    /// (zero-retry decisions are recorded too, so the histogram's mean
    /// is the retry *rate*).
    pub retries_atomic: Arc<Histogram>,
    /// CAS retries per decision on [`BackendKind::Sharded`] generations.
    pub retries_sharded: Arc<Histogram>,
    /// Cross-shard borrows of the current sharded backend (refreshed by
    /// `refresh_gauges`; 0 on atomic generations).
    pub sharded_borrows: Arc<Gauge>,
    /// Cross-shard steals of the current sharded backend.
    pub sharded_steals: Arc<Gauge>,
    /// Spurious (contention-induced) rejects of the current sharded
    /// backend. Structurally zero under the two-phase borrow protocol;
    /// kept as a regression tripwire (the scaling bench gates on it).
    pub sharded_spurious_rejects: Arc<Gauge>,
    /// Batched admission decisions
    /// ([`try_admit_batch`](crate::AdmissionController::try_admit_batch)
    /// calls, fast path or fallback).
    pub batches: Arc<Counter>,
    /// Batches whose aggregate demand did not fit and were re-tried
    /// flow-by-flow.
    pub batch_fallbacks: Arc<Counter>,
    /// Burst/overuse telemetry endpoint: per-class arrival estimators
    /// and the overuse detector, fed from the thread buffers at flush
    /// and published as `admission.arrival.*` / `admission.overuse_state`.
    pub arrival: Arc<ArrivalSink>,
}

impl AdmissionMetrics {
    /// Registers (or re-attaches to) the admission metrics in `registry`
    /// for `classes` traffic classes.
    pub fn register(registry: &Registry, classes: usize) -> Self {
        Self {
            admits: registry.counter("admission.admits"),
            rejects_no_route: registry.counter("admission.rejects.no_route"),
            rejects_link_full: registry.counter("admission.rejects.link_full"),
            rejects_link_full_class: (0..classes)
                .map(|i| registry.counter(&format!("admission.rejects.link_full.class{i}")))
                .collect(),
            rejects_policy: STAGE_NAMES
                .iter()
                .map(|s| registry.counter(&format!("admission.rejects.policy.{s}")))
                .collect(),
            cas_retries: registry.counter("admission.cas_retries"),
            releases: registry.counter("admission.releases"),
            path_hops: registry.histogram("admission.path_hops", 1.0),
            class_max_share: (0..classes)
                .map(|i| registry.gauge(&format!("admission.class{i}.max_share")))
                .collect(),
            class_reserved_bps: (0..classes)
                .map(|i| registry.gauge(&format!("admission.class{i}.reserved_bps")))
                .collect(),
            generation: registry.gauge("admission.generation"),
            retired_pinned: registry.gauge("admission.generations.retired_pinned"),
            reconfigures: registry.counter("admission.reconfigures"),
            reconfigure_ns: registry.histogram("admission.reconfigure_ns", 2.0),
            admit_ns: registry.histogram("admission.admit_ns", 2.0),
            retries_atomic: registry.histogram("admission.retries_per_op.atomic", 1.0),
            retries_sharded: registry.histogram("admission.retries_per_op.sharded", 1.0),
            sharded_borrows: registry.gauge("admission.sharded.borrows"),
            sharded_steals: registry.gauge("admission.sharded.steals"),
            sharded_spurious_rejects: registry.gauge("admission.sharded.spurious_rejects"),
            batches: registry.counter("admission.batches"),
            batch_fallbacks: registry.counter("admission.batch_fallbacks"),
            arrival: Arc::new(ArrivalSink::new(registry, classes)),
        }
    }

    /// Registers against the process-global registry.
    pub fn global(classes: usize) -> Self {
        Self::register(uba_obs::global(), classes)
    }

    /// Records one admission (and its route length in hops) into this
    /// thread's buffer. Published by [`flush`](Self::flush), thread exit,
    /// or automatically every [`FLUSH_EVERY`] hot-path events.
    #[inline]
    pub fn record_admit(&self, hops: usize) {
        PENDING.with(|p| {
            if p.owner.get() != Arc::as_ptr(&self.admits) {
                p.adopt(self);
            }
            p.admits.set(p.admits.get() + 1);
            let slot = hops.min(HOP_SLOTS - 1);
            p.hops[slot].set(p.hops[slot].get() + 1);
            p.bump();
        });
    }

    /// Records one flow teardown into this thread's buffer.
    #[inline]
    pub fn record_release(&self) {
        PENDING.with(|p| {
            if p.owner.get() != Arc::as_ptr(&self.admits) {
                p.adopt(self);
            }
            p.releases.set(p.releases.get() + 1);
            p.bump();
        });
    }

    /// Records one offered arrival for `class` (an admission attempt
    /// that reached the reservation walk: admitted or link-full
    /// rejected) into this thread's buffer. Classes beyond the buffer's
    /// slot count fold into the last slot. The aggregated counts feed
    /// the arrival estimators and overuse detector once per flush.
    #[inline]
    pub fn record_arrival(&self, class: usize) {
        PENDING.with(|p| {
            if p.owner.get() != Arc::as_ptr(&self.admits) {
                p.adopt(self);
            }
            let slot = class.min(ARRIVAL_SLOTS - 1);
            p.arrivals[slot].set(p.arrivals[slot].get() + 1);
            p.bump();
        });
    }

    /// Starts a latency sample for the decision about to run, one in
    /// [`LATENCY_SAMPLE_EVERY`] calls per thread; `None` on unsampled
    /// decisions. The non-sampled path costs one thread-local decrement
    /// — no clock read.
    #[inline]
    pub fn admit_timer(&self) -> Option<Stopwatch> {
        PENDING.with(|p| {
            let left = p.lat_countdown.get();
            if left > 0 {
                p.lat_countdown.set(left - 1);
                None
            } else {
                p.lat_countdown.set(LATENCY_SAMPLE_EVERY - 1);
                Some(Stopwatch::start())
            }
        })
    }

    /// Finishes a latency sample started by [`admit_timer`](Self::admit_timer)
    /// into this thread's buffer. A no-op for unsampled (`None`)
    /// decisions.
    #[inline]
    pub fn record_admit_ns(&self, timer: Option<Stopwatch>) {
        let Some(t) = timer else {
            return;
        };
        let ns = t.elapsed_ns();
        PENDING.with(|p| {
            if p.owner.get() != Arc::as_ptr(&self.admits) {
                p.adopt(self);
            }
            let len = p.lat_len.get();
            if len < LAT_SLOTS {
                p.lat[len].set(ns);
                p.lat_len.set(len + 1);
            } else {
                // Buffer defeated by an unusual flush pattern: record
                // directly rather than dropping the sample.
                self.admit_ns.record(ns);
            }
            p.bump();
        });
    }

    /// Records the CAS retry count of one decision (admit or link-full
    /// reject) against the backend kind that served it, into this
    /// thread's buffer. Zero-retry decisions count too: the histogram
    /// mean is then retries-per-operation, the scaling benchmark's
    /// contention figure.
    #[inline]
    pub fn record_retries(&self, kind: BackendKind, retries: u32) {
        PENDING.with(|p| {
            if p.owner.get() != Arc::as_ptr(&self.admits) {
                p.adopt(self);
            }
            let slots = match kind {
                BackendKind::Atomic => &p.retries_atomic,
                BackendKind::Sharded(_) => &p.retries_sharded,
            };
            let slot = (retries as usize).min(RETRY_SLOTS - 1);
            slots[slot].set(slots[slot].get() + 1);
            p.bump();
        });
    }

    /// Counts `n` flows turned away by the policy stage named `stage`
    /// (one of [`STAGE_NAMES`]). Unknown names are ignored — a custom
    /// [`PolicyStage`](crate::PolicyStage) outside the shipped registry
    /// simply has no counter.
    pub fn record_policy_reject(&self, stage: &str, n: u64) {
        if let Some(i) = STAGE_NAMES.iter().position(|s| *s == stage) {
            self.rejects_policy[i].add(n);
        }
    }

    /// Publishes this thread's buffered hot-path deltas into the shared
    /// counters. Call before reading `admits`/`releases`/`path_hops` on
    /// the recording thread; other threads publish on their own flushes
    /// (at the latest on thread exit).
    pub fn flush(&self) {
        PENDING.with(|p| p.flush());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_creates_per_class_families() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 3);
        assert_eq!(m.rejects_link_full_class.len(), 3);
        assert_eq!(m.class_max_share.len(), 3);
        m.admits.inc();
        m.path_hops.record(4.0);
        let snap = r.snapshot();
        assert!(snap.get("admission.admits").is_some());
        assert!(snap.get("admission.class2.max_share").is_some());
        assert!(snap.get("admission.rejects.link_full.class0").is_some());
    }

    #[test]
    fn re_register_attaches_to_same_metrics() {
        let r = Registry::new();
        let a = AdmissionMetrics::register(&r, 1);
        let b = AdmissionMetrics::register(&r, 1);
        a.admits.inc();
        assert_eq!(b.admits.get(), 1);
    }

    #[test]
    fn hot_path_buffers_until_flush() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        m.flush(); // reset this thread's ops count
        for _ in 0..5 {
            m.record_admit(3);
        }
        m.record_release();
        assert_eq!(m.admits.get(), 0, "deltas must stay buffered");
        m.flush();
        assert_eq!(m.admits.get(), 5);
        assert_eq!(m.releases.get(), 1);
        assert_eq!(m.path_hops.count(), 5);
        assert_eq!(m.path_hops.max(), 3.0);
    }

    #[test]
    fn instance_switch_flushes_previous_owner() {
        let a = AdmissionMetrics::register(&Registry::new(), 1);
        let b = AdmissionMetrics::register(&Registry::new(), 1);
        a.flush();
        a.record_admit(2);
        b.record_admit(4); // adopting the buffer publishes a's delta
        assert_eq!(a.admits.get(), 1);
        assert_eq!(a.path_hops.count(), 1);
        assert_eq!(b.admits.get(), 0);
        b.flush();
        assert_eq!(b.admits.get(), 1);
    }

    #[test]
    fn automatic_flush_after_threshold() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        m.flush();
        for _ in 0..FLUSH_EVERY {
            m.record_admit(1);
        }
        assert_eq!(m.admits.get(), u64::from(FLUSH_EVERY));
    }

    #[test]
    fn admit_timer_samples_one_in_n() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        // Each test runs on its own thread, so the countdown starts at
        // zero: the first decision is sampled, then exactly one in every
        // LATENCY_SAMPLE_EVERY after it.
        assert!(m.admit_timer().is_some());
        for _ in 0..LATENCY_SAMPLE_EVERY - 1 {
            assert!(m.admit_timer().is_none());
        }
        assert!(m.admit_timer().is_some());
    }

    #[test]
    fn record_admit_ns_buffers_until_flush() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        m.flush();
        m.record_admit_ns(None); // unsampled decision: no-op
        m.record_admit_ns(Some(Stopwatch::start()));
        m.record_admit_ns(Some(Stopwatch::start()));
        assert_eq!(m.admit_ns.count(), 0, "samples must stay buffered");
        m.flush();
        assert_eq!(m.admit_ns.count(), 2);
        assert!(m.admit_ns.max() >= 0.0);
    }

    #[test]
    fn record_retries_splits_by_backend_and_clamps() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        m.flush();
        for _ in 0..3 {
            m.record_retries(BackendKind::Atomic, 0);
        }
        m.record_retries(BackendKind::Atomic, 100); // clamps to the last slot
        m.record_retries(BackendKind::Sharded(4), 2);
        m.record_retries(BackendKind::Sharded(4), 2);
        m.flush();
        assert_eq!(m.retries_atomic.count(), 4);
        assert_eq!(m.retries_atomic.max(), (RETRY_SLOTS - 1) as f64);
        assert_eq!(m.retries_sharded.count(), 2);
        assert_eq!(m.retries_sharded.max(), 2.0);
        // Zero-retry decisions are part of the population, so the mean
        // is retries-per-operation.
        assert_eq!(m.retries_sharded.mean(), Some(2.0));
    }

    #[test]
    fn record_arrival_feeds_estimators_and_gauges_at_flush() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 2);
        m.flush();
        assert_eq!(m.arrival.rate(0), 0.0);
        // Spread arrivals across several flushes with real wall-clock
        // gaps so the time-weighted estimator sees distinct instants.
        for _ in 0..4 {
            for _ in 0..50 {
                m.record_arrival(0);
            }
            m.record_arrival(5); // folds into the last slot → class 1
            std::thread::sleep(std::time::Duration::from_millis(2));
            m.flush();
        }
        assert!(m.arrival.rate(0) > 0.0, "rate {}", m.arrival.rate(0));
        let snap = r.snapshot();
        assert!(snap.get("admission.arrival.class0.rate").is_some());
        assert!(snap.get("admission.arrival.class1.cv").is_some());
        assert!(snap.get("admission.overuse_state").is_some());
        // Out-of-range classes fold rather than vanish.
        assert!(m.arrival.rate(1) > 0.0, "folded rate {}", m.arrival.rate(1));
    }

    #[test]
    fn policy_reject_counters_key_on_stage_names() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        assert_eq!(m.rejects_policy.len(), STAGE_NAMES.len());
        m.record_policy_reject("token_bucket", 2);
        m.record_policy_reject("aimd", 1);
        m.record_policy_reject("not_a_stage", 5); // silently ignored
        let tb = STAGE_NAMES
            .iter()
            .position(|s| *s == "token_bucket")
            .unwrap();
        let aimd = STAGE_NAMES.iter().position(|s| *s == "aimd").unwrap();
        assert_eq!(m.rejects_policy[tb].get(), 2);
        assert_eq!(m.rejects_policy[aimd].get(), 1);
        let snap = r.snapshot();
        assert!(snap.get("admission.rejects.policy.token_bucket").is_some());
        assert!(snap.get("admission.rejects.policy.aimd").is_some());
    }

    #[test]
    fn thread_exit_publishes_buffered_deltas() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        let m2 = m.clone();
        std::thread::spawn(move || {
            m2.record_admit(2);
            m2.record_release();
        })
        .join()
        .unwrap();
        assert_eq!(m.admits.get(), 1);
        assert_eq!(m.releases.get(), 1);
    }
}
