//! Admission-path instrumentation.
//!
//! All counters live in a [`uba_obs::Registry`] (the process-global one
//! by default). The bare admit walk is ~100 ns, so even relaxed atomic
//! increments (a full fence each on x86) would cost tens of percent;
//! instead the hot-path events (admit + route length, release) go into a
//! **thread-local buffer** of plain integer cells and are published with
//! a few `fetch_add`s every [`FLUSH_EVERY`] events, when a thread exits,
//! when the buffer is adopted by a different metrics instance, and on
//! [`AdmissionMetrics::flush`] /
//! [`crate::AdmissionController::refresh_gauges`]. That keeps the
//! metered admit path within a few percent of the bare CAS walk —
//! `uba-bench`'s `obs_overhead` binary checks that claim. Rejection
//! counters stay direct atomics (the reject path already pays for state
//! reads), and the per-class utilization gauges are *not* updated per
//! admit; they are refreshed on demand by
//! [`crate::AdmissionController::refresh_gauges`] so the hot path never
//! pays for them.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use uba_obs::{Counter, Gauge, Histogram, Registry};

/// Hot-path events buffered per thread before one atomic publish.
pub const FLUSH_EVERY: u32 = 1024;

/// Route-length slots in the thread-local buffer; the last slot absorbs
/// longer routes (far beyond any real diameter).
const HOP_SLOTS: usize = 32;

/// Flush targets of the thread-local buffer (kept alive by the `Arc`s,
/// so the owner pointer below can never dangle).
struct HotHandles {
    admits: Arc<Counter>,
    releases: Arc<Counter>,
    path_hops: Arc<Histogram>,
}

/// Per-thread buffered deltas for the admission hot path.
struct Pending {
    /// Identity of the owning metrics instance (its `admits` allocation).
    owner: Cell<*const Counter>,
    handles: RefCell<Option<HotHandles>>,
    admits: Cell<u64>,
    releases: Cell<u64>,
    hops: [Cell<u32>; HOP_SLOTS],
    /// Events since the last flush.
    ops: Cell<u32>,
}

impl Pending {
    const fn new() -> Self {
        Self {
            owner: Cell::new(std::ptr::null()),
            handles: RefCell::new(None),
            admits: Cell::new(0),
            releases: Cell::new(0),
            hops: [const { Cell::new(0) }; HOP_SLOTS],
            ops: Cell::new(0),
        }
    }

    /// Publishes the buffered deltas into the owner's shared counters.
    fn flush(&self) {
        self.ops.set(0);
        let handles = self.handles.borrow();
        let Some(h) = handles.as_ref() else {
            return;
        };
        let n = self.admits.replace(0);
        if n > 0 {
            h.admits.add(n);
        }
        let n = self.releases.replace(0);
        if n > 0 {
            h.releases.add(n);
        }
        for (i, c) in self.hops.iter().enumerate() {
            let n = c.replace(0);
            if n > 0 {
                h.path_hops.record_n(i as f64, n as u64);
            }
        }
    }

    /// Re-points the buffer at `m`, flushing the previous owner's deltas.
    #[cold]
    fn adopt(&self, m: &AdmissionMetrics) {
        self.flush();
        self.owner.set(Arc::as_ptr(&m.admits));
        *self.handles.borrow_mut() = Some(HotHandles {
            admits: Arc::clone(&m.admits),
            releases: Arc::clone(&m.releases),
            path_hops: Arc::clone(&m.path_hops),
        });
    }

    #[inline]
    fn bump(&self) {
        let ops = self.ops.get() + 1;
        if ops >= FLUSH_EVERY {
            self.flush();
        } else {
            self.ops.set(ops);
        }
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        // Thread exit: publish whatever is still buffered.
        self.flush();
    }
}

thread_local! {
    static PENDING: Pending = const { Pending::new() };
}

/// Handles to every admission-layer metric.
///
/// Metric names (all under the `admission.` prefix):
///
/// | name | kind | meaning |
/// |---|---|---|
/// | `admission.admits` | counter | flows admitted |
/// | `admission.rejects.no_route` | counter | rejects: no configured route |
/// | `admission.rejects.link_full` | counter | rejects: some link at budget |
/// | `admission.rejects.link_full.class<i>` | counter | ditto, split by class |
/// | `admission.cas_retries` | counter | CAS reservation retries |
/// | `admission.releases` | counter | flows torn down |
/// | `admission.path_hops` | histogram | route length per admitted flow |
/// | `admission.class<i>.max_share` | gauge | peak budget share of class i |
/// | `admission.class<i>.reserved_bps` | gauge | total reserved rate of class i |
/// | `admission.generation` | gauge | id of the current config generation |
/// | `admission.generations.retired_pinned` | gauge | flows pinned to retired generations |
/// | `admission.reconfigures` | counter | generation swaps applied |
/// | `admission.reconfigure_ns` | histogram | swap latency (pointer install), ns |
#[derive(Clone, Debug)]
pub struct AdmissionMetrics {
    /// Flows admitted.
    pub admits: Arc<Counter>,
    /// Rejections because no route was configured.
    pub rejects_no_route: Arc<Counter>,
    /// Rejections because a link had no headroom (all classes).
    pub rejects_link_full: Arc<Counter>,
    /// Per-class split of the link-full rejections.
    pub rejects_link_full_class: Vec<Arc<Counter>>,
    /// CAS retries across all reservation loops.
    pub cas_retries: Arc<Counter>,
    /// Flows released (handle dropped).
    pub releases: Arc<Counter>,
    /// Route length (hops) per admitted flow.
    pub path_hops: Arc<Histogram>,
    /// Per-class maximum budget share across servers (refreshed on demand).
    pub class_max_share: Vec<Arc<Gauge>>,
    /// Per-class total reserved rate in bits/s (refreshed on demand).
    pub class_reserved_bps: Vec<Arc<Gauge>>,
    /// Id of the currently installed configuration generation.
    pub generation: Arc<Gauge>,
    /// Flows still pinned to retired generations (refreshed by
    /// `drain`/`refresh_gauges`).
    pub retired_pinned: Arc<Gauge>,
    /// Configuration generation swaps applied.
    pub reconfigures: Arc<Counter>,
    /// Latency of the generation-pointer swap itself, nanoseconds.
    pub reconfigure_ns: Arc<Histogram>,
}

impl AdmissionMetrics {
    /// Registers (or re-attaches to) the admission metrics in `registry`
    /// for `classes` traffic classes.
    pub fn register(registry: &Registry, classes: usize) -> Self {
        Self {
            admits: registry.counter("admission.admits"),
            rejects_no_route: registry.counter("admission.rejects.no_route"),
            rejects_link_full: registry.counter("admission.rejects.link_full"),
            rejects_link_full_class: (0..classes)
                .map(|i| registry.counter(&format!("admission.rejects.link_full.class{i}")))
                .collect(),
            cas_retries: registry.counter("admission.cas_retries"),
            releases: registry.counter("admission.releases"),
            path_hops: registry.histogram("admission.path_hops", 1.0),
            class_max_share: (0..classes)
                .map(|i| registry.gauge(&format!("admission.class{i}.max_share")))
                .collect(),
            class_reserved_bps: (0..classes)
                .map(|i| registry.gauge(&format!("admission.class{i}.reserved_bps")))
                .collect(),
            generation: registry.gauge("admission.generation"),
            retired_pinned: registry.gauge("admission.generations.retired_pinned"),
            reconfigures: registry.counter("admission.reconfigures"),
            reconfigure_ns: registry.histogram("admission.reconfigure_ns", 2.0),
        }
    }

    /// Registers against the process-global registry.
    pub fn global(classes: usize) -> Self {
        Self::register(uba_obs::global(), classes)
    }

    /// Records one admission (and its route length in hops) into this
    /// thread's buffer. Published by [`flush`](Self::flush), thread exit,
    /// or automatically every [`FLUSH_EVERY`] hot-path events.
    #[inline]
    pub fn record_admit(&self, hops: usize) {
        PENDING.with(|p| {
            if p.owner.get() != Arc::as_ptr(&self.admits) {
                p.adopt(self);
            }
            p.admits.set(p.admits.get() + 1);
            let slot = hops.min(HOP_SLOTS - 1);
            p.hops[slot].set(p.hops[slot].get() + 1);
            p.bump();
        });
    }

    /// Records one flow teardown into this thread's buffer.
    #[inline]
    pub fn record_release(&self) {
        PENDING.with(|p| {
            if p.owner.get() != Arc::as_ptr(&self.admits) {
                p.adopt(self);
            }
            p.releases.set(p.releases.get() + 1);
            p.bump();
        });
    }

    /// Publishes this thread's buffered hot-path deltas into the shared
    /// counters. Call before reading `admits`/`releases`/`path_hops` on
    /// the recording thread; other threads publish on their own flushes
    /// (at the latest on thread exit).
    pub fn flush(&self) {
        PENDING.with(Pending::flush);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_creates_per_class_families() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 3);
        assert_eq!(m.rejects_link_full_class.len(), 3);
        assert_eq!(m.class_max_share.len(), 3);
        m.admits.inc();
        m.path_hops.record(4.0);
        let snap = r.snapshot();
        assert!(snap.get("admission.admits").is_some());
        assert!(snap.get("admission.class2.max_share").is_some());
        assert!(snap.get("admission.rejects.link_full.class0").is_some());
    }

    #[test]
    fn re_register_attaches_to_same_metrics() {
        let r = Registry::new();
        let a = AdmissionMetrics::register(&r, 1);
        let b = AdmissionMetrics::register(&r, 1);
        a.admits.inc();
        assert_eq!(b.admits.get(), 1);
    }

    #[test]
    fn hot_path_buffers_until_flush() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        m.flush(); // reset this thread's ops count
        for _ in 0..5 {
            m.record_admit(3);
        }
        m.record_release();
        assert_eq!(m.admits.get(), 0, "deltas must stay buffered");
        m.flush();
        assert_eq!(m.admits.get(), 5);
        assert_eq!(m.releases.get(), 1);
        assert_eq!(m.path_hops.count(), 5);
        assert_eq!(m.path_hops.max(), 3.0);
    }

    #[test]
    fn instance_switch_flushes_previous_owner() {
        let a = AdmissionMetrics::register(&Registry::new(), 1);
        let b = AdmissionMetrics::register(&Registry::new(), 1);
        a.flush();
        a.record_admit(2);
        b.record_admit(4); // adopting the buffer publishes a's delta
        assert_eq!(a.admits.get(), 1);
        assert_eq!(a.path_hops.count(), 1);
        assert_eq!(b.admits.get(), 0);
        b.flush();
        assert_eq!(b.admits.get(), 1);
    }

    #[test]
    fn automatic_flush_after_threshold() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        m.flush();
        for _ in 0..FLUSH_EVERY {
            m.record_admit(1);
        }
        assert_eq!(m.admits.get(), u64::from(FLUSH_EVERY));
    }

    #[test]
    fn thread_exit_publishes_buffered_deltas() {
        let r = Registry::new();
        let m = AdmissionMetrics::register(&r, 1);
        let m2 = m.clone();
        std::thread::spawn(move || {
            m2.record_admit(2);
            m2.record_release();
        })
        .join()
        .unwrap();
        assert_eq!(m.admits.get(), 1);
        assert_eq!(m.releases.get(), 1);
    }
}
