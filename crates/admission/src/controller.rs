//! The utilization-based admission controller.
//!
//! Admission of a flow = walk its configured route and reserve its class
//! rate on every link server through the generation's backend; roll back
//! on the first full link. O(path length) work, no global locks, no
//! per-flow state anywhere but at the edge (the returned [`FlowHandle`]).
//! This is the paper's entire run-time mechanism — the safety of the
//! utilization levels was proven offline, so no delay computation
//! happens here. A generation may additionally carry a
//! [`PolicyChain`](crate::PolicyChain) of shaping stages (token bucket,
//! AIMD overuse gating) evaluated between the route lookup and the
//! reservation walk; the default `Static` chain has no stages and the
//! decision path reduces to exactly the utilization predicate.
//!
//! Configuration is *versioned*: the controller holds the current
//! [`ConfigGeneration`] behind an epoch pointer, and
//! [`reconfigure`](AdmissionController::reconfigure) installs a new one
//! without pausing admission. The admit path resolves the pointer with a
//! thread-local generation cache validated by one atomic epoch load, so
//! the steady-state cost over a fixed-configuration controller is a load
//! and a compare (the `reconfig_overhead` bench in `uba-bench` holds
//! this under a few percent).
//!
//! **Transition semantics.** New admits see the new generation's fresh
//! budgets immediately; flows admitted earlier keep an `Arc` to their
//! own generation and release against *its* budgets. Until those flows
//! drain, both generations hold reservations — the per-generation budget
//! invariant always holds, but the *physical* link carries the union, so
//! operators watching [`drain`](AdmissionController::drain) (or the
//! `admission.generations.retired_pinned` gauge) should treat the new
//! budgets as fully in force only once retired generations empty.

use crate::backend::CellDemand;
use crate::generation::{BackendKind, ConfigGeneration};
use crate::metrics::AdmissionMetrics;
use crate::state::{to_millibits, SCALE};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use crate::table::RoutingTable;
use std::cell::RefCell;
use uba_graph::NodeId;
use uba_obs::trace::{self, EventKind};
use uba_traffic::{ClassId, ClassSet};

/// Why a flow was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reject {
    /// Configuration installed no route for this (src, dst, class).
    NoRoute,
    /// Some link on the route has no headroom left for the class. The
    /// saturated server, the class, and its observed-vs-budget
    /// utilization at rejection time are reported for diagnostics.
    LinkFull {
        /// Raw server index of the saturated link.
        server: u32,
        /// The class whose budget was exhausted.
        class: ClassId,
        /// Rate of `class` reserved on the server when the flow was
        /// turned away, bits/s.
        reserved_bps: f64,
        /// Configured budget `α_i · C` of `class` on the server, bits/s.
        budget_bps: f64,
    },
    /// A policy stage of the generation's chain turned the flow away
    /// before the backend reservation was attempted (see
    /// [`PolicyChain`](crate::PolicyChain)). Only non-`Static` chains
    /// can produce this.
    Policy {
        /// Name of the rejecting stage (one of
        /// [`STAGE_NAMES`](crate::STAGE_NAMES)).
        stage: &'static str,
        /// The class whose shaping budget was exhausted.
        class: ClassId,
    },
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::NoRoute => write!(f, "no configured route for this (src, dst, class)"),
            Reject::LinkFull {
                server,
                class,
                reserved_bps,
                budget_bps,
            } => {
                let pct = if *budget_bps > 0.0 {
                    reserved_bps / budget_bps * 100.0
                } else {
                    100.0
                };
                write!(
                    f,
                    "link server {server} full for class {}: reserved {:.1} kb/s of \
                     {:.1} kb/s budget ({pct:.1}% utilized)",
                    class.index(),
                    reserved_bps / 1e3,
                    budget_bps / 1e3,
                )
            }
            Reject::Policy { stage, class } => {
                write!(
                    f,
                    "policy stage {stage} rejected class {} before the utilization check",
                    class.index(),
                )
            }
        }
    }
}

/// One flow of a batched admission request (see
/// [`AdmissionController::try_admit_batch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Traffic class of the flow.
    pub class: ClassId,
    /// Ingress node.
    pub src: NodeId,
    /// Egress node.
    pub dst: NodeId,
}

/// What [`AdmissionController::try_admit_batch`] decided, per flow and
/// in aggregate.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-flow results, in request order. Dropping an `Ok` handle
    /// releases that flow exactly as if it had been admitted alone.
    pub flows: Vec<Result<FlowHandle, Reject>>,
    /// `true` when one aggregated reservation decided the whole batch
    /// (every routed flow admitted together, one CAS per touched cell);
    /// `false` when the aggregate did not fit and each flow was re-tried
    /// one by one (partial admission, per-flow reject detail).
    pub fast_path: bool,
}

impl BatchOutcome {
    /// Number of admitted flows.
    pub fn admitted(&self) -> usize {
        self.flows.iter().filter(|f| f.is_ok()).count()
    }

    /// Number of rejected flows.
    pub fn rejected(&self) -> usize {
        self.flows.len() - self.admitted()
    }

    /// Consumes the outcome, keeping only the admitted handles.
    pub fn into_handles(self) -> Vec<FlowHandle> {
        self.flows.into_iter().filter_map(Result::ok).collect()
    }
}

/// What [`AdmissionController::reconfigure`] did.
#[derive(Clone, Copy, Debug)]
pub struct ReconfigReport {
    /// Id of the generation now current.
    pub generation: u64,
    /// Id of the generation that was displaced.
    pub previous: u64,
    /// Flows that were still pinned to the displaced generation at swap
    /// time (they drain against its budgets; see
    /// [`drain`](AdmissionController::drain)).
    pub pinned_previous: u64,
}

/// Flows still pinned to retired generations, as reported by
/// [`AdmissionController::drain`].
#[derive(Clone, Debug, Default)]
pub struct DrainStatus {
    /// `(generation id, live flows)` for every retired generation that
    /// still holds reservations, oldest first.
    pub retired: Vec<(u64, u64)>,
}

impl DrainStatus {
    /// True when no retired generation holds reservations any more —
    /// the current generation's budgets are fully in force.
    pub fn is_drained(&self) -> bool {
        self.retired.is_empty()
    }

    /// Total flows still pinned to retired generations.
    pub fn pinned_flows(&self) -> u64 {
        self.retired.iter().map(|&(_, n)| n).sum()
    }
}

/// The run-time admission controller (shared-state handle; cheap to
/// clone via `Arc` inside).
#[derive(Clone, Debug)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// The current generation. Written only by `reconfigure`; the admit
    /// path reads it through the thread-local cache below, touching this
    /// mutex only when the epoch moved.
    current: Mutex<Arc<ConfigGeneration>>,
    /// Id of the current generation — the cache-validation epoch.
    epoch: AtomicU64,
    /// Displaced generations that still had pinned flows at swap time.
    retired: Mutex<Vec<Arc<ConfigGeneration>>>,
    /// Instrumentation; `None` for unmetered controllers (the overhead
    /// benchmark's baseline).
    metrics: Option<AdmissionMetrics>,
    /// Audit-trail flow ids, assigned only while the flight recorder is
    /// enabled so disabled tracing stays off the hot path entirely.
    flow_seq: AtomicU64,
}

thread_local! {
    /// Last generation this thread admitted against. Generation ids are
    /// process-unique, so one cache serves any number of controllers:
    /// an id match against the owning controller's epoch can never be a
    /// false positive.
    static GEN_CACHE: RefCell<Option<Arc<ConfigGeneration>>> = const { RefCell::new(None) };
}

/// An admitted flow. Dropping the handle releases its bandwidth on every
/// link of its route (RAII teardown = the paper's flow tear-down
/// message) — against the generation it was admitted under, even if the
/// controller has been reconfigured since.
#[derive(Debug)]
pub struct FlowHandle {
    inner: Arc<Inner>,
    generation: Arc<ConfigGeneration>,
    class: usize,
    rate: f64,
    servers: Box<[u32]>,
    /// Audit-trail id (0 when tracing was disabled at admit time).
    flow: u64,
}

impl AdmissionController {
    /// Builds a controller from the configured routing table, the class
    /// set, per-server capacities, and the verified utilization
    /// assignment, on the default [`AtomicBackend`](crate::AtomicBackend).
    ///
    /// The controller records admission metrics into the process-global
    /// [`uba_obs`] registry (see [`AdmissionMetrics`] for the names).
    pub fn new(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
    ) -> Self {
        Self::with_backend(table, classes, capacities, alphas, BackendKind::Atomic)
    }

    /// Like [`new`](Self::new) but with no instrumentation at all — the
    /// baseline the `obs_overhead` benchmark compares against.
    pub fn new_unmetered(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
    ) -> Self {
        Self::from_generation_with_metrics(
            ConfigGeneration::new(table, classes, capacities, alphas, BackendKind::Atomic),
            None,
        )
    }

    /// Like [`new`](Self::new) with an explicit reservation backend.
    pub fn with_backend(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
        kind: BackendKind,
    ) -> Self {
        Self::from_generation(ConfigGeneration::new(
            table, classes, capacities, alphas, kind,
        ))
    }

    /// Adopts an already-built generation (e.g. from
    /// `uba_routing::Configuration::apply`) as the initial configuration,
    /// with metrics.
    pub fn from_generation(generation: ConfigGeneration) -> Self {
        let metrics = AdmissionMetrics::global(generation.rates().len());
        Self::from_generation_with_metrics(generation, Some(metrics))
    }

    /// [`from_generation`](Self::from_generation) without
    /// instrumentation — the generation-adopting counterpart of
    /// [`new_unmetered`](Self::new_unmetered), for callers that need a
    /// non-default policy chain (or backend) but not the metrics.
    pub fn from_generation_unmetered(generation: ConfigGeneration) -> Self {
        Self::from_generation_with_metrics(generation, None)
    }

    fn from_generation_with_metrics(
        generation: ConfigGeneration,
        metrics: Option<AdmissionMetrics>,
    ) -> Self {
        let epoch = generation.id();
        let ctrl = Self {
            inner: Arc::new(Inner {
                current: Mutex::new(Arc::new(generation)),
                epoch: AtomicU64::new(epoch),
                retired: Mutex::new(Vec::new()),
                metrics,
                flow_seq: AtomicU64::new(0),
            }),
        };
        if let Some(m) = &ctrl.inner.metrics {
            m.generation.set(epoch as f64);
        }
        ctrl
    }

    /// The generation new admissions currently run against. The `Arc`
    /// stays valid (and releasable-against) even after later
    /// reconfigurations.
    #[inline]
    pub fn current_generation(&self) -> Arc<ConfigGeneration> {
        // ordering: Acquire pairs with the Release epoch store in
        // `reconfigure` — a thread that reads the new epoch is
        // guaranteed to find the new generation pointer under the lock.
        let epoch = self.inner.epoch.load(Ordering::Acquire);
        GEN_CACHE.with(|slot| {
            {
                let cached = slot.borrow();
                if let Some(g) = cached.as_ref() {
                    if g.id() == epoch {
                        return Arc::clone(g);
                    }
                }
            }
            let g = Arc::clone(&self.inner.current.lock().unwrap());
            *slot.borrow_mut() = Some(Arc::clone(&g));
            g
        })
    }

    /// Attempts to admit one flow of `class` from `src` to `dst` against
    /// the current generation.
    ///
    /// On success the flow's rate is reserved on every link server of the
    /// configured route and a [`FlowHandle`] is returned; on failure
    /// nothing is left reserved.
    pub fn try_admit(
        &self,
        class: ClassId,
        src: NodeId,
        dst: NodeId,
    ) -> Result<FlowHandle, Reject> {
        let generation = self.current_generation();
        self.admit_inner(&generation, class, src, dst, None)
    }

    /// Like [`try_admit`](Self::try_admit) but on an explicit decision
    /// clock: `t` is seconds on the caller's timeline, fed to the
    /// shaping stages of a non-`Static` policy chain (token-bucket
    /// refill, AIMD detector updates). Simulations and benches drive
    /// virtual time through this; [`try_admit`](Self::try_admit) uses
    /// the process clock instead — and only reads it when the chain
    /// actually has stages.
    pub fn try_admit_at(
        &self,
        class: ClassId,
        src: NodeId,
        dst: NodeId,
        t: f64,
    ) -> Result<FlowHandle, Reject> {
        let generation = self.current_generation();
        self.admit_inner(&generation, class, src, dst, Some(t))
    }

    /// Like [`try_admit`](Self::try_admit) but against an explicitly
    /// pinned generation — batch admission under one configuration
    /// snapshot, and the fixed-configuration baseline of the
    /// `reconfig_overhead` benchmark. The handle releases against
    /// `generation` regardless of later reconfigurations.
    pub fn try_admit_on(
        &self,
        generation: &Arc<ConfigGeneration>,
        class: ClassId,
        src: NodeId,
        dst: NodeId,
    ) -> Result<FlowHandle, Reject> {
        self.admit_inner(generation, class, src, dst, None)
    }

    /// The one admission decision path. `now` is the decision clock for
    /// the policy chain: `Some(t)` from the `_at` entry points, `None`
    /// to read the process clock lazily — a `Static` chain never reads
    /// any clock, keeping the default path bit-identical to the
    /// pre-pipeline controller.
    fn admit_inner(
        &self,
        generation: &Arc<ConfigGeneration>,
        class: ClassId,
        src: NodeId,
        dst: NodeId,
        now: Option<f64>,
    ) -> Result<FlowHandle, Reject> {
        let inner = &self.inner;
        let backend = generation.backend();
        let rate = generation.rates()[class.index()];
        // Sampled decision latency: 1 in LATENCY_SAMPLE_EVERY decisions
        // reads the clock; the rest pay one thread-local decrement.
        let timer = inner
            .metrics
            .as_ref()
            .and_then(AdmissionMetrics::admit_timer);
        // Audit trail: one flight-recorder event per decision. Flow ids
        // are only minted while tracing is on, so a disabled recorder
        // costs the admit path a single relaxed load.
        let tr = trace::global();
        let flow = if tr.enabled() {
            inner.flow_seq.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            0
        };
        let Some(route) = generation.table().route(src, dst, class) else {
            if let Some(m) = &inner.metrics {
                m.rejects_no_route.inc();
                m.record_admit_ns(timer);
            }
            tr.emit(
                EventKind::RejectNoRoute,
                class.index(),
                flow,
                u32::MAX,
                src.0 as f64,
                dst.0 as f64,
            );
            return Err(Reject::NoRoute);
        };
        // Policy chain: shaping stages run after the route lookup (a
        // routeless flow is a config error, not demand) and before the
        // reservation walk. The `Static` chain skips everything —
        // including the clock read — so the default decision path stays
        // bit-identical to the pre-pipeline controller.
        let chain = generation.policy();
        if !chain.is_static() {
            let t = now.unwrap_or_else(uba_obs::process_secs);
            if let Err(stage) = chain.admit_n(class.index(), 1, t) {
                if let Some(m) = &inner.metrics {
                    m.record_policy_reject(stage, 1);
                    // Offered load includes policy rejects: the burst
                    // estimators must see the demand the chain clipped.
                    m.record_arrival(class.index());
                    m.record_admit_ns(timer);
                }
                let stage_idx = chain
                    .stages()
                    .iter()
                    .position(|s| s.name() == stage)
                    .map_or(-1.0, |i| i as f64);
                tr.emit(
                    EventKind::RejectPolicy,
                    class.index(),
                    flow,
                    u32::MAX,
                    stage_idx,
                    1.0,
                );
                return Err(Reject::Policy { stage, class });
            }
        }
        match backend.try_reserve_path(route, class.index(), rate) {
            Ok(cas_retries) => {
                if let Some(m) = &inner.metrics {
                    m.record_admit(route.len());
                    m.record_arrival(class.index());
                    if cas_retries > 0 {
                        m.cas_retries.add(cas_retries as u64);
                    }
                    m.record_retries(generation.kind(), cas_retries);
                    m.record_admit_ns(timer);
                }
                tr.emit(
                    EventKind::Admit,
                    class.index(),
                    flow,
                    route.first().copied().unwrap_or(u32::MAX),
                    rate,
                    route.len() as f64,
                );
                generation.pin();
                Ok(FlowHandle {
                    inner: Arc::clone(inner),
                    generation: Arc::clone(generation),
                    class: class.index(),
                    rate,
                    servers: route.into(),
                    flow,
                })
            }
            Err(reject) => {
                // The chain consumed for this flow; the utilization
                // check turned it away, so every stage refunds — a
                // rejected flow leaves no residue in the shaping budgets.
                if !chain.is_static() {
                    chain.refund_n(class.index(), 1);
                }
                if let Some(m) = &inner.metrics {
                    m.rejects_link_full.inc();
                    m.rejects_link_full_class[class.index()].inc();
                    // Offered load includes link-full rejects: the burst
                    // estimators must see demand the budget turned away.
                    m.record_arrival(class.index());
                    if reject.retries > 0 {
                        m.cas_retries.add(reject.retries as u64);
                    }
                    m.record_retries(generation.kind(), reject.retries);
                    m.record_admit_ns(timer);
                }
                let server = reject.server;
                let reserved_bps = backend.snapshot(server as usize, class.index());
                let budget_bps = backend.budget(server as usize, class.index());
                tr.emit(
                    EventKind::RejectLinkFull,
                    class.index(),
                    flow,
                    server,
                    reserved_bps,
                    budget_bps,
                );
                Err(Reject::LinkFull {
                    server,
                    class,
                    reserved_bps,
                    budget_bps,
                })
            }
        }
    }

    /// Admits a whole slice of flows as one batched decision against the
    /// current generation.
    ///
    /// The fixed per-decision overheads of [`try_admit`](Self::try_admit)
    /// — the generation epoch load, the pin RMW, the tracepoint publish,
    /// one CAS round-trip per link per flow — are paid once per *batch*:
    /// the slice's demand is pre-aggregated per touched (server, class)
    /// cell (identical (class, src, dst) triples share one route lookup)
    /// and reserved with one CAS per cell via
    /// [`try_reserve_batch`](crate::AdmissionBackend::try_reserve_batch).
    /// If the aggregate fits, every routed flow is admitted together
    /// (`fast_path`); if not, the batch falls back to the sequential
    /// path flow-by-flow in slice order, yielding exactly the decisions
    /// and reject diagnostics a non-batched caller would have seen.
    /// Flows with no configured route are rejected either way and never
    /// block the rest of the batch.
    pub fn try_admit_batch(&self, specs: &[FlowSpec]) -> BatchOutcome {
        let generation = self.current_generation();
        self.batch_inner(&generation, specs, None)
    }

    /// Like [`try_admit_batch`](Self::try_admit_batch) on an explicit
    /// decision clock (the batched counterpart of
    /// [`try_admit_at`](Self::try_admit_at)).
    pub fn try_admit_batch_at(&self, specs: &[FlowSpec], t: f64) -> BatchOutcome {
        let generation = self.current_generation();
        self.batch_inner(&generation, specs, Some(t))
    }

    /// Like [`try_admit_batch`](Self::try_admit_batch) but against an
    /// explicitly pinned generation (the batched counterpart of
    /// [`try_admit_on`](Self::try_admit_on)).
    pub fn try_admit_batch_on(
        &self,
        generation: &Arc<ConfigGeneration>,
        specs: &[FlowSpec],
    ) -> BatchOutcome {
        self.batch_inner(generation, specs, None)
    }

    fn batch_inner(
        &self,
        generation: &Arc<ConfigGeneration>,
        specs: &[FlowSpec],
        now: Option<f64>,
    ) -> BatchOutcome {
        if specs.is_empty() {
            return BatchOutcome {
                flows: Vec::new(),
                fast_path: true,
            };
        }
        let inner = &self.inner;
        let backend = generation.backend();
        let timer = inner
            .metrics
            .as_ref()
            .and_then(AdmissionMetrics::admit_timer);
        let tr = trace::global();
        // Dedupe identical (class, src, dst) triples: one route lookup
        // and one demand contribution per unique triple. `uniq_of[i]` is
        // flow i's index into `uniq`.
        let mut uniq: Vec<(FlowSpec, Option<&[u32]>, u64)> = Vec::new();
        let mut uniq_of: Vec<usize> = Vec::with_capacity(specs.len());
        for spec in specs {
            match uniq.iter().position(|(s, _, _)| s == spec) {
                Some(j) => {
                    uniq[j].2 += 1;
                    uniq_of.push(j);
                }
                None => {
                    uniq_of.push(uniq.len());
                    uniq.push((
                        *spec,
                        generation.table().route(spec.src, spec.dst, spec.class),
                        1,
                    ));
                }
            }
        }
        // Aggregate per-(server, class) demand in exact millibits — the
        // batched reservation asks for precisely the sum of the per-flow
        // grants, so batch admission can never out-admit (or under-admit)
        // the same flows reserved one by one.
        let mut entries: Vec<(u64, u64)> = Vec::new();
        for (spec, route, count) in &uniq {
            if let Some(r) = route {
                let rate_mb = to_millibits(generation.rates()[spec.class.index()]);
                for &server in *r {
                    entries.push((
                        (u64::from(server) << 32) | spec.class.index() as u64,
                        count * rate_mb,
                    ));
                }
            }
        }
        entries.sort_unstable_by_key(|&(key, _)| key);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(entries.len());
        for (key, mb) in entries {
            match merged.last_mut() {
                Some((k, acc)) if *k == key => *acc += mb,
                _ => merged.push((key, mb)),
            }
        }
        let demands: Vec<CellDemand> = merged
            .iter()
            .map(|&(key, mb)| CellDemand {
                server: (key >> 32) as u32,
                class: (key & u64::from(u32::MAX)) as u32,
                // Exact round-trip: aggregated millibit totals stay far
                // below the 2^53 integrality guard, so the backend's
                // `to_millibits(rate)` recovers `mb` bit-for-bit.
                rate: mb as f64 / SCALE,
            })
            .collect();
        let no_route = uniq_of.iter().filter(|&&j| uniq[j].1.is_none()).count();
        let routed = specs.len() - no_route;
        // Policy chain over the batch: one aggregate grab per class (its
        // routed flow count), so the fast path pays one chain walk per
        // class, not per flow. If any class's aggregate is clipped, the
        // whole batch falls back to the per-flow path, where each flow
        // re-consults the chain individually — a partially affordable
        // burst admits exactly the prefix the sequential path would
        // (burst-clipped, not burst-dropped).
        let chain = generation.policy();
        let mut policy_consumed: Vec<(usize, u64)> = Vec::new();
        if !chain.is_static() && routed > 0 {
            let t = now.unwrap_or_else(uba_obs::process_secs);
            let mut class_counts: Vec<(usize, u64)> = Vec::new();
            for (spec, route, count) in &uniq {
                if route.is_some() {
                    let c = spec.class.index();
                    match class_counts.iter_mut().find(|(k, _)| *k == c) {
                        Some((_, n)) => *n += count,
                        None => class_counts.push((c, *count)),
                    }
                }
            }
            let mut clipped = false;
            for &(c, n) in &class_counts {
                match chain.admit_n(c, n, t) {
                    Ok(()) => policy_consumed.push((c, n)),
                    Err(_) => {
                        clipped = true;
                        break;
                    }
                }
            }
            if clipped {
                for &(c, n) in &policy_consumed {
                    chain.refund_n(c, n);
                }
                if let Some(m) = &inner.metrics {
                    m.batches.inc();
                    m.batch_fallbacks.inc();
                    m.record_admit_ns(timer);
                }
                let flows = specs
                    .iter()
                    .map(|s| self.admit_inner(generation, s.class, s.src, s.dst, now))
                    .collect();
                return BatchOutcome {
                    flows,
                    fast_path: false,
                };
            }
        }
        match backend.try_reserve_batch(&demands) {
            Ok(cas_retries) => {
                // Audit-trail flow ids: one contiguous block per batch
                // (a single RMW), so each flow's release stays
                // individually attributable in the trace.
                let flow_base = if tr.enabled() {
                    inner
                        .flow_seq
                        .fetch_add(specs.len() as u64, Ordering::Relaxed)
                        + 1
                } else {
                    0
                };
                generation.pin_n(routed as u64);
                let flows: Vec<Result<FlowHandle, Reject>> = uniq_of
                    .iter()
                    .enumerate()
                    .map(|(i, &j)| {
                        let (spec, route, _) = &uniq[j];
                        match route {
                            Some(route) => Ok(FlowHandle {
                                inner: Arc::clone(inner),
                                generation: Arc::clone(generation),
                                class: spec.class.index(),
                                rate: generation.rates()[spec.class.index()],
                                servers: (*route).into(),
                                flow: if flow_base == 0 {
                                    0
                                } else {
                                    flow_base + i as u64
                                },
                            }),
                            None => Err(Reject::NoRoute),
                        }
                    })
                    .collect();
                if let Some(m) = &inner.metrics {
                    for &j in &uniq_of {
                        if let Some(route) = uniq[j].1 {
                            m.record_admit(route.len());
                            m.record_arrival(uniq[j].0.class.index());
                        }
                    }
                    if no_route > 0 {
                        m.rejects_no_route.add(no_route as u64);
                    }
                    if cas_retries > 0 {
                        m.cas_retries.add(u64::from(cas_retries));
                    }
                    // One batched decision = one entry in the per-backend
                    // retry histogram (total retries across the batch).
                    m.record_retries(generation.kind(), cas_retries);
                    m.batches.inc();
                    m.record_admit_ns(timer);
                }
                // One coalesced tracepoint for the whole slice.
                tr.emit(
                    EventKind::AdmitBatch,
                    0,
                    flow_base,
                    u32::MAX,
                    routed as f64,
                    no_route as f64,
                );
                BatchOutcome {
                    flows,
                    fast_path: true,
                }
            }
            Err(_) => {
                // Aggregate does not fit: per-flow fallback in slice
                // order — decision-for-decision the sequential path
                // (partial admission, per-flow tracepoints and reject
                // detail). The chain's aggregate grab is returned first
                // so the fallback's per-flow consults start from the
                // same shaping state the sequential path would see. The
                // timer sample here covers aggregation plus the failed
                // batch reserve; each fallback admit samples its own
                // latency as usual.
                for &(c, n) in &policy_consumed {
                    chain.refund_n(c, n);
                }
                if let Some(m) = &inner.metrics {
                    m.batches.inc();
                    m.batch_fallbacks.inc();
                    m.record_admit_ns(timer);
                }
                let flows = specs
                    .iter()
                    .map(|s| self.admit_inner(generation, s.class, s.src, s.dst, now))
                    .collect();
                BatchOutcome {
                    flows,
                    fast_path: false,
                }
            }
        }
    }

    /// Installs `next` as the current generation without pausing
    /// admission. Admissions racing the swap land on whichever
    /// generation they resolved — either way their budgets are enforced
    /// and their release goes to the same generation.
    ///
    /// The displaced generation is retired; flows admitted under it keep
    /// draining against its budgets (see [`drain`](Self::drain) and the
    /// transition-semantics note in the module docs).
    pub fn reconfigure(&self, next: ConfigGeneration) -> ReconfigReport {
        let sw = uba_obs::Stopwatch::start();
        let next = Arc::new(next);
        let next_id = next.id();
        let old = {
            let mut cur = self.inner.current.lock().unwrap();
            let old = std::mem::replace(&mut *cur, next);
            // Publish the epoch only after the pointer, still under the
            // lock.
            // ordering: Release pairs with the Acquire epoch load in
            // `current_generation` — a reader seeing the new epoch will
            // find the new generation pointer when it takes the lock.
            self.inner.epoch.store(next_id, Ordering::Release);
            old
        };
        let swap_ns = sw.elapsed_ns();
        let previous = old.id();
        let pinned_previous = old.pinned();
        let tr = trace::global();
        if pinned_previous > 0 {
            self.inner.retired.lock().unwrap().push(old);
        } else {
            tr.emit(
                EventKind::GenerationRetired,
                0,
                previous,
                u32::MAX,
                0.0,
                0.0,
            );
        }
        tr.emit(
            EventKind::ReconfigApplied,
            0,
            next_id,
            u32::MAX,
            previous as f64,
            pinned_previous as f64,
        );
        if let Some(m) = &self.inner.metrics {
            m.reconfigures.inc();
            m.reconfigure_ns.record(swap_ns);
            m.generation.set(next_id as f64);
        }
        ReconfigReport {
            generation: next_id,
            previous,
            pinned_previous,
        }
    }

    /// Reports retired generations that still hold reservations, pruning
    /// (and trace-marking `GenerationRetired`) the ones that fully
    /// drained since the last call.
    pub fn drain(&self) -> DrainStatus {
        let mut retired = self.inner.retired.lock().unwrap();
        let tr = trace::global();
        retired.retain(|g| {
            if g.pinned() == 0 {
                tr.emit(EventKind::GenerationRetired, 0, g.id(), u32::MAX, 0.0, 0.0);
                false
            } else {
                true
            }
        });
        let status = DrainStatus {
            retired: retired.iter().map(|g| (g.id(), g.pinned())).collect(),
        };
        drop(retired);
        if let Some(m) = &self.inner.metrics {
            m.retired_pinned.set(status.pinned_flows() as f64);
        }
        status
    }

    /// Reserved rate of `class` on a server in the current generation,
    /// bits/s.
    pub fn reserved(&self, server: usize, class: ClassId) -> f64 {
        self.current_generation()
            .backend()
            .snapshot(server, class.index())
    }

    /// Fraction of the class budget in use on a server (current
    /// generation).
    pub fn occupancy(&self, server: usize, class: ClassId) -> f64 {
        self.current_generation()
            .backend()
            .occupancy(server, class.index())
    }

    /// Upper bound on concurrently admissible flows of `class` on one
    /// link: `⌊α_i·C / ρ_i⌋`.
    pub fn per_link_flow_capacity(&self, server: usize, class: ClassId) -> usize {
        let g = self.current_generation();
        (g.backend().budget(server, class.index()) / g.rates()[class.index()]) as usize
    }

    /// Snapshot of every server's class occupancy (fraction of its
    /// budget in use) — the operator's utilization dashboard.
    pub fn occupancy_snapshot(&self, class: ClassId) -> Vec<f64> {
        let g = self.current_generation();
        let backend = g.backend();
        (0..backend.servers())
            .map(|k| backend.occupancy(k, class.index()))
            .collect()
    }

    /// Recomputes the per-class utilization gauges
    /// (`admission.class<i>.max_share`, `admission.class<i>.reserved_bps`)
    /// from the live reservation state, and the generation-drain gauge.
    /// O(servers × classes) — called on demand (snapshot/report time),
    /// never from the admit path. A no-op on an unmetered controller.
    pub fn refresh_gauges(&self) {
        let Some(m) = &self.inner.metrics else {
            return;
        };
        m.flush();
        let g = self.current_generation();
        let backend = g.backend();
        for class in 0..backend.classes() {
            let mut max_share = 0.0f64;
            let mut total_bps = 0.0f64;
            for server in 0..backend.servers() {
                max_share = max_share.max(backend.occupancy(server, class));
                total_bps += backend.snapshot(server, class);
            }
            m.class_max_share[class].set(max_share);
            m.class_reserved_bps[class].set(total_bps);
        }
        if let Some(c) = backend.contention() {
            m.sharded_borrows.set(c.borrows as f64);
            m.sharded_steals.set(c.steals as f64);
            m.sharded_spurious_rejects.set(c.spurious_rejects as f64);
        }
        self.drain();
    }

    /// Publishes this thread's buffered hot-path metric deltas (see
    /// [`AdmissionMetrics::flush`]). A no-op on an unmetered controller.
    pub fn flush_metrics(&self) {
        if let Some(m) = &self.inner.metrics {
            m.flush();
        }
    }

    /// The `top` most-loaded servers for a class, as
    /// `(server index, occupancy)`, most loaded first.
    pub fn hottest_links(&self, class: ClassId, top: usize) -> Vec<(usize, f64)> {
        let mut occ: Vec<(usize, f64)> = self
            .occupancy_snapshot(class)
            .into_iter()
            .enumerate()
            .collect();
        occ.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        occ.truncate(top);
        occ
    }
}

impl FlowHandle {
    /// The route the flow was admitted on (raw server indices).
    pub fn route(&self) -> &[u32] {
        &self.servers
    }

    /// The flow's reserved rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Id of the generation the flow was admitted under (and will
    /// release against).
    pub fn generation(&self) -> u64 {
        self.generation.id()
    }
}

impl Drop for FlowHandle {
    fn drop(&mut self) {
        self.generation
            .backend()
            .release_path(&self.servers, self.class, self.rate);
        self.generation.unpin();
        if let Some(m) = &self.inner.metrics {
            m.record_release();
        }
        trace::global().emit(
            EventKind::Release,
            self.class,
            self.flow,
            self.servers.first().copied().unwrap_or(u32::MAX),
            self.rate,
            self.servers.len() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ChainKind, PolicyChain, PolicyConfig};
    use uba_graph::{Digraph, Path};
    use uba_traffic::TrafficClass;

    /// 0 -> 1 -> 2 with routes (0,2) and (1,2); link 1->2 is shared.
    fn topology() -> (RoutingTable, usize, usize) {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e12]));
        (table, e12.index(), g.edge_count())
    }

    fn setup(alpha: f64) -> (AdmissionController, usize) {
        setup_on(alpha, BackendKind::Atomic)
    }

    fn setup_on(alpha: f64, kind: BackendKind) -> (AdmissionController, usize) {
        let (table, shared, edges) = topology();
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; edges];
        let ctrl = AdmissionController::with_backend(table, &classes, &caps, &[alpha], kind);
        (ctrl, shared)
    }

    fn fresh_generation(alpha: f64) -> ConfigGeneration {
        let (table, _, edges) = topology();
        ConfigGeneration::new(
            table,
            &ClassSet::single(TrafficClass::voip()),
            &vec![1e6; edges],
            &[alpha],
            BackendKind::Atomic,
        )
    }

    #[test]
    fn admits_until_shared_link_full() {
        for kind in [BackendKind::Atomic, BackendKind::Sharded(4)] {
            // alpha 0.32 on 1 Mb/s => 10 voip flows on the shared link.
            let (ctrl, shared) = setup_on(0.32, kind);
            let mut handles = Vec::new();
            for i in 0..10 {
                let h = ctrl
                    .try_admit(ClassId(0), NodeId(0), NodeId(2))
                    .unwrap_or_else(|e| panic!("flow {i} rejected: {e:?}"));
                handles.push(h);
            }
            let r = ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2));
            match r {
                Err(Reject::LinkFull {
                    server,
                    class,
                    reserved_bps,
                    budget_bps,
                }) => {
                    assert_eq!(server, shared as u32);
                    assert_eq!(class, ClassId(0));
                    assert_eq!(reserved_bps, 320_000.0);
                    assert_eq!(budget_bps, 320_000.0);
                }
                other => panic!("expected LinkFull, got {other:?}"),
            }
            assert_eq!(ctrl.per_link_flow_capacity(shared, ClassId(0)), 10);
        }
    }

    #[test]
    fn rollback_leaves_no_residue() {
        let (ctrl, shared) = setup(0.32);
        // Saturate the shared link via the short route.
        let _held: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).unwrap())
            .collect();
        // Long route must fail on its second hop and roll back the first.
        let before = ctrl.reserved(0, ClassId(0));
        let r = ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2));
        assert!(matches!(r, Err(Reject::LinkFull { .. })));
        assert_eq!(ctrl.reserved(0, ClassId(0)), before);
        assert_eq!(ctrl.occupancy(shared, ClassId(0)), 1.0);
    }

    #[test]
    fn drop_releases_bandwidth() {
        let (ctrl, shared) = setup(0.32);
        {
            let _h: Vec<_> = (0..10)
                .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
                .collect();
            assert_eq!(ctrl.occupancy(shared, ClassId(0)), 1.0);
        }
        assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
        assert!(ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).is_ok());
    }

    #[test]
    fn occupancy_snapshot_and_hottest_links() {
        let (ctrl, shared) = setup(0.32);
        let _h: Vec<_> = (0..5)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
            .collect();
        let snap = ctrl.occupancy_snapshot(ClassId(0));
        assert_eq!(snap.len(), 4);
        assert!((snap[shared] - 0.5).abs() < 1e-9);
        let hot = ctrl.hottest_links(ClassId(0), 2);
        assert_eq!(hot.len(), 2);
        assert!(hot[0].1 >= hot[1].1);
        // The shared link and the first hop are the two loaded servers.
        assert!((hot[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reject_display_names_link_class_and_utilization() {
        let r = Reject::LinkFull {
            server: 7,
            class: ClassId(2),
            reserved_bps: 320_000.0,
            budget_bps: 320_000.0,
        };
        let msg = r.to_string();
        assert!(msg.contains("server 7"), "{msg}");
        assert!(msg.contains("class 2"), "{msg}");
        assert!(msg.contains("320.0 kb/s"), "{msg}");
        assert!(msg.contains("100.0% utilized"), "{msg}");
        let partial = Reject::LinkFull {
            server: 0,
            class: ClassId(0),
            reserved_bps: 288_000.0,
            budget_bps: 320_000.0,
        };
        let msg = partial.to_string();
        assert!(
            msg.contains("reserved 288.0 kb/s of 320.0 kb/s budget"),
            "{msg}"
        );
        assert!(msg.contains("90.0% utilized"), "{msg}");
        assert_eq!(
            Reject::NoRoute.to_string(),
            "no configured route for this (src, dst, class)"
        );
    }

    #[test]
    fn no_route_rejected() {
        let (ctrl, _) = setup(0.32);
        assert_eq!(
            ctrl.try_admit(ClassId(0), NodeId(2), NodeId(0)).err(),
            Some(Reject::NoRoute)
        );
    }

    #[test]
    fn metrics_track_admits_rejects_and_releases() {
        // Counters are process-global and shared across tests, so assert
        // on deltas.
        let (ctrl, _) = setup(0.32);
        let m = crate::metrics::AdmissionMetrics::global(1);
        let (admits0, nr0, lf0, rel0) = (
            m.admits.get(),
            m.rejects_no_route.get(),
            m.rejects_link_full.get(),
            m.releases.get(),
        );
        let hops0 = m.path_hops.count();
        {
            let _held: Vec<_> = (0..10)
                .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
                .collect();
            assert!(ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).is_err());
            assert!(ctrl.try_admit(ClassId(0), NodeId(2), NodeId(0)).is_err());
            ctrl.refresh_gauges();
            assert_eq!(m.class_max_share[0].get(), 1.0);
        }
        // Hot-path deltas are thread-buffered; refresh_gauges publishes
        // them (and recomputes the now-empty utilization gauges).
        ctrl.refresh_gauges();
        assert_eq!(m.admits.get() - admits0, 10);
        assert_eq!(m.rejects_no_route.get() - nr0, 1);
        assert_eq!(m.rejects_link_full.get() - lf0, 1);
        assert_eq!(m.releases.get() - rel0, 10);
        assert_eq!(m.path_hops.count() - hops0, 10);
        assert_eq!(m.class_max_share[0].get(), 0.0);
        assert_eq!(m.class_reserved_bps[0].get(), 0.0);
    }

    #[test]
    fn decision_telemetry_feeds_latency_and_retry_histograms() {
        let (ctrl, _) = setup_on(0.32, BackendKind::Sharded(4));
        let m = crate::metrics::AdmissionMetrics::global(1);
        ctrl.refresh_gauges();
        let (lat0, retry0) = (m.admit_ns.count(), m.retries_sharded.count());
        // Enough decisions (admits + link-full + no-route) to guarantee
        // at least one latency sample on this thread.
        let mut held = Vec::new();
        for _ in 0..2 * crate::metrics::LATENCY_SAMPLE_EVERY {
            match ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)) {
                Ok(h) => held.push(h),
                Err(Reject::LinkFull { .. }) => {}
                Err(r) => panic!("unexpected {r:?}"),
            }
        }
        assert!(ctrl.try_admit(ClassId(0), NodeId(2), NodeId(0)).is_err());
        ctrl.refresh_gauges();
        assert!(m.admit_ns.count() > lat0, "latency sampling must fire");
        // Every decision on a sharded generation lands in the sharded
        // retry histogram (no-route decisions never reach the backend).
        assert_eq!(
            m.retries_sharded.count() - retry0,
            2 * u64::from(crate::metrics::LATENCY_SAMPLE_EVERY)
        );
        // Single-threaded saturation of striped shards forces cross-shard
        // borrowing; refresh_gauges published the backend's counters.
        assert!(
            m.sharded_borrows.get() + m.sharded_steals.get() > 0.0,
            "saturating a 4-shard cell must cross shards"
        );
        assert_eq!(m.sharded_spurious_rejects.get(), 0.0, "no contention here");
    }

    #[test]
    fn unmetered_controller_admits_identically() {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; g.edge_count()];
        let ctrl = AdmissionController::new_unmetered(table, &classes, &caps, &[0.32]);
        let m = crate::metrics::AdmissionMetrics::global(1);
        let admits0 = m.admits.get();
        let h: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
            .collect();
        assert!(ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).is_err());
        ctrl.refresh_gauges(); // no-op, must not panic
        drop(h);
        assert_eq!(m.admits.get(), admits0, "unmetered must not record");
    }

    #[test]
    fn concurrent_admission_respects_budget() {
        for kind in [BackendKind::Atomic, BackendKind::Sharded(4)] {
            let (ctrl, shared) = setup_on(0.32, kind);
            let mut threads = Vec::new();
            for _ in 0..8 {
                let ctrl = ctrl.clone();
                threads.push(std::thread::spawn(move || {
                    let mut held = Vec::new();
                    for _ in 0..5 {
                        if let Ok(h) = ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)) {
                            held.push(h);
                        }
                    }
                    // Keep the handles alive until the main thread has counted
                    // them, so freed capacity cannot be re-admitted mid-test.
                    held
                }));
            }
            let all: Vec<Vec<FlowHandle>> =
                threads.into_iter().map(|t| t.join().unwrap()).collect();
            let admitted: usize = all.iter().map(Vec::len).sum();
            assert_eq!(admitted, 10, "exactly the link capacity must be admitted");
            drop(all);
            assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
        }
    }

    #[test]
    fn reconfigure_swaps_generation_without_dropping_flows() {
        let (ctrl, shared) = setup(0.32);
        let g0 = ctrl.current_generation().id();
        let held: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).unwrap())
            .collect();
        assert!(ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).is_err());

        // Install a half-alpha generation: 5 flows per link from now on.
        let report = ctrl.reconfigure(fresh_generation(0.16));
        assert_eq!(report.previous, g0);
        assert_eq!(report.pinned_previous, 10);
        assert_eq!(ctrl.current_generation().id(), report.generation);
        // Old flows keep their generation and still drain against it.
        assert_eq!(held[0].generation(), g0);
        let status = ctrl.drain();
        assert_eq!(status.retired, vec![(g0, 10)]);
        assert_eq!(status.pinned_flows(), 10);

        // New admissions run against the new (empty) budgets.
        let new_held: Vec<_> = (0..5)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).unwrap())
            .collect();
        assert!(ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).is_err());
        assert_eq!(ctrl.reserved(shared, ClassId(0)), 5.0 * 32_000.0);

        // Draining the old flows balances the old generation to zero and
        // prunes it from the retired list.
        drop(held);
        let status = ctrl.drain();
        assert!(status.is_drained(), "{status:?}");
        drop(new_held);
        assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
    }

    #[test]
    fn reconfigure_identical_config_is_a_semantic_noop() {
        // Decision function before == after on a quiescent controller:
        // saturate, record decisions, release, reconfigure to an
        // identical generation, repeat — the sequences must match.
        let (ctrl, _) = setup(0.32);
        let run = |ctrl: &AdmissionController| {
            let mut held = Vec::new();
            let decisions: Vec<bool> = (0..12)
                .map(|_| match ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)) {
                    Ok(h) => {
                        held.push(h);
                        true
                    }
                    Err(_) => false,
                })
                .collect();
            drop(held);
            decisions
        };
        let before = run(&ctrl);
        let report = ctrl.reconfigure(fresh_generation(0.32));
        assert_eq!(report.pinned_previous, 0);
        assert!(ctrl.drain().is_drained());
        let after = run(&ctrl);
        assert_eq!(before, after);
    }

    #[test]
    fn try_admit_on_pins_the_given_generation() {
        let (ctrl, _) = setup(0.32);
        let g0 = ctrl.current_generation();
        ctrl.reconfigure(fresh_generation(0.32));
        // Admitting on the displaced generation still works and releases
        // against it.
        let h = ctrl
            .try_admit_on(&g0, ClassId(0), NodeId(0), NodeId(2))
            .unwrap();
        assert_eq!(h.generation(), g0.id());
        assert_eq!(g0.pinned(), 1);
        assert_eq!(g0.backend().snapshot(2, 0), 32_000.0);
        assert_eq!(ctrl.reserved(2, ClassId(0)), 0.0, "current gen untouched");
        drop(h);
        assert_eq!(g0.pinned(), 0);
        assert_eq!(g0.backend().snapshot(2, 0), 0.0);
    }

    #[test]
    fn batch_fast_path_admits_everything_that_fits() {
        for kind in [BackendKind::Atomic, BackendKind::Sharded(4)] {
            let (ctrl, shared) = setup_on(0.32, kind);
            let specs = vec![
                FlowSpec {
                    class: ClassId(0),
                    src: NodeId(0),
                    dst: NodeId(2),
                };
                10
            ];
            let out = ctrl.try_admit_batch(&specs);
            assert!(out.fast_path, "{kind:?}");
            assert_eq!(out.admitted(), 10, "{kind:?}");
            assert_eq!(ctrl.occupancy(shared, ClassId(0)), 1.0);
            assert_eq!(ctrl.current_generation().pinned(), 10);
            let handles = out.into_handles();
            assert_eq!(handles[0].route().len(), 2);
            drop(handles);
            assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
            assert_eq!(ctrl.current_generation().pinned(), 0);
        }
    }

    #[test]
    fn batch_fallback_matches_sequential_decisions() {
        for kind in [BackendKind::Atomic, BackendKind::Sharded(4)] {
            // 12 flows against a 10-flow link: the aggregate cannot fit,
            // so the batch falls back and admits exactly the prefix the
            // sequential path would.
            let (ctrl, shared) = setup_on(0.32, kind);
            let specs = vec![
                FlowSpec {
                    class: ClassId(0),
                    src: NodeId(1),
                    dst: NodeId(2),
                };
                12
            ];
            let out = ctrl.try_admit_batch(&specs);
            assert!(!out.fast_path, "{kind:?}");
            assert_eq!(out.admitted(), 10, "{kind:?}");
            assert_eq!(out.rejected(), 2);
            // Request order is preserved: the prefix admits, the tail
            // rejects with full link diagnostics.
            assert!(out.flows[..10].iter().all(Result::is_ok));
            for r in &out.flows[10..] {
                match r {
                    Err(Reject::LinkFull { server, .. }) => {
                        assert_eq!(*server, shared as u32)
                    }
                    other => panic!("expected LinkFull, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn batch_routes_unroutable_flows_around_the_fast_path() {
        let (ctrl, _) = setup(0.32);
        let good = FlowSpec {
            class: ClassId(0),
            src: NodeId(0),
            dst: NodeId(2),
        };
        let unroutable = FlowSpec {
            class: ClassId(0),
            src: NodeId(2),
            dst: NodeId(0),
        };
        let out = ctrl.try_admit_batch(&[good, unroutable, good]);
        assert!(out.fast_path, "no-route flows must not force a fallback");
        assert_eq!(out.admitted(), 2);
        assert_eq!(out.flows[1].as_ref().err(), Some(&Reject::NoRoute));
        // Empty batches are a no-op.
        let out = ctrl.try_admit_batch(&[]);
        assert!(out.fast_path);
        assert_eq!(out.flows.len(), 0);
    }

    #[test]
    fn batch_on_pinned_generation_survives_reconfigure() {
        let (ctrl, _) = setup(0.32);
        let g0 = ctrl.current_generation();
        ctrl.reconfigure(fresh_generation(0.32));
        let out = ctrl.try_admit_batch_on(
            &g0,
            &[FlowSpec {
                class: ClassId(0),
                src: NodeId(0),
                dst: NodeId(2),
            }; 3],
        );
        assert!(out.fast_path);
        assert_eq!(g0.pinned(), 3);
        assert_eq!(g0.backend().snapshot(2, 0), 3.0 * 32_000.0);
        assert_eq!(ctrl.reserved(2, ClassId(0)), 0.0, "current gen untouched");
        drop(out);
        assert_eq!(g0.pinned(), 0);
        assert_eq!(g0.backend().snapshot(2, 0), 0.0);
    }

    fn policy_ctrl(alpha: f64, cfg: PolicyConfig) -> AdmissionController {
        let (table, _, edges) = topology();
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; edges];
        let chain = PolicyChain::from_config(&cfg, &[32_000.0]);
        AdmissionController::from_generation(ConfigGeneration::with_policy(
            table,
            &classes,
            &caps,
            &[alpha],
            BackendKind::Atomic,
            chain,
        ))
    }

    #[test]
    fn token_bucket_chain_clips_bursts_and_refills_with_time() {
        let cfg = PolicyConfig {
            chain: ChainKind::TokenBucket,
            bucket_rate_bps: 32_000.0,
            bucket_burst_bits: 3.0 * 32_000.0,
            ..PolicyConfig::default()
        };
        let ctrl = policy_ctrl(0.32, cfg);
        let _held: Vec<_> = (0..3)
            .map(|_| {
                ctrl.try_admit_at(ClassId(0), NodeId(0), NodeId(2), 0.0)
                    .unwrap()
            })
            .collect();
        match ctrl.try_admit_at(ClassId(0), NodeId(0), NodeId(2), 0.0) {
            Err(Reject::Policy { stage, class }) => {
                assert_eq!(stage, "token_bucket");
                assert_eq!(class, ClassId(0));
            }
            other => panic!("expected a policy reject, got {other:?}"),
        }
        // One flow-cost refills per second on the virtual clock.
        assert!(ctrl
            .try_admit_at(ClassId(0), NodeId(0), NodeId(2), 1.0)
            .is_ok());
    }

    #[test]
    fn utilization_reject_refunds_the_chain() {
        // Utilization admits one flow (alpha 0.032 on 1 Mb/s = one voip
        // flow); the non-refilling bucket starts with two tokens.
        let cfg = PolicyConfig {
            chain: ChainKind::TokenBucket,
            bucket_rate_bps: 0.0,
            bucket_burst_bits: 2.0 * 32_000.0,
            ..PolicyConfig::default()
        };
        let ctrl = policy_ctrl(0.032, cfg);
        let h = ctrl
            .try_admit_at(ClassId(0), NodeId(1), NodeId(2), 0.0)
            .unwrap();
        // Link full: the token the chain consumed must come back.
        assert!(matches!(
            ctrl.try_admit_at(ClassId(0), NodeId(1), NodeId(2), 0.0),
            Err(Reject::LinkFull { .. })
        ));
        drop(h);
        // The refunded token covers this admit (without the refund the
        // bucket would be empty and reject it).
        let _h2 = ctrl
            .try_admit_at(ClassId(0), NodeId(1), NodeId(2), 0.0)
            .unwrap();
        // Both tokens now spent: the chain rejects before the backend
        // even gets asked.
        assert!(matches!(
            ctrl.try_admit_at(ClassId(0), NodeId(1), NodeId(2), 0.0),
            Err(Reject::Policy {
                stage: "token_bucket",
                ..
            })
        ));
        assert_eq!(
            Reject::Policy {
                stage: "token_bucket",
                class: ClassId(0)
            }
            .to_string(),
            "policy stage token_bucket rejected class 0 before the utilization check"
        );
    }

    #[test]
    fn batch_with_policy_clips_to_the_sequential_prefix() {
        let cfg = PolicyConfig {
            chain: ChainKind::TokenBucket,
            bucket_rate_bps: 0.0,
            bucket_burst_bits: 2.0 * 32_000.0,
            ..PolicyConfig::default()
        };
        let ctrl = policy_ctrl(0.32, cfg);
        let specs = vec![
            FlowSpec {
                class: ClassId(0),
                src: NodeId(0),
                dst: NodeId(2),
            };
            3
        ];
        let out = ctrl.try_admit_batch_at(&specs, 0.0);
        assert!(!out.fast_path, "a clipped batch must fall back per flow");
        assert_eq!(out.admitted(), 2, "burst-clipped, not burst-dropped");
        assert!(matches!(
            out.flows[2],
            Err(Reject::Policy {
                stage: "token_bucket",
                ..
            })
        ));
        // A batch the bucket can cover stays on the fast path.
        let ctrl = policy_ctrl(0.32, cfg);
        let out = ctrl.try_admit_batch_at(&specs[..2], 0.0);
        assert!(out.fast_path);
        assert_eq!(out.admitted(), 2);
    }

    #[test]
    fn generation_cache_follows_controller_switches() {
        // Two controllers used alternately from one thread: the
        // process-unique ids keep the thread-local cache correct.
        let (a, _) = setup(0.32);
        let (b, _) = setup(0.32);
        for _ in 0..3 {
            assert_eq!(
                a.current_generation().id(),
                a.inner.epoch.load(Ordering::Relaxed)
            );
            assert_eq!(
                b.current_generation().id(),
                b.inner.epoch.load(Ordering::Relaxed)
            );
        }
        a.reconfigure(fresh_generation(0.32));
        assert_eq!(
            a.current_generation().id(),
            a.inner.epoch.load(Ordering::Relaxed)
        );
        assert_eq!(
            b.current_generation().id(),
            b.inner.epoch.load(Ordering::Relaxed)
        );
    }
}
