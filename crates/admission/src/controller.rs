//! The utilization-based admission controller.
//!
//! Admission of a flow = walk its configured route and CAS-reserve its
//! class rate on every link server; roll back on the first full link.
//! O(path length) work, no global locks, no per-flow state anywhere but
//! at the edge (the returned [`FlowHandle`]). This is the paper's entire
//! run-time mechanism — the safety of the utilization levels was proven
//! offline, so no delay computation happens here.

use crate::state::UtilizationState;
use crate::table::RoutingTable;
use std::sync::Arc;
use uba_graph::NodeId;
use uba_traffic::{ClassId, ClassSet};

/// Why a flow was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// Configuration installed no route for this (src, dst, class).
    NoRoute,
    /// Some link on the route has no headroom left for the class (the
    /// raw server index is reported for diagnostics).
    LinkFull {
        /// Raw server index of the saturated link.
        server: u32,
    },
}

/// The run-time admission controller (shared-state handle; cheap to
/// clone via `Arc` inside).
#[derive(Clone, Debug)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    state: UtilizationState,
    table: RoutingTable,
    /// Per-class flow rate `ρ_i` in bits/s.
    rates: Vec<f64>,
}

/// An admitted flow. Dropping the handle releases its bandwidth on every
/// link of its route (RAII teardown = the paper's flow tear-down message).
#[derive(Debug)]
pub struct FlowHandle {
    inner: Arc<Inner>,
    class: usize,
    rate: f64,
    servers: Box<[u32]>,
}

impl AdmissionController {
    /// Builds a controller from the configured routing table, the class
    /// set, per-server capacities, and the verified utilization assignment.
    pub fn new(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
    ) -> Self {
        assert_eq!(alphas.len(), classes.len(), "one alpha per class");
        let state = UtilizationState::new(capacities, alphas);
        let rates = classes.iter().map(|(_, c)| c.bucket.rate).collect();
        Self {
            inner: Arc::new(Inner {
                state,
                table,
                rates,
            }),
        }
    }

    /// Attempts to admit one flow of `class` from `src` to `dst`.
    ///
    /// On success the flow's rate is reserved on every link server of the
    /// configured route and a [`FlowHandle`] is returned; on failure
    /// nothing is left reserved.
    pub fn try_admit(
        &self,
        class: ClassId,
        src: NodeId,
        dst: NodeId,
    ) -> Result<FlowHandle, Reject> {
        let inner = &self.inner;
        let rate = inner.rates[class.index()];
        let Some(route) = inner.table.route(src, dst, class) else {
            return Err(Reject::NoRoute);
        };
        for (i, &server) in route.iter().enumerate() {
            if !inner.state.try_reserve(server as usize, class.index(), rate) {
                // Roll back the prefix we already hold.
                for &held in &route[..i] {
                    inner.state.release(held as usize, class.index(), rate);
                }
                return Err(Reject::LinkFull { server });
            }
        }
        Ok(FlowHandle {
            inner: Arc::clone(inner),
            class: class.index(),
            rate,
            servers: route.into(),
        })
    }

    /// Reserved rate of `class` on a server, bits/s.
    pub fn reserved(&self, server: usize, class: ClassId) -> f64 {
        self.inner.state.reserved(server, class.index())
    }

    /// Fraction of the class budget in use on a server.
    pub fn occupancy(&self, server: usize, class: ClassId) -> f64 {
        self.inner.state.occupancy(server, class.index())
    }

    /// Upper bound on concurrently admissible flows of `class` on one
    /// link: `⌊α_i·C / ρ_i⌋`.
    pub fn per_link_flow_capacity(&self, server: usize, class: ClassId) -> usize {
        (self.inner.state.budget(server, class.index()) / self.inner.rates[class.index()]) as usize
    }

    /// Snapshot of every server's class occupancy (fraction of its
    /// budget in use) — the operator's utilization dashboard.
    pub fn occupancy_snapshot(&self, class: ClassId) -> Vec<f64> {
        (0..self.inner.state.servers())
            .map(|k| self.inner.state.occupancy(k, class.index()))
            .collect()
    }

    /// The `top` most-loaded servers for a class, as
    /// `(server index, occupancy)`, most loaded first.
    pub fn hottest_links(&self, class: ClassId, top: usize) -> Vec<(usize, f64)> {
        let mut occ: Vec<(usize, f64)> = self
            .occupancy_snapshot(class)
            .into_iter()
            .enumerate()
            .collect();
        occ.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        occ.truncate(top);
        occ
    }
}

impl FlowHandle {
    /// The route the flow was admitted on (raw server indices).
    pub fn route(&self) -> &[u32] {
        &self.servers
    }

    /// The flow's reserved rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Drop for FlowHandle {
    fn drop(&mut self) {
        for &server in self.servers.iter() {
            self.inner.state.release(server as usize, self.class, self.rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_graph::{Digraph, Path};
    use uba_traffic::TrafficClass;

    /// 0 -> 1 -> 2 with routes (0,2) and (1,2); link 1->2 is shared.
    fn setup(alpha: f64) -> (AdmissionController, usize) {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; g.edge_count()];
        let ctrl = AdmissionController::new(table, &classes, &caps, &[alpha]);
        (ctrl, e12.index())
    }

    #[test]
    fn admits_until_shared_link_full() {
        // alpha 0.32 on 1 Mb/s => 10 voip flows on the shared link.
        let (ctrl, shared) = setup(0.32);
        let mut handles = Vec::new();
        for i in 0..10 {
            let h = ctrl
                .try_admit(ClassId(0), NodeId(0), NodeId(2))
                .unwrap_or_else(|e| panic!("flow {i} rejected: {e:?}"));
            handles.push(h);
        }
        let r = ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2));
        assert_eq!(
            r.err(),
            Some(Reject::LinkFull {
                server: shared as u32
            })
        );
        assert_eq!(ctrl.per_link_flow_capacity(shared, ClassId(0)), 10);
    }

    #[test]
    fn rollback_leaves_no_residue() {
        let (ctrl, shared) = setup(0.32);
        // Saturate the shared link via the short route.
        let _held: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).unwrap())
            .collect();
        // Long route must fail on its second hop and roll back the first.
        let before = ctrl.reserved(0, ClassId(0));
        let r = ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2));
        assert!(matches!(r, Err(Reject::LinkFull { .. })));
        assert_eq!(ctrl.reserved(0, ClassId(0)), before);
        assert_eq!(ctrl.occupancy(shared, ClassId(0)), 1.0);
    }

    #[test]
    fn drop_releases_bandwidth() {
        let (ctrl, shared) = setup(0.32);
        {
            let _h: Vec<_> = (0..10)
                .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
                .collect();
            assert_eq!(ctrl.occupancy(shared, ClassId(0)), 1.0);
        }
        assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
        assert!(ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).is_ok());
    }

    #[test]
    fn occupancy_snapshot_and_hottest_links() {
        let (ctrl, shared) = setup(0.32);
        let _h: Vec<_> = (0..5)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
            .collect();
        let snap = ctrl.occupancy_snapshot(ClassId(0));
        assert_eq!(snap.len(), 4);
        assert!((snap[shared] - 0.5).abs() < 1e-9);
        let hot = ctrl.hottest_links(ClassId(0), 2);
        assert_eq!(hot.len(), 2);
        assert!(hot[0].1 >= hot[1].1);
        // The shared link and the first hop are the two loaded servers.
        assert!((hot[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_route_rejected() {
        let (ctrl, _) = setup(0.32);
        assert_eq!(
            ctrl.try_admit(ClassId(0), NodeId(2), NodeId(0)).err(),
            Some(Reject::NoRoute)
        );
    }

    #[test]
    fn concurrent_admission_respects_budget() {
        let (ctrl, shared) = setup(0.32);
        let mut threads = Vec::new();
        for _ in 0..8 {
            let ctrl = ctrl.clone();
            threads.push(std::thread::spawn(move || {
                let mut held = Vec::new();
                for _ in 0..5 {
                    if let Ok(h) = ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)) {
                        held.push(h);
                    }
                }
                // Keep the handles alive until the main thread has counted
                // them, so freed capacity cannot be re-admitted mid-test.
                held
            }));
        }
        let all: Vec<Vec<FlowHandle>> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();
        let admitted: usize = all.iter().map(Vec::len).sum();
        assert_eq!(admitted, 10, "exactly the link capacity must be admitted");
        drop(all);
        assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
    }
}
