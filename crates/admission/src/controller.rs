//! The utilization-based admission controller.
//!
//! Admission of a flow = walk its configured route and CAS-reserve its
//! class rate on every link server; roll back on the first full link.
//! O(path length) work, no global locks, no per-flow state anywhere but
//! at the edge (the returned [`FlowHandle`]). This is the paper's entire
//! run-time mechanism — the safety of the utilization levels was proven
//! offline, so no delay computation happens here.

use crate::metrics::AdmissionMetrics;
use crate::state::UtilizationState;
use crate::table::RoutingTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uba_graph::NodeId;
use uba_obs::trace::{self, EventKind};
use uba_traffic::{ClassId, ClassSet};

/// Why a flow was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reject {
    /// Configuration installed no route for this (src, dst, class).
    NoRoute,
    /// Some link on the route has no headroom left for the class. The
    /// saturated server, the class, and its observed-vs-budget
    /// utilization at rejection time are reported for diagnostics.
    LinkFull {
        /// Raw server index of the saturated link.
        server: u32,
        /// The class whose budget was exhausted.
        class: ClassId,
        /// Rate of `class` reserved on the server when the flow was
        /// turned away, bits/s.
        reserved_bps: f64,
        /// Configured budget `α_i · C` of `class` on the server, bits/s.
        budget_bps: f64,
    },
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::NoRoute => write!(f, "no configured route for this (src, dst, class)"),
            Reject::LinkFull {
                server,
                class,
                reserved_bps,
                budget_bps,
            } => {
                let pct = if *budget_bps > 0.0 {
                    reserved_bps / budget_bps * 100.0
                } else {
                    100.0
                };
                write!(
                    f,
                    "link server {server} full for class {}: reserved {:.1} kb/s of \
                     {:.1} kb/s budget ({pct:.1}% utilized)",
                    class.index(),
                    reserved_bps / 1e3,
                    budget_bps / 1e3,
                )
            }
        }
    }
}

/// The run-time admission controller (shared-state handle; cheap to
/// clone via `Arc` inside).
#[derive(Clone, Debug)]
pub struct AdmissionController {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    state: UtilizationState,
    table: RoutingTable,
    /// Per-class flow rate `ρ_i` in bits/s.
    rates: Vec<f64>,
    /// Instrumentation; `None` for unmetered controllers (the overhead
    /// benchmark's baseline).
    metrics: Option<AdmissionMetrics>,
    /// Audit-trail flow ids, assigned only while the flight recorder is
    /// enabled so disabled tracing stays off the hot path entirely.
    flow_seq: AtomicU64,
}

/// An admitted flow. Dropping the handle releases its bandwidth on every
/// link of its route (RAII teardown = the paper's flow tear-down message).
#[derive(Debug)]
pub struct FlowHandle {
    inner: Arc<Inner>,
    class: usize,
    rate: f64,
    servers: Box<[u32]>,
    /// Audit-trail id (0 when tracing was disabled at admit time).
    flow: u64,
}

impl AdmissionController {
    /// Builds a controller from the configured routing table, the class
    /// set, per-server capacities, and the verified utilization assignment.
    ///
    /// The controller records admission metrics into the process-global
    /// [`uba_obs`] registry (see [`AdmissionMetrics`] for the names).
    pub fn new(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
    ) -> Self {
        let metrics = AdmissionMetrics::global(classes.len());
        Self::build(table, classes, capacities, alphas, Some(metrics))
    }

    /// Like [`new`](Self::new) but with no instrumentation at all — the
    /// baseline the `obs_overhead` benchmark compares against.
    pub fn new_unmetered(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
    ) -> Self {
        Self::build(table, classes, capacities, alphas, None)
    }

    fn build(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
        metrics: Option<AdmissionMetrics>,
    ) -> Self {
        assert_eq!(alphas.len(), classes.len(), "one alpha per class");
        let state = UtilizationState::new(capacities, alphas);
        let rates = classes.iter().map(|(_, c)| c.bucket.rate).collect();
        Self {
            inner: Arc::new(Inner {
                state,
                table,
                rates,
                metrics,
                flow_seq: AtomicU64::new(0),
            }),
        }
    }

    /// Attempts to admit one flow of `class` from `src` to `dst`.
    ///
    /// On success the flow's rate is reserved on every link server of the
    /// configured route and a [`FlowHandle`] is returned; on failure
    /// nothing is left reserved.
    pub fn try_admit(
        &self,
        class: ClassId,
        src: NodeId,
        dst: NodeId,
    ) -> Result<FlowHandle, Reject> {
        let inner = &self.inner;
        let rate = inner.rates[class.index()];
        // Audit trail: one flight-recorder event per decision. Flow ids
        // are only minted while tracing is on, so a disabled recorder
        // costs the admit path a single relaxed load.
        let tr = trace::global();
        let flow = if tr.enabled() {
            inner.flow_seq.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            0
        };
        let Some(route) = inner.table.route(src, dst, class) else {
            if let Some(m) = &inner.metrics {
                m.rejects_no_route.inc();
            }
            tr.emit(
                EventKind::RejectNoRoute,
                class.index(),
                flow,
                u32::MAX,
                src.0 as f64,
                dst.0 as f64,
            );
            return Err(Reject::NoRoute);
        };
        let mut cas_retries = 0u64;
        for (i, &server) in route.iter().enumerate() {
            let (ok, retries) =
                inner
                    .state
                    .try_reserve_with_retries(server as usize, class.index(), rate);
            cas_retries += retries as u64;
            if !ok {
                // Roll back the prefix we already hold.
                for &held in &route[..i] {
                    inner.state.release(held as usize, class.index(), rate);
                }
                if let Some(m) = &inner.metrics {
                    m.rejects_link_full.inc();
                    m.rejects_link_full_class[class.index()].inc();
                    if cas_retries > 0 {
                        m.cas_retries.add(cas_retries);
                    }
                }
                let reserved_bps = inner.state.reserved(server as usize, class.index());
                let budget_bps = inner.state.budget(server as usize, class.index());
                tr.emit(
                    EventKind::RejectLinkFull,
                    class.index(),
                    flow,
                    server,
                    reserved_bps,
                    budget_bps,
                );
                return Err(Reject::LinkFull {
                    server,
                    class,
                    reserved_bps,
                    budget_bps,
                });
            }
        }
        if let Some(m) = &inner.metrics {
            m.record_admit(route.len());
            if cas_retries > 0 {
                m.cas_retries.add(cas_retries);
            }
        }
        tr.emit(
            EventKind::Admit,
            class.index(),
            flow,
            route.first().copied().unwrap_or(u32::MAX),
            rate,
            route.len() as f64,
        );
        Ok(FlowHandle {
            inner: Arc::clone(inner),
            class: class.index(),
            rate,
            servers: route.into(),
            flow,
        })
    }

    /// Reserved rate of `class` on a server, bits/s.
    pub fn reserved(&self, server: usize, class: ClassId) -> f64 {
        self.inner.state.reserved(server, class.index())
    }

    pub(crate) fn state(&self) -> &UtilizationState {
        &self.inner.state
    }

    pub(crate) fn table(&self) -> &RoutingTable {
        &self.inner.table
    }

    pub(crate) fn rate_of(&self, class: ClassId) -> f64 {
        self.inner.rates[class.index()]
    }

    /// Fraction of the class budget in use on a server.
    pub fn occupancy(&self, server: usize, class: ClassId) -> f64 {
        self.inner.state.occupancy(server, class.index())
    }

    /// Upper bound on concurrently admissible flows of `class` on one
    /// link: `⌊α_i·C / ρ_i⌋`.
    pub fn per_link_flow_capacity(&self, server: usize, class: ClassId) -> usize {
        (self.inner.state.budget(server, class.index()) / self.inner.rates[class.index()]) as usize
    }

    /// Snapshot of every server's class occupancy (fraction of its
    /// budget in use) — the operator's utilization dashboard.
    pub fn occupancy_snapshot(&self, class: ClassId) -> Vec<f64> {
        (0..self.inner.state.servers())
            .map(|k| self.inner.state.occupancy(k, class.index()))
            .collect()
    }

    /// Recomputes the per-class utilization gauges
    /// (`admission.class<i>.max_share`, `admission.class<i>.reserved_bps`)
    /// from the live reservation state. O(servers × classes) — called on
    /// demand (snapshot/report time), never from the admit path. A no-op
    /// on an unmetered controller.
    pub fn refresh_gauges(&self) {
        let Some(m) = &self.inner.metrics else {
            return;
        };
        m.flush();
        let state = &self.inner.state;
        for class in 0..state.classes() {
            let mut max_share = 0.0f64;
            let mut total_bps = 0.0f64;
            for server in 0..state.servers() {
                max_share = max_share.max(state.occupancy(server, class));
                total_bps += state.reserved(server, class);
            }
            m.class_max_share[class].set(max_share);
            m.class_reserved_bps[class].set(total_bps);
        }
    }

    /// Publishes this thread's buffered hot-path metric deltas (see
    /// [`AdmissionMetrics::flush`]). A no-op on an unmetered controller.
    pub fn flush_metrics(&self) {
        if let Some(m) = &self.inner.metrics {
            m.flush();
        }
    }

    /// The `top` most-loaded servers for a class, as
    /// `(server index, occupancy)`, most loaded first.
    pub fn hottest_links(&self, class: ClassId, top: usize) -> Vec<(usize, f64)> {
        let mut occ: Vec<(usize, f64)> = self
            .occupancy_snapshot(class)
            .into_iter()
            .enumerate()
            .collect();
        occ.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        occ.truncate(top);
        occ
    }
}

impl FlowHandle {
    /// The route the flow was admitted on (raw server indices).
    pub fn route(&self) -> &[u32] {
        &self.servers
    }

    /// The flow's reserved rate in bits/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Drop for FlowHandle {
    fn drop(&mut self) {
        for &server in self.servers.iter() {
            self.inner.state.release(server as usize, self.class, self.rate);
        }
        if let Some(m) = &self.inner.metrics {
            m.record_release();
        }
        trace::global().emit(
            EventKind::Release,
            self.class,
            self.flow,
            self.servers.first().copied().unwrap_or(u32::MAX),
            self.rate,
            self.servers.len() as f64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_graph::{Digraph, Path};
    use uba_traffic::TrafficClass;

    /// 0 -> 1 -> 2 with routes (0,2) and (1,2); link 1->2 is shared.
    fn setup(alpha: f64) -> (AdmissionController, usize) {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; g.edge_count()];
        let ctrl = AdmissionController::new(table, &classes, &caps, &[alpha]);
        (ctrl, e12.index())
    }

    #[test]
    fn admits_until_shared_link_full() {
        // alpha 0.32 on 1 Mb/s => 10 voip flows on the shared link.
        let (ctrl, shared) = setup(0.32);
        let mut handles = Vec::new();
        for i in 0..10 {
            let h = ctrl
                .try_admit(ClassId(0), NodeId(0), NodeId(2))
                .unwrap_or_else(|e| panic!("flow {i} rejected: {e:?}"));
            handles.push(h);
        }
        let r = ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2));
        match r {
            Err(Reject::LinkFull {
                server,
                class,
                reserved_bps,
                budget_bps,
            }) => {
                assert_eq!(server, shared as u32);
                assert_eq!(class, ClassId(0));
                assert_eq!(reserved_bps, 320_000.0);
                assert_eq!(budget_bps, 320_000.0);
            }
            other => panic!("expected LinkFull, got {other:?}"),
        }
        assert_eq!(ctrl.per_link_flow_capacity(shared, ClassId(0)), 10);
    }

    #[test]
    fn rollback_leaves_no_residue() {
        let (ctrl, shared) = setup(0.32);
        // Saturate the shared link via the short route.
        let _held: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).unwrap())
            .collect();
        // Long route must fail on its second hop and roll back the first.
        let before = ctrl.reserved(0, ClassId(0));
        let r = ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2));
        assert!(matches!(r, Err(Reject::LinkFull { .. })));
        assert_eq!(ctrl.reserved(0, ClassId(0)), before);
        assert_eq!(ctrl.occupancy(shared, ClassId(0)), 1.0);
    }

    #[test]
    fn drop_releases_bandwidth() {
        let (ctrl, shared) = setup(0.32);
        {
            let _h: Vec<_> = (0..10)
                .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
                .collect();
            assert_eq!(ctrl.occupancy(shared, ClassId(0)), 1.0);
        }
        assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
        assert!(ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).is_ok());
    }

    #[test]
    fn occupancy_snapshot_and_hottest_links() {
        let (ctrl, shared) = setup(0.32);
        let _h: Vec<_> = (0..5)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
            .collect();
        let snap = ctrl.occupancy_snapshot(ClassId(0));
        assert_eq!(snap.len(), 4);
        assert!((snap[shared] - 0.5).abs() < 1e-9);
        let hot = ctrl.hottest_links(ClassId(0), 2);
        assert_eq!(hot.len(), 2);
        assert!(hot[0].1 >= hot[1].1);
        // The shared link and the first hop are the two loaded servers.
        assert!((hot[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reject_display_names_link_class_and_utilization() {
        let r = Reject::LinkFull {
            server: 7,
            class: ClassId(2),
            reserved_bps: 320_000.0,
            budget_bps: 320_000.0,
        };
        let msg = r.to_string();
        assert!(msg.contains("server 7"), "{msg}");
        assert!(msg.contains("class 2"), "{msg}");
        assert!(msg.contains("320.0 kb/s"), "{msg}");
        assert!(msg.contains("100.0% utilized"), "{msg}");
        let partial = Reject::LinkFull {
            server: 0,
            class: ClassId(0),
            reserved_bps: 288_000.0,
            budget_bps: 320_000.0,
        };
        let msg = partial.to_string();
        assert!(msg.contains("reserved 288.0 kb/s of 320.0 kb/s budget"), "{msg}");
        assert!(msg.contains("90.0% utilized"), "{msg}");
        assert_eq!(
            Reject::NoRoute.to_string(),
            "no configured route for this (src, dst, class)"
        );
    }

    #[test]
    fn no_route_rejected() {
        let (ctrl, _) = setup(0.32);
        assert_eq!(
            ctrl.try_admit(ClassId(0), NodeId(2), NodeId(0)).err(),
            Some(Reject::NoRoute)
        );
    }

    #[test]
    fn metrics_track_admits_rejects_and_releases() {
        // Counters are process-global and shared across tests, so assert
        // on deltas.
        let (ctrl, _) = setup(0.32);
        let m = crate::metrics::AdmissionMetrics::global(1);
        let (admits0, nr0, lf0, rel0) = (
            m.admits.get(),
            m.rejects_no_route.get(),
            m.rejects_link_full.get(),
            m.releases.get(),
        );
        let hops0 = m.path_hops.count();
        {
            let _held: Vec<_> = (0..10)
                .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
                .collect();
            assert!(ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).is_err());
            assert!(ctrl.try_admit(ClassId(0), NodeId(2), NodeId(0)).is_err());
            ctrl.refresh_gauges();
            assert_eq!(m.class_max_share[0].get(), 1.0);
        }
        // Hot-path deltas are thread-buffered; refresh_gauges publishes
        // them (and recomputes the now-empty utilization gauges).
        ctrl.refresh_gauges();
        assert_eq!(m.admits.get() - admits0, 10);
        assert_eq!(m.rejects_no_route.get() - nr0, 1);
        assert_eq!(m.rejects_link_full.get() - lf0, 1);
        assert_eq!(m.releases.get() - rel0, 10);
        assert_eq!(m.path_hops.count() - hops0, 10);
        assert_eq!(m.class_max_share[0].get(), 0.0);
        assert_eq!(m.class_reserved_bps[0].get(), 0.0);
    }

    #[test]
    fn unmetered_controller_admits_identically() {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; g.edge_count()];
        let ctrl = AdmissionController::new_unmetered(table, &classes, &caps, &[0.32]);
        let m = crate::metrics::AdmissionMetrics::global(1);
        let admits0 = m.admits.get();
        let h: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
            .collect();
        assert!(ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).is_err());
        ctrl.refresh_gauges(); // no-op, must not panic
        drop(h);
        assert_eq!(m.admits.get(), admits0, "unmetered must not record");
    }

    #[test]
    fn concurrent_admission_respects_budget() {
        let (ctrl, shared) = setup(0.32);
        let mut threads = Vec::new();
        for _ in 0..8 {
            let ctrl = ctrl.clone();
            threads.push(std::thread::spawn(move || {
                let mut held = Vec::new();
                for _ in 0..5 {
                    if let Ok(h) = ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)) {
                        held.push(h);
                    }
                }
                // Keep the handles alive until the main thread has counted
                // them, so freed capacity cannot be re-admitted mid-test.
                held
            }));
        }
        let all: Vec<Vec<FlowHandle>> =
            threads.into_iter().map(|t| t.join().unwrap()).collect();
        let admitted: usize = all.iter().map(Vec::len).sum();
        assert_eq!(admitted, 10, "exactly the link capacity must be admitted");
        drop(all);
        assert_eq!(ctrl.reserved(shared, ClassId(0)), 0.0);
    }
}
