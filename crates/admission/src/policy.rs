//! Composable admission policy pipeline (ROADMAP item 2).
//!
//! The paper's admission decision is a single hard-wired predicate —
//! the utilization check against `α_i·C`. This module turns the
//! decision path into a *chain* of [`PolicyStage`]s evaluated before
//! the backend reservation; the utilization check stays exactly where
//! it was and becomes the chain's terminal stage. Two stages ship with
//! the chain:
//!
//! * [`TokenBucketStage`] — a per-class integer token bucket over
//!   *admitted demand*: each admitted flow of class `i` costs its
//!   declared rate `ρ_i` in millibits, the bucket refills at a
//!   configured millibit rate and is capped at a configured burst
//!   depth. All arithmetic is integer millibits on lock-free CAS
//!   atomics (same discipline as the reservation backends), so a
//!   refill racing an admit can never over-grant — proven by the loom
//!   model in `tests/loom_models.rs`.
//! * [`AimdStage`] — an AIMD rate controller gated by the PR 8 overuse
//!   detector ([`crate::arrival`]): the stage feeds every admission
//!   attempt into a per-class [`ArrivalEstimator`] +
//!   [`OveruseDetector`] and maintains a ceiling on admitted demand —
//!   multiplicative clamp while the detector reads `Overuse`, additive
//!   recovery under `Normal`, hold under `Underuse`.
//!
//! Ordering rule: shaping stages run in declaration order
//! ([`STAGE_NAMES`]) and the utilization check is always terminal — a
//! stage may only *narrow* what the utilization test would admit, so
//! an empty ("static") chain is decision-identical to the pre-pipeline
//! controller (the `policy_equiv` suite proves it decision-for-
//! decision). Stages consume on success; when a later stage or the
//! backend reservation rejects, the controller refunds every stage
//! that already consumed, so a rejected flow leaves no residue in the
//! chain.
//!
//! Time is always an explicit `t` parameter (seconds on the caller's
//! clock); this module never reads a wall clock (xtask rule 5).

use crate::arrival::{
    ArrivalEstimator, OveruseDetector, OveruseState, BASELINE_TAU, OVERUSE_SUSTAIN,
    OVERUSE_THRESHOLD, RATE_TAU,
};
use crate::state::{to_millibits, SCALE};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{CachePadded, Mutex};
use std::fmt;

/// Every shipped policy stage name, in chain order. xtask rule 10
/// parses this list and requires a per-stage reject-cause counter
/// (`admission.rejects.policy.<name>`) plus the `trace.reject_policy`
/// tracepoint in `docs/metrics-manifest.txt`.
pub const STAGE_NAMES: [&str; 2] = ["token_bucket", "aimd"];

/// One stage of the admission policy chain, evaluated before the
/// backend reservation. Implementations must be exact under
/// concurrency: `admit_n` consumes atomically (all-or-nothing for the
/// whole `n`-flow grab) and must never grant what the stage's own
/// budget cannot cover.
pub trait PolicyStage: fmt::Debug + Send + Sync {
    /// Stable lower-snake stage name; must be one of [`STAGE_NAMES`]
    /// (reject counters and tracepoints key on it).
    fn name(&self) -> &'static str;

    /// Consumes this stage's budget for `n` flows of `class` at time
    /// `t` (seconds). Returns `false` — consuming nothing — when the
    /// budget cannot cover the whole grab.
    fn admit_n(&self, class: usize, n: u64, t: f64) -> bool;

    /// Returns a previously consumed `n`-flow grab (a later stage or
    /// the backend rejected the admission).
    fn refund_n(&self, class: usize, n: u64);

    /// Whether `admit_n` would currently succeed, without consuming
    /// anything. Advisory (used by `explain` dry runs); may race
    /// concurrent admissions like every other dry read.
    fn would_admit(&self, class: usize, n: u64, t: f64) -> bool;
}

/// An ordered chain of policy stages. The empty chain is the `Static`
/// (utilization-only) policy: [`PolicyChain::admit_n`] is a no-op and
/// the controller's decision path reduces to exactly the pre-pipeline
/// code.
#[derive(Debug, Default)]
pub struct PolicyChain {
    stages: Vec<Box<dyn PolicyStage>>,
}

impl PolicyChain {
    /// The utilization-only chain: no shaping stages at all.
    pub fn static_only() -> Self {
        Self { stages: Vec::new() }
    }

    /// Appends a stage (stages run in push order).
    pub fn push(&mut self, stage: Box<dyn PolicyStage>) {
        self.stages.push(stage);
    }

    /// Whether this is the utilization-only chain (no shaping stages).
    pub fn is_static(&self) -> bool {
        self.stages.is_empty()
    }

    /// The shaping stages, in evaluation order.
    pub fn stages(&self) -> &[Box<dyn PolicyStage>] {
        &self.stages
    }

    /// Runs `n` flows of `class` through every stage in order,
    /// consuming each stage's budget. On the first stage that rejects,
    /// every earlier stage is refunded and the rejecting stage's name
    /// is returned — the chain is all-or-nothing.
    pub fn admit_n(&self, class: usize, n: u64, t: f64) -> Result<(), &'static str> {
        for (i, stage) in self.stages.iter().enumerate() {
            if !stage.admit_n(class, n, t) {
                for held in &self.stages[..i] {
                    held.refund_n(class, n);
                }
                return Err(stage.name());
            }
        }
        Ok(())
    }

    /// Refunds an `n`-flow grab from every stage (the backend
    /// reservation failed after the whole chain had consumed).
    pub fn refund_n(&self, class: usize, n: u64) {
        for stage in &self.stages {
            stage.refund_n(class, n);
        }
    }

    /// Dry-runs every stage independently (no consumption, no
    /// short-circuit): `(stage name, would admit)` per stage, in chain
    /// order. The `explain` diagnosis renders these verdicts.
    pub fn dry_run(&self, class: usize, n: u64, t: f64) -> Vec<(&'static str, bool)> {
        self.stages
            .iter()
            .map(|s| (s.name(), s.would_admit(class, n, t)))
            .collect()
    }

    /// Builds the chain a [`PolicyConfig`] describes, for traffic
    /// classes with the given per-flow rates (bits/s) — each admitted
    /// flow of class `i` costs `rates_bps[i]` against the shaping
    /// budgets.
    pub fn from_config(cfg: &PolicyConfig, rates_bps: &[f64]) -> Self {
        let mut chain = Self::static_only();
        match cfg.chain {
            ChainKind::Static => {}
            ChainKind::TokenBucket => {
                chain.push(Box::new(TokenBucketStage::new(
                    cfg.bucket_rate_bps,
                    cfg.bucket_burst_bits,
                    rates_bps,
                )));
            }
            ChainKind::Adaptive => {
                chain.push(Box::new(TokenBucketStage::new(
                    cfg.bucket_rate_bps,
                    cfg.bucket_burst_bits,
                    rates_bps,
                )));
                chain.push(Box::new(AimdStage::new(cfg.aimd, rates_bps)));
            }
        }
        chain
    }
}

/// Which shaping stages a scenario's `[policy]` table enables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChainKind {
    /// Utilization check only — decision-identical to the
    /// pre-pipeline controller.
    #[default]
    Static,
    /// Token bucket, then the utilization check.
    TokenBucket,
    /// Token bucket, then AIMD overuse gating, then the utilization
    /// check.
    Adaptive,
}

impl ChainKind {
    /// Stable lower-snake name (the `[policy] chain = "..."` value).
    pub fn as_str(self) -> &'static str {
        match self {
            ChainKind::Static => "static",
            ChainKind::TokenBucket => "token_bucket",
            ChainKind::Adaptive => "adaptive",
        }
    }

    /// Parses a `[policy] chain` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "static" => Some(ChainKind::Static),
            "token_bucket" => Some(ChainKind::TokenBucket),
            "adaptive" => Some(ChainKind::Adaptive),
            _ => None,
        }
    }
}

/// AIMD controller parameters (all demand-denominated, bits/s).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AimdParams {
    /// Floor the multiplicative decrease can never clamp below.
    pub min_rate_bps: f64,
    /// Ceiling additive recovery can never raise above (also the
    /// initial ceiling — the stage starts permissive).
    pub max_rate_bps: f64,
    /// Multiplicative decrease factor applied under `Overuse`
    /// (`0 < decrease < 1`).
    pub decrease: f64,
    /// Additive recovery step (bits/s) applied under `Normal`.
    pub increase_bps: f64,
}

impl Default for AimdParams {
    fn default() -> Self {
        Self {
            min_rate_bps: 64_000.0,
            max_rate_bps: 1e8,
            decrease: 0.7,
            increase_bps: 64_000.0,
        }
    }
}

/// Declarative policy-chain configuration — what a scenario's
/// `[policy]` TOML table deserializes into.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PolicyConfig {
    /// Which stages to build.
    pub chain: ChainKind,
    /// Token-bucket refill rate (bits/s of admitted demand per class).
    pub bucket_rate_bps: f64,
    /// Token-bucket depth (bits): the largest admitted-demand burst a
    /// quiet class can absorb at once.
    pub bucket_burst_bits: f64,
    /// AIMD stage parameters.
    pub aimd: AimdParams,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            chain: ChainKind::Static,
            bucket_rate_bps: 1e6,
            bucket_burst_bits: 1e6,
            aimd: AimdParams::default(),
        }
    }
}

/// One class's token bucket: tokens and the last-refill timestamp,
/// each on its own atomic (the timestamp stores `f64::to_bits`).
/// `CachePadded` so concurrent classes never share a line.
#[derive(Debug)]
struct Bucket {
    /// Remaining tokens, millibits.
    tokens: AtomicU64,
    /// Last refill time, seconds, as `f64` bits.
    last_bits: AtomicU64,
}

/// Per-class integer token bucket over admitted demand (see the
/// module docs). Buckets start full.
#[derive(Debug)]
pub struct TokenBucketStage {
    /// Refill rate, millibits per second.
    rate_mb: u64,
    /// Bucket depth, millibits.
    burst_mb: u64,
    /// Per-class cost of one admitted flow, millibits (`ρ_i`).
    cost_mb: Vec<u64>,
    buckets: Vec<CachePadded<Bucket>>,
}

impl TokenBucketStage {
    /// A bucket per class: refill `rate_bps` bits/s of admitted
    /// demand, depth `burst_bits` bits, one-flow cost `rates_bps[i]`.
    pub fn new(rate_bps: f64, burst_bits: f64, rates_bps: &[f64]) -> Self {
        let burst_mb = to_millibits(burst_bits);
        Self {
            rate_mb: to_millibits(rate_bps),
            burst_mb,
            cost_mb: rates_bps.iter().map(|&r| to_millibits(r)).collect(),
            buckets: rates_bps
                .iter()
                .map(|_| {
                    CachePadded::new(Bucket {
                        tokens: AtomicU64::new(burst_mb),
                        last_bits: AtomicU64::new(0.0f64.to_bits()),
                    })
                })
                .collect(),
        }
    }

    /// Current tokens of `class`, bits (diagnostic).
    pub fn tokens_bits(&self, class: usize) -> f64 {
        self.buckets.get(class).map_or(0.0, |b| {
            // ordering: Acquire — advisory read, no older than what the
            // caller already observed (same contract as backend
            // snapshots).
            b.tokens.load(Ordering::Acquire) as f64 / SCALE
        })
    }

    /// The millibit cost of an `n`-flow grab of `class` (flows of an
    /// unknown class are free — the chain never blocks what it cannot
    /// account).
    fn want(&self, class: usize, n: u64) -> u64 {
        self.cost_mb.get(class).map_or(0, |&c| c.saturating_mul(n))
    }

    /// Credits the elapsed interval since the last refill into the
    /// bucket, clamped at the burst depth. Exactly one thread claims
    /// any given `[last, t]` interval (the CAS on `last_bits`), so
    /// racing refills can never credit the same elapsed time twice —
    /// the never-over-grant half of the loom model.
    fn refill(&self, bucket: &Bucket, t: f64) {
        loop {
            // ordering: Acquire — pairs with the claim CAS below so a
            // loser re-reads the winner's published timestamp.
            let last = f64::from_bits(bucket.last_bits.load(Ordering::Acquire));
            if !t.is_finite() || t <= last {
                return;
            }
            // ordering: AcqRel — claiming the interval publishes the new
            // timestamp before the credit lands; a racing claimer either
            // sees it and credits only its own later sliver, or retries.
            if bucket
                .last_bits
                .compare_exchange(
                    last.to_bits(),
                    t.to_bits(),
                    Ordering::AcqRel,
                    // ordering: Acquire on failure — the loser re-reads
                    // the winner's published timestamp on retry.
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue;
            }
            // Clamping the credit at the depth keeps the arithmetic in
            // range for any elapsed time; the CAS loop below clamps the
            // sum again so tokens never exceed the depth.
            let credit = ((t - last) * self.rate_mb as f64).min(self.burst_mb as f64) as u64;
            if credit == 0 {
                return;
            }
            let mut cur = bucket.tokens.load(Ordering::Relaxed);
            loop {
                let new = cur.saturating_add(credit).min(self.burst_mb);
                // ordering: AcqRel — publishing refilled tokens pairs
                // with the consuming CAS in `admit_n`, like a backend
                // release pairs with the next reserve.
                match bucket.tokens.compare_exchange_weak(
                    cur,
                    new,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(actual) => cur = actual,
                }
            }
        }
    }
}

impl PolicyStage for TokenBucketStage {
    fn name(&self) -> &'static str {
        "token_bucket"
    }

    fn admit_n(&self, class: usize, n: u64, t: f64) -> bool {
        let want = self.want(class, n);
        if want == 0 {
            return true;
        }
        let Some(bucket) = self.buckets.get(class) else {
            return true;
        };
        self.refill(bucket, t);
        let mut cur = bucket.tokens.load(Ordering::Relaxed);
        while cur >= want {
            // ordering: AcqRel — the consuming CAS pairs with refill's
            // publish; the decrement only happens when the observed
            // tokens cover the whole grab, so concurrent admits can
            // never jointly overdraw the bucket.
            match bucket.tokens.compare_exchange_weak(
                cur,
                cur - want,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
        false
    }

    fn refund_n(&self, class: usize, n: u64) {
        let want = self.want(class, n);
        if want == 0 {
            return;
        }
        let Some(bucket) = self.buckets.get(class) else {
            return;
        };
        let mut cur = bucket.tokens.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(want).min(self.burst_mb);
            // ordering: AcqRel — a refund republishes tokens exactly
            // like a refill (clamped at the depth, so a refund racing a
            // refill cannot mint tokens).
            match bucket
                .tokens
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    fn would_admit(&self, class: usize, n: u64, t: f64) -> bool {
        let want = self.want(class, n);
        if want == 0 {
            return true;
        }
        let Some(bucket) = self.buckets.get(class) else {
            return true;
        };
        // ordering: Acquire ×2 — advisory dry read of (tokens, last);
        // mirrors what admit_n would see without claiming the interval.
        let tokens = bucket.tokens.load(Ordering::Acquire);
        let last = f64::from_bits(bucket.last_bits.load(Ordering::Acquire));
        let credit = if t > last {
            ((t - last) * self.rate_mb as f64).min(self.burst_mb as f64) as u64
        } else {
            0
        };
        tokens.saturating_add(credit).min(self.burst_mb) >= want
    }
}

/// How often (seconds) the AIMD stage may adjust its ceiling. Paces
/// the multiplicative decrease so one sustained overuse episode clamps
/// geometrically over the episode instead of collapsing to the floor
/// on consecutive admissions within the same batch.
const AIMD_ADJUST_EVERY: f64 = 0.1;

/// One class's AIMD state, behind its own padded mutex.
#[derive(Debug)]
struct AimdClass {
    est: ArrivalEstimator,
    det: OveruseDetector,
    /// Current admitted-demand ceiling, millibits/s.
    cap_mb: u64,
    /// Enforcement tokens, millibits (refilled at `cap_mb`/s, depth one
    /// second of ceiling).
    tokens_mb: u64,
    last_refill: f64,
    last_adjust: f64,
}

/// AIMD rate controller gated by the overuse detector (see the module
/// docs). Enforcement is a token bucket whose refill rate *is* the
/// adaptive ceiling (depth: one second of ceiling), so "admitted
/// demand per second" is what the ceiling actually bounds.
#[derive(Debug)]
pub struct AimdStage {
    min_mb: u64,
    max_mb: u64,
    decrease: f64,
    increase_mb: u64,
    /// Per-class cost of one admitted flow, millibits (`ρ_i`).
    cost_mb: Vec<u64>,
    classes: Vec<CachePadded<Mutex<AimdClass>>>,
}

impl AimdStage {
    /// An AIMD stage for classes with per-flow rates `rates_bps`.
    pub fn new(params: AimdParams, rates_bps: &[f64]) -> Self {
        assert!(
            params.decrease > 0.0 && params.decrease < 1.0,
            "decrease must be a fraction in (0, 1)"
        );
        assert!(params.increase_bps > 0.0, "increase step must be positive");
        let min_mb = to_millibits(params.min_rate_bps);
        let max_mb = to_millibits(params.max_rate_bps).max(min_mb);
        Self {
            min_mb,
            max_mb,
            decrease: params.decrease,
            increase_mb: to_millibits(params.increase_bps).max(1),
            cost_mb: rates_bps.iter().map(|&r| to_millibits(r)).collect(),
            classes: rates_bps
                .iter()
                .map(|_| {
                    CachePadded::new(Mutex::new(AimdClass {
                        est: ArrivalEstimator::new(RATE_TAU),
                        det: OveruseDetector::new(OVERUSE_THRESHOLD, OVERUSE_SUSTAIN, BASELINE_TAU),
                        cap_mb: max_mb,
                        tokens_mb: max_mb,
                        last_refill: 0.0,
                        last_adjust: 0.0,
                    }))
                })
                .collect(),
        }
    }

    /// Current admitted-demand ceiling of `class`, bits/s.
    pub fn cap_bps(&self, class: usize) -> f64 {
        self.classes
            .get(class)
            .map_or(0.0, |c| c.lock().unwrap().cap_mb as f64 / SCALE)
    }

    /// Detector state of `class` (diagnostic).
    pub fn state(&self, class: usize) -> OveruseState {
        self.classes
            .get(class)
            .map_or(OveruseState::Normal, |c| c.lock().unwrap().det.state())
    }

    fn want(&self, class: usize, n: u64) -> u64 {
        self.cost_mb.get(class).map_or(0, |&c| c.saturating_mul(n))
    }

    /// Advances `st` to time `t`: detector update, at most one paced
    /// ceiling adjustment, then the enforcement-token refill.
    fn advance(&self, st: &mut AimdClass, t: f64, offered: u64) {
        st.est.observe_n(t, offered);
        let rate = st.est.rate();
        st.det.update(t, rate);
        if t - st.last_adjust >= AIMD_ADJUST_EVERY {
            st.last_adjust = t;
            match st.det.state() {
                OveruseState::Overuse => {
                    st.cap_mb = ((st.cap_mb as f64 * self.decrease) as u64).max(self.min_mb);
                }
                OveruseState::Normal => {
                    st.cap_mb = st.cap_mb.saturating_add(self.increase_mb).min(self.max_mb);
                }
                OveruseState::Underuse => {}
            }
            st.tokens_mb = st.tokens_mb.min(st.cap_mb);
        }
        let gap = (t - st.last_refill).max(0.0);
        st.last_refill = t;
        let credit = (gap * st.cap_mb as f64).min(st.cap_mb as f64) as u64;
        st.tokens_mb = st.tokens_mb.saturating_add(credit).min(st.cap_mb);
    }
}

impl PolicyStage for AimdStage {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn admit_n(&self, class: usize, n: u64, t: f64) -> bool {
        let want = self.want(class, n);
        let Some(slot) = self.classes.get(class) else {
            return true;
        };
        let mut st = slot.lock().unwrap();
        // The estimator sees *offered* attempts (n flows asked), so the
        // detector measures demand pressure, not the post-clamp trickle.
        self.advance(&mut st, t, n);
        if want == 0 {
            return true;
        }
        if st.tokens_mb >= want {
            st.tokens_mb -= want;
            true
        } else {
            false
        }
    }

    fn refund_n(&self, class: usize, n: u64) {
        let want = self.want(class, n);
        if want == 0 {
            return;
        }
        let Some(slot) = self.classes.get(class) else {
            return;
        };
        let mut st = slot.lock().unwrap();
        st.tokens_mb = st.tokens_mb.saturating_add(want).min(st.cap_mb);
    }

    fn would_admit(&self, class: usize, n: u64, t: f64) -> bool {
        let want = self.want(class, n);
        if want == 0 {
            return true;
        }
        let Some(slot) = self.classes.get(class) else {
            return true;
        };
        let st = slot.lock().unwrap();
        let gap = (t - st.last_refill).max(0.0);
        let credit = (gap * st.cap_mb as f64).min(st.cap_mb as f64) as u64;
        st.tokens_mb.saturating_add(credit).min(st.cap_mb) >= want
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    const VOIP: f64 = 32_000.0;

    fn bucket(rate_bps: f64, burst_bits: f64) -> TokenBucketStage {
        TokenBucketStage::new(rate_bps, burst_bits, &[VOIP])
    }

    #[test]
    fn stage_names_match_the_manifest_registry() {
        let tb = bucket(VOIP, VOIP);
        let aimd = AimdStage::new(AimdParams::default(), &[VOIP]);
        assert_eq!([tb.name(), aimd.name()], STAGE_NAMES);
    }

    #[test]
    fn token_bucket_depth_bounds_a_cold_burst() {
        // Depth 3 flows, so a burst of 3 fits and the 4th is rejected.
        let tb = bucket(VOIP, 3.0 * VOIP);
        assert!(tb.admit_n(0, 3, 0.0));
        assert!(!tb.admit_n(0, 1, 0.0));
        assert_eq!(tb.tokens_bits(0), 0.0);
    }

    #[test]
    fn token_bucket_refills_at_the_configured_rate() {
        // Refill one flow-cost per second.
        let tb = bucket(VOIP, 2.0 * VOIP);
        assert!(tb.admit_n(0, 2, 0.0));
        assert!(!tb.admit_n(0, 1, 0.5), "half a flow refilled");
        assert!(tb.would_admit(0, 1, 1.5));
        assert!(tb.admit_n(0, 1, 1.5));
        // Idle refill clamps at the depth: 100 s only restores 2 flows.
        assert!(tb.admit_n(0, 2, 101.5));
        assert!(!tb.admit_n(0, 1, 101.5));
    }

    #[test]
    fn token_bucket_refund_restores_exactly_what_was_taken() {
        let tb = bucket(VOIP, 2.0 * VOIP);
        assert!(tb.admit_n(0, 2, 0.0));
        tb.refund_n(0, 2);
        assert!(tb.admit_n(0, 2, 0.0));
        // Refund over a full bucket clamps at the depth.
        tb.refund_n(0, 2);
        tb.refund_n(0, 2);
        assert!(tb.admit_n(0, 2, 0.0));
        assert!(!tb.admit_n(0, 1, 0.0));
    }

    #[test]
    fn would_admit_is_a_pure_dry_run() {
        let tb = bucket(VOIP, VOIP);
        for _ in 0..10 {
            assert!(tb.would_admit(0, 1, 0.0));
        }
        assert!(tb.admit_n(0, 1, 0.0));
        assert!(!tb.would_admit(0, 1, 0.0));
    }

    #[test]
    fn unknown_classes_are_free() {
        let tb = bucket(VOIP, VOIP);
        assert!(tb.admit_n(7, 1000, 0.0));
        let aimd = AimdStage::new(AimdParams::default(), &[VOIP]);
        assert!(aimd.admit_n(7, 1000, 0.0));
    }

    #[test]
    fn aimd_clamps_under_sustained_overuse_and_recovers() {
        let params = AimdParams {
            min_rate_bps: VOIP,
            max_rate_bps: 100.0 * VOIP,
            decrease: 0.5,
            increase_bps: 10.0 * VOIP,
        };
        let aimd = AimdStage::new(params, &[VOIP]);
        assert_eq!(aimd.cap_bps(0), 100.0 * VOIP);
        // Sustained ramp: heavy offered load every 10 ms. The cold-start
        // gradient reads overuse and the paced decrease bites.
        let mut t = 0.0;
        for _ in 0..100 {
            aimd.admit_n(0, 50, t);
            t += 0.01;
        }
        let clamped = aimd.cap_bps(0);
        assert!(
            clamped < 100.0 * VOIP,
            "sustained overuse must clamp: {clamped}"
        );
        assert_eq!(aimd.state(0), OveruseState::Overuse);
        // Long steady trickle: the detector settles and additive
        // recovery raises the ceiling back toward the max.
        for _ in 0..3000 {
            aimd.admit_n(0, 1, t);
            t += 0.1;
        }
        assert!(
            aimd.cap_bps(0) > clamped,
            "recovery must raise the ceiling: {} vs {clamped}",
            aimd.cap_bps(0)
        );
    }

    #[test]
    fn aimd_ceiling_bounds_admitted_demand_per_second() {
        // Pin the ceiling at min == max == 2 flows/s worth of demand:
        // no adjustment can move it, so enforcement is pure.
        let params = AimdParams {
            min_rate_bps: 2.0 * VOIP,
            max_rate_bps: 2.0 * VOIP,
            decrease: 0.5,
            increase_bps: VOIP,
        };
        let aimd = AimdStage::new(params, &[VOIP]);
        // The first second's depth admits 2; the 3rd in the same tick
        // must fail, and refund restores it.
        assert!(aimd.admit_n(0, 2, 0.0));
        assert!(!aimd.admit_n(0, 1, 0.0));
        aimd.refund_n(0, 1);
        assert!(aimd.admit_n(0, 1, 0.0));
        // After a second of refill the ceiling grants 2 more.
        assert!(aimd.would_admit(0, 2, 1.0));
        assert!(aimd.admit_n(0, 2, 1.0));
        assert!(!aimd.admit_n(0, 1, 1.0));
    }

    #[test]
    fn chain_is_all_or_nothing_and_names_the_rejecting_stage() {
        /// A test-only stage that always rejects.
        #[derive(Debug)]
        struct Wall;
        impl PolicyStage for Wall {
            fn name(&self) -> &'static str {
                "aimd" // stand-in; names must come from STAGE_NAMES
            }
            fn admit_n(&self, _: usize, _: u64, _: f64) -> bool {
                false
            }
            fn refund_n(&self, _: usize, _: u64) {}
            fn would_admit(&self, _: usize, _: u64, _: f64) -> bool {
                false
            }
        }
        let mut chain = PolicyChain::static_only();
        chain.push(Box::new(bucket(VOIP, 2.0 * VOIP)));
        chain.push(Box::new(Wall));
        assert_eq!(chain.admit_n(0, 1, 0.0), Err("aimd"));
        // The token bucket was refunded: its full depth is intact.
        let verdicts = chain.dry_run(0, 2, 0.0);
        assert_eq!(verdicts[0], ("token_bucket", true));
        assert_eq!(verdicts[1], ("aimd", false));
    }

    #[test]
    fn chain_refund_returns_every_stage() {
        let mut chain = PolicyChain::static_only();
        chain.push(Box::new(bucket(VOIP, VOIP)));
        assert!(chain.admit_n(0, 1, 0.0).is_ok());
        assert!(!chain.stages()[0].would_admit(0, 1, 0.0));
        chain.refund_n(0, 1);
        assert!(chain.stages()[0].would_admit(0, 1, 0.0));
    }

    #[test]
    fn static_chain_is_empty_and_always_passes() {
        let chain = PolicyChain::static_only();
        assert!(chain.is_static());
        assert!(chain.admit_n(0, u64::MAX, 0.0).is_ok());
        assert!(chain.dry_run(0, 1, 0.0).is_empty());
    }

    #[test]
    fn from_config_builds_the_configured_stages() {
        let rates = [VOIP];
        let mut cfg = PolicyConfig::default();
        assert!(PolicyChain::from_config(&cfg, &rates).is_static());
        cfg.chain = ChainKind::TokenBucket;
        let tb = PolicyChain::from_config(&cfg, &rates);
        assert_eq!(
            tb.stages().iter().map(|s| s.name()).collect::<Vec<_>>(),
            ["token_bucket"]
        );
        cfg.chain = ChainKind::Adaptive;
        let ad = PolicyChain::from_config(&cfg, &rates);
        assert_eq!(
            ad.stages().iter().map(|s| s.name()).collect::<Vec<_>>(),
            STAGE_NAMES
        );
    }

    #[test]
    fn chain_kind_round_trips_its_names() {
        for kind in [
            ChainKind::Static,
            ChainKind::TokenBucket,
            ChainKind::Adaptive,
        ] {
            assert_eq!(ChainKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ChainKind::parse("always"), None);
    }

    #[test]
    fn concurrent_admits_never_overdraw_the_bucket() {
        use std::sync::Arc;
        // Depth 5 flows, no refill (t fixed at 0): exactly 5 of the 40
        // concurrent grabs may win.
        let tb = Arc::new(bucket(VOIP, 5.0 * VOIP));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let tb = Arc::clone(&tb);
            handles.push(std::thread::spawn(move || {
                (0..5).filter(|_| tb.admit_n(0, 1, 0.0)).count()
            }));
        }
        let won: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(won, 5, "depth 5 must admit exactly 5 concurrent flows");
    }
}
