//! Run-time admission control (Section 4, component 2).
//!
//! After configuration has fixed routes and verified a safe utilization
//! assignment, admitting a flow reduces to: *does every link server on the
//! flow's route have `α_i·C` headroom left for its class?* This crate
//! implements that test so it is cheap, concurrent, and exact:
//!
//! * [`state`] — per-(server, class) reserved-rate counters as lock-free
//!   atomics with CAS reservation; the class budget is never exceeded,
//!   even under concurrent admissions.
//! * [`table`] — the configured routing table mapping (src, dst, class)
//!   to the committed route.
//! * [`controller`] — the utilization-based admission controller with
//!   RAII flow handles (dropping a handle releases its bandwidth).
//! * [`baseline`] — an intserv-style comparator that re-runs the
//!   flow-aware general delay analysis over *all* established flows on
//!   every admission: the O(flows) cost the paper's design eliminates
//!   (experiment S-AC).
//! * [`churn`] — a deterministic flow-churn workload driver for
//!   benchmarking both policies under identical request sequences.
//! * [`metrics`] — admission-path instrumentation (counters for
//!   admits/rejects/CAS retries, a path-length histogram, per-class
//!   utilization gauges) recorded into the [`uba_obs`] registry.
//! * [`explain`] — non-mutating per-flow admission diagnosis (path
//!   tried, first failing link, observed vs. budget utilization,
//!   headroom), the audit-trail companion to the flight-recorder events
//!   the admit path emits into [`uba_obs::trace`].

#![warn(missing_docs)]

pub mod baseline;
pub mod churn;
pub mod controller;
pub mod explain;
pub mod metrics;
pub mod state;
pub mod table;

pub use baseline::PerFlowAdmission;
pub use churn::{run_churn, ChurnConfig, ChurnStats, Policy};
pub use controller::{AdmissionController, FlowHandle, Reject};
pub use explain::{Explain, ExplainVerdict};
pub use metrics::AdmissionMetrics;
pub use state::UtilizationState;
pub use table::RoutingTable;
