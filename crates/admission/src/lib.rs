//! Run-time admission control (Section 4, component 2).
//!
//! After configuration has fixed routes and verified a safe utilization
//! assignment, admitting a flow reduces to: *does every link server on the
//! flow's route have `α_i·C` headroom left for its class?* This crate
//! implements that test so it is cheap, concurrent, exact, and — because
//! configurations change under load — *versioned*:
//!
//! * [`state`] — per-(server, class) reserved-rate counters as lock-free
//!   atomics with CAS reservation; the class budget is never exceeded,
//!   even under concurrent admissions.
//! * [`backend`] — the pluggable reservation-state contract
//!   ([`AdmissionBackend`]): the CAS counters above as [`AtomicBackend`],
//!   plus a budget-striping [`ShardedBackend`] that spreads hot-link CAS
//!   contention across cache-padded shards with a two-phase
//!   reserve-then-borrow protocol (a reject always carries a
//!   genuine-exhaustion witness — no spurious double-rejects).
//! * [`generation`] — immutable [`ConfigGeneration`] snapshots (routing
//!   table + alphas + budgets + fresh backend), the installable unit of
//!   config-time output.
//! * [`table`] — the configured routing table mapping (src, dst, class)
//!   to the committed route.
//! * [`controller`] — the utilization-based admission controller with
//!   RAII flow handles (dropping a handle releases its bandwidth),
//!   batched admission ([`AdmissionController::try_admit_batch`]:
//!   per-slice demand aggregation, one reservation per touched cell) and
//!   live reconfiguration: generations swap behind an epoch pointer
//!   without pausing admission, and in-flight flows drain against the
//!   generation they were admitted under.
//! * [`baseline`] — an intserv-style comparator that re-runs the
//!   flow-aware general delay analysis over *all* established flows on
//!   every admission: the O(flows) cost the paper's design eliminates
//!   (experiment S-AC).
//! * [`churn`] — a deterministic flow-churn workload driver for
//!   benchmarking both policies under identical request sequences,
//!   including a bursty (high-CV) mode built on
//!   [`uba_traffic::BurstModel`].
//! * [`arrival`] — observe-only burst/overuse telemetry: per-class EWMA
//!   arrival-rate and inter-arrival-CV estimators plus a GCC-style
//!   overuse detector, fed from the buffered metrics path and published
//!   as `admission.arrival.*` / `admission.overuse_state` gauges.
//! * [`policy`] — the composable admission-policy pipeline
//!   ([`PolicyChain`]): zero or more shaping stages (per-class integer
//!   token bucket, AIMD rate controller gated by the [`arrival`]
//!   overuse detector) evaluated before the backend reservation, with
//!   consume-before-reserve semantics and exact refund on any
//!   downstream reject. The empty (`Static`) chain is the pre-pipeline
//!   controller, bit for bit (`tests/policy_equiv.rs`).
//! * [`metrics`] — admission-path instrumentation (counters for
//!   admits/rejects/CAS retries, a path-length histogram, per-class
//!   utilization gauges) recorded into the [`uba_obs`] registry.
//! * [`explain`] — non-mutating per-flow admission diagnosis (path
//!   tried, first failing link, observed vs. budget utilization,
//!   headroom), the audit-trail companion to the flight-recorder events
//!   the admit path emits into [`uba_obs::trace`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod backend;
pub mod baseline;
pub mod churn;
pub mod controller;
pub mod explain;
pub mod generation;
pub mod metrics;
pub mod policy;
pub mod state;
pub(crate) mod sync;
pub mod table;

pub use arrival::{ArrivalEstimator, ArrivalMonitor, OveruseDetector, OveruseState, RateAction};
pub use backend::{AdmissionBackend, AtomicBackend, CellDemand, PathReject, ShardedBackend};
pub use baseline::PerFlowAdmission;
pub use churn::{
    run_churn, run_churn_bursts, run_churn_bursty, run_churn_with, ChurnConfig, ChurnStats, Policy,
};
pub use controller::{
    AdmissionController, BatchOutcome, DrainStatus, FlowHandle, FlowSpec, ReconfigReport, Reject,
};
pub use explain::{Explain, ExplainVerdict, StageVerdict};
pub use generation::{BackendKind, ConfigGeneration};
pub use metrics::AdmissionMetrics;
pub use policy::{
    AimdParams, AimdStage, ChainKind, PolicyChain, PolicyConfig, PolicyStage, TokenBucketStage,
    STAGE_NAMES,
};
pub use state::UtilizationState;
pub use table::RoutingTable;
