//! Deterministic flow-churn workload driver.
//!
//! Generates a reproducible arrival/departure process (Poisson arrivals,
//! exponential holding times, uniform pair choice) and drives any
//! admission policy through it, recording acceptance statistics and
//! decision latency. Used by experiment S-AC to compare the
//! utilization-based controller against the per-flow baseline under
//! identical request sequences.

use uba_graph::NodeId;
use uba_obs::{SplitMix64, Stopwatch};
use uba_traffic::{BurstModel, ClassId};

/// An admission policy under test.
pub trait Policy {
    /// Whatever the policy hands back for an admitted flow; dropping or
    /// releasing it must free the resources.
    type Handle;
    /// Attempts to admit one flow.
    fn admit(&mut self, class: ClassId, src: NodeId, dst: NodeId) -> Option<Self::Handle>;
    /// Attempts to admit a burst of simultaneous requests; the default
    /// admits them one by one. Policies with a batched fast path (the
    /// utilization controller) override this.
    fn admit_burst(
        &mut self,
        class: ClassId,
        reqs: &[(NodeId, NodeId)],
    ) -> Vec<Option<Self::Handle>> {
        reqs.iter()
            .map(|&(src, dst)| self.admit(class, src, dst))
            .collect()
    }
    /// Releases an admitted flow.
    fn release(&mut self, handle: Self::Handle);
}

impl Policy for crate::AdmissionController {
    type Handle = crate::FlowHandle;
    fn admit(&mut self, class: ClassId, src: NodeId, dst: NodeId) -> Option<Self::Handle> {
        self.try_admit(class, src, dst).ok()
    }
    fn admit_burst(
        &mut self,
        class: ClassId,
        reqs: &[(NodeId, NodeId)],
    ) -> Vec<Option<Self::Handle>> {
        let specs: Vec<crate::FlowSpec> = reqs
            .iter()
            .map(|&(src, dst)| crate::FlowSpec { class, src, dst })
            .collect();
        self.try_admit_batch(&specs)
            .flows
            .into_iter()
            .map(Result::ok)
            .collect()
    }
    fn release(&mut self, handle: Self::Handle) {
        drop(handle);
    }
}

impl Policy for &crate::PerFlowAdmission {
    type Handle = crate::baseline::BaselineFlowId;
    fn admit(&mut self, class: ClassId, src: NodeId, dst: NodeId) -> Option<Self::Handle> {
        self.try_admit(class, src, dst)
    }
    fn release(&mut self, handle: Self::Handle) {
        PerFlowAdmissionExt::release(*self, handle);
    }
}

// Disambiguation shim: `PerFlowAdmission::release` by value vs the trait
// method taking `&mut &PerFlowAdmission`.
trait PerFlowAdmissionExt {
    fn release(&self, id: crate::baseline::BaselineFlowId);
}
impl PerFlowAdmissionExt for crate::PerFlowAdmission {
    fn release(&self, id: crate::baseline::BaselineFlowId) {
        crate::PerFlowAdmission::release(self, id)
    }
}

/// Churn parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Total arrival events to generate.
    pub arrivals: usize,
    /// Mean number of concurrently active flows targeted (offered load):
    /// each admitted flow's holding time spans this many subsequent
    /// arrivals on average.
    pub mean_active: f64,
    /// RNG seed — identical seeds give identical request sequences.
    pub seed: u64,
}

/// What the driver measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChurnStats {
    /// Arrivals offered.
    pub offered: usize,
    /// Arrivals admitted.
    pub accepted: usize,
    /// Peak concurrently active flows.
    pub peak_active: usize,
    /// Total wall time spent inside admit() calls, nanoseconds.
    pub admit_ns: u128,
    /// Mean admit() latency in nanoseconds.
    pub mean_admit_ns: f64,
    /// Bursts offered. Zero for the one-at-a-time driver
    /// ([`run_churn`]); the burst drivers count every tick's slug here,
    /// including bursts of one.
    pub bursts: usize,
    /// Bursts admitted in full.
    pub bursts_clean: usize,
    /// Bursts partially admitted: at least one request in, at least one
    /// turned away. The interesting failure mode — a conference call
    /// that connected some parties but not all.
    pub bursts_clipped: usize,
    /// Bursts rejected outright (no request admitted).
    pub bursts_dropped: usize,
}

impl ChurnStats {
    /// Blocking probability.
    pub fn blocking(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            1.0 - self.accepted as f64 / self.offered as f64
        }
    }

    /// Classifies one burst outcome: `got` of `n` requests admitted.
    fn tally_burst(&mut self, n: usize, got: usize) {
        self.bursts += 1;
        if got == n {
            self.bursts_clean += 1;
        } else if got == 0 {
            self.bursts_dropped += 1;
        } else {
            self.bursts_clipped += 1;
        }
    }
}

/// Runs the churn process against `policy` over the given candidate
/// pairs.
///
/// Time is measured in "arrival ticks": each arrival picks a uniform
/// pair, attempts admission, and an admitted flow departs after an
/// exponential number of ticks with mean `mean_active` (so the steady
/// state offers roughly `mean_active` concurrent flows).
pub fn run_churn<P: Policy>(
    policy: &mut P,
    pairs: &[(NodeId, NodeId)],
    class: ClassId,
    cfg: &ChurnConfig,
) -> ChurnStats {
    run_churn_with(policy, pairs, class, cfg, |_, _| {})
}

/// Like [`run_churn`], with a per-tick hook called after departures and
/// before the tick's arrival — the place to inject control-plane actions
/// (e.g. an `AdmissionController::reconfigure` mid-churn) at a
/// deterministic point in the request sequence.
pub fn run_churn_with<P: Policy>(
    policy: &mut P,
    pairs: &[(NodeId, NodeId)],
    class: ClassId,
    cfg: &ChurnConfig,
    mut on_tick: impl FnMut(u64, &mut P),
) -> ChurnStats {
    assert!(!pairs.is_empty(), "need candidate pairs");
    assert!(cfg.mean_active > 0.0, "mean_active must be positive");
    let mut rng = SplitMix64::new(cfg.seed);
    // Departure queue keyed by tick.
    let mut departures: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    let mut held: Vec<Option<P::Handle>> = Vec::new();
    let mut stats = ChurnStats::default();
    let mut active = 0usize;

    for tick in 0..cfg.arrivals as u64 {
        // Process due departures.
        while let Some(&std::cmp::Reverse((due, slot))) = departures.peek() {
            if due > tick {
                break;
            }
            departures.pop();
            if let Some(h) = held[slot].take() {
                policy.release(h);
                active -= 1;
            }
        }
        on_tick(tick, policy);
        // One arrival.
        let (src, dst) = pairs[rng.index(pairs.len())];
        stats.offered += 1;
        let t0 = Stopwatch::start();
        let admitted = policy.admit(class, src, dst);
        stats.admit_ns += t0.elapsed_ns() as u128;
        if let Some(h) = admitted {
            stats.accepted += 1;
            active += 1;
            stats.peak_active = stats.peak_active.max(active);
            // Exponential holding time in ticks (inverse transform).
            let u: f64 = rng.range_f64(1e-12, 1.0);
            let hold = (-cfg.mean_active * u.ln()).ceil() as u64;
            let slot = held.len();
            held.push(Some(h));
            departures.push(std::cmp::Reverse((tick + hold.max(1), slot)));
        }
    }
    // Tear everything down.
    for h in held.into_iter().flatten() {
        policy.release(h);
    }
    stats.mean_admit_ns = if stats.offered > 0 {
        stats.admit_ns as f64 / stats.offered as f64
    } else {
        0.0
    };
    stats
}

/// Like [`run_churn`], but arrivals come in bursts: each tick offers
/// `burst` simultaneous requests for one uniformly chosen pair (a
/// "conference call" arrival) admitted through [`Policy::admit_burst`]
/// — for the utilization controller, the batched fast path. With
/// `burst == 1` the request sequence is identical to [`run_churn`]'s.
pub fn run_churn_bursts<P: Policy>(
    policy: &mut P,
    pairs: &[(NodeId, NodeId)],
    class: ClassId,
    cfg: &ChurnConfig,
    burst: usize,
) -> ChurnStats {
    assert!(!pairs.is_empty(), "need candidate pairs");
    assert!(burst >= 1, "burst must be at least 1");
    assert!(cfg.mean_active > 0.0, "mean_active must be positive");
    let mut rng = SplitMix64::new(cfg.seed);
    let mut departures: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    let mut held: Vec<Option<P::Handle>> = Vec::new();
    let mut stats = ChurnStats::default();
    let mut active = 0usize;
    let mut reqs: Vec<(NodeId, NodeId)> = Vec::with_capacity(burst);

    let mut tick = 0u64;
    while stats.offered < cfg.arrivals {
        while let Some(&std::cmp::Reverse((due, slot))) = departures.peek() {
            if due > tick {
                break;
            }
            departures.pop();
            if let Some(h) = held[slot].take() {
                policy.release(h);
                active -= 1;
            }
        }
        let n = burst.min(cfg.arrivals - stats.offered);
        let (src, dst) = pairs[rng.index(pairs.len())];
        reqs.clear();
        reqs.resize(n, (src, dst));
        stats.offered += n;
        let t0 = Stopwatch::start();
        let admitted = policy.admit_burst(class, &reqs);
        stats.admit_ns += t0.elapsed_ns() as u128;
        stats.tally_burst(n, admitted.iter().filter(|h| h.is_some()).count());
        for h in admitted.into_iter().flatten() {
            stats.accepted += 1;
            active += 1;
            stats.peak_active = stats.peak_active.max(active);
            let u: f64 = rng.range_f64(1e-12, 1.0);
            let hold = (-cfg.mean_active * u.ln()).ceil() as u64;
            let slot = held.len();
            held.push(Some(h));
            departures.push(std::cmp::Reverse((tick + hold.max(1), slot)));
        }
        tick += 1;
    }
    for h in held.into_iter().flatten() {
        policy.release(h);
    }
    stats.mean_admit_ns = if stats.offered > 0 {
        stats.admit_ns as f64 / stats.offered as f64
    } else {
        0.0
    };
    stats
}

/// Like [`run_churn_bursts`], but each tick's burst size is drawn from
/// a [`BurstModel`] — mostly single requests with occasional large
/// slugs — instead of being constant. At the same mean offered rate
/// this produces the high inter-arrival-CV workload the admission
/// path's arrival telemetry ([`crate::arrival`]) is designed to flag;
/// the serve loop's background churn uses it so burst gauges and
/// overuse transitions are visible out of the box. Deterministic for a
/// fixed seed, as always.
pub fn run_churn_bursty<P: Policy>(
    policy: &mut P,
    pairs: &[(NodeId, NodeId)],
    class: ClassId,
    cfg: &ChurnConfig,
    model: &BurstModel,
) -> ChurnStats {
    assert!(!pairs.is_empty(), "need candidate pairs");
    assert!(cfg.mean_active > 0.0, "mean_active must be positive");
    let mut rng = SplitMix64::new(cfg.seed);
    let mut departures: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
        std::collections::BinaryHeap::new();
    let mut held: Vec<Option<P::Handle>> = Vec::new();
    let mut stats = ChurnStats::default();
    let mut active = 0usize;
    let mut reqs: Vec<(NodeId, NodeId)> = Vec::new();

    let mut tick = 0u64;
    while stats.offered < cfg.arrivals {
        while let Some(&std::cmp::Reverse((due, slot))) = departures.peek() {
            if due > tick {
                break;
            }
            departures.pop();
            if let Some(h) = held[slot].take() {
                policy.release(h);
                active -= 1;
            }
        }
        let drawn = model.sample(rng.range_f64(0.0, 1.0)) as usize;
        let n = drawn.min(cfg.arrivals - stats.offered).max(1);
        let (src, dst) = pairs[rng.index(pairs.len())];
        reqs.clear();
        reqs.resize(n, (src, dst));
        stats.offered += n;
        let t0 = Stopwatch::start();
        let admitted = policy.admit_burst(class, &reqs);
        stats.admit_ns += t0.elapsed_ns() as u128;
        stats.tally_burst(n, admitted.iter().filter(|h| h.is_some()).count());
        for h in admitted.into_iter().flatten() {
            stats.accepted += 1;
            active += 1;
            stats.peak_active = stats.peak_active.max(active);
            let u: f64 = rng.range_f64(1e-12, 1.0);
            let hold = (-cfg.mean_active * u.ln()).ceil() as u64;
            let slot = held.len();
            held.push(Some(h));
            departures.push(std::cmp::Reverse((tick + hold.max(1), slot)));
        }
        tick += 1;
    }
    for h in held.into_iter().flatten() {
        policy.release(h);
    }
    stats.mean_admit_ns = if stats.offered > 0 {
        stats.admit_ns as f64 / stats.offered as f64
    } else {
        0.0
    };
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::RoutingTable;
    use crate::AdmissionController;
    use uba_graph::{Digraph, Path};
    use uba_traffic::{ClassSet, TrafficClass};

    fn controller(alpha: f64) -> (AdmissionController, Vec<(NodeId, NodeId)>) {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; g.edge_count()];
        let pairs = vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))];
        (
            AdmissionController::new(table, &classes, &caps, &[alpha]),
            pairs,
        )
    }

    #[test]
    fn light_load_all_accepted() {
        let (mut ctrl, pairs) = controller(0.5);
        let cfg = ChurnConfig {
            arrivals: 200,
            mean_active: 3.0,
            seed: 1,
        };
        let stats = run_churn(&mut ctrl, &pairs, ClassId(0), &cfg);
        assert_eq!(stats.offered, 200);
        assert_eq!(stats.blocking(), 0.0);
        // Everything released at the end.
        assert_eq!(ctrl.reserved(2, ClassId(0)), 0.0);
    }

    #[test]
    fn heavy_load_blocks_some() {
        let (mut ctrl, pairs) = controller(0.1); // 3 flows per link
        let cfg = ChurnConfig {
            arrivals: 500,
            mean_active: 50.0,
            seed: 2,
        };
        let stats = run_churn(&mut ctrl, &pairs, ClassId(0), &cfg);
        assert!(stats.blocking() > 0.0);
        assert!(stats.peak_active <= 6, "peak {}", stats.peak_active);
        assert_eq!(ctrl.reserved(2, ClassId(0)), 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = ChurnConfig {
            arrivals: 300,
            mean_active: 10.0,
            seed: 42,
        };
        let (mut c1, pairs) = controller(0.2);
        let (mut c2, _) = controller(0.2);
        let s1 = run_churn(&mut c1, &pairs, ClassId(0), &cfg);
        let s2 = run_churn(&mut c2, &pairs, ClassId(0), &cfg);
        assert_eq!(s1.accepted, s2.accepted);
        assert_eq!(s1.peak_active, s2.peak_active);
    }

    #[test]
    fn burst_of_one_matches_run_churn() {
        let cfg = ChurnConfig {
            arrivals: 400,
            mean_active: 20.0,
            seed: 11,
        };
        let (mut one_by_one, pairs) = controller(0.2);
        let (mut bursty, _) = controller(0.2);
        let a = run_churn(&mut one_by_one, &pairs, ClassId(0), &cfg);
        let b = run_churn_bursts(&mut bursty, &pairs, ClassId(0), &cfg, 1);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.peak_active, b.peak_active);
        // One-at-a-time driver leaves burst tallies empty; bursts of one
        // can only be clean or dropped.
        assert_eq!(a.bursts, 0);
        assert_eq!(b.bursts, b.offered);
        assert_eq!(b.bursts_clipped, 0);
        assert_eq!(b.bursts_clean, b.accepted);
        assert_eq!(b.bursts_dropped, b.offered - b.accepted);
    }

    #[test]
    fn bursty_churn_saturates_and_balances() {
        let (mut ctrl, pairs) = controller(0.1); // 3 flows per link
        let cfg = ChurnConfig {
            arrivals: 480,
            mean_active: 50.0,
            seed: 5,
        };
        let stats = run_churn_bursts(&mut ctrl, &pairs, ClassId(0), &cfg, 8);
        assert_eq!(stats.offered, 480);
        assert!(stats.accepted > 0);
        assert!(stats.blocking() > 0.0);
        assert!(stats.peak_active <= 6, "peak {}", stats.peak_active);
        assert_eq!(ctrl.reserved(2, ClassId(0)), 0.0);
        // Per-burst granularity: every burst lands in exactly one bin,
        // and the saturated budget (3 flows vs bursts of 8) means at
        // least some bursts got a partial fill rather than all-or-none.
        assert_eq!(stats.bursts, 60);
        assert_eq!(
            stats.bursts_clean + stats.bursts_clipped + stats.bursts_dropped,
            stats.bursts
        );
        assert!(stats.bursts_clipped > 0, "no clipped bursts: {stats:?}");
        assert!(stats.bursts_dropped > 0, "no dropped bursts: {stats:?}");
    }

    #[test]
    fn bursty_model_churn_is_deterministic_and_offers_exactly_n() {
        let cfg = ChurnConfig {
            arrivals: 600,
            mean_active: 20.0,
            seed: 9,
        };
        let model = BurstModel::with_mean_cv(8.0, 2.5);
        let (mut c1, pairs) = controller(0.1);
        let (mut c2, _) = controller(0.1);
        let s1 = run_churn_bursty(&mut c1, &pairs, ClassId(0), &cfg, &model);
        let s2 = run_churn_bursty(&mut c2, &pairs, ClassId(0), &cfg, &model);
        assert_eq!(s1.offered, 600);
        assert_eq!(s1.accepted, s2.accepted);
        assert_eq!(s1.peak_active, s2.peak_active);
        assert!(s1.accepted > 0);
        assert!(s1.peak_active <= 6, "peak {}", s1.peak_active);
        assert_eq!(c1.reserved(2, ClassId(0)), 0.0);
    }

    #[test]
    fn baseline_policy_runs_through_driver() {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let servers = uba_delay::servers::Servers::uniform(&g, 1e6, 4);
        let baseline = crate::PerFlowAdmission::new(table, classes, servers);
        let cfg = ChurnConfig {
            arrivals: 50,
            mean_active: 5.0,
            seed: 3,
        };
        let mut policy = &baseline;
        let stats = run_churn(&mut policy, &[(NodeId(0), NodeId(2))], ClassId(0), &cfg);
        assert!(stats.accepted > 0);
        assert_eq!(baseline.active_flows(), 0);
    }
}
