//! Immutable configuration generations.
//!
//! The paper splits the system into a config-time half (prove a safe
//! utilization assignment) and a run-time half (admit against it). A
//! [`ConfigGeneration`] is one *installable unit* of config-time output:
//! the routing table, the per-class utilization shares, and the budgets
//! they induce, frozen together with a fresh reservation backend. The
//! controller swaps an `Arc<ConfigGeneration>` behind an epoch pointer
//! (see [`AdmissionController::reconfigure`]), so a generation is never
//! mutated after installation — in-flight flows admitted under it keep
//! their `Arc` and release against *its* budgets even after it has been
//! superseded.
//!
//! [`AdmissionController::reconfigure`]: crate::AdmissionController::reconfigure

use crate::backend::{AdmissionBackend, AtomicBackend, ShardedBackend};
use crate::policy::PolicyChain;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::table::RoutingTable;
use uba_traffic::ClassSet;

/// Which reservation backend a generation allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// One CAS counter per (server, class) — [`AtomicBackend`].
    #[default]
    Atomic,
    /// Budgets striped across shards with neighbor borrowing —
    /// [`ShardedBackend`] (shard count clamped to
    /// `1..=`[`MAX_SHARDS`](crate::backend::MAX_SHARDS)).
    Sharded(usize),
}

/// Generation ids are unique across the whole process (not per
/// controller): a thread-local generation cache can then key on the id
/// alone, and trace events from different controllers never collide.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// One immutable (routing table, alphas, budgets) snapshot plus its
/// reservation backend.
#[derive(Debug)]
pub struct ConfigGeneration {
    id: u64,
    table: RoutingTable,
    /// Per-class flow rate `ρ_i`, bits/s.
    rates: Vec<f64>,
    /// Per-class utilization share `α_i` this generation was verified at.
    alphas: Vec<f64>,
    kind: BackendKind,
    backend: Box<dyn AdmissionBackend>,
    /// Shaping stages evaluated before the backend reservation (see
    /// [`PolicyChain`]). Frozen with the generation: a reconfigure
    /// installs fresh policy state alongside the fresh budgets.
    policy: PolicyChain,
    /// Live flows admitted under this generation (incremented on admit,
    /// decremented when their handle drops) — what `drain` reports.
    pinned: AtomicU64,
}

impl ConfigGeneration {
    /// Freezes a configuration: the committed routing table, the class
    /// set (for per-flow rates), per-server capacities, and the verified
    /// utilization assignment, with a fresh backend of the given kind.
    pub fn new(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
        kind: BackendKind,
    ) -> Self {
        Self::with_policy(
            table,
            classes,
            capacities,
            alphas,
            kind,
            PolicyChain::static_only(),
        )
    }

    /// Like [`new`](Self::new) but with an explicit admission policy
    /// chain evaluated before the utilization check. The chain is part
    /// of the frozen snapshot: its token/AIMD state is fresh at install
    /// time and retires with the generation.
    pub fn with_policy(
        table: RoutingTable,
        classes: &ClassSet,
        capacities: &[f64],
        alphas: &[f64],
        kind: BackendKind,
        policy: PolicyChain,
    ) -> Self {
        assert_eq!(alphas.len(), classes.len(), "one alpha per class");
        let backend: Box<dyn AdmissionBackend> = match kind {
            BackendKind::Atomic => Box::new(AtomicBackend::new(capacities, alphas)),
            BackendKind::Sharded(n) => Box::new(ShardedBackend::new(capacities, alphas, n)),
        };
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            table,
            rates: classes.iter().map(|(_, c)| c.bucket.rate).collect(),
            alphas: alphas.to_vec(),
            kind,
            backend,
            policy,
            pinned: AtomicU64::new(0),
        }
    }

    /// Which backend kind this generation allocated (the per-backend
    /// telemetry split keys on this).
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Process-unique generation id (monotone in creation order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The frozen routing table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Per-class flow rates `ρ_i`, bits/s.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// The utilization assignment this generation was verified at.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// The reservation backend holding this generation's budgets.
    pub fn backend(&self) -> &dyn AdmissionBackend {
        &*self.backend
    }

    /// The shaping stages evaluated before the backend reservation. A
    /// default-constructed generation carries the empty `Static` chain
    /// (utilization check only).
    pub fn policy(&self) -> &PolicyChain {
        &self.policy
    }

    /// Live flows still holding reservations in this generation.
    pub fn pinned(&self) -> u64 {
        // ordering: Acquire pairs with the AcqRel unpin — an observer
        // that sees `pinned() == 0` (the retire/drain decision) also
        // sees every drained flow's backend release.
        self.pinned.load(Ordering::Acquire)
    }

    pub(crate) fn pin(&self) {
        // ordering: AcqRel keeps pin in the same cell-wide RMW order as
        // unpin, so the count can never transiently underflow to an
        // observer (Relaxed would suffice for the count alone, but the
        // symmetric edge documents the pin/unpin protocol).
        self.pinned.fetch_add(1, Ordering::AcqRel);
    }

    /// Pins `n` flows with one RMW — the batched admission path admits a
    /// whole slice under a single pin update instead of one per flow.
    pub(crate) fn pin_n(&self, n: u64) {
        if n == 0 {
            return;
        }
        // ordering: AcqRel — same edge as `pin`, amortized over a batch.
        self.pinned.fetch_add(n, Ordering::AcqRel);
    }

    pub(crate) fn unpin(&self) {
        // ordering: AcqRel — the release half publishes the flow's
        // backend release before the drop to zero that lets drain()
        // retire this generation.
        let prev = self.pinned.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "unpin without a matching pin");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_traffic::TrafficClass;

    fn generation(kind: BackendKind) -> ConfigGeneration {
        ConfigGeneration::new(
            RoutingTable::new(),
            &ClassSet::single(TrafficClass::voip()),
            &[1e6, 1e6],
            &[0.5],
            kind,
        )
    }

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = generation(BackendKind::Atomic);
        let b = generation(BackendKind::Sharded(4));
        assert!(b.id() > a.id());
    }

    #[test]
    fn backend_kind_selects_implementation() {
        let a = generation(BackendKind::Atomic);
        let s = generation(BackendKind::Sharded(4));
        // Both enforce the same budgets.
        assert_eq!(a.backend().budget(0, 0), 500_000.0);
        assert_eq!(s.backend().budget(0, 0), 500_000.0);
        assert_eq!(a.rates(), &[32_000.0]);
        assert_eq!(a.alphas(), &[0.5]);
        assert!(format!("{:?}", s.backend()).contains("ShardedBackend"));
        assert_eq!(a.kind(), BackendKind::Atomic);
        assert_eq!(s.kind(), BackendKind::Sharded(4));
    }

    #[test]
    fn pin_counting() {
        let g = generation(BackendKind::Atomic);
        assert_eq!(g.pinned(), 0);
        g.pin();
        g.pin();
        assert_eq!(g.pinned(), 2);
        g.unpin();
        assert_eq!(g.pinned(), 1);
    }
}
