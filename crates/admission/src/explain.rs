//! Per-decision admission diagnosis ("why was this flow rejected?").
//!
//! [`Reject`](crate::Reject) carries what the admit path learned at the
//! instant of rejection; an [`Explain`] is the richer, *non-mutating*
//! version an operator asks for after the fact: the path that would be
//! tried, the first link that cannot fit the flow, and the
//! observed-vs-budget utilization and headroom on that link. The dry run
//! uses the same exact integer-millibit predicate as the real admission
//! test ([`AdmissionBackend::would_fit`](crate::AdmissionBackend)), so
//! against an unchanged state the diagnosis can never disagree with what
//! [`try_admit`](crate::AdmissionController::try_admit) would do —
//! the explainability contract SDN delay-guarantee controllers expose as
//! a control-plane artifact.

use crate::AdmissionController;
use std::fmt;
use uba_graph::NodeId;
use uba_traffic::ClassId;

/// What the dry run concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExplainVerdict {
    /// The flow would be admitted right now.
    Admissible,
    /// No route is configured for the (src, dst, class).
    NoRoute,
    /// Some link on the path cannot fit the flow's rate.
    LinkFull,
    /// A shaping stage of the generation's policy chain would turn the
    /// flow away before the utilization check (see
    /// [`Explain::rejected_stage`]).
    PolicyReject,
}

impl ExplainVerdict {
    /// Stable lower-snake name used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            ExplainVerdict::Admissible => "admissible",
            ExplainVerdict::NoRoute => "no_route",
            ExplainVerdict::LinkFull => "link_full",
            ExplainVerdict::PolicyReject => "policy_reject",
        }
    }
}

/// One policy stage's verdict inside an [`Explain`] (the stages are
/// dry-run independently, so a diagnosis names *every* stage that would
/// reject, not just the first).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageVerdict {
    /// The stage would admit the flow.
    Pass,
    /// The stage would reject the flow.
    Reject,
    /// The stage was not evaluated (the terminal utilization stage when
    /// no route exists to walk).
    Skipped,
}

impl StageVerdict {
    /// Stable lower-snake name used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            StageVerdict::Pass => "pass",
            StageVerdict::Reject => "reject",
            StageVerdict::Skipped => "skipped",
        }
    }
}

/// A per-flow admission diagnosis produced by
/// [`AdmissionController::explain`].
#[derive(Clone, Debug, PartialEq)]
pub struct Explain {
    /// The class the flow belongs to.
    pub class: ClassId,
    /// Flow source router.
    pub src: NodeId,
    /// Flow destination router.
    pub dst: NodeId,
    /// The conclusion.
    pub verdict: ExplainVerdict,
    /// The configured path's link servers (empty on `NoRoute`).
    pub path: Vec<u32>,
    /// The per-flow rate `ρ_i` that was tested, bits/s.
    pub flow_rate_bps: f64,
    /// The diagnosed link: first failing link on `LinkFull`, the
    /// tightest-headroom link on `Admissible`, `None` on `NoRoute`.
    pub link: Option<u32>,
    /// Reserved rate of the class on the diagnosed link, bits/s.
    pub reserved_bps: f64,
    /// Budget `α_i · C` of the class on the diagnosed link, bits/s.
    pub budget_bps: f64,
    /// Every policy stage's verdict in chain order, the terminal
    /// `"utilization"` stage last. A `Static` chain reports only the
    /// utilization entry.
    pub stages: Vec<(&'static str, StageVerdict)>,
    /// First shaping stage that would reject (`None` unless the verdict
    /// is [`ExplainVerdict::PolicyReject`]).
    pub rejected_stage: Option<&'static str>,
}

impl Explain {
    /// Observed utilization of the diagnosed link as a fraction of the
    /// class budget (`0.0` when there is no diagnosed link).
    pub fn observed_utilization(&self) -> f64 {
        if self.budget_bps > 0.0 {
            self.reserved_bps / self.budget_bps
        } else {
            0.0
        }
    }

    /// Remaining class headroom on the diagnosed link, bits/s.
    pub fn headroom_bps(&self) -> f64 {
        (self.budget_bps - self.reserved_bps).max(0.0)
    }

    /// One-line JSON rendering (workspace JSON-lines idiom).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut path = String::new();
        for (i, s) in self.path.iter().enumerate() {
            if i > 0 {
                path.push(',');
            }
            write!(path, "{s}").unwrap();
        }
        let link = self.link.map_or_else(|| "null".into(), |l| l.to_string());
        let mut stages = String::new();
        for (i, (name, verdict)) in self.stages.iter().enumerate() {
            if i > 0 {
                stages.push(',');
            }
            write!(
                stages,
                "{{\"stage\":\"{name}\",\"verdict\":\"{}\"}}",
                verdict.as_str()
            )
            .unwrap();
        }
        let rejected_stage = self
            .rejected_stage
            .map_or_else(|| "null".into(), |s| format!("\"{s}\""));
        format!(
            "{{\"class\":{},\"src\":{},\"dst\":{},\"verdict\":\"{}\",\"path\":[{path}],\
             \"flow_rate_bps\":{:?},\"link\":{link},\"reserved_bps\":{:?},\
             \"budget_bps\":{:?},\"utilization\":{:?},\"headroom_bps\":{:?},\
             \"stages\":[{stages}],\"rejected_stage\":{rejected_stage}}}",
            self.class.index(),
            self.src.0,
            self.dst.0,
            self.verdict.as_str(),
            self.flow_rate_bps,
            self.reserved_bps,
            self.budget_bps,
            self.observed_utilization(),
            self.headroom_bps(),
        )
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "class {} {}->{}: ",
            self.class.index(),
            self.src.0,
            self.dst.0
        )?;
        match self.verdict {
            ExplainVerdict::NoRoute => write!(f, "no configured route"),
            ExplainVerdict::Admissible => write!(
                f,
                "admissible over {} hops; tightest link {} at {:.1}% \
                 ({:.1} kb/s headroom)",
                self.path.len(),
                self.link.unwrap_or(u32::MAX),
                self.observed_utilization() * 100.0,
                self.headroom_bps() / 1e3,
            ),
            ExplainVerdict::LinkFull => write!(
                f,
                "link {} full: reserved {:.1} of {:.1} kb/s budget \
                 ({:.1}% utilized, {:.1} kb/s headroom < {:.1} kb/s flow)",
                self.link.unwrap_or(u32::MAX),
                self.reserved_bps / 1e3,
                self.budget_bps / 1e3,
                self.observed_utilization() * 100.0,
                self.headroom_bps() / 1e3,
                self.flow_rate_bps / 1e3,
            ),
            ExplainVerdict::PolicyReject => write!(
                f,
                "policy stage {} would reject before the utilization check",
                self.rejected_stage.unwrap_or("?"),
            ),
        }
    }
}

impl AdmissionController {
    /// Diagnoses — without reserving anything — what
    /// [`try_admit`](Self::try_admit) would do for one flow of `class`
    /// from `src` to `dst` right now, and why.
    ///
    /// The diagnosis resolves the configuration generation once and runs
    /// entirely against that snapshot, so it stays self-consistent even
    /// if a `reconfigure` lands mid-call. On a would-be `LinkFull` the
    /// diagnosed link is the *first* link along the path whose class
    /// headroom cannot fit the flow rate (matching the walk order of the
    /// real admit path); on a would-be admission it is the
    /// tightest-headroom link, which is the one that will fail first as
    /// load grows.
    pub fn explain(&self, class: ClassId, src: NodeId, dst: NodeId) -> Explain {
        self.explain_impl(class, src, dst, None)
    }

    /// Like [`explain`](Self::explain) on an explicit decision clock:
    /// `t` is what the policy stages' dry runs see (token-bucket refill
    /// credit, AIMD ceiling refill) — the diagnostic counterpart of
    /// [`try_admit_at`](Self::try_admit_at).
    pub fn explain_at(&self, class: ClassId, src: NodeId, dst: NodeId, t: f64) -> Explain {
        self.explain_impl(class, src, dst, Some(t))
    }

    fn explain_impl(&self, class: ClassId, src: NodeId, dst: NodeId, now: Option<f64>) -> Explain {
        let generation = self.current_generation();
        let rate = generation.rates()[class.index()];
        let mut ex = Explain {
            class,
            src,
            dst,
            verdict: ExplainVerdict::NoRoute,
            path: Vec::new(),
            flow_rate_bps: rate,
            link: None,
            reserved_bps: 0.0,
            budget_bps: 0.0,
            stages: Vec::new(),
            rejected_stage: None,
        };
        let state = generation.backend();
        let c = class.index();
        let mut tightest: Option<(u32, f64)> = None;
        if let Some(route) = generation.table().route(src, dst, class) {
            ex.path = route.to_vec();
            ex.verdict = ExplainVerdict::Admissible;
            for &server in route {
                let s = server as usize;
                if !state.would_fit(s, c, rate) {
                    ex.verdict = ExplainVerdict::LinkFull;
                    ex.link = Some(server);
                    ex.reserved_bps = state.snapshot(s, c);
                    ex.budget_bps = state.budget(s, c);
                    break;
                }
                let headroom = state.budget(s, c) - state.snapshot(s, c);
                if tightest.is_none_or(|(_, h)| headroom < h) {
                    tightest = Some((server, headroom));
                }
            }
            if ex.verdict == ExplainVerdict::Admissible {
                if let Some((server, _)) = tightest {
                    ex.link = Some(server);
                    ex.reserved_bps = state.snapshot(server as usize, c);
                    ex.budget_bps = state.budget(server as usize, c);
                }
            }
        }
        // Policy stages are dry-run independently (no consumption, no
        // short-circuit), so the diagnosis names every stage that would
        // reject — richer than the real admit path, which stops at the
        // first. A `Static` chain skips the clock read entirely.
        let chain = generation.policy();
        if !chain.is_static() {
            let t = now.unwrap_or_else(uba_obs::process_secs);
            for (name, ok) in chain.dry_run(c, 1, t) {
                let v = if ok {
                    StageVerdict::Pass
                } else {
                    StageVerdict::Reject
                };
                if !ok && ex.rejected_stage.is_none() {
                    ex.rejected_stage = Some(name);
                }
                ex.stages.push((name, v));
            }
        }
        ex.stages.push((
            "utilization",
            match ex.verdict {
                ExplainVerdict::NoRoute => StageVerdict::Skipped,
                ExplainVerdict::LinkFull => StageVerdict::Reject,
                _ => StageVerdict::Pass,
            },
        ));
        // Verdict precedence mirrors the admit path: no_route first,
        // then the shaping stages, then the utilization walk.
        if ex.verdict != ExplainVerdict::NoRoute && ex.rejected_stage.is_some() {
            ex.verdict = ExplainVerdict::PolicyReject;
        } else {
            ex.rejected_stage = None;
        }
        ex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingTable;
    use uba_graph::{Digraph, Path};
    use uba_traffic::{ClassSet, TrafficClass};

    /// 0 -> 1 -> 2 with routes (0,2) and (1,2); link 1->2 is shared.
    fn setup(alpha: f64) -> (AdmissionController, u32) {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; g.edge_count()];
        let ctrl = AdmissionController::new_unmetered(table, &classes, &caps, &[alpha]);
        (ctrl, e12.index() as u32)
    }

    #[test]
    fn explain_matches_try_admit_on_every_state() {
        let (ctrl, shared) = setup(0.32);
        let mut held = Vec::new();
        // At every occupancy level the dry run and the real decision
        // must agree.
        for _ in 0..10 {
            let ex = ctrl.explain(ClassId(0), NodeId(0), NodeId(2));
            assert_eq!(ex.verdict, ExplainVerdict::Admissible);
            held.push(ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap());
        }
        let ex = ctrl.explain(ClassId(0), NodeId(1), NodeId(2));
        assert_eq!(ex.verdict, ExplainVerdict::LinkFull);
        assert_eq!(ex.link, Some(shared));
        assert_eq!(ex.reserved_bps, 320_000.0);
        assert_eq!(ex.budget_bps, 320_000.0);
        assert_eq!(ex.observed_utilization(), 1.0);
        assert_eq!(ex.headroom_bps(), 0.0);
        assert!(ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).is_err());
        // The dry run reserved nothing: releasing one flow restores
        // admissibility.
        held.pop();
        assert_eq!(
            ctrl.explain(ClassId(0), NodeId(1), NodeId(2)).verdict,
            ExplainVerdict::Admissible
        );
    }

    #[test]
    fn explain_no_route_and_tightest_link() {
        let (ctrl, shared) = setup(0.32);
        let ex = ctrl.explain(ClassId(0), NodeId(2), NodeId(0));
        assert_eq!(ex.verdict, ExplainVerdict::NoRoute);
        assert!(ex.path.is_empty());
        assert_eq!(ex.link, None);
        // Load only the shared link (via the short route): the long
        // route's tightest link must be the shared one.
        let _h: Vec<_> = (0..5)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(1), NodeId(2)).unwrap())
            .collect();
        let ex = ctrl.explain(ClassId(0), NodeId(0), NodeId(2));
        assert_eq!(ex.verdict, ExplainVerdict::Admissible);
        assert_eq!(ex.link, Some(shared));
        assert!((ex.observed_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn explain_json_and_display() {
        let (ctrl, shared) = setup(0.32);
        let _h: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
            .collect();
        let ex = ctrl.explain(ClassId(0), NodeId(1), NodeId(2));
        let line = ex.to_json_line();
        let v = uba_obs::json::parse(&line).expect("explain JSON must parse");
        use uba_obs::json::JsonValue;
        assert_eq!(
            v.get("verdict").and_then(JsonValue::as_str),
            Some("link_full")
        );
        assert_eq!(
            v.get("link").and_then(JsonValue::as_number),
            Some(shared as f64)
        );
        assert_eq!(
            v.get("reserved_bps").and_then(JsonValue::as_number),
            Some(320_000.0)
        );
        assert_eq!(
            v.get("utilization").and_then(JsonValue::as_number),
            Some(1.0)
        );
        let msg = ex.to_string();
        assert!(msg.contains(&format!("link {shared} full")), "{msg}");
        assert!(msg.contains("320.0"), "{msg}");
    }

    #[test]
    fn explain_json_round_trips_every_verdict() {
        // Every field of every verdict shape must survive
        // serialize -> uba_obs::json::parse -> compare.
        let (ctrl, _) = setup(0.32);
        let _h: Vec<_> = (0..10)
            .map(|_| ctrl.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap())
            .collect();
        let cases = [
            ctrl.explain(ClassId(0), NodeId(2), NodeId(0)), // no_route
            ctrl.explain(ClassId(0), NodeId(0), NodeId(2)), // link_full
        ];
        let (released, _) = setup(0.32);
        let admissible = released.explain(ClassId(0), NodeId(0), NodeId(2));
        use uba_obs::json::JsonValue;
        for ex in cases.iter().chain(std::iter::once(&admissible)) {
            let line = ex.to_json_line();
            let v = uba_obs::json::parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            let num = |k: &str| v.get(k).and_then(JsonValue::as_number);
            assert_eq!(num("class"), Some(ex.class.index() as f64), "{line}");
            assert_eq!(num("src"), Some(ex.src.0 as f64), "{line}");
            assert_eq!(num("dst"), Some(ex.dst.0 as f64), "{line}");
            assert_eq!(
                v.get("verdict").and_then(JsonValue::as_str),
                Some(ex.verdict.as_str()),
                "{line}"
            );
            let path: Vec<f64> = match v.get("path") {
                Some(JsonValue::Array(items)) => {
                    items.iter().map(|i| i.as_number().unwrap()).collect()
                }
                other => panic!("path must be an array, got {other:?}: {line}"),
            };
            let expect: Vec<f64> = ex.path.iter().map(|&s| s as f64).collect();
            assert_eq!(path, expect, "{line}");
            assert_eq!(num("flow_rate_bps"), Some(ex.flow_rate_bps), "{line}");
            match ex.link {
                Some(l) => assert_eq!(num("link"), Some(l as f64), "{line}"),
                None => assert_eq!(v.get("link"), Some(&JsonValue::Null), "{line}"),
            }
            assert_eq!(num("reserved_bps"), Some(ex.reserved_bps), "{line}");
            assert_eq!(num("budget_bps"), Some(ex.budget_bps), "{line}");
            assert_eq!(
                num("utilization"),
                Some(ex.observed_utilization()),
                "{line}"
            );
            assert_eq!(num("headroom_bps"), Some(ex.headroom_bps()), "{line}");
            assert_stages_round_trip(ex, &v, &line);
        }
    }

    fn assert_stages_round_trip(ex: &Explain, v: &uba_obs::json::JsonValue, line: &str) {
        use uba_obs::json::JsonValue;
        let stages = match v.get("stages") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("stages must be an array, got {other:?}: {line}"),
        };
        assert_eq!(stages.len(), ex.stages.len(), "{line}");
        for (item, (name, verdict)) in stages.iter().zip(&ex.stages) {
            assert_eq!(
                item.get("stage").and_then(JsonValue::as_str),
                Some(*name),
                "{line}"
            );
            assert_eq!(
                item.get("verdict").and_then(JsonValue::as_str),
                Some(verdict.as_str()),
                "{line}"
            );
        }
        match ex.rejected_stage {
            Some(s) => assert_eq!(
                v.get("rejected_stage").and_then(JsonValue::as_str),
                Some(s),
                "{line}"
            ),
            None => assert_eq!(v.get("rejected_stage"), Some(&JsonValue::Null), "{line}"),
        }
    }

    #[test]
    fn explain_policy_stages_round_trip_in_json() {
        use crate::generation::{BackendKind, ConfigGeneration};
        use crate::policy::{ChainKind, PolicyChain, PolicyConfig};
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        let classes = ClassSet::single(TrafficClass::voip());
        let caps = vec![1e6; g.edge_count()];
        // Adaptive chain with a one-flow, non-refilling bucket: after one
        // admit the token bucket must read as the rejecting stage.
        let cfg = PolicyConfig {
            chain: ChainKind::Adaptive,
            bucket_rate_bps: 0.0,
            bucket_burst_bits: 32_000.0,
            ..PolicyConfig::default()
        };
        let chain = PolicyChain::from_config(&cfg, &[32_000.0]);
        let ctrl = AdmissionController::from_generation(ConfigGeneration::with_policy(
            table,
            &classes,
            &caps,
            &[0.32],
            BackendKind::Atomic,
            chain,
        ));
        let before = ctrl.explain_at(ClassId(0), NodeId(0), NodeId(2), 0.0);
        assert_eq!(before.verdict, ExplainVerdict::Admissible);
        assert_eq!(
            before.stages,
            vec![
                ("token_bucket", StageVerdict::Pass),
                ("aimd", StageVerdict::Pass),
                ("utilization", StageVerdict::Pass),
            ]
        );
        let _h = ctrl
            .try_admit_at(ClassId(0), NodeId(0), NodeId(2), 0.0)
            .unwrap();
        let after = ctrl.explain_at(ClassId(0), NodeId(0), NodeId(2), 0.0);
        assert_eq!(after.verdict, ExplainVerdict::PolicyReject);
        assert_eq!(after.rejected_stage, Some("token_bucket"));
        assert_eq!(after.stages[0], ("token_bucket", StageVerdict::Reject));
        assert_eq!(after.stages[2], ("utilization", StageVerdict::Pass));
        assert!(after.to_string().contains("policy stage token_bucket"));
        // The stage verdicts and rejected stage survive the JSON
        // round-trip, for both shapes.
        for ex in [&before, &after] {
            let line = ex.to_json_line();
            let v = uba_obs::json::parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
            assert_eq!(
                v.get("verdict").and_then(uba_obs::json::JsonValue::as_str),
                Some(ex.verdict.as_str()),
                "{line}"
            );
            assert_stages_round_trip(ex, &v, &line);
        }
        // The dry run consumed nothing: the real admit path sees the
        // same single remaining decision it would have without explain.
        assert!(matches!(
            ctrl.try_admit_at(ClassId(0), NodeId(0), NodeId(2), 0.0),
            Err(crate::Reject::Policy {
                stage: "token_bucket",
                ..
            })
        ));
    }
}
