//! The configured routing table.
//!
//! Configuration (Section 5) fixes one route per (source, destination,
//! class); run-time admission only ever looks routes up. Routes are stored
//! as boxed server-index slices to keep the hot lookup path allocation-free.

use std::collections::HashMap;
use uba_graph::{NodeId, Path};
use uba_traffic::ClassId;

/// Immutable route lookup built at configuration time.
#[derive(Clone, Debug, Default)]
pub struct RoutingTable {
    routes: HashMap<(NodeId, NodeId, ClassId), Box<[u32]>>,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Installs a route for `(src, dst, class)`; replaces and returns any
    /// previous route.
    pub fn insert(&mut self, class: ClassId, path: &Path) -> Option<Box<[u32]>> {
        let src = path.source().expect("route must be non-empty");
        let dst = path.target().expect("route must be non-empty");
        assert_ne!(src, dst, "route must connect distinct routers");
        let servers: Box<[u32]> = path.edges.iter().map(|e| e.0).collect();
        self.routes.insert((src, dst, class), servers)
    }

    /// Installs routes for many `(pair, path)` results of a selection.
    pub fn insert_all<'a>(&mut self, class: ClassId, paths: impl IntoIterator<Item = &'a Path>) {
        for p in paths {
            self.insert(class, p);
        }
    }

    /// The configured route for `(src, dst, class)`, as server indices.
    pub fn route(&self, src: NodeId, dst: NodeId, class: ClassId) -> Option<&[u32]> {
        self.routes.get(&(src, dst, class)).map(|b| &b[..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_graph::{Digraph, EdgeId};

    fn path(g: &Digraph, edges: &[EdgeId]) -> Path {
        Path::from_edges(g, edges.to_vec())
    }

    fn line3() -> (Digraph, Path) {
        let mut g = Digraph::with_nodes(3);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let p = path(&g, &[e01, e12]);
        (g, p)
    }

    #[test]
    fn insert_and_lookup() {
        let (_, p) = line3();
        let mut t = RoutingTable::new();
        t.insert(ClassId(0), &p);
        let r = t.route(NodeId(0), NodeId(2), ClassId(0)).unwrap();
        assert_eq!(r, &[0, 2]);
        assert!(t.route(NodeId(2), NodeId(0), ClassId(0)).is_none());
        assert!(t.route(NodeId(0), NodeId(2), ClassId(1)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_replaces() {
        let (g, p) = line3();
        let mut t = RoutingTable::new();
        t.insert(ClassId(0), &p);
        // A different route for the same pair (direct edge 0->2 does not
        // exist; reuse the same path object to exercise replacement).
        let old = t.insert(ClassId(0), &path(&g, &p.edges));
        assert!(old.is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_route_rejected() {
        let mut t = RoutingTable::new();
        t.insert(ClassId(0), &Path::default());
    }
}
