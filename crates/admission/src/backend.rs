//! Pluggable reservation-state backends.
//!
//! The admission decision is one predicate — *does every link server on
//! the route have `α_i·C` headroom left for the class?* — but the data
//! structure answering it is swappable. [`AdmissionBackend`] captures
//! the path-level contract the controller needs (all-or-nothing reserve,
//! release, snapshot, budget); two implementations live here:
//!
//! * [`AtomicBackend`] — the original one-`AtomicU64`-per-(server, class)
//!   CAS loop ([`UtilizationState`]). Exact, strict (over-release
//!   panics), and the contention hot spot is the counter of a hot link.
//! * [`ShardedBackend`] — each (server, class) budget striped across N
//!   headroom shards, each on its own cache line. Reservation is
//!   **two-phase**: phase 1 is one all-or-nothing CAS against the
//!   thread's home shard (the lock-free fast path); phase 2, entered
//!   only when the home shard cannot cover the whole grab, borrows from
//!   neighbor shards *under a per-cell borrow lock*. Serializing the
//!   cross-shard path is what makes rejection exact: a reject happens
//!   only after a full no-progress sweep of every shard under the lock —
//!   a genuine-exhaustion witness — so the spurious double-reject of the
//!   old lock-free borrow (two threads each draining their home shard,
//!   finding the other's empty, and both rolling back despite sufficient
//!   total headroom; documented by PR 5's loom model) cannot happen.
//!   Single-threaded the admit/reject sequence is *identical* to the
//!   atomic backend (a reservation succeeds iff total headroom
//!   suffices); under many threads the CAS traffic on a hot cell spreads
//!   across N cache lines and only shortfall traffic takes the lock.
//!   The trade: over-release of a single flow can no longer be detected
//!   per-cell (headroom is fungible across shards), so the strict
//!   accounting assert of the atomic backend is only checked as "total
//!   headroom never exceeds the budget".

use crate::state::{to_millibits, UtilizationState, SCALE};
#[cfg(not(loom))]
use crate::sync::atomic::AtomicUsize;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{CachePadded, Mutex};
use std::fmt;

/// The CAS-per-(server, class) backend — [`UtilizationState`] fulfilling
/// the [`AdmissionBackend`] contract. This is the paper's run-time
/// mechanism verbatim and the default for every controller.
pub type AtomicBackend = UtilizationState;

/// Why a path reservation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathReject {
    /// The first server along the route whose class budget could not fit
    /// the flow.
    pub server: u32,
    /// CAS retries spent before giving up (contention signal).
    pub retries: u32,
}

/// One aggregated (server, class) demand of an admission batch: the
/// summed rate of every batched flow whose route crosses that cell. The
/// controller pre-aggregates a slice of flows into these so the backend
/// pays one reservation per *touched cell* instead of one per
/// (flow × hop) — see
/// [`AdmissionController::try_admit_batch`](crate::AdmissionController::try_admit_batch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellDemand {
    /// Raw link-server index.
    pub server: u32,
    /// Traffic-class index.
    pub class: u32,
    /// Aggregate rate to reserve, bits/s.
    pub rate: f64,
}

/// Cumulative cross-shard traffic of a [`ShardedBackend`] since its
/// construction (a generation's backend is born fresh, so these reset on
/// reconfigure). Borrows and steals are contention *signals*, not
/// errors: they are the striped design working as intended. Spurious
/// rejects are structurally impossible under the two-phase protocol (a
/// reject carries a no-progress sweep witness taken under the borrow
/// lock); the counter is kept as a tripwire — the `admission_scaling`
/// bench gates it at zero, so any future lock-free reject path that
/// reintroduces the race fails the gate instead of shipping silently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardContention {
    /// Reservations where the home shard contributed but ran dry, so one
    /// or more neighbor shards topped up the grab.
    pub borrows: u64,
    /// Reservations satisfied with *zero* home-shard contribution — the
    /// thread's entire grab came from neighbors (headroom has migrated
    /// away from its home).
    pub steals: u64,
    /// Rejections without a genuine-exhaustion witness. Always zero
    /// under the two-phase protocol; see the struct docs.
    pub spurious_rejects: u64,
}

/// Reservation state shared by all admissions of one configuration
/// generation.
///
/// Implementations must make [`try_reserve_path`](Self::try_reserve_path)
/// all-or-nothing (no residue on failure) and never let the reserved
/// rate of a class on a server exceed its budget, even under concurrent
/// callers. `snapshot`/`budget` are advisory reads used by diagnostics
/// and gauges; they may be weakly ordered with respect to in-flight
/// reservations.
pub trait AdmissionBackend: fmt::Debug + Send + Sync {
    /// Number of link servers.
    fn servers(&self) -> usize;

    /// Number of traffic classes.
    fn classes(&self) -> usize;

    /// Atomically-per-cell reserves `rate` bits/s of `class` on every
    /// server of `route`; rolls the prefix back and reports the failing
    /// server if any cell is full. Returns total CAS retries on success.
    fn try_reserve_path(&self, route: &[u32], class: usize, rate: f64) -> Result<u32, PathReject>;

    /// Releases a previously successful path reservation.
    fn release_path(&self, route: &[u32], class: usize, rate: f64);

    /// Reserves every aggregated cell demand of a batch, all-or-nothing
    /// across the whole set: one cell reservation per *touched cell*
    /// instead of one per (flow × hop). On failure nothing stays
    /// reserved and the first failing server is reported. `demands` must
    /// not repeat a (server, class) pair — aggregate before calling.
    /// Returns total CAS retries on success.
    ///
    /// The default implementation reserves cell-by-cell through
    /// [`try_reserve_path`](Self::try_reserve_path), which already costs
    /// exactly one CAS (or one two-phase grab) per cell on both in-tree
    /// backends, and rolls back the reserved prefix on failure.
    fn try_reserve_batch(&self, demands: &[CellDemand]) -> Result<u32, PathReject> {
        let mut cas_retries = 0u32;
        for (i, d) in demands.iter().enumerate() {
            match self.try_reserve_path(&[d.server], d.class as usize, d.rate) {
                Ok(retries) => cas_retries += retries,
                Err(reject) => {
                    for held in &demands[..i] {
                        self.release_path(&[held.server], held.class as usize, held.rate);
                    }
                    return Err(PathReject {
                        server: reject.server,
                        retries: cas_retries + reject.retries,
                    });
                }
            }
        }
        Ok(cas_retries)
    }

    /// Whether one `rate` reservation would fit on (server, class) right
    /// now, without reserving anything. Must use the same exact integer
    /// predicate as the real reservation so dry runs never disagree.
    fn would_fit(&self, server: usize, class: usize, rate: f64) -> bool;

    /// Currently reserved rate on (server, class), bits/s.
    fn snapshot(&self, server: usize, class: usize) -> f64;

    /// Configured budget `α_i · C` on (server, class), bits/s.
    fn budget(&self, server: usize, class: usize) -> f64;

    /// Fraction of the class budget in use (0 when the budget is zero).
    fn occupancy(&self, server: usize, class: usize) -> f64 {
        let b = self.budget(server, class);
        if b > 0.0 {
            self.snapshot(server, class) / b
        } else {
            0.0
        }
    }

    /// Cross-shard contention counters, for backends that stripe their
    /// budgets. `None` for unsharded backends (and under the loom model
    /// checker, where the counters are compiled out to keep the state
    /// space small).
    fn contention(&self) -> Option<ShardContention> {
        None
    }
}

impl AdmissionBackend for UtilizationState {
    fn servers(&self) -> usize {
        UtilizationState::servers(self)
    }

    fn classes(&self) -> usize {
        UtilizationState::classes(self)
    }

    fn try_reserve_path(&self, route: &[u32], class: usize, rate: f64) -> Result<u32, PathReject> {
        let mut cas_retries = 0u32;
        for (i, &server) in route.iter().enumerate() {
            let (ok, retries) = self.try_reserve_with_retries(server as usize, class, rate);
            cas_retries += retries;
            if !ok {
                for &held in &route[..i] {
                    self.release(held as usize, class, rate);
                }
                return Err(PathReject {
                    server,
                    retries: cas_retries,
                });
            }
        }
        Ok(cas_retries)
    }

    fn release_path(&self, route: &[u32], class: usize, rate: f64) {
        for &server in route {
            self.release(server as usize, class, rate);
        }
    }

    fn would_fit(&self, server: usize, class: usize, rate: f64) -> bool {
        UtilizationState::would_fit(self, server, class, rate)
    }

    fn snapshot(&self, server: usize, class: usize) -> f64 {
        self.reserved(server, class)
    }

    fn budget(&self, server: usize, class: usize) -> f64 {
        UtilizationState::budget(self, server, class)
    }
}

/// Most shards a [`ShardedBackend`] will stripe a budget across; beyond
/// this the per-reservation scan cost outweighs any contention win.
pub const MAX_SHARDS: usize = 16;

/// Round-robin home-shard assignment: each thread gets a stable index at
/// first use, so threads spread across shards deterministically.
/// (`Relaxed` suffices: the counter only hands out distinct indices,
/// it synchronizes nothing.)
#[cfg(not(loom))]
static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);
#[cfg(not(loom))]
thread_local! {
    static HOME: usize = NEXT_HOME.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's home-shard seed (reduced mod the shard count at
/// use sites).
fn home_seed() -> usize {
    #[cfg(not(loom))]
    {
        HOME.with(|h| *h)
    }
    // Under the model checker the seed must be a pure function of the
    // model thread — a process-global counter would assign different
    // home shards on different executions and break schedule replay.
    #[cfg(loom)]
    {
        uba_loom::thread::current_index()
    }
}

/// One stripe of a cell's budget. `CachePadded` at every use site: the
/// pre-audit layout packed eight `AtomicU64` shards into one 64-byte
/// line, so "striped" threads still collided on the same line — the
/// false sharing the stripes exist to remove (padding audit, DESIGN.md
/// §11).
#[derive(Debug)]
struct Shard {
    /// Remaining headroom, millibits/s.
    avail: AtomicU64,
    /// Monotone meter: millibits ever reserved by grabs homed here.
    /// Never decremented; snapshot() subtracts the release meter from it
    /// to get an outstanding sum that can never overshoot the budget
    /// (see `snapshot`). Compiled out under loom — two extra atomics per
    /// operation would multiply the model's interleaving space, and the
    /// models only read snapshots at quiescence where budget − headroom
    /// is already exact.
    #[cfg(not(loom))]
    reserved_meter: AtomicU64,
    /// Monotone meter: millibits ever released into this home shard.
    #[cfg(not(loom))]
    released_meter: AtomicU64,
}

impl Shard {
    fn new(avail: u64) -> Self {
        Self {
            avail: AtomicU64::new(avail),
            #[cfg(not(loom))]
            reserved_meter: AtomicU64::new(0),
            #[cfg(not(loom))]
            released_meter: AtomicU64::new(0),
        }
    }
}

/// Budget-striping backend with the two-phase reserve-then-borrow
/// protocol: the headroom of each (server, class) cell is split across
/// `shards` cache-line-padded counters. Phase 1 reserves the whole grab
/// from the thread's home shard with one CAS; only a home-shard
/// shortfall enters phase 2, which borrows from neighbor shards (in
/// deterministic wrap order) under the cell's borrow lock. Rejection
/// requires a full no-progress sweep of every shard under that lock, so
/// a flow is turned away only on genuine budget exhaustion — never
/// because concurrent threads transiently held each other's headroom.
/// Single-threaded decisions match [`AtomicBackend`] exactly, while
/// concurrent threads mostly touch distinct cache lines.
pub struct ShardedBackend {
    servers: usize,
    classes: usize,
    shards: usize,
    /// Budget per (server, class), millibits/s — for `budget`/`snapshot`.
    budgets: Vec<u64>,
    /// Headroom stripes per (server, class, shard):
    /// `(server * classes + class) * shards + shard`.
    slots: Vec<CachePadded<Shard>>,
    /// Per-cell borrow locks serializing phase 2 (cross-shard grabs).
    /// Phase-1 CASes and releases never take them.
    borrow_locks: Vec<Mutex<()>>,
    /// Cross-shard traffic counters (relaxed; they order nothing).
    /// Compiled out under loom: extra atomics per operation would
    /// multiply the model's interleaving space for no protocol coverage.
    #[cfg(not(loom))]
    borrows: AtomicU64,
    #[cfg(not(loom))]
    steals: AtomicU64,
    #[cfg(not(loom))]
    spurious_rejects: AtomicU64,
}

impl fmt::Debug for ShardedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedBackend")
            .field("servers", &self.servers)
            .field("classes", &self.classes)
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl ShardedBackend {
    /// Creates the backend from per-server capacities, per-class
    /// utilization shares, and the stripe count (clamped to
    /// `1..=`[`MAX_SHARDS`]). Budget millibits are distributed across
    /// shards as evenly as integer division allows (the first
    /// `budget % shards` shards get one extra millibit).
    pub fn new(capacities: &[f64], alphas: &[f64], shards: usize) -> Self {
        assert!(!alphas.is_empty(), "need at least one class");
        for &a in alphas {
            assert!((0.0..=1.0).contains(&a), "alpha must be in [0, 1]");
        }
        let shards = shards.clamp(1, MAX_SHARDS);
        let servers = capacities.len();
        let classes = alphas.len();
        let mut budgets = Vec::with_capacity(servers * classes);
        let mut slots = Vec::with_capacity(servers * classes * shards);
        let mut borrow_locks = Vec::with_capacity(servers * classes);
        for &c in capacities {
            assert!(c > 0.0 && c.is_finite(), "capacity must be positive");
            for &a in alphas {
                let b = to_millibits(a * c);
                budgets.push(b);
                borrow_locks.push(Mutex::new(()));
                let base = b / shards as u64;
                let extra = b % shards as u64;
                for s in 0..shards as u64 {
                    slots.push(CachePadded::new(Shard::new(base + u64::from(s < extra))));
                }
            }
        }
        Self {
            servers,
            classes,
            shards,
            budgets,
            slots,
            borrow_locks,
            #[cfg(not(loom))]
            borrows: AtomicU64::new(0),
            #[cfg(not(loom))]
            steals: AtomicU64::new(0),
            #[cfg(not(loom))]
            spurious_rejects: AtomicU64::new(0),
        }
    }

    /// Configured stripe count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    #[inline]
    fn cell(&self, server: usize, class: usize) -> usize {
        debug_assert!(server < self.servers && class < self.classes);
        server * self.classes + class
    }

    #[inline]
    fn shard_slice(&self, cell: usize) -> &[CachePadded<Shard>] {
        &self.slots[cell * self.shards..(cell + 1) * self.shards]
    }

    /// Records `amount` millibits as reserved, on the home stripe's
    /// meter. (`Relaxed`: the meters are monotone and independent; the
    /// ordering that makes their difference meaningful lives on the
    /// snapshot read side.)
    #[cfg(not(loom))]
    #[inline]
    fn meter_reserved(&self, cell: usize, amount: u64, home: usize) {
        self.slots[cell * self.shards + home]
            .reserved_meter
            .fetch_add(amount, Ordering::Relaxed);
    }

    #[cfg(loom)]
    #[inline]
    fn meter_reserved(&self, _cell: usize, _amount: u64, _home: usize) {}

    /// Grabs `want` millibits from the cell. Phase 1: one all-or-nothing
    /// CAS against the home shard — the lock-free fast path, which a
    /// thread whose releases refill its own home shard stays on
    /// indefinitely. Phase 2 on shortfall: `borrow_locked`.
    fn take(&self, cell: usize, want: u64, home: usize) -> Result<u32, u32> {
        if want == 0 {
            return Ok(0);
        }
        let shard = &self.shard_slice(cell)[home].avail;
        let mut retries = 0u32;
        let mut cur = shard.load(Ordering::Relaxed);
        while cur >= want {
            // ordering: AcqRel — same reserve/release pairing as the
            // atomic backend, per shard: a grab of freed headroom
            // happens-after the put() that freed it.
            match shard.compare_exchange_weak(cur, cur - want, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.meter_reserved(cell, want, home);
                    return Ok(retries);
                }
                Err(actual) => {
                    cur = actual;
                    retries += 1;
                }
            }
        }
        self.borrow_locked(cell, want, home, retries)
    }

    /// Phase 2: cross-shard borrow under the cell's borrow lock. Sweeps
    /// the shards home-first in wrap order, grabbing whatever each one
    /// holds, and re-sweeps as long as a full pass still found headroom
    /// (a concurrent release can land in an already-passed shard
    /// mid-sweep; each re-sweep requires fresh headroom to have
    /// appeared, so the loop terminates). Rejection requires a full
    /// **no-progress** sweep: every shard was observed empty while no
    /// other borrower could interleave — the genuine-exhaustion witness
    /// that makes spurious double-rejects impossible. On rejection every
    /// partial grab is returned to the exact shard it came from.
    #[cold]
    fn borrow_locked(
        &self,
        cell: usize,
        want: u64,
        home: usize,
        mut retries: u32,
    ) -> Result<u32, u32> {
        let _guard = self.borrow_locks[cell].lock().unwrap();
        let shards = self.shard_slice(cell);
        let mut got = 0u64;
        let mut taken = [0u64; MAX_SHARDS];
        loop {
            let mut progressed = false;
            for k in 0..self.shards {
                let s = (home + k) % self.shards;
                let shard = &shards[s].avail;
                let mut cur = shard.load(Ordering::Relaxed);
                loop {
                    let grab = cur.min(want - got);
                    if grab == 0 {
                        break;
                    }
                    // ordering: AcqRel — same reserve/release pairing as
                    // the phase-1 CAS: a grab of freed headroom
                    // happens-after the put() that freed it.
                    match shard.compare_exchange_weak(
                        cur,
                        cur - grab,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            got += grab;
                            taken[s] += grab;
                            progressed = true;
                            break;
                        }
                        Err(actual) => {
                            cur = actual;
                            retries += 1;
                        }
                    }
                }
                if got == want {
                    #[cfg(not(loom))]
                    if taken[home] == 0 {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    } else if taken[home] < want {
                        self.borrows.fetch_add(1, Ordering::Relaxed);
                    }
                    self.meter_reserved(cell, want, home);
                    return Ok(retries);
                }
            }
            if !progressed {
                break;
            }
        }
        // Genuine exhaustion (witnessed by the final no-progress sweep):
        // hand every partial grab back to the shard it came from.
        // `spurious_rejects` is deliberately not classified here — a
        // witnessed reject is never spurious, and a racy post-rollback
        // re-sum (the old classifier) would miscount late releases.
        for (s, &amount) in taken.iter().enumerate().take(self.shards) {
            if amount > 0 {
                // ordering: AcqRel — a rollback is a release of headroom
                // like any other; the next grab must see it published.
                shards[s].avail.fetch_add(amount, Ordering::AcqRel);
            }
        }
        Err(retries)
    }

    /// Returns `amount` millibits of headroom to the cell, into the home
    /// shard. Headroom migrates toward the releasing thread's shard —
    /// the borrow direction of future reservations adapts to where load
    /// actually lives, and a thread that admits and releases its own
    /// flows keeps its home shard warm (pure phase-1 traffic).
    fn put(&self, cell: usize, amount: u64, home: usize) {
        // Meter the release *before* publishing the headroom: snapshot()
        // may then momentarily under-count outstanding rate, but can
        // never over-count it past the budget (see `snapshot`).
        #[cfg(not(loom))]
        self.slots[cell * self.shards + home]
            .released_meter
            .fetch_add(amount, Ordering::Relaxed);
        let slot = &self.shard_slice(cell)[home].avail;
        // ordering: AcqRel — publishes the flow teardown to the take()
        // CAS that consumes the freed headroom.
        let prev = slot.fetch_add(amount, Ordering::AcqRel);
        debug_assert!(
            prev + amount <= self.budgets[cell],
            "release overflows cell budget: headroom {prev} + {amount} > {}",
            self.budgets[cell]
        );
    }

    fn headroom(&self, cell: usize) -> u64 {
        // ordering: Acquire per shard — advisory sum for diagnostics and
        // dry runs; each load sees a shard no older than what the caller
        // already observed. The sum itself is not atomic across shards
        // (would_fit is documented as advisory).
        self.shard_slice(cell)
            .iter()
            .map(|s| s.avail.load(Ordering::Acquire))
            .sum()
    }
}

impl AdmissionBackend for ShardedBackend {
    fn servers(&self) -> usize {
        self.servers
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn try_reserve_path(&self, route: &[u32], class: usize, rate: f64) -> Result<u32, PathReject> {
        let want = to_millibits(rate);
        let home = home_seed() % self.shards;
        let mut cas_retries = 0u32;
        for (i, &server) in route.iter().enumerate() {
            let cell = self.cell(server as usize, class);
            match self.take(cell, want, home) {
                Ok(retries) => cas_retries += retries,
                Err(retries) => {
                    cas_retries += retries;
                    for &held in &route[..i] {
                        self.put(self.cell(held as usize, class), want, home);
                    }
                    return Err(PathReject {
                        server,
                        retries: cas_retries,
                    });
                }
            }
        }
        Ok(cas_retries)
    }

    fn release_path(&self, route: &[u32], class: usize, rate: f64) {
        let amount = to_millibits(rate);
        let home = home_seed() % self.shards;
        for &server in route {
            self.put(self.cell(server as usize, class), amount, home);
        }
    }

    fn would_fit(&self, server: usize, class: usize, rate: f64) -> bool {
        to_millibits(rate) <= self.headroom(self.cell(server, class))
    }

    /// Exact outstanding sum from the per-shard monotone meters (PR 5's
    /// saturating budget-clamp workaround is gone — the old
    /// budget − headroom sum could transiently *overshoot* the budget
    /// when a whole admit/release pair landed inside the scan window,
    /// double-counting the migrating quantum).
    ///
    /// Reading every reserve meter first and every release meter second
    /// bounds the difference by the true outstanding rate at the moment
    /// between the two passes: reserve reads are monotone under-reads,
    /// release reads monotone over-reads, so
    /// `Σreserved − Σreleased ≤ outstanding ≤ budget` always — the
    /// direction diagnostics care about — and the sum is exact whenever
    /// the cell is quiescent (`reconfig_stress` asserts both).
    fn snapshot(&self, server: usize, class: usize) -> f64 {
        let cell = self.cell(server, class);
        #[cfg(not(loom))]
        {
            let shards = self.shard_slice(cell);
            let mut reserved = 0u64;
            for s in shards {
                // ordering: Acquire — pins the reserve-meter pass before
                // the release-meter pass below (an Acquire load forbids
                // hoisting the later loads above it); that pass order is
                // what makes the subtraction one-sided (see fn docs).
                reserved += s.reserved_meter.load(Ordering::Acquire);
            }
            let mut released = 0u64;
            for s in shards {
                // ordering: Acquire — pairs with the meter updates
                // preceding each put(); see above.
                released += s.released_meter.load(Ordering::Acquire);
            }
            // A reserve→release pair completing entirely between the two
            // passes can make `released` overtake the reserve sum read
            // earlier; that transient reads as zero outstanding — an
            // under-count, never an overshoot.
            reserved.saturating_sub(released) as f64 / SCALE
        }
        #[cfg(loom)]
        {
            // Meters are compiled out under the model checker; the
            // models read snapshots only at quiescence, where
            // budget − headroom is exact (and `checked_sub` turns any
            // overshoot into a model failure).
            self.budgets[cell]
                .checked_sub(self.headroom(cell))
                .expect("shard headroom exceeds cell budget") as f64
                / SCALE
        }
    }

    fn budget(&self, server: usize, class: usize) -> f64 {
        self.budgets[self.cell(server, class)] as f64 / SCALE
    }

    #[cfg(not(loom))]
    fn contention(&self) -> Option<ShardContention> {
        Some(ShardContention {
            borrows: self.borrows.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            spurious_rejects: self.spurious_rejects.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sharded() -> ShardedBackend {
        // Two servers at 1 Mb/s, one class at 50%, four shards.
        ShardedBackend::new(&[1e6, 1e6], &[0.5], 4)
    }

    #[test]
    fn single_cell_reserve_matches_atomic_semantics() {
        let s = sharded();
        // Budget 500 kb/s; 15 x 32 kb/s fit, the 16th does not.
        for i in 0..15 {
            assert!(s.try_reserve_path(&[0], 0, 32_000.0).is_ok(), "flow {i}");
        }
        let r = s.try_reserve_path(&[0], 0, 32_000.0);
        assert_eq!(
            r,
            Err(PathReject {
                server: 0,
                retries: 0
            })
        );
        // Other server untouched.
        assert!(s.try_reserve_path(&[1], 0, 32_000.0).is_ok());
        assert_eq!(s.snapshot(0, 0), 480_000.0);
        assert_eq!(s.budget(0, 0), 500_000.0);
    }

    #[test]
    fn borrowing_crosses_shards_for_one_big_flow() {
        // 500 kb/s split across 4 shards is 125 kb/s each; a 400 kb/s
        // flow must borrow from three neighbors and still succeed.
        let s = sharded();
        assert!(s.try_reserve_path(&[0], 0, 400_000.0).is_ok());
        assert!(!s.would_fit(0, 0, 200_000.0));
        assert!(s.would_fit(0, 0, 100_000.0));
        s.release_path(&[0], 0, 400_000.0);
        assert_eq!(s.snapshot(0, 0), 0.0);
        assert!(s.try_reserve_path(&[0], 0, 500_000.0).is_ok());
    }

    #[test]
    fn failed_path_reservation_leaves_no_residue() {
        let s = sharded();
        assert!(s.try_reserve_path(&[1], 0, 500_000.0).is_ok());
        // Path 0 -> 1 fails on server 1; server 0 must be rolled back.
        let r = s.try_reserve_path(&[0, 1], 0, 32_000.0);
        assert_eq!(r.unwrap_err().server, 1);
        assert_eq!(s.snapshot(0, 0), 0.0);
    }

    #[test]
    fn exact_boundary_admission() {
        let s = sharded();
        assert!(s.try_reserve_path(&[0], 0, 500_000.0).is_ok());
        assert!(s.try_reserve_path(&[0], 0, 0.001).is_err());
        assert_eq!(s.occupancy(0, 0), 1.0);
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardedBackend::new(&[1e6], &[0.5], 0).shards(), 1);
        assert_eq!(
            ShardedBackend::new(&[1e6], &[0.5], 999).shards(),
            MAX_SHARDS
        );
    }

    #[test]
    fn uneven_budget_distributes_fully() {
        // 10 millibits over 4 shards: 3,3,2,2 — nothing lost.
        let s = ShardedBackend::new(&[0.01], &[1.0], 4);
        assert_eq!(s.headroom(0), 10);
        assert!(s.try_reserve_path(&[0], 0, 0.01).is_ok());
        assert_eq!(s.headroom(0), 0);
    }

    #[test]
    fn snapshot_stays_exact_through_churn() {
        // The meters must track outstanding rate exactly through
        // admit/release/reject churn (this is the PR 5 saturating-sum
        // workaround, retired).
        let s = sharded();
        assert!(s.try_reserve_path(&[0, 1], 0, 150_000.0).is_ok());
        assert!(s.try_reserve_path(&[0], 0, 300_000.0).is_ok());
        assert!(s.try_reserve_path(&[0], 0, 100_000.0).is_err());
        assert_eq!(s.snapshot(0, 0), 450_000.0);
        assert_eq!(s.snapshot(1, 0), 150_000.0);
        s.release_path(&[0], 0, 300_000.0);
        assert_eq!(s.snapshot(0, 0), 150_000.0);
        s.release_path(&[0, 1], 0, 150_000.0);
        assert_eq!(s.snapshot(0, 0), 0.0);
        assert_eq!(s.snapshot(1, 0), 0.0);
    }

    #[test]
    fn batch_reserve_is_all_or_nothing() {
        for (name, backend) in [
            (
                "atomic",
                Box::new(AtomicBackend::new(&[1e6, 1e6], &[0.5])) as Box<dyn AdmissionBackend>,
            ),
            (
                "sharded",
                Box::new(ShardedBackend::new(&[1e6, 1e6], &[0.5], 4)),
            ),
        ] {
            // 300k + 150k on server 0, 150k on server 1: fits.
            let ok = backend.try_reserve_batch(&[
                CellDemand {
                    server: 0,
                    class: 0,
                    rate: 450_000.0,
                },
                CellDemand {
                    server: 1,
                    class: 0,
                    rate: 150_000.0,
                },
            ]);
            assert!(ok.is_ok(), "{name}");
            assert_eq!(backend.snapshot(0, 0), 450_000.0, "{name}");
            // Second batch: server 1 fits, server 0 does not — nothing
            // of the batch may remain reserved.
            let err = backend.try_reserve_batch(&[
                CellDemand {
                    server: 1,
                    class: 0,
                    rate: 100_000.0,
                },
                CellDemand {
                    server: 0,
                    class: 0,
                    rate: 100_000.0,
                },
            ]);
            assert_eq!(err.unwrap_err().server, 0, "{name}");
            assert_eq!(backend.snapshot(1, 0), 150_000.0, "{name}");
            assert_eq!(backend.snapshot(0, 0), 450_000.0, "{name}");
        }
    }

    #[test]
    fn contention_counters_classify_cross_shard_traffic() {
        // The atomic backend reports no contention telemetry at all.
        let atomic = AtomicBackend::new(&[1e6], &[0.5]);
        assert_eq!(AdmissionBackend::contention(&atomic), None);

        // 500 kb/s over 4 shards = 125 kb/s each. This thread's home
        // shard is fixed for the whole test, so the sequence below is
        // deterministic.
        let s = sharded();
        assert_eq!(s.contention(), Some(ShardContention::default()));

        // Fits in the home shard alone: phase 1, no cross-shard traffic.
        assert!(s.try_reserve_path(&[0], 0, 100_000.0).is_ok());
        assert_eq!(s.contention(), Some(ShardContention::default()));

        // Needs 200 kb/s with only 25 kb/s left at home: a borrow.
        assert!(s.try_reserve_path(&[0], 0, 200_000.0).is_ok());
        let c = s.contention().unwrap();
        assert_eq!((c.borrows, c.steals, c.spurious_rejects), (1, 0, 0));

        // Home shard is now empty: the next grab is a pure steal.
        assert!(s.try_reserve_path(&[0], 0, 50_000.0).is_ok());
        let c = s.contention().unwrap();
        assert_eq!((c.borrows, c.steals, c.spurious_rejects), (1, 1, 0));

        // A genuine budget exhaustion carries its no-progress sweep
        // witness — by construction never spurious.
        assert!(s.try_reserve_path(&[0], 0, 400_000.0).is_err());
        let c = s.contention().unwrap();
        assert_eq!(c.spurious_rejects, 0);
    }

    #[test]
    fn rejected_borrow_returns_grabs_to_their_shards() {
        // Drain 350k of 500k, then fail a 400k grab: the 150k the sweep
        // grabbed must flow back so a 150k reservation still succeeds
        // and the per-shard distribution is unchanged (phase-1-visible).
        let s = sharded();
        assert!(s.try_reserve_path(&[0], 0, 350_000.0).is_ok());
        assert!(s.try_reserve_path(&[0], 0, 400_000.0).is_err());
        assert_eq!(s.snapshot(0, 0), 350_000.0);
        assert!(s.would_fit(0, 0, 150_000.0));
        assert!(s.try_reserve_path(&[0], 0, 150_000.0).is_ok());
        assert_eq!(s.occupancy(0, 0), 1.0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        let s = Arc::new(ShardedBackend::new(&[1e6], &[0.5], 4));
        let rate = 32_000.0;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0usize;
                for _ in 0..100 {
                    if s.try_reserve_path(&[0], 0, rate).is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 15, "exactly budget/rate flows may succeed");
        assert!(s.snapshot(0, 0) <= 500_000.0);
    }

    #[test]
    fn concurrent_reserve_release_balances_to_zero() {
        let s = Arc::new(ShardedBackend::new(&[1e8], &[0.5], 8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let rate = 1000.0 + t as f64;
                for _ in 0..1000 {
                    if s.try_reserve_path(&[0], 0, rate).is_ok() {
                        s.release_path(&[0], 0, rate);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot(0, 0), 0.0);
    }

    #[test]
    fn two_phase_admits_when_total_headroom_suffices_under_contention() {
        // The no-spurious-reject property, stress-tested natively (the
        // loom model in tests/loom_models.rs proves it exhaustively for
        // bounded schedules): when aggregate demand fits the budget,
        // every contender must be admitted, no matter how headroom is
        // distributed across shards mid-flight.
        for _ in 0..50 {
            let s = Arc::new(ShardedBackend::new(&[1e6], &[1.0], 4));
            // 4 threads × 250k on a 1 Mb/s budget: all must fit.
            let mut handles = Vec::new();
            for _ in 0..4 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || {
                    s.try_reserve_path(&[0], 0, 250_000.0).is_ok()
                }));
            }
            let admitted = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&ok| ok)
                .count();
            assert_eq!(admitted, 4, "sufficient total headroom must admit all");
            assert_eq!(s.contention().unwrap().spurious_rejects, 0);
        }
    }
}
