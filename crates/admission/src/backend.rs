//! Pluggable reservation-state backends.
//!
//! The admission decision is one predicate — *does every link server on
//! the route have `α_i·C` headroom left for the class?* — but the data
//! structure answering it is swappable. [`AdmissionBackend`] captures
//! the path-level contract the controller needs (all-or-nothing reserve,
//! release, snapshot, budget); two implementations live here:
//!
//! * [`AtomicBackend`] — the original one-`AtomicU64`-per-(server, class)
//!   CAS loop ([`UtilizationState`]). Exact, strict (over-release
//!   panics), and the contention hot spot is the counter of a hot link.
//! * [`ShardedBackend`] — each (server, class) budget striped across N
//!   headroom shards; threads grab from their home shard first and
//!   borrow from neighbor shards on local exhaustion. Under a single
//!   thread the admit/reject sequence is *identical* to the atomic
//!   backend (a reservation succeeds iff total headroom suffices); under
//!   many threads the CAS traffic on a hot cell spreads across N cache
//!   lines. The trade: over-release of a single flow can no longer be
//!   detected per-cell (headroom is fungible across shards), so the
//!   strict accounting assert of the atomic backend is only checked as
//!   "total headroom never exceeds the budget".

use crate::state::{to_millibits, UtilizationState, SCALE};
use crate::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use crate::sync::atomic::AtomicUsize;
use std::fmt;

/// The CAS-per-(server, class) backend — [`UtilizationState`] fulfilling
/// the [`AdmissionBackend`] contract. This is the paper's run-time
/// mechanism verbatim and the default for every controller.
pub type AtomicBackend = UtilizationState;

/// Why a path reservation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathReject {
    /// The first server along the route whose class budget could not fit
    /// the flow.
    pub server: u32,
    /// CAS retries spent before giving up (contention signal).
    pub retries: u32,
}

/// Cumulative cross-shard traffic of a [`ShardedBackend`] since its
/// construction (a generation's backend is born fresh, so these reset on
/// reconfigure). All three are contention *signals*, not errors: borrows
/// and steals are the design working as intended, and a spurious reject
/// is the documented false-negative window of the striped design (see
/// the loom model in `tests/loom_models.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardContention {
    /// Reservations where the home shard contributed but ran dry, so one
    /// or more neighbor shards topped up the grab.
    pub borrows: u64,
    /// Reservations satisfied with *zero* home-shard contribution — the
    /// thread's entire grab came from neighbors (headroom has migrated
    /// away from its home).
    pub steals: u64,
    /// Per-cell reservation failures where a post-rollback re-sum of the
    /// shards showed enough total headroom after all — the double-reject
    /// race the loom model documents, now visible in telemetry.
    pub spurious_rejects: u64,
}

/// Reservation state shared by all admissions of one configuration
/// generation.
///
/// Implementations must make [`try_reserve_path`](Self::try_reserve_path)
/// all-or-nothing (no residue on failure) and never let the reserved
/// rate of a class on a server exceed its budget, even under concurrent
/// callers. `snapshot`/`budget` are advisory reads used by diagnostics
/// and gauges; they may be weakly ordered with respect to in-flight
/// reservations.
pub trait AdmissionBackend: fmt::Debug + Send + Sync {
    /// Number of link servers.
    fn servers(&self) -> usize;

    /// Number of traffic classes.
    fn classes(&self) -> usize;

    /// Atomically-per-cell reserves `rate` bits/s of `class` on every
    /// server of `route`; rolls the prefix back and reports the failing
    /// server if any cell is full. Returns total CAS retries on success.
    fn try_reserve_path(&self, route: &[u32], class: usize, rate: f64)
        -> Result<u32, PathReject>;

    /// Releases a previously successful path reservation.
    fn release_path(&self, route: &[u32], class: usize, rate: f64);

    /// Whether one `rate` reservation would fit on (server, class) right
    /// now, without reserving anything. Must use the same exact integer
    /// predicate as the real reservation so dry runs never disagree.
    fn would_fit(&self, server: usize, class: usize, rate: f64) -> bool;

    /// Currently reserved rate on (server, class), bits/s.
    fn snapshot(&self, server: usize, class: usize) -> f64;

    /// Configured budget `α_i · C` on (server, class), bits/s.
    fn budget(&self, server: usize, class: usize) -> f64;

    /// Fraction of the class budget in use (0 when the budget is zero).
    fn occupancy(&self, server: usize, class: usize) -> f64 {
        let b = self.budget(server, class);
        if b > 0.0 {
            self.snapshot(server, class) / b
        } else {
            0.0
        }
    }

    /// Cross-shard contention counters, for backends that stripe their
    /// budgets. `None` for unsharded backends (and under the loom model
    /// checker, where the counters are compiled out to keep the state
    /// space small).
    fn contention(&self) -> Option<ShardContention> {
        None
    }
}

impl AdmissionBackend for UtilizationState {
    fn servers(&self) -> usize {
        UtilizationState::servers(self)
    }

    fn classes(&self) -> usize {
        UtilizationState::classes(self)
    }

    fn try_reserve_path(
        &self,
        route: &[u32],
        class: usize,
        rate: f64,
    ) -> Result<u32, PathReject> {
        let mut cas_retries = 0u32;
        for (i, &server) in route.iter().enumerate() {
            let (ok, retries) = self.try_reserve_with_retries(server as usize, class, rate);
            cas_retries += retries;
            if !ok {
                for &held in &route[..i] {
                    self.release(held as usize, class, rate);
                }
                return Err(PathReject {
                    server,
                    retries: cas_retries,
                });
            }
        }
        Ok(cas_retries)
    }

    fn release_path(&self, route: &[u32], class: usize, rate: f64) {
        for &server in route {
            self.release(server as usize, class, rate);
        }
    }

    fn would_fit(&self, server: usize, class: usize, rate: f64) -> bool {
        UtilizationState::would_fit(self, server, class, rate)
    }

    fn snapshot(&self, server: usize, class: usize) -> f64 {
        self.reserved(server, class)
    }

    fn budget(&self, server: usize, class: usize) -> f64 {
        UtilizationState::budget(self, server, class)
    }
}

/// Most shards a [`ShardedBackend`] will stripe a budget across; beyond
/// this the per-reservation scan cost outweighs any contention win.
pub const MAX_SHARDS: usize = 16;

/// Round-robin home-shard assignment: each thread gets a stable index at
/// first use, so threads spread across shards deterministically.
/// (`Relaxed` suffices: the counter only hands out distinct indices,
/// it synchronizes nothing.)
#[cfg(not(loom))]
static NEXT_HOME: AtomicUsize = AtomicUsize::new(0);
#[cfg(not(loom))]
thread_local! {
    static HOME: usize = NEXT_HOME.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's home-shard seed (reduced mod the shard count at
/// use sites).
fn home_seed() -> usize {
    #[cfg(not(loom))]
    {
        HOME.with(|h| *h)
    }
    // Under the model checker the seed must be a pure function of the
    // model thread — a process-global counter would assign different
    // home shards on different executions and break schedule replay.
    #[cfg(loom)]
    {
        uba_loom::thread::current_index()
    }
}

/// Budget-striping backend: the headroom of each (server, class) cell is
/// split across `shards` atomic counters. A reservation drains its home
/// shard first and borrows from neighbor shards (in deterministic wrap
/// order) when the home shard runs dry, rolling back partial grabs if
/// the total headroom is insufficient — so single-threaded decisions
/// match [`AtomicBackend`] exactly, while concurrent threads mostly
/// touch distinct cache lines.
pub struct ShardedBackend {
    servers: usize,
    classes: usize,
    shards: usize,
    /// Budget per (server, class), millibits/s — for `budget`/`snapshot`.
    budgets: Vec<u64>,
    /// Remaining headroom per (server, class, shard), millibits/s:
    /// `(server * classes + class) * shards + shard`.
    avail: Vec<AtomicU64>,
    /// Cross-shard traffic counters (relaxed; they order nothing).
    /// Compiled out under loom: three extra atomics per operation would
    /// multiply the model's interleaving space for no protocol coverage.
    #[cfg(not(loom))]
    borrows: AtomicU64,
    #[cfg(not(loom))]
    steals: AtomicU64,
    #[cfg(not(loom))]
    spurious_rejects: AtomicU64,
}

impl fmt::Debug for ShardedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedBackend")
            .field("servers", &self.servers)
            .field("classes", &self.classes)
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl ShardedBackend {
    /// Creates the backend from per-server capacities, per-class
    /// utilization shares, and the stripe count (clamped to
    /// `1..=`[`MAX_SHARDS`]). Budget millibits are distributed across
    /// shards as evenly as integer division allows (the first
    /// `budget % shards` shards get one extra millibit).
    pub fn new(capacities: &[f64], alphas: &[f64], shards: usize) -> Self {
        assert!(!alphas.is_empty(), "need at least one class");
        for &a in alphas {
            assert!((0.0..=1.0).contains(&a), "alpha must be in [0, 1]");
        }
        let shards = shards.clamp(1, MAX_SHARDS);
        let servers = capacities.len();
        let classes = alphas.len();
        let mut budgets = Vec::with_capacity(servers * classes);
        let mut avail = Vec::with_capacity(servers * classes * shards);
        for &c in capacities {
            assert!(c > 0.0 && c.is_finite(), "capacity must be positive");
            for &a in alphas {
                let b = to_millibits(a * c);
                budgets.push(b);
                let base = b / shards as u64;
                let extra = b % shards as u64;
                for s in 0..shards as u64 {
                    avail.push(AtomicU64::new(base + u64::from(s < extra)));
                }
            }
        }
        Self {
            servers,
            classes,
            shards,
            budgets,
            avail,
            #[cfg(not(loom))]
            borrows: AtomicU64::new(0),
            #[cfg(not(loom))]
            steals: AtomicU64::new(0),
            #[cfg(not(loom))]
            spurious_rejects: AtomicU64::new(0),
        }
    }

    /// Configured stripe count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    #[inline]
    fn cell(&self, server: usize, class: usize) -> usize {
        debug_assert!(server < self.servers && class < self.classes);
        server * self.classes + class
    }

    #[inline]
    fn shard_slice(&self, cell: usize) -> &[AtomicU64] {
        &self.avail[cell * self.shards..(cell + 1) * self.shards]
    }

    /// Grabs `want` millibits from the cell's shards, home shard first.
    /// All-or-nothing: on insufficient total headroom every partial grab
    /// is returned and `Err(retries)` reported.
    fn take(&self, cell: usize, want: u64, home: usize) -> Result<u32, u32> {
        let shards = self.shard_slice(cell);
        let mut got = 0u64;
        let mut taken = [0u64; MAX_SHARDS];
        let mut retries = 0u32;
        for k in 0..self.shards {
            let s = (home + k) % self.shards;
            let shard = &shards[s];
            let mut cur = shard.load(Ordering::Relaxed);
            loop {
                let grab = cur.min(want - got);
                if grab == 0 {
                    break;
                }
                // ordering: AcqRel — same reserve/release pairing as the
                // atomic backend, per shard: a grab of freed headroom
                // happens-after the put() that freed it.
                match shard.compare_exchange_weak(
                    cur,
                    cur - grab,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        got += grab;
                        taken[s] += grab;
                        break;
                    }
                    Err(actual) => {
                        cur = actual;
                        retries += 1;
                    }
                }
            }
            if got == want {
                #[cfg(not(loom))]
                if want > 0 && taken[home] < want {
                    if taken[home] == 0 {
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.borrows.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return Ok(retries);
            }
        }
        // Insufficient headroom: hand back what we grabbed.
        for (s, &amount) in taken.iter().enumerate().take(self.shards) {
            if amount > 0 {
                // ordering: AcqRel — a rollback is a release of headroom
                // like any other; the next grab must see it published.
                shards[s].fetch_add(amount, Ordering::AcqRel);
            }
        }
        // Off the hot path (this reservation already failed): re-sum the
        // cell once to classify the reject. Headroom that reappeared by
        // the re-read means concurrent shard traffic — not budget
        // exhaustion — turned the flow away.
        #[cfg(not(loom))]
        if self.headroom(cell) >= want {
            self.spurious_rejects.fetch_add(1, Ordering::Relaxed);
        }
        Err(retries)
    }

    /// Returns `amount` millibits of headroom to the cell, into the home
    /// shard. Headroom migrates toward the releasing thread's shard —
    /// the borrow direction of future reservations adapts to where load
    /// actually lives.
    fn put(&self, cell: usize, amount: u64, home: usize) {
        let shards = self.shard_slice(cell);
        // ordering: AcqRel — publishes the flow teardown to the take()
        // CAS that consumes the freed headroom.
        let prev = shards[home].fetch_add(amount, Ordering::AcqRel);
        debug_assert!(
            prev + amount <= self.budgets[cell],
            "release overflows cell budget: headroom {prev} + {amount} > {}",
            self.budgets[cell]
        );
    }

    fn headroom(&self, cell: usize) -> u64 {
        // ordering: Acquire per shard — advisory sum for diagnostics and
        // dry runs; each load sees a shard no older than what the caller
        // already observed. The sum itself is not atomic across shards
        // (snapshot/would_fit are documented as advisory).
        self.shard_slice(cell)
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .sum()
    }
}

impl AdmissionBackend for ShardedBackend {
    fn servers(&self) -> usize {
        self.servers
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn try_reserve_path(
        &self,
        route: &[u32],
        class: usize,
        rate: f64,
    ) -> Result<u32, PathReject> {
        let want = to_millibits(rate);
        let home = home_seed() % self.shards;
        let mut cas_retries = 0u32;
        for (i, &server) in route.iter().enumerate() {
            let cell = self.cell(server as usize, class);
            match self.take(cell, want, home) {
                Ok(retries) => cas_retries += retries,
                Err(retries) => {
                    cas_retries += retries;
                    for &held in &route[..i] {
                        self.put(self.cell(held as usize, class), want, home);
                    }
                    return Err(PathReject {
                        server,
                        retries: cas_retries,
                    });
                }
            }
        }
        Ok(cas_retries)
    }

    fn release_path(&self, route: &[u32], class: usize, rate: f64) {
        let amount = to_millibits(rate);
        let home = home_seed() % self.shards;
        for &server in route {
            self.put(self.cell(server as usize, class), amount, home);
        }
    }

    fn would_fit(&self, server: usize, class: usize, rate: f64) -> bool {
        to_millibits(rate) <= self.headroom(self.cell(server, class))
    }

    fn snapshot(&self, server: usize, class: usize) -> f64 {
        let cell = self.cell(server, class);
        // Saturating: the shard sum is advisory and can transiently
        // *exceed* the budget under concurrency — headroom migrates on
        // release (taken from one shard, returned to the releaser's home
        // shard), so a reader that sees the source shard before an
        // admit's take and the destination shard after the matching
        // release's put counts the same quantum twice. Clamp instead of
        // underflowing; at quiescence the sum is exact.
        self.budgets[cell].saturating_sub(self.headroom(cell)) as f64 / SCALE
    }

    fn budget(&self, server: usize, class: usize) -> f64 {
        self.budgets[self.cell(server, class)] as f64 / SCALE
    }

    #[cfg(not(loom))]
    fn contention(&self) -> Option<ShardContention> {
        Some(ShardContention {
            borrows: self.borrows.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            spurious_rejects: self.spurious_rejects.load(Ordering::Relaxed),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sharded() -> ShardedBackend {
        // Two servers at 1 Mb/s, one class at 50%, four shards.
        ShardedBackend::new(&[1e6, 1e6], &[0.5], 4)
    }

    #[test]
    fn single_cell_reserve_matches_atomic_semantics() {
        let s = sharded();
        // Budget 500 kb/s; 15 x 32 kb/s fit, the 16th does not.
        for i in 0..15 {
            assert!(s.try_reserve_path(&[0], 0, 32_000.0).is_ok(), "flow {i}");
        }
        let r = s.try_reserve_path(&[0], 0, 32_000.0);
        assert_eq!(r, Err(PathReject { server: 0, retries: 0 }));
        // Other server untouched.
        assert!(s.try_reserve_path(&[1], 0, 32_000.0).is_ok());
        assert_eq!(s.snapshot(0, 0), 480_000.0);
        assert_eq!(s.budget(0, 0), 500_000.0);
    }

    #[test]
    fn borrowing_crosses_shards_for_one_big_flow() {
        // 500 kb/s split across 4 shards is 125 kb/s each; a 400 kb/s
        // flow must borrow from three neighbors and still succeed.
        let s = sharded();
        assert!(s.try_reserve_path(&[0], 0, 400_000.0).is_ok());
        assert!(!s.would_fit(0, 0, 200_000.0));
        assert!(s.would_fit(0, 0, 100_000.0));
        s.release_path(&[0], 0, 400_000.0);
        assert_eq!(s.snapshot(0, 0), 0.0);
        assert!(s.try_reserve_path(&[0], 0, 500_000.0).is_ok());
    }

    #[test]
    fn failed_path_reservation_leaves_no_residue() {
        let s = sharded();
        assert!(s.try_reserve_path(&[1], 0, 500_000.0).is_ok());
        // Path 0 -> 1 fails on server 1; server 0 must be rolled back.
        let r = s.try_reserve_path(&[0, 1], 0, 32_000.0);
        assert_eq!(r.unwrap_err().server, 1);
        assert_eq!(s.snapshot(0, 0), 0.0);
    }

    #[test]
    fn exact_boundary_admission() {
        let s = sharded();
        assert!(s.try_reserve_path(&[0], 0, 500_000.0).is_ok());
        assert!(s.try_reserve_path(&[0], 0, 0.001).is_err());
        assert_eq!(s.occupancy(0, 0), 1.0);
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardedBackend::new(&[1e6], &[0.5], 0).shards(), 1);
        assert_eq!(ShardedBackend::new(&[1e6], &[0.5], 999).shards(), MAX_SHARDS);
    }

    #[test]
    fn uneven_budget_distributes_fully() {
        // 10 millibits over 4 shards: 3,3,2,2 — nothing lost.
        let s = ShardedBackend::new(&[0.01], &[1.0], 4);
        assert_eq!(s.headroom(0), 10);
        assert!(s.try_reserve_path(&[0], 0, 0.01).is_ok());
        assert_eq!(s.headroom(0), 0);
    }

    #[test]
    fn contention_counters_classify_cross_shard_traffic() {
        // The atomic backend reports no contention telemetry at all.
        let atomic = AtomicBackend::new(&[1e6], &[0.5]);
        assert_eq!(AdmissionBackend::contention(&atomic), None);

        // 500 kb/s over 4 shards = 125 kb/s each. This thread's home
        // shard is fixed for the whole test, so the sequence below is
        // deterministic.
        let s = sharded();
        assert_eq!(s.contention(), Some(ShardContention::default()));

        // Fits in the home shard alone: no cross-shard traffic.
        assert!(s.try_reserve_path(&[0], 0, 100_000.0).is_ok());
        assert_eq!(s.contention(), Some(ShardContention::default()));

        // Needs 200 kb/s with only 25 kb/s left at home: a borrow.
        assert!(s.try_reserve_path(&[0], 0, 200_000.0).is_ok());
        let c = s.contention().unwrap();
        assert_eq!((c.borrows, c.steals, c.spurious_rejects), (1, 0, 0));

        // Home shard is now empty: the next grab is a pure steal.
        assert!(s.try_reserve_path(&[0], 0, 50_000.0).is_ok());
        let c = s.contention().unwrap();
        assert_eq!((c.borrows, c.steals, c.spurious_rejects), (1, 1, 0));

        // A genuine budget exhaustion is NOT spurious: the re-sum still
        // comes up short.
        assert!(s.try_reserve_path(&[0], 0, 400_000.0).is_err());
        let c = s.contention().unwrap();
        assert_eq!(c.spurious_rejects, 0);
    }

    #[test]
    fn concurrent_reservations_never_exceed_budget() {
        let s = Arc::new(ShardedBackend::new(&[1e6], &[0.5], 4));
        let rate = 32_000.0;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0usize;
                for _ in 0..100 {
                    if s.try_reserve_path(&[0], 0, rate).is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 15, "exactly budget/rate flows may succeed");
        assert!(s.snapshot(0, 0) <= 500_000.0);
    }

    #[test]
    fn concurrent_reserve_release_balances_to_zero() {
        let s = Arc::new(ShardedBackend::new(&[1e8], &[0.5], 8));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let rate = 1000.0 + t as f64;
                for _ in 0..1000 {
                    if s.try_reserve_path(&[0], 0, rate).is_ok() {
                        s.release_path(&[0], 0, rate);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot(0, 0), 0.0);
    }
}
