//! Intserv-style per-flow admission — the scalability comparator.
//!
//! What admission control costs *without* the paper's configuration-time
//! safe-utilization machinery: every arrival re-runs the flow-aware
//! general delay analysis (Eq. 2–3) over **all** established flows plus
//! the candidate, and admits only if every flow still meets its deadline.
//! Decision cost grows with the number of established flows — exactly the
//! run-time overhead Section 1.1 attributes to intserv — while
//! [`crate::AdmissionController`] stays O(path length). Experiment S-AC
//! benchmarks the two side by side.

use crate::table::RoutingTable;
use std::sync::Mutex;
use uba_delay::general::{analyze_flows, Flow, GeneralOutcome};
use uba_delay::servers::Servers;
use uba_graph::NodeId;
use uba_traffic::{ClassId, ClassSet};

/// Opaque id of a flow admitted by the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BaselineFlowId(usize);

/// Per-flow (intserv-style) admission control.
#[derive(Debug)]
pub struct PerFlowAdmission {
    servers: Servers,
    table: RoutingTable,
    classes: ClassSet,
    /// Established flows; freed slots are reused.
    slots: Mutex<Slots>,
    /// Fixed-point tolerance for the per-decision analysis.
    tol: f64,
    max_iters: usize,
}

#[derive(Debug, Default)]
struct Slots {
    flows: Vec<Option<Flow>>,
    free: Vec<usize>,
}

impl PerFlowAdmission {
    /// Builds the baseline from the same configuration inputs as the
    /// utilization-based controller.
    pub fn new(table: RoutingTable, classes: ClassSet, servers: Servers) -> Self {
        Self {
            servers,
            table,
            classes,
            slots: Mutex::new(Slots::default()),
            tol: 1e-9,
            max_iters: 1000,
        }
    }

    /// Number of currently established flows.
    pub fn active_flows(&self) -> usize {
        let s = self.slots.lock().unwrap();
        s.flows.len() - s.free.len()
    }

    /// Attempts to admit a flow by re-verifying the whole network.
    ///
    /// Returns the flow id on success. The decision holds the flow table
    /// lock for its full duration — per-flow admission is inherently
    /// serialized, which is part of the cost being measured.
    pub fn try_admit(&self, class: ClassId, src: NodeId, dst: NodeId) -> Option<BaselineFlowId> {
        let route = self.table.route(src, dst, class)?;
        let spec = self.classes.get(class);
        let candidate = Flow {
            bucket: spec.bucket,
            deadline: spec.deadline,
            servers: route.to_vec(),
        };
        let mut slots = self.slots.lock().unwrap();
        // Assemble the full flow set including the candidate.
        let mut all: Vec<Flow> = slots
            .flows
            .iter()
            .filter_map(|f| f.as_ref().cloned())
            .collect();
        all.push(candidate.clone());
        let result = analyze_flows(&self.servers, &all, self.tol, self.max_iters);
        if result.outcome != GeneralOutcome::Feasible {
            return None;
        }
        let id = match slots.free.pop() {
            Some(i) => {
                slots.flows[i] = Some(candidate);
                i
            }
            None => {
                slots.flows.push(Some(candidate));
                slots.flows.len() - 1
            }
        };
        Some(BaselineFlowId(id))
    }

    /// Tears down a previously admitted flow.
    ///
    /// # Panics
    /// Panics on double release or an unknown id.
    pub fn release(&self, id: BaselineFlowId) {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots.flows.get_mut(id.0).expect("unknown baseline flow id");
        assert!(slot.take().is_some(), "double release of baseline flow");
        slots.free.push(id.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_graph::{Digraph, Path};
    use uba_traffic::TrafficClass;

    /// 0 -> 1 -> 2 plus a cross feeder 3 -> 1, voip class, slow links so
    /// small flow counts already matter.
    fn setup(cap: f64) -> (PerFlowAdmission, Digraph) {
        let mut g = Digraph::with_nodes(4);
        let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
        let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
        let (e31, _) = g.add_link(NodeId(3), NodeId(1), 1.0);
        let mut table = RoutingTable::new();
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
        table.insert(ClassId(0), &Path::from_edges(&g, vec![e31, e12]));
        let servers = Servers::uniform(&g, cap, 4);
        let classes = ClassSet::single(TrafficClass::voip());
        (PerFlowAdmission::new(table, classes, servers), g)
    }

    #[test]
    fn admits_feasible_flows() {
        let (adm, _) = setup(1e6);
        let a = adm.try_admit(ClassId(0), NodeId(0), NodeId(2));
        assert!(a.is_some());
        let b = adm.try_admit(ClassId(0), NodeId(3), NodeId(2));
        assert!(b.is_some());
        assert_eq!(adm.active_flows(), 2);
    }

    #[test]
    fn rejects_when_capacity_exhausted() {
        // 100 kb/s links: 3 voip flows (96 kb/s) fit rate-wise; the 4th
        // cannot.
        let (adm, _) = setup(100_000.0);
        let mut admitted = 0;
        for _ in 0..4 {
            if adm.try_admit(ClassId(0), NodeId(0), NodeId(2)).is_some() {
                admitted += 1;
            }
        }
        assert!(admitted <= 3);
        assert_eq!(adm.active_flows(), admitted);
    }

    #[test]
    fn release_restores_admissibility() {
        let (adm, _) = setup(100_000.0);
        let ids: Vec<_> = (0..3)
            .filter_map(|_| adm.try_admit(ClassId(0), NodeId(0), NodeId(2)))
            .collect();
        let blocked = adm.try_admit(ClassId(0), NodeId(0), NodeId(2));
        assert!(blocked.is_none() || ids.len() < 3);
        if let Some(&first) = ids.first() {
            adm.release(first);
            assert!(adm.try_admit(ClassId(0), NodeId(0), NodeId(2)).is_some());
        }
    }

    #[test]
    fn no_route_is_rejection() {
        let (adm, _) = setup(1e6);
        assert!(adm.try_admit(ClassId(0), NodeId(2), NodeId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let (adm, _) = setup(1e6);
        let id = adm.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap();
        adm.release(id);
        adm.release(id);
    }

    #[test]
    fn slot_reuse() {
        let (adm, _) = setup(1e6);
        let a = adm.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap();
        adm.release(a);
        let b = adm.try_admit(ClassId(0), NodeId(0), NodeId(2)).unwrap();
        // Freed slot is reused.
        assert_eq!(a, b);
    }
}
