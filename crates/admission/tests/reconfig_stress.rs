//! Live-reconfiguration stress: admitters, releases, and generation
//! swaps all racing, with an observer asserting the budget invariant the
//! whole time.
//!
//! The safety claim under test: at every instant, every generation's
//! backend holds `reserved ≤ budget` on every (server, class) — the
//! paper's admission guarantee — no matter how `reconfigure` interleaves
//! with admissions, and when everything drains, every generation
//! balances back to exactly zero (releases always land on the admitting
//! generation).
//!
//! The default run is sized for CI; build with `--features prop-tests`
//! for a heavier soak (more threads, more arrivals, more swaps).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use uba_admission::{AdmissionController, BackendKind, ConfigGeneration, RoutingTable};
use uba_graph::{Digraph, NodeId, Path};
use uba_obs::SplitMix64;
use uba_traffic::{ClassId, ClassSet, TrafficClass};

#[cfg(not(feature = "prop-tests"))]
const ADMITTERS: usize = 4;
#[cfg(feature = "prop-tests")]
const ADMITTERS: usize = 8;

#[cfg(not(feature = "prop-tests"))]
const ARRIVALS_PER_THREAD: usize = 4_000;
#[cfg(feature = "prop-tests")]
const ARRIVALS_PER_THREAD: usize = 40_000;

#[cfg(not(feature = "prop-tests"))]
const RECONFIGURES: usize = 12;
#[cfg(feature = "prop-tests")]
const RECONFIGURES: usize = 100;

/// 0 -> 1 -> 2 with routes (0,2) and (1,2); link 1->2 is shared, so the
/// two pairs contend for the same budget.
fn build_generation(alpha: f64, kind: BackendKind) -> ConfigGeneration {
    let mut g = Digraph::with_nodes(3);
    let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
    let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
    let mut table = RoutingTable::new();
    table.insert(ClassId(0), &Path::from_edges(&g, vec![e01, e12]));
    table.insert(ClassId(0), &Path::from_edges(&g, vec![e12]));
    ConfigGeneration::new(
        table,
        &ClassSet::single(TrafficClass::voip()),
        &vec![1e6; g.edge_count()],
        &[alpha],
        kind,
    )
}

/// Every generation's backend must satisfy `reserved ≤ budget` on every
/// (server, class) cell — exactly, with no epsilon. The sharded
/// backend's snapshot sums monotone reserve/release meters in an order
/// that can only undercount outstanding reservations, so a mid-flight
/// reading never exceeds the budget the CAS loop enforces.
fn assert_budget_invariant(generations: &[Arc<ConfigGeneration>]) {
    for g in generations {
        let backend = g.backend();
        for server in 0..backend.servers() {
            for class in 0..backend.classes() {
                let reserved = backend.snapshot(server, class);
                let budget = backend.budget(server, class);
                assert!(
                    reserved <= budget,
                    "generation {}: server {server} class {class} holds {reserved} of {budget}",
                    g.id()
                );
            }
        }
    }
}

fn stress(kind: BackendKind) {
    let ctrl = AdmissionController::from_generation(build_generation(0.32, kind));
    // Every generation ever installed, for invariant checks and the
    // final balance audit.
    let generations: Arc<Mutex<Vec<Arc<ConfigGeneration>>>> =
        Arc::new(Mutex::new(vec![ctrl.current_generation()]));
    let stop = Arc::new(AtomicBool::new(false));

    let admitters: Vec<_> = (0..ADMITTERS)
        .map(|t| {
            let ctrl = ctrl.clone();
            std::thread::spawn(move || {
                let mut rng = SplitMix64::new(0xA11CE + t as u64);
                let mut held = Vec::new();
                let (mut admits, mut rejects) = (0u64, 0u64);
                for _ in 0..ARRIVALS_PER_THREAD {
                    if !held.is_empty() && rng.next_u64().is_multiple_of(3) {
                        let i = (rng.next_u64() as usize) % held.len();
                        held.swap_remove(i);
                    } else {
                        let (src, dst) = if rng.next_u64().is_multiple_of(2) {
                            (NodeId(0), NodeId(2))
                        } else {
                            (NodeId(1), NodeId(2))
                        };
                        match ctrl.try_admit(ClassId(0), src, dst) {
                            Ok(h) => {
                                admits += 1;
                                held.push(h);
                            }
                            Err(_) => rejects += 1,
                        }
                    }
                }
                drop(held);
                (admits, rejects)
            })
        })
        .collect();

    let reconfigurer = {
        let ctrl = ctrl.clone();
        let generations = Arc::clone(&generations);
        std::thread::spawn(move || {
            for i in 0..RECONFIGURES {
                std::thread::sleep(std::time::Duration::from_micros(300));
                // Alternate budgets so swaps really change the decision
                // function mid-flight.
                let alpha = if i % 2 == 0 { 0.16 } else { 0.32 };
                ctrl.reconfigure(build_generation(alpha, kind));
                generations.lock().unwrap().push(ctrl.current_generation());
                ctrl.drain();
            }
        })
    };

    let observer = {
        let generations = Arc::clone(&generations);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checks = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let gens = generations.lock().unwrap().clone();
                assert_budget_invariant(&gens);
                checks += 1;
            }
            checks
        })
    };

    let mut total_admits = 0u64;
    let mut total_rejects = 0u64;
    for t in admitters {
        let (a, r) = t.join().unwrap();
        total_admits += a;
        total_rejects += r;
    }
    reconfigurer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let checks = observer.join().unwrap();

    assert!(total_admits > 0, "workload never admitted");
    assert!(total_rejects > 0, "workload never saturated");
    assert!(checks > 0, "observer never ran");

    // Everything released: every generation ever installed balances to
    // zero on every cell and holds no pinned flows.
    let gens = generations.lock().unwrap();
    assert_eq!(gens.len(), RECONFIGURES + 1);
    for g in gens.iter() {
        let backend = g.backend();
        for server in 0..backend.servers() {
            for class in 0..backend.classes() {
                assert_eq!(
                    backend.snapshot(server, class),
                    0.0,
                    "generation {} server {server} class {class} did not balance",
                    g.id()
                );
            }
        }
        assert_eq!(g.pinned(), 0, "generation {} still pinned", g.id());
    }
    assert!(ctrl.drain().is_drained());
}

#[test]
fn concurrent_reconfigure_never_violates_budgets_atomic() {
    stress(BackendKind::Atomic);
}

#[test]
fn concurrent_reconfigure_never_violates_budgets_sharded() {
    stress(BackendKind::Sharded(4));
}
