//! The `BENCH_loom.json` smoke lane: exhaustive DFS of the two flagship
//! concurrency models with and without dynamic partial-order reduction.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run via:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
//!     cargo test -p uba-admission --test loom_bench
//! ```
//!
//! Each model is explored twice — full DFS with DPOR (the configuration
//! the model suite ships with) and full DFS without it (every Thread
//! decision enumerated) — and the per-run telemetry is written to
//! `BENCH_loom.json` at the repo root. The gate: DPOR must cover the
//! same state space in **at least 5× fewer schedules** on the two-phase
//! sharded model. The unreduced run is iteration-capped as a wall-time
//! budget; a capped run is recorded honestly (`"complete": false`) and
//! its schedule count is a lower bound, which only strengthens the
//! gate.

#![cfg(loom)]

use std::sync::Arc;

use uba_admission::{AdmissionBackend, PolicyStage, ShardedBackend, TokenBucketStage};
use uba_loom::{Builder, Exploration};

/// Cap for the unreduced runs, so a regression in the checker (or an
/// unexpectedly large model) degrades into a truncated measurement
/// instead of a hung verify lane.
const NO_DPOR_CAP: usize = 200_000;

/// PR 7 flagship: the two-phase sharded borrow protocol. 300 + 600 of
/// demand against a 1000 budget striped 500/500 must always fully
/// admit (the schedule family that broke the old lock-free borrow).
fn sharded_two_phase() {
    let b = Arc::new(ShardedBackend::new(&[1000.0], &[1.0], 2));
    let b2 = Arc::clone(&b);
    let rival = uba_loom::thread::spawn(move || b2.try_reserve_path(&[0], 0, 600.0).is_ok());
    let mine = b.try_reserve_path(&[0], 0, 300.0).is_ok();
    let theirs = rival.join().unwrap();
    assert!(
        mine && theirs,
        "900 of demand against 1000 of budget must always fully admit"
    );
    assert_eq!(b.snapshot(0, 0), 900.0);
}

/// PR 9 flagship: the token-bucket interval-claim race. A drained
/// bucket refilled for one elapsed interval admits exactly one of two
/// racing 500-bit grabs — a double credit would admit both.
fn token_bucket_interval_race() {
    let tb = Arc::new(TokenBucketStage::new(600.0, 1000.0, &[500.0]));
    assert!(tb.admit_n(0, 2, 0.0), "full depth-1000 bucket holds 2×500");
    assert_eq!(tb.tokens_bits(0), 0.0, "pre-drain must empty the bucket");
    let tb2 = Arc::clone(&tb);
    let rival = uba_loom::thread::spawn(move || tb2.admit_n(0, 1, 1.0));
    let mine = tb.admit_n(0, 1, 1.0);
    let theirs = rival.join().unwrap();
    assert!(!(mine && theirs), "refill interval credited twice");
    assert!(
        mine || theirs,
        "600 banked bits must admit one 500-bit flow"
    );
}

fn explore(f: fn(), dpor: bool) -> Exploration {
    let mut b = Builder::new();
    b.preemption_bound = None;
    b.dpor = dpor;
    b.max_iterations = if dpor { 2_000_000 } else { NO_DPOR_CAP };
    b.check(f)
}

fn entry(name: &str, reduced: Exploration, full: Exploration) -> String {
    // Schedules "touched" by each mode: completed executions plus
    // sleep-set-pruned prefixes for DPOR (its honest total work); the
    // unreduced mode never prunes.
    let with_total = reduced.executions + reduced.pruned;
    let without_total = full.executions;
    let reduction = without_total as f64 / with_total.max(1) as f64;
    format!(
        "  {{\"model\":\"{name}\",\"dpor\":{},\"no_dpor\":{},\"schedules_with_dpor\":{with_total},\
         \"schedules_without_dpor\":{without_total},\"reduction\":{reduction:.2}}}",
        reduced.to_json(),
        full.to_json()
    )
}

#[test]
fn dpor_reduction_gate_and_bench_json() {
    let sharded_dpor = explore(sharded_two_phase, true);
    let sharded_full = explore(sharded_two_phase, false);
    let bucket_dpor = explore(token_bucket_interval_race, true);
    let bucket_full = explore(token_bucket_interval_race, false);

    assert!(
        sharded_dpor.complete,
        "flagship DFS must complete with DPOR: {sharded_dpor:?}"
    );
    assert!(
        bucket_dpor.complete,
        "flagship DFS must complete with DPOR: {bucket_dpor:?}"
    );

    let json = format!(
        "{{\n \"models\": [\n{},\n{}\n ]\n}}\n",
        entry("sharded_two_phase", sharded_dpor, sharded_full),
        entry("token_bucket_interval_race", bucket_dpor, bucket_full)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_loom.json");
    std::fs::write(path, &json).expect("write BENCH_loom.json");
    println!("BENCH_loom.json:\n{json}");

    // The acceptance gate: ≥5× fewer schedules with DPOR on the
    // two-phase sharded model. The unreduced side is a lower bound if
    // capped, so a cap can only make this gate harder, never easier.
    let with_total = sharded_dpor.executions + sharded_dpor.pruned;
    let without_total = sharded_full.executions;
    assert!(
        without_total >= 5 * with_total,
        "DPOR reduction below 5x on sharded_two_phase: {without_total} unreduced vs \
         {with_total} reduced"
    );
}
