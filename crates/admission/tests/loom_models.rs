//! Bounded model checks of the admission core's concurrency protocols.
//!
//! Compiled (and meaningful) only under `RUSTFLAGS="--cfg loom"`, where
//! `crate::sync` resolves the admission atomics/locks to `uba-loom`'s
//! modeled primitives and every atomic op becomes an explored schedule
//! point. Run via:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
//!     cargo test -p uba-admission --test loom_models
//! ```
//!
//! The default run is the CI smoke pass: CHESS-style preemption bound of
//! 2 (most interleaving bugs need at most two forced context switches),
//! which keeps the whole file comfortably inside the verify.sh time
//! budget. Building with `--features prop-tests` lifts the bound and
//! explores the full interleaving space of each model.
//!
//! What is being proven (within bounds — see the `uba-loom` crate docs
//! for what the checker does and does not model):
//!
//! 1. The class budget is never exceeded by concurrent reservations, on
//!    both backends, and concurrent release republishes headroom exactly.
//!    On the sharded backend the two-phase reserve-then-borrow protocol
//!    additionally guarantees *no spurious rejects*: whenever aggregate
//!    demand fits the budget, every contender is admitted (PR 5's model
//!    documented the old lock-free borrow failing exactly this).
//! 2. An admit racing a reconfigure lands on exactly one generation —
//!    never lost, never double-counted.
//! 3. A pinned `FlowHandle` always releases against the generation that
//!    admitted it, even when the drop races a reconfigure.
//! 4. The trace ring never tears an event under concurrent publish and
//!    drain.
//! 5. A *batched* admit racing a reconfigure never strands a
//!    reservation: the whole batch lands on one generation and balances
//!    to zero when its handles drop.
//! 6. The policy token bucket never over-grants: concurrent admits
//!    racing each other (and racing the CAS-claimed refill interval)
//!    can never jointly draw more than the burst depth, and a refunded
//!    grab restores the balance exactly.

#![cfg(loom)]

use std::sync::Arc;

use uba_admission::{
    AdmissionBackend, AdmissionController, AtomicBackend, BackendKind, ConfigGeneration, FlowSpec,
    PolicyStage, RoutingTable, ShardedBackend, TokenBucketStage,
};
use uba_graph::{Digraph, NodeId, Path};
use uba_loom::{Builder, Exploration};
use uba_obs::{EventKind, Tracer};
use uba_traffic::{ClassId, ClassSet, TrafficClass};

/// The exploration bounds for this run: exhaustive under
/// `--features prop-tests`, preemption-bounded smoke otherwise.
fn bounds() -> Builder {
    let mut b = Builder::new();
    if cfg!(feature = "prop-tests") {
        b.preemption_bound = None;
        b.max_iterations = 500_000;
    } else {
        b.preemption_bound = Some(2);
    }
    b
}

/// Every model in this file must fully explore its (possibly bounded)
/// schedule space — a truncated search would be a silent coverage hole.
/// The telemetry line (visible under `--nocapture`) is how the
/// DESIGN.md §14 reduction table is collected: run once normally and
/// once with `UBA_LOOM_NO_DPOR=1`.
fn assert_complete(e: Exploration) {
    eprintln!("uba-loom exploration: {e:?}");
    assert!(
        e.complete,
        "exploration truncated by the iteration cap: {e:?}"
    );
    assert!(e.executions() > 1, "model has no concurrency at all");
}

/// Full-DFS bounds (no preemption bound) for the flagship models:
/// DPOR + sleep sets make complete exploration affordable even in the
/// smoke lane, weak-memory read choices included.
fn flagship() -> Builder {
    let mut b = Builder::new();
    b.preemption_bound = None;
    b.max_iterations = 2_000_000;
    b
}

// --- Model 1: budget safety on both backends -------------------------

/// Two concurrent reservations against a budget that fits only one:
/// never may both win, and every loser leaves no residue. `must_admit`
/// additionally requires that *some* flow wins — true for **both**
/// backends now: the atomic backend because the first CAS to execute
/// succeeds, and the sharded one because phase 2's locked sweep rejects
/// only on a no-progress pass over every shard (PR 5's model found the
/// old lock-free borrow double-rejecting here — each thread drained its
/// home shard, saw the neighbor empty, and rolled back; the two-phase
/// protocol makes that schedule impossible).
fn budget_never_admits_two<B, F>(make: F, must_admit: bool)
where
    B: AdmissionBackend + 'static,
    F: Fn() -> B + Send + Sync + 'static,
{
    // Budget 1000 bits/s; each flow wants 600 — one fits, two never do.
    assert_complete(bounds().check(move || {
        let b = Arc::new(make());
        let b2 = Arc::clone(&b);
        let rival = uba_loom::thread::spawn(move || b2.try_reserve_path(&[0], 0, 600.0).is_ok());
        let mine = b.try_reserve_path(&[0], 0, 600.0).is_ok();
        let theirs = rival.join().unwrap();
        assert!(!(mine && theirs), "budget 1000 admitted two flows of 600");
        if must_admit {
            assert!(mine || theirs, "budget 1000 admitted 0 flows of 600");
        }
        let expected = if mine || theirs { 600.0 } else { 0.0 };
        assert_eq!(b.snapshot(0, 0), expected, "loser left residue");
        assert!(b.snapshot(0, 0) <= b.budget(0, 0));
    }));
}

#[test]
fn atomic_backend_budget_admits_exactly_one_of_two() {
    budget_never_admits_two(|| AtomicBackend::new(&[1000.0], &[1.0]), true);
}

#[test]
fn sharded_backend_budget_admits_exactly_one_of_two() {
    budget_never_admits_two(|| ShardedBackend::new(&[1000.0], &[1.0], 2), true);
}

/// The no-spurious-reject guarantee head-on: 300 + 600 against a 1000
/// budget striped 500/500. The old lock-free borrow had schedules where
/// both threads held partial grabs, each saw the rest missing, and both
/// rolled back — rejecting 900 of demand against 1000 of budget. Under
/// the two-phase protocol every schedule admits both.
#[test]
fn sharded_two_phase_admits_all_when_total_headroom_suffices() {
    assert_complete(flagship().check(|| {
        let b = Arc::new(ShardedBackend::new(&[1000.0], &[1.0], 2));
        let b2 = Arc::clone(&b);
        let rival = uba_loom::thread::spawn(move || b2.try_reserve_path(&[0], 0, 600.0).is_ok());
        let mine = b.try_reserve_path(&[0], 0, 300.0).is_ok();
        let theirs = rival.join().unwrap();
        assert!(
            mine && theirs,
            "900 of demand against 1000 of budget must always fully admit \
             (spurious reject: mine={mine} theirs={theirs})"
        );
        assert_eq!(b.snapshot(0, 0), 900.0);
    }));
}

/// Concurrent reserve/release churn: whatever interleaving happens, all
/// successfully reserved headroom is returned exactly — the cell
/// balances to zero and never exceeds its budget in between (the
/// backends' own debug asserts fire inside the model on any overshoot).
fn reserve_release_balances<B, F>(make: F)
where
    B: AdmissionBackend + 'static,
    F: Fn() -> B + Send + Sync + 'static,
{
    assert_complete(bounds().check(move || {
        let b = Arc::new(make());
        let b2 = Arc::clone(&b);
        let peer = uba_loom::thread::spawn(move || {
            if b2.try_reserve_path(&[0], 0, 600.0).is_ok() {
                b2.release_path(&[0], 0, 600.0);
            }
        });
        if b.try_reserve_path(&[0], 0, 600.0).is_ok() {
            b.release_path(&[0], 0, 600.0);
        }
        peer.join().unwrap();
        assert_eq!(b.snapshot(0, 0), 0.0, "released headroom must all return");
    }));
}

#[test]
fn atomic_backend_reserve_release_balances_to_zero() {
    reserve_release_balances(|| AtomicBackend::new(&[1000.0], &[1.0]));
}

#[test]
fn sharded_backend_reserve_release_balances_to_zero() {
    reserve_release_balances(|| ShardedBackend::new(&[1000.0], &[1.0], 2));
}

// --- Models 2 and 3: generation swap integrity -----------------------

/// One link 0 -> 1 with a configured route for class 0.
fn one_link_table() -> RoutingTable {
    let mut g = Digraph::with_nodes(2);
    let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
    let mut table = RoutingTable::new();
    table.insert(ClassId(0), &Path::from_edges(&g, vec![e01]));
    table
}

fn fresh_generation() -> ConfigGeneration {
    ConfigGeneration::new(
        one_link_table(),
        &ClassSet::single(TrafficClass::voip()),
        &[1e6],
        &[0.5],
        BackendKind::Atomic,
    )
}

/// An admit racing a reconfigure resolves to exactly one generation:
/// its reservation exists on that generation's backend (and only there)
/// while the handle lives, and disappears entirely when it drops.
#[test]
fn admit_racing_reconfigure_is_never_lost_or_double_counted() {
    assert_complete(bounds().check(|| {
        let classes = ClassSet::single(TrafficClass::voip());
        let ctrl = AdmissionController::new_unmetered(one_link_table(), &classes, &[1e6], &[0.5]);
        let gen1 = ctrl.current_generation();

        let c = ctrl.clone();
        let admitter =
            uba_loom::thread::spawn(move || c.try_admit(ClassId(0), NodeId(0), NodeId(1)).ok());
        let c = ctrl.clone();
        let swapper = uba_loom::thread::spawn(move || c.reconfigure(fresh_generation()));

        let handle = admitter
            .join()
            .unwrap()
            .expect("both generations have ample budget");
        let report = swapper.join().unwrap();
        let gen2 = ctrl.current_generation();
        assert_eq!(gen2.id(), report.generation);

        let rate = handle.rate();
        let on1 = gen1.backend().snapshot(0, 0);
        let on2 = gen2.backend().snapshot(0, 0);
        if handle.generation() == gen1.id() {
            assert_eq!((on1, on2), (rate, 0.0), "admit must land on gen1 only");
        } else {
            assert_eq!(
                handle.generation(),
                gen2.id(),
                "unknown admitting generation"
            );
            assert_eq!((on1, on2), (0.0, rate), "admit must land on gen2 only");
        }

        drop(handle);
        assert_eq!(gen1.backend().snapshot(0, 0), 0.0);
        assert_eq!(gen2.backend().snapshot(0, 0), 0.0);
        assert_eq!(gen1.pinned() + gen2.pinned(), 0);
        assert!(ctrl.drain().is_drained());
    }));
}

/// A handle admitted *before* a reconfigure releases against its own
/// (now retired) generation, no matter how the drop interleaves with
/// the swap — the new generation's budgets are never touched.
#[test]
fn pinned_handle_releases_against_its_admitting_generation() {
    assert_complete(bounds().check(|| {
        let classes = ClassSet::single(TrafficClass::voip());
        let ctrl = AdmissionController::new_unmetered(one_link_table(), &classes, &[1e6], &[0.5]);
        let gen1 = ctrl.current_generation();
        let handle = ctrl
            .try_admit(ClassId(0), NodeId(0), NodeId(1))
            .expect("empty controller must admit");
        assert_eq!(handle.generation(), gen1.id());
        assert_eq!(gen1.pinned(), 1);

        let c = ctrl.clone();
        let swapper = uba_loom::thread::spawn(move || c.reconfigure(fresh_generation()));
        drop(handle); // races the swap
        let report = swapper.join().unwrap();

        assert_eq!(report.previous, gen1.id());
        assert!(report.pinned_previous <= 1);
        assert_eq!(gen1.pinned(), 0, "drop must unpin the admitting generation");
        assert_eq!(gen1.backend().snapshot(0, 0), 0.0, "release went to gen1");
        let gen2 = ctrl.current_generation();
        assert_eq!(gen2.backend().snapshot(0, 0), 0.0, "gen2 was never touched");
        assert!(ctrl.drain().is_drained());
    }));
}

/// A batched admit racing a reconfigure never strands a reservation:
/// the whole batch resolves to exactly one generation, every handle
/// releases against that generation, and once the handles drop both
/// generations balance to zero and the controller drains.
#[test]
fn batch_admit_racing_reconfigure_strands_nothing() {
    assert_complete(bounds().check(|| {
        let classes = ClassSet::single(TrafficClass::voip());
        let ctrl = AdmissionController::new_unmetered(one_link_table(), &classes, &[1e6], &[0.5]);
        let gen1 = ctrl.current_generation();

        let c = ctrl.clone();
        let admitter = uba_loom::thread::spawn(move || {
            let spec = FlowSpec {
                class: ClassId(0),
                src: NodeId(0),
                dst: NodeId(1),
            };
            c.try_admit_batch(&[spec, spec])
        });
        let c = ctrl.clone();
        let swapper = uba_loom::thread::spawn(move || c.reconfigure(fresh_generation()));

        let out = admitter.join().unwrap();
        swapper.join().unwrap();
        let gen2 = ctrl.current_generation();
        assert!(out.fast_path, "ample budget: the aggregate always fits");
        assert_eq!(out.admitted(), 2, "ample budget must admit the batch");

        let handles = out.into_handles();
        let admitted_on = handles[0].generation();
        assert!(
            handles.iter().all(|h| h.generation() == admitted_on),
            "a batch must land on exactly one generation"
        );
        let batch_rate = 2.0 * handles[0].rate();
        let (on1, on2) = (gen1.backend().snapshot(0, 0), gen2.backend().snapshot(0, 0));
        if admitted_on == gen1.id() {
            assert_eq!(
                (on1, on2),
                (batch_rate, 0.0),
                "batch must land on gen1 only"
            );
        } else {
            assert_eq!(admitted_on, gen2.id(), "unknown admitting generation");
            assert_eq!(
                (on1, on2),
                (0.0, batch_rate),
                "batch must land on gen2 only"
            );
        }

        drop(handles);
        assert_eq!(
            gen1.backend().snapshot(0, 0),
            0.0,
            "reservation stranded on gen1"
        );
        assert_eq!(
            gen2.backend().snapshot(0, 0),
            0.0,
            "reservation stranded on gen2"
        );
        assert_eq!(gen1.pinned() + gen2.pinned(), 0);
        assert!(ctrl.drain().is_drained());
    }));
}

// --- Model 6: policy token bucket never over-grants -------------------

/// Two concurrent grabs racing each other's refill of the *same*
/// elapsed interval: the CAS-claimed `[last, t]` window must be
/// credited exactly once, however the schedules interleave. The bucket
/// is pre-drained to empty, then both threads admit at a `t` whose
/// single refill credit covers one flow but not two — if any schedule
/// let both refills bank the interval (or one refill bank it twice),
/// both grabs would fit and the model fails. The winner's refund must
/// then restore the balance exactly.
fn token_bucket_interval_race() {
    // Rate 600 b/s, depth 1000 bits, flow cost 500 bits. Drain the
    // initial depth at t=0 (no elapsed time, so no refill), leaving
    // an empty bucket whose only future credit is elapsed time.
    let tb = Arc::new(TokenBucketStage::new(600.0, 1000.0, &[500.0]));
    assert!(tb.admit_n(0, 2, 0.0), "full depth-1000 bucket holds 2×500");
    assert_eq!(tb.tokens_bits(0), 0.0, "pre-drain must empty the bucket");

    // At t=1.0 the interval [0, 1] is worth one credit of 600 bits:
    // exactly one 500-bit grab fits. Two winners would mean the
    // interval was credited twice (1200 banked).
    let tb2 = Arc::clone(&tb);
    let rival = uba_loom::thread::spawn(move || tb2.admit_n(0, 1, 1.0));
    let mine = tb.admit_n(0, 1, 1.0);
    let theirs = rival.join().unwrap();
    assert!(
        !(mine && theirs),
        "a 600-bit refill interval was credited twice (two 500-bit grabs won)"
    );
    assert!(
        mine || theirs,
        "600 banked bits must admit one 500-bit flow"
    );
    let left = tb.tokens_bits(0);
    assert!(
        (left - 100.0).abs() < 1e-9,
        "one credit minus one grab must leave 100 bits, got {left}"
    );
    // The winner's refund restores the balance exactly (a rejected
    // later stage or backend must leave no residue in the bucket).
    tb.refund_n(0, 1);
    let back = tb.tokens_bits(0);
    assert!(
        (back - 600.0).abs() < 1e-9,
        "refund must restore the grab exactly, got {back}"
    );
}

#[test]
fn token_bucket_refill_racing_admits_never_credits_an_interval_twice() {
    assert_complete(flagship().check(token_bucket_interval_race));
}

/// The same race under weak memory must actually *exercise* stale
/// visibility: the stage's Acquire/Relaxed loads observe old stores in
/// some schedules (the telemetry proves it), and the interval still
/// cannot be credited twice — the CAS interval claim reads the newest
/// store in the modification order by construction, so correctness
/// never depended on silent `SeqCst` upgrades.
#[test]
fn token_bucket_refill_survives_stale_visibility() {
    let explored = flagship().check(token_bucket_interval_race);
    assert!(explored.complete, "truncated: {explored:?}");
    assert!(
        explored.stale_reads > 0,
        "weak-memory mode must exercise stale loads: {explored:?}"
    );
}

// --- Model 4: trace ring integrity -----------------------------------

/// Concurrent emits and a racing drain: every event comes out exactly
/// once and bitwise-whole (fields of the two writers are never mixed),
/// regardless of where the drain lands between the publishes.
#[test]
fn trace_ring_never_tears_an_event_under_publish_drain() {
    assert_complete(bounds().check(|| {
        let t = Arc::new(Tracer::with_capacity(4));
        t.set_enabled(true);
        let t1 = Arc::clone(&t);
        let a = uba_loom::thread::spawn(move || {
            t1.emit(EventKind::Admit, 1, 1, 7, 1.5, 2.5);
        });
        let t2 = Arc::clone(&t);
        let b = uba_loom::thread::spawn(move || {
            t2.emit(EventKind::Release, 2, 2, 8, 10.5, 20.5);
        });
        let mid = t.drain(); // races both emits
        a.join().unwrap();
        b.join().unwrap();
        let last = t.drain();

        let mut seen = 0usize;
        for ev in mid.events.iter().chain(last.events.iter()) {
            match ev.flow {
                1 => assert_eq!(
                    (ev.kind, ev.class, ev.server, ev.a, ev.b),
                    (EventKind::Admit, 1, 7, 1.5, 2.5),
                    "torn event: {ev:?}"
                ),
                2 => assert_eq!(
                    (ev.kind, ev.class, ev.server, ev.a, ev.b),
                    (EventKind::Release, 2, 8, 10.5, 20.5),
                    "torn event: {ev:?}"
                ),
                _ => panic!("event from nowhere: {ev:?}"),
            }
            seen += 1;
        }
        assert_eq!(seen, 2, "each emitted event surfaces exactly once");
        assert_eq!(mid.dropped + last.dropped, 0);
    }));
}
