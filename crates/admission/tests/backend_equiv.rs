//! Backend equivalence: the budget-striping `ShardedBackend` must make
//! exactly the decisions the CAS-counter `AtomicBackend` makes.
//!
//! Sharding only spreads *where* headroom lives — borrow-from-neighbor
//! guarantees an admission succeeds iff the summed headroom fits the
//! rate, which is the single-cell criterion. These tests drive identical
//! deterministic admit/release sequences (SplitMix64) through
//! controllers on both backends over real topologies (the paper's MCI
//! backbone and a ring) and require decision-for-decision agreement.
//!
//! The batched fast path is held to the same bar: `try_admit_batch` must
//! be decision-equivalent to one-by-one admission (the aggregate fitting
//! is order-independent; the fallback replays the sequential walk), and
//! sharded batches must never admit a flow the atomic backend rejects.

use uba_admission::{AdmissionController, BackendKind, FlowHandle, FlowSpec, Reject, RoutingTable};
use uba_graph::Digraph;
use uba_obs::SplitMix64;
use uba_routing::{all_ordered_pairs, sp_selection, Pair};
use uba_traffic::{ClassId, ClassSet, TrafficClass};

fn controller_on(
    g: &Digraph,
    pairs: &[Pair],
    alpha: f64,
    kind: BackendKind,
) -> AdmissionController {
    let paths = sp_selection(g, pairs).expect("topology is connected");
    let mut table = RoutingTable::new();
    for p in &paths {
        table.insert(ClassId(0), p);
    }
    let classes = ClassSet::single(TrafficClass::voip());
    let caps = vec![1e6; g.edge_count()];
    AdmissionController::with_backend(table, &classes, &caps, &[alpha], kind)
}

/// Drives `arrivals` seeded admit/release steps and returns the decision
/// sequence. Mirrors the churn driver's shape: each arrival admits one
/// random pair, and each admitted flow is dropped after a random number
/// of later arrivals, so the workload crosses in and out of saturation.
fn decision_sequence(
    ctrl: &AdmissionController,
    pairs: &[Pair],
    seed: u64,
    arrivals: usize,
) -> Vec<bool> {
    let mut rng = SplitMix64::new(seed);
    let mut held: Vec<(usize, uba_admission::FlowHandle)> = Vec::new();
    let mut decisions = Vec::with_capacity(arrivals);
    for step in 0..arrivals {
        // Departures scheduled before this step. Long lifetimes
        // (uniform 1..=512 arrivals) let the held population grow enough
        // to saturate links even on the large MCI topology.
        held.retain(|(deadline, _)| *deadline > step);
        let p = pairs[(rng.next_u64() as usize) % pairs.len()];
        let lifetime = 1 + (rng.next_u64() % 512) as usize;
        match ctrl.try_admit(ClassId(0), p.src, p.dst) {
            Ok(h) => {
                decisions.push(true);
                held.push((step + lifetime, h));
            }
            Err(_) => decisions.push(false),
        }
    }
    decisions
}

fn assert_equivalent(g: &Digraph, name: &str) {
    let pairs = all_ordered_pairs(g);
    // Low alpha saturates links quickly, so the sequence contains real
    // rejections, not just a stream of accepts.
    for seed in [7, 42, 1234] {
        let atomic = controller_on(g, &pairs, 0.2, BackendKind::Atomic);
        let sharded = controller_on(g, &pairs, 0.2, BackendKind::Sharded(4));
        let a = decision_sequence(&atomic, &pairs, seed, 2_000);
        let s = decision_sequence(&sharded, &pairs, seed, 2_000);
        assert!(a.iter().any(|&d| d), "{name}/{seed}: no admissions");
        assert!(a.iter().any(|&d| !d), "{name}/{seed}: no rejections");
        assert_eq!(a, s, "{name}/{seed}: backends disagreed");
    }
}

/// The same churn workload as [`decision_sequence`], but arrivals come
/// in seeded batches of 1–8 and `admit` decides how a batch is admitted
/// (batched or one-by-one) — the RNG draws are identical either way, so
/// two drivers over the same seed see the same flows with the same
/// lifetimes.
fn batched_decision_sequence<F>(
    ctrl: &AdmissionController,
    pairs: &[Pair],
    seed: u64,
    arrivals: usize,
    admit: F,
) -> Vec<bool>
where
    F: Fn(&AdmissionController, &[FlowSpec]) -> Vec<Result<FlowHandle, Reject>>,
{
    let mut rng = SplitMix64::new(seed);
    let mut held: Vec<(usize, FlowHandle)> = Vec::new();
    let mut decisions = Vec::with_capacity(arrivals);
    let mut step = 0usize;
    while step < arrivals {
        held.retain(|(deadline, _)| *deadline > step);
        let batch = (1 + (rng.next_u64() % 8) as usize).min(arrivals - step);
        let specs: Vec<FlowSpec> = (0..batch)
            .map(|_| {
                let p = pairs[(rng.next_u64() as usize) % pairs.len()];
                FlowSpec {
                    class: ClassId(0),
                    src: p.src,
                    dst: p.dst,
                }
            })
            .collect();
        let lifetimes: Vec<usize> = (0..batch)
            .map(|_| 1 + (rng.next_u64() % 512) as usize)
            .collect();
        for (i, r) in admit(ctrl, &specs).into_iter().enumerate() {
            match r {
                Ok(h) => {
                    decisions.push(true);
                    held.push((step + lifetimes[i], h));
                }
                Err(_) => decisions.push(false),
            }
        }
        step += batch;
    }
    decisions
}

fn admit_batched(c: &AdmissionController, specs: &[FlowSpec]) -> Vec<Result<FlowHandle, Reject>> {
    c.try_admit_batch(specs).flows
}

fn admit_one_by_one(
    c: &AdmissionController,
    specs: &[FlowSpec],
) -> Vec<Result<FlowHandle, Reject>> {
    specs
        .iter()
        .map(|s| c.try_admit(s.class, s.src, s.dst))
        .collect()
}

/// Batch admission is decision-equivalent to admitting the same flows
/// one by one on the atomic backend: the aggregated fast path admits a
/// batch iff the sequential walk would have admitted every flow, and the
/// fallback replays the sequential walk exactly — so the per-flow
/// decision sequences are identical through saturation churn.
#[test]
fn batch_matches_sequential_on_atomic() {
    for (g, name) in [
        (uba_topology::mci(), "mci"),
        (uba_topology::ring(8), "ring"),
    ] {
        let pairs = all_ordered_pairs(&g);
        for seed in [7, 42] {
            let batched = controller_on(&g, &pairs, 0.2, BackendKind::Atomic);
            let sequential = controller_on(&g, &pairs, 0.2, BackendKind::Atomic);
            let b = batched_decision_sequence(&batched, &pairs, seed, 2_000, admit_batched);
            let s = batched_decision_sequence(&sequential, &pairs, seed, 2_000, admit_one_by_one);
            assert!(b.iter().any(|&d| d), "{name}/{seed}: no admissions");
            assert!(b.iter().any(|&d| !d), "{name}/{seed}: no rejections");
            assert_eq!(b, s, "{name}/{seed}: batch disagreed with sequential");
        }
    }
}

/// A batch the fast path admits is order-independent: the same flows
/// admitted one by one succeed in forward *and* reverse order (the
/// aggregate fitting every touched cell is a symmetric condition).
#[test]
fn fast_path_batches_admit_in_either_order() {
    let g = uba_topology::ring(8);
    let pairs = all_ordered_pairs(&g);
    // alpha 0.2 on 1 Mb/s = 6 voip flows per link; a 6-flow batch of
    // mixed pairs fits from empty.
    let specs: Vec<FlowSpec> = (0..6)
        .map(|i| {
            let p = pairs[(i * 5) % pairs.len()];
            FlowSpec {
                class: ClassId(0),
                src: p.src,
                dst: p.dst,
            }
        })
        .collect();
    let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Atomic);
    let out = ctrl.try_admit_batch(&specs);
    assert!(
        out.fast_path,
        "6 flows against empty budgets must fast-path"
    );
    assert_eq!(out.admitted(), specs.len());
    drop(out);
    for reverse in [false, true] {
        let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Atomic);
        let mut order = specs.clone();
        if reverse {
            order.reverse();
        }
        let handles = admit_one_by_one(&ctrl, &order);
        assert!(
            handles.iter().all(Result::is_ok),
            "sequential admit (reverse={reverse}) must admit the whole fast-path batch"
        );
    }
}

/// Single-threaded, sharded batch admission makes exactly the atomic
/// backend's decisions — in particular it never admits a flow the atomic
/// backend would reject (the containment direction of the equivalence).
#[test]
fn sharded_batch_never_admits_what_atomic_rejects() {
    let g = uba_topology::ring(6);
    let pairs = all_ordered_pairs(&g);
    let reference = {
        let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Atomic);
        batched_decision_sequence(&ctrl, &pairs, 99, 1_500, admit_batched)
    };
    assert!(reference.iter().any(|&d| !d), "workload must saturate");
    for shards in [1, 4, 16] {
        let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Sharded(shards));
        let got = batched_decision_sequence(&ctrl, &pairs, 99, 1_500, admit_batched);
        assert_eq!(got, reference, "{shards}-shard batch disagreed with atomic");
    }
}

#[test]
fn sharded_matches_atomic_on_mci() {
    assert_equivalent(&uba_topology::mci(), "mci");
}

#[test]
fn sharded_matches_atomic_on_ring() {
    assert_equivalent(&uba_topology::ring(8), "ring");
}

#[test]
fn sharded_matches_atomic_across_shard_counts() {
    let g = uba_topology::ring(6);
    let pairs = all_ordered_pairs(&g);
    let reference = {
        let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Atomic);
        decision_sequence(&ctrl, &pairs, 99, 1_000)
    };
    for shards in [1, 2, 3, 8, 16] {
        let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Sharded(shards));
        let got = decision_sequence(&ctrl, &pairs, 99, 1_000);
        assert_eq!(got, reference, "{shards} shards disagreed with atomic");
    }
}
