//! Backend equivalence: the budget-striping `ShardedBackend` must make
//! exactly the decisions the CAS-counter `AtomicBackend` makes.
//!
//! Sharding only spreads *where* headroom lives — borrow-from-neighbor
//! guarantees an admission succeeds iff the summed headroom fits the
//! rate, which is the single-cell criterion. These tests drive identical
//! deterministic admit/release sequences (SplitMix64) through
//! controllers on both backends over real topologies (the paper's MCI
//! backbone and a ring) and require decision-for-decision agreement.

use uba_admission::{AdmissionController, BackendKind, RoutingTable};
use uba_graph::Digraph;
use uba_obs::SplitMix64;
use uba_routing::{all_ordered_pairs, sp_selection, Pair};
use uba_traffic::{ClassId, ClassSet, TrafficClass};

fn controller_on(g: &Digraph, pairs: &[Pair], alpha: f64, kind: BackendKind) -> AdmissionController {
    let paths = sp_selection(g, pairs).expect("topology is connected");
    let mut table = RoutingTable::new();
    for p in &paths {
        table.insert(ClassId(0), p);
    }
    let classes = ClassSet::single(TrafficClass::voip());
    let caps = vec![1e6; g.edge_count()];
    AdmissionController::with_backend(table, &classes, &caps, &[alpha], kind)
}

/// Drives `arrivals` seeded admit/release steps and returns the decision
/// sequence. Mirrors the churn driver's shape: each arrival admits one
/// random pair, and each admitted flow is dropped after a random number
/// of later arrivals, so the workload crosses in and out of saturation.
fn decision_sequence(ctrl: &AdmissionController, pairs: &[Pair], seed: u64, arrivals: usize) -> Vec<bool> {
    let mut rng = SplitMix64::new(seed);
    let mut held: Vec<(usize, uba_admission::FlowHandle)> = Vec::new();
    let mut decisions = Vec::with_capacity(arrivals);
    for step in 0..arrivals {
        // Departures scheduled before this step. Long lifetimes
        // (uniform 1..=512 arrivals) let the held population grow enough
        // to saturate links even on the large MCI topology.
        held.retain(|(deadline, _)| *deadline > step);
        let p = pairs[(rng.next_u64() as usize) % pairs.len()];
        let lifetime = 1 + (rng.next_u64() % 512) as usize;
        match ctrl.try_admit(ClassId(0), p.src, p.dst) {
            Ok(h) => {
                decisions.push(true);
                held.push((step + lifetime, h));
            }
            Err(_) => decisions.push(false),
        }
    }
    decisions
}

fn assert_equivalent(g: &Digraph, name: &str) {
    let pairs = all_ordered_pairs(g);
    // Low alpha saturates links quickly, so the sequence contains real
    // rejections, not just a stream of accepts.
    for seed in [7, 42, 1234] {
        let atomic = controller_on(g, &pairs, 0.2, BackendKind::Atomic);
        let sharded = controller_on(g, &pairs, 0.2, BackendKind::Sharded(4));
        let a = decision_sequence(&atomic, &pairs, seed, 2_000);
        let s = decision_sequence(&sharded, &pairs, seed, 2_000);
        assert!(a.iter().any(|&d| d), "{name}/{seed}: no admissions");
        assert!(a.iter().any(|&d| !d), "{name}/{seed}: no rejections");
        assert_eq!(a, s, "{name}/{seed}: backends disagreed");
    }
}

#[test]
fn sharded_matches_atomic_on_mci() {
    assert_equivalent(&uba_topology::mci(), "mci");
}

#[test]
fn sharded_matches_atomic_on_ring() {
    assert_equivalent(&uba_topology::ring(8), "ring");
}

#[test]
fn sharded_matches_atomic_across_shard_counts() {
    let g = uba_topology::ring(6);
    let pairs = all_ordered_pairs(&g);
    let reference = {
        let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Atomic);
        decision_sequence(&ctrl, &pairs, 99, 1_000)
    };
    for shards in [1, 2, 3, 8, 16] {
        let ctrl = controller_on(&g, &pairs, 0.2, BackendKind::Sharded(shards));
        let got = decision_sequence(&ctrl, &pairs, 99, 1_000);
        assert_eq!(got, reference, "{shards} shards disagreed with atomic");
    }
}
