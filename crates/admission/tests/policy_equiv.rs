//! Policy-pipeline equivalence: a `Static` (utilization-only) chain
//! must make exactly the decisions the pre-refactor controller made.
//!
//! The composable `PolicyChain` threads every admission through zero or
//! more shaping stages before the backend reservation. The refactor's
//! safety bar (ISSUE 9, ROADMAP item 2) is that the empty chain is a
//! true no-op: a controller built through the policy-aware constructor
//! with `PolicyChain::static_only()` is decision-for-decision identical
//! to the default constructor — per-flow and batched, on both backends,
//! over real topologies, through saturation churn — and leaves bitwise
//! identical reservation state behind. A `Static` chain also never
//! reads any clock, so the `_at` variants with arbitrary timestamps
//! must match the clockless calls exactly.
//!
//! The last test is the non-vacuity check: a chain with a real shaping
//! stage *does* diverge on the same workload, so these assertions are
//! capable of failing.

use uba_admission::{
    AdmissionController, BackendKind, ConfigGeneration, FlowHandle, FlowSpec, PolicyChain, Reject,
    RoutingTable, TokenBucketStage,
};
use uba_graph::Digraph;
use uba_obs::SplitMix64;
use uba_routing::{all_ordered_pairs, sp_selection, Pair};
use uba_traffic::{ClassId, ClassSet, TrafficClass};

const ALPHA: f64 = 0.2;

fn generation(
    g: &Digraph,
    pairs: &[Pair],
    kind: BackendKind,
    chain: PolicyChain,
) -> ConfigGeneration {
    let paths = sp_selection(g, pairs).expect("topology is connected");
    let mut table = RoutingTable::new();
    for p in &paths {
        table.insert(ClassId(0), p);
    }
    let classes = ClassSet::single(TrafficClass::voip());
    let caps = vec![1e6; g.edge_count()];
    ConfigGeneration::with_policy(table, &classes, &caps, &[ALPHA], kind, chain)
}

/// The pre-refactor construction path: no mention of policy anywhere.
fn prerefactor(g: &Digraph, pairs: &[Pair], kind: BackendKind) -> AdmissionController {
    let paths = sp_selection(g, pairs).expect("topology is connected");
    let mut table = RoutingTable::new();
    for p in &paths {
        table.insert(ClassId(0), p);
    }
    let classes = ClassSet::single(TrafficClass::voip());
    let caps = vec![1e6; g.edge_count()];
    AdmissionController::with_backend(table, &classes, &caps, &[ALPHA], kind)
}

fn static_chain(g: &Digraph, pairs: &[Pair], kind: BackendKind) -> AdmissionController {
    AdmissionController::from_generation(generation(g, pairs, kind, PolicyChain::static_only()))
}

/// Seeded saturation churn via a caller-chosen admit function; returns
/// the decision sequence. Identical RNG draws regardless of how `admit`
/// decides, so two drivers over one seed see the same flows.
fn drive<F>(
    ctrl: &AdmissionController,
    pairs: &[Pair],
    seed: u64,
    arrivals: usize,
    admit: F,
) -> Vec<bool>
where
    F: Fn(
        &AdmissionController,
        ClassId,
        uba_graph::NodeId,
        uba_graph::NodeId,
        usize,
    ) -> Result<FlowHandle, Reject>,
{
    let mut rng = SplitMix64::new(seed);
    let mut held: Vec<(usize, FlowHandle)> = Vec::new();
    let mut decisions = Vec::with_capacity(arrivals);
    for step in 0..arrivals {
        held.retain(|(deadline, _)| *deadline > step);
        let p = pairs[(rng.next_u64() as usize) % pairs.len()];
        let lifetime = 1 + (rng.next_u64() % 512) as usize;
        match admit(ctrl, ClassId(0), p.src, p.dst, step) {
            Ok(h) => {
                decisions.push(true);
                held.push((step + lifetime, h));
            }
            Err(_) => decisions.push(false),
        }
    }
    decisions
}

/// Batched churn: seeded batches of 1–8 through `try_admit_batch` (or
/// the `_at` variant when `t` is given).
fn drive_batched(
    ctrl: &AdmissionController,
    pairs: &[Pair],
    seed: u64,
    arrivals: usize,
    t: Option<f64>,
) -> Vec<bool> {
    let mut rng = SplitMix64::new(seed);
    let mut held: Vec<(usize, FlowHandle)> = Vec::new();
    let mut decisions = Vec::with_capacity(arrivals);
    let mut step = 0usize;
    while step < arrivals {
        held.retain(|(deadline, _)| *deadline > step);
        let batch = (1 + (rng.next_u64() % 8) as usize).min(arrivals - step);
        let specs: Vec<FlowSpec> = (0..batch)
            .map(|_| {
                let p = pairs[(rng.next_u64() as usize) % pairs.len()];
                FlowSpec {
                    class: ClassId(0),
                    src: p.src,
                    dst: p.dst,
                }
            })
            .collect();
        let lifetimes: Vec<usize> = (0..batch)
            .map(|_| 1 + (rng.next_u64() % 512) as usize)
            .collect();
        let out = match t {
            Some(t) => ctrl.try_admit_batch_at(&specs, t),
            None => ctrl.try_admit_batch(&specs),
        };
        for (i, r) in out.flows.into_iter().enumerate() {
            match r {
                Ok(h) => {
                    decisions.push(true);
                    held.push((step + lifetimes[i], h));
                }
                Err(_) => decisions.push(false),
            }
        }
        step += batch;
    }
    decisions
}

fn topologies() -> Vec<(Digraph, &'static str)> {
    vec![
        (uba_topology::mci(), "mci"),
        (uba_topology::ring(8), "ring"),
    ]
}

const BACKENDS: [BackendKind; 2] = [BackendKind::Atomic, BackendKind::Sharded(4)];

/// Per-flow: the `Static` chain is decision-identical to the
/// pre-refactor controller and leaves identical occupancy behind.
#[test]
fn static_chain_matches_prerefactor_per_flow() {
    for (g, name) in topologies() {
        let pairs = all_ordered_pairs(&g);
        for kind in BACKENDS {
            for seed in [7, 42] {
                let old = prerefactor(&g, &pairs, kind);
                let new = static_chain(&g, &pairs, kind);
                let a = drive(&old, &pairs, seed, 2_000, |c, cl, s, d, _| {
                    c.try_admit(cl, s, d)
                });
                let b = drive(&new, &pairs, seed, 2_000, |c, cl, s, d, _| {
                    c.try_admit(cl, s, d)
                });
                assert!(
                    a.iter().any(|&d| d),
                    "{name}/{kind:?}/{seed}: no admissions"
                );
                assert!(
                    a.iter().any(|&d| !d),
                    "{name}/{kind:?}/{seed}: no rejections"
                );
                assert_eq!(a, b, "{name}/{kind:?}/{seed}: static chain diverged");
                assert_eq!(
                    old.occupancy_snapshot(ClassId(0)),
                    new.occupancy_snapshot(ClassId(0)),
                    "{name}/{kind:?}/{seed}: residual occupancy diverged"
                );
            }
        }
    }
}

/// Batched: the aggregated fast path and its fallback agree with the
/// pre-refactor controller under a `Static` chain.
#[test]
fn static_chain_matches_prerefactor_batched() {
    for (g, name) in topologies() {
        let pairs = all_ordered_pairs(&g);
        for kind in BACKENDS {
            let old = prerefactor(&g, &pairs, kind);
            let new = static_chain(&g, &pairs, kind);
            let a = drive_batched(&old, &pairs, 99, 2_000, None);
            let b = drive_batched(&new, &pairs, 99, 2_000, None);
            assert!(
                a.iter().any(|&d| !d),
                "{name}/{kind:?}: workload must saturate"
            );
            assert_eq!(a, b, "{name}/{kind:?}: static chain diverged on batches");
            assert_eq!(
                old.occupancy_snapshot(ClassId(0)),
                new.occupancy_snapshot(ClassId(0)),
                "{name}/{kind:?}: residual occupancy diverged"
            );
        }
    }
}

/// A `Static` chain never consults the decision clock: driving the `_at`
/// variants with hostile timestamps (zero, huge, even going backwards)
/// changes nothing against the clockless calls.
#[test]
fn static_chain_ignores_the_decision_clock() {
    let g = uba_topology::ring(8);
    let pairs = all_ordered_pairs(&g);
    let reference = {
        let ctrl = static_chain(&g, &pairs, BackendKind::Atomic);
        drive(&ctrl, &pairs, 7, 1_500, |c, cl, s, d, _| {
            c.try_admit(cl, s, d)
        })
    };
    // Timestamps that would wreck any stage actually reading them:
    // alternating between a huge future and far past per call.
    let hostile = {
        let ctrl = static_chain(&g, &pairs, BackendKind::Atomic);
        drive(&ctrl, &pairs, 7, 1_500, |c, cl, s, d, step| {
            let t = if step % 2 == 0 { 1e12 } else { -1e12 };
            c.try_admit_at(cl, s, d, t)
        })
    };
    assert_eq!(reference, hostile, "static chain read the clock");

    let batch_ref = {
        let ctrl = static_chain(&g, &pairs, BackendKind::Atomic);
        drive_batched(&ctrl, &pairs, 99, 1_500, None)
    };
    let batch_at = {
        let ctrl = static_chain(&g, &pairs, BackendKind::Atomic);
        drive_batched(&ctrl, &pairs, 99, 1_500, Some(1e12))
    };
    assert_eq!(batch_ref, batch_at, "static batch path read the clock");
}

/// Non-vacuity: a chain with a real shaping stage diverges on exactly
/// this workload, and the divergence is all in the shaped direction
/// (the shaped controller admits a subset, never an extra flow).
#[test]
fn shaped_chain_actually_diverges() {
    let g = uba_topology::ring(8);
    let pairs = all_ordered_pairs(&g);
    let reference = {
        let ctrl = static_chain(&g, &pairs, BackendKind::Atomic);
        drive(&ctrl, &pairs, 7, 1_000, |c, cl, s, d, _| {
            c.try_admit(cl, s, d)
        })
    };
    // One flow of depth, no refill at a frozen t=0: after the first
    // admission every later request hits the bucket.
    let rate = TrafficClass::voip().bucket.rate;
    let mut chain = PolicyChain::static_only();
    chain.push(Box::new(TokenBucketStage::new(0.0, rate, &[rate])));
    let shaped = {
        let ctrl = AdmissionController::from_generation(generation(
            &g,
            &pairs,
            BackendKind::Atomic,
            chain,
        ));
        drive(&ctrl, &pairs, 7, 1_000, |c, cl, s, d, _| {
            c.try_admit_at(cl, s, d, 0.0)
        })
    };
    assert_ne!(reference, shaped, "shaping stage had no effect");
    let extra = reference
        .iter()
        .zip(&shaped)
        .filter(|(r, s)| **s && !**r)
        .count();
    assert_eq!(
        extra, 0,
        "shaped chain admitted flows the static chain rejected"
    );
    assert_eq!(
        shaped.iter().filter(|&&d| d).count(),
        1,
        "depth-one bucket with no refill must admit exactly one flow"
    );
}
