//! Model-based fuzzing of the lock-free admission controller: random
//! admit/release sequences must agree decision-for-decision with a
//! straightforward single-threaded reference model.

// Gated behind the non-default `prop-tests` feature: the `proptest`
// dev-dependency is not declared so the default build stays hermetic
// (offline, no registry). To run: re-add `proptest = "1"` under
// [dev-dependencies] and `cargo test --features prop-tests`.
#![cfg(feature = "prop-tests")]

use proptest::prelude::*;
use uba_admission::{AdmissionController, RoutingTable};
use uba_graph::{Digraph, NodeId, Path};
use uba_traffic::{ClassId, ClassSet, TrafficClass};

/// Reference: plain per-link accounting with f64s.
struct Reference {
    budget: f64,
    rate: f64,
    reserved: Vec<f64>,
    routes: Vec<Vec<usize>>,
}

impl Reference {
    fn admit(&mut self, route_idx: usize) -> bool {
        let route = &self.routes[route_idx];
        if route
            .iter()
            .all(|&k| self.reserved[k] + self.rate <= self.budget + 1e-6)
        {
            for &k in route {
                self.reserved[k] += self.rate;
            }
            true
        } else {
            false
        }
    }

    fn release(&mut self, route_idx: usize) {
        for &k in &self.routes[route_idx] {
            self.reserved[k] -= self.rate;
        }
    }
}

/// A line topology with three overlapping routes.
fn setup(alpha: f64) -> (AdmissionController, Reference, Vec<(NodeId, NodeId)>) {
    let mut g = Digraph::with_nodes(4);
    let (e01, _) = g.add_link(NodeId(0), NodeId(1), 1.0);
    let (e12, _) = g.add_link(NodeId(1), NodeId(2), 1.0);
    let (e23, _) = g.add_link(NodeId(2), NodeId(3), 1.0);
    let mut table = RoutingTable::new();
    let paths = [
        Path::from_edges(&g, vec![e01, e12, e23]), // 0 -> 3
        Path::from_edges(&g, vec![e12, e23]),      // 1 -> 3
        Path::from_edges(&g, vec![e23]),           // 2 -> 3
    ];
    for p in &paths {
        table.insert(ClassId(0), p);
    }
    let classes = ClassSet::single(TrafficClass::voip());
    let caps = vec![1e6; g.edge_count()];
    let ctrl = AdmissionController::new(table, &classes, &caps, &[alpha]);
    let reference = Reference {
        budget: alpha * 1e6,
        rate: 32_000.0,
        reserved: vec![0.0; g.edge_count()],
        routes: paths
            .iter()
            .map(|p| p.edges.iter().map(|e| e.index()).collect())
            .collect(),
    };
    let endpoints = paths
        .iter()
        .map(|p| (p.source().unwrap(), p.target().unwrap()))
        .collect();
    (ctrl, reference, endpoints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ops: (route 0..3, action admit/release-oldest).
    #[test]
    fn controller_agrees_with_reference(
        alpha in 0.05f64..0.6,
        ops in proptest::collection::vec((0usize..3, any::<bool>()), 1..200),
    ) {
        let (ctrl, mut reference, endpoints) = setup(alpha);
        // Held flows per route, parallel in both systems.
        let mut held: Vec<Vec<uba_admission::FlowHandle>> = vec![vec![], vec![], vec![]];
        let mut held_ref: Vec<usize> = vec![0; 3];
        for (route, is_admit) in ops {
            if is_admit {
                let (src, dst) = endpoints[route];
                let got = ctrl.try_admit(ClassId(0), src, dst).is_ok_and(|h| {
                    held[route].push(h);
                    true
                });
                let expect = reference.admit(route);
                prop_assert_eq!(got, expect, "divergence on admit route {}", route);
                if !expect {
                    // Keep the parallel count exact.
                } else {
                    held_ref[route] += 1;
                }
            } else if held_ref[route] > 0 {
                held[route].pop();
                reference.release(route);
                held_ref[route] -= 1;
            }
        }
        // Final per-link accounting matches.
        for k in 0..reference.reserved.len() {
            let got = ctrl.reserved(k, ClassId(0));
            prop_assert!((got - reference.reserved[k]).abs() < 1e-6,
                "link {k}: {got} vs {}", reference.reserved[k]);
        }
        // Teardown drains everything.
        drop(held);
        for k in 0..reference.reserved.len() {
            prop_assert_eq!(ctrl.reserved(k, ClassId(0)), 0.0);
        }
    }
}
