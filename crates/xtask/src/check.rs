//! The `xtask check` invariant linter.
//!
//! Walks every `.rs` file in the workspace and enforces, syntactically,
//! the concurrency and observability invariants the codebase depends on
//! (rationale for each rule: DESIGN.md §9):
//!
//! 1. **ordering-justification** — every atomic `Ordering::` stronger
//!    than `Relaxed` (`Acquire`, `Release`, `AcqRel`, `SeqCst`) must
//!    carry a `// ordering:` comment on the same line or within the few
//!    lines above it (`JUSTIFICATION_WINDOW`), explaining the
//!    happens-before edge it buys.
//! 2. **shim-purity** — the modules ported onto the loom `sync` shim
//!    must not import `std::sync::atomic` / `std::sync::Mutex` /
//!    `std::thread` directly; everything goes through `crate::sync` so
//!    `--cfg loom` swaps the whole module onto the model checker.
//! 3. **unsafe-allowlist** — `unsafe` appears only in files listed in
//!    `crates/xtask/unsafe-allowlist.txt` (currently empty: the
//!    workspace is 100% safe Rust and every crate root carries
//!    `#![forbid(unsafe_code)]`).
//! 4. **metric-manifest** — every metric name registered via
//!    `.counter("…")` / `.gauge("…")` / `.histogram("…", _)` and every
//!    trace `EventKind` name must appear in `docs/metrics-manifest.txt`
//!    (trace kinds as `trace.<name>`), so dashboards cannot silently
//!    drift from the code. `format!`-built names are matched as globs
//!    (`{…}` → `*`) against the manifest's concrete entries.
//! 5. **clock-discipline** — `Instant::now` / `SystemTime` only inside
//!    `uba-obs` (which owns the `Stopwatch`/`Span` timing surface) and
//!    `uba-bench`; everything else must take time through obs so tests
//!    and models stay deterministic.
//! 6. **parser-unwrap** — the hand-rolled parsers (`toml_lite`, obs
//!    `json`) must stay panic-free on arbitrary input: no `.unwrap()` /
//!    `.expect("…")` in their non-test code.
//! 7. **bench-smoke-wiring** — every `uba-bench` binary that implements
//!    a `"smoke"` mode must be invoked (as `--bin <name>`) by
//!    `scripts/verify.sh`, so a perf gate cannot be added and then
//!    silently left out of the verification lane. Paper-regeneration
//!    binaries without a smoke mode are exempt.
//! 8. **shared-array-padding** — a raw `AtomicU64` array indexed
//!    per-shard or per-thread (`Vec<AtomicU64>`, `Box<[AtomicU64]>`,
//!    `[AtomicU64; N]`) invites false sharing: neighbouring slots land
//!    on one cache line and every CAS bounces it between cores. Such
//!    fields must either wrap their slots in the `CachePadded` shim or
//!    carry a `// padding:` waiver comment nearby explaining why
//!    sharing is acceptable (e.g. sparse writes, or cells that are
//!    all-thread-shared by design).
//! 9. **slo-rule-manifest** — every SLO rule constructed with
//!    `SloRule::named("…", …)` publishes a `slo.<name>.state` and a
//!    `slo.<name>.value` gauge (registered by `SloEngine::new`), so
//!    both names must appear in `docs/metrics-manifest.txt`. Rule 4
//!    cannot see them: the gauges are registered from the rule's
//!    runtime name, not a literal at the `.gauge(…)` call site. The
//!    name literal is matched on the `SloRule::named(` line or within
//!    the next few lines (the rustfmt multi-line call form).
//! 10. **policy-stage-manifest** — every policy stage listed in
//!     `STAGE_NAMES` (crates/admission/src/policy.rs) gets a reject-cause
//!     counter `admission.rejects.policy.<name>` registered from its
//!     runtime name plus the shared `trace.reject_policy` tracepoint, so
//!     all of those names must appear in `docs/metrics-manifest.txt`.
//!     Like rule 9, rule 4 cannot see them: the counters come from a
//!     `format!` over the list, and the glob `admission.rejects.policy.*`
//!     would be satisfied by a single stale entry. The stage-name
//!     literals are read off the `STAGE_NAMES` declaration line or the
//!     next few lines below it (the rustfmt wrapped-array form).
//! 11. **loom-model-coverage** — every module carrying a `// ordering:`
//!     justification (rule 1) must be mapped in `docs/loom-models.txt`
//!     to a `#![cfg(loom)]` model file that checks it under the
//!     weak-memory model checker. Rule 1 makes the author *write down*
//!     the happens-before claim; this rule makes a machine check of
//!     that claim exist — under a checker where a too-weak ordering
//!     actually fails instead of being silently upgraded. The map is
//!     verified in both directions: a justified module with no entry
//!     fails, and so does a stale entry whose module no longer has
//!     justifications (or whose model file is missing its `cfg(loom)`
//!     gate), so the map cannot drift from the code.
//!
//! The linter is line-based on purpose: it runs in milliseconds with no
//! dependencies, and every rule is about *local* textual discipline
//! (a justification comment, a banned import, a name literal) rather
//! than semantics. String literals and comments are stripped before
//! code-pattern rules run, so `"delay.verify.unsafe"` is not an
//! `unsafe` block and a doc-comment mentioning `std::thread` is not an
//! import. `#[cfg(test)]` modules and `tests/` / `benches/` trees are
//! exempt from every rule except **unsafe-allowlist**.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Summary counters printed on success.
#[derive(Debug, Default)]
pub struct Stats {
    /// Files scanned.
    pub files: usize,
    /// Non-`Relaxed` orderings found with a justification.
    pub justified_orderings: usize,
    /// Metric/trace names checked against the manifest.
    pub metric_names: usize,
    /// Modules whose ordering justifications are backed by a loom model
    /// (rule 11).
    pub loom_covered_modules: usize,
}

/// One rule violation, displayed `path:line: [rule] message`.
#[derive(Debug)]
pub struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Modules ported onto the `sync` shim (rule 2). Keep in lockstep with
/// the `pub(crate) mod sync` re-export lists in uba-admission/uba-obs.
const SHIMMED: &[&str] = &[
    "crates/admission/src/state.rs",
    "crates/admission/src/backend.rs",
    "crates/admission/src/generation.rs",
    "crates/admission/src/controller.rs",
    "crates/admission/src/policy.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/histogram.rs",
];

/// Hand-rolled parsers that must stay panic-free (rule 6).
const PARSERS: &[&str] = &["crates/cli/src/toml_lite.rs", "crates/obs/src/json.rs"];

/// The model checker and this linter are exempt from the ordering and
/// clock rules: uba-loom *implements* the atomics (its scheduler turns
/// the `Ordering` arguments into vector-clock semantics rather than
/// performing synchronizing accesses of its own) and xtask's source
/// spells out the patterns it scans for.
fn is_checker_infra(rel: &str) -> bool {
    rel.starts_with("crates/loom/") || rel.starts_with("crates/xtask/")
}

fn clock_allowed(rel: &str) -> bool {
    rel.starts_with("crates/obs/") || rel.starts_with("crates/bench/") || is_checker_infra(rel)
}

/// Test-only code: integration tests and benches get a pass on every
/// rule except the unsafe allowlist.
fn is_test_tree(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/")
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Stats, Vec<String>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    files.sort();

    let manifest = Manifest::load(&root.join("docs/metrics-manifest.txt"));
    let allowlist = load_allowlist(&root.join("crates/xtask/unsafe-allowlist.txt"));

    let mut stats = Stats::default();
    let mut violations: Vec<Violation> = Vec::new();
    if manifest.is_none() {
        violations.push(Violation {
            file: "docs/metrics-manifest.txt".into(),
            line: 0,
            rule: "metric-manifest",
            msg: "manifest file missing (regenerate with `uba-cli metrics --json`, see README)"
                .into(),
        });
    }
    let manifest = manifest.unwrap_or_default();

    let verify_sh = fs::read_to_string(root.join("scripts/verify.sh")).unwrap_or_default();
    let mut justified_modules: Vec<String> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        stats.files += 1;
        lint_file(
            &rel,
            &source,
            &manifest,
            &allowlist,
            &mut violations,
            &mut stats,
        );
        // Rule 7: bench smoke gates must be wired into the verify lane.
        if let Some(v) = check_bench_wiring(&rel, &source, &verify_sh) {
            violations.push(v);
        }
        if has_ordering_notes(&rel, &source) {
            justified_modules.push(rel);
        }
    }

    // Rule 11: ordering justifications must be backed by loom models.
    let loom_map = LoomMap::load(&root.join("docs/loom-models.txt"));
    let coverage = check_loom_coverage(&justified_modules, &loom_map, &mut stats, |model| {
        fs::read_to_string(root.join(model))
            .ok()
            .map(|src| src.contains("cfg(loom)"))
    });
    violations.extend(coverage);

    if violations.is_empty() {
        Ok(stats)
    } else {
        Err(violations.iter().map(|v| v.to_string()).collect())
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn load_allowlist(path: &Path) -> BTreeSet<String> {
    fs::read_to_string(path)
        .map(|text| {
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect()
        })
        .unwrap_or_default()
}

/// The checked-in metric-name manifest: one concrete name per line,
/// `#` comments and blanks ignored.
#[derive(Debug, Default)]
pub struct Manifest {
    names: Vec<String>,
}

impl Manifest {
    fn load(path: &Path) -> Option<Self> {
        let text = fs::read_to_string(path).ok()?;
        Some(Self::from_text(&text))
    }

    /// Parses manifest text (used directly by tests).
    pub fn from_text(text: &str) -> Self {
        Self {
            names: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(String::from)
                .collect(),
        }
    }

    /// Whether `pattern` (a metric name, possibly with `*` globs from a
    /// `format!` template) matches at least one manifest entry.
    pub fn covers(&self, pattern: &str) -> bool {
        self.names.iter().any(|n| glob_match(pattern, n))
    }
}

/// `*` matches any (possibly empty) substring; everything else literal.
fn glob_match(pattern: &str, text: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == text,
        Some((prefix, rest)) => {
            if !text.starts_with(prefix) {
                return false;
            }
            let tail = &text[prefix.len()..];
            (0..=tail.len()).any(|i| glob_match(rest, &tail[i..]))
        }
    }
}

/// The checked-in `docs/loom-models.txt` map for rule 11: one
/// `<module> -> <model file>` pair per line, `#` comments and blanks
/// ignored. `None` means the file itself is missing.
#[derive(Debug, Default)]
pub struct LoomMap {
    entries: Vec<(String, String)>,
    present: bool,
}

impl LoomMap {
    fn load(path: &Path) -> Self {
        fs::read_to_string(path)
            .map(|text| Self::from_text(&text))
            .unwrap_or_default()
    }

    /// Parses map text (used directly by tests).
    pub fn from_text(text: &str) -> Self {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let (module, model) = l.split_once("->")?;
                Some((module.trim().to_string(), model.trim().to_string()))
            })
            .collect();
        Self {
            entries,
            present: true,
        }
    }

    fn model_for(&self, module: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(m, _)| m == module)
            .map(|(_, model)| model.as_str())
    }
}

/// Whether a module's non-test code carries at least one `// ordering:`
/// justification — the trigger for rule 11. Checker infrastructure and
/// test trees are exempt, mirroring rule 1.
fn has_ordering_notes(rel: &str, source: &str) -> bool {
    if is_checker_infra(rel) || is_test_tree(rel) {
        return false;
    }
    let lines = strip(source);
    let boundary = test_boundary(&lines);
    lines[..boundary]
        .iter()
        .any(|l| l.comment.contains("ordering:"))
}

/// Rule 11 proper, factored over an injectable model-file probe (tests
/// substitute a closure for the filesystem): `probe(model)` returns
/// `Some(has_cfg_loom_gate)` if the model file exists. Checks both
/// directions — justified modules must be mapped to a live `cfg(loom)`
/// model, and every map entry must still correspond to a justified
/// module.
fn check_loom_coverage(
    justified: &[String],
    map: &LoomMap,
    stats: &mut Stats,
    probe: impl Fn(&str) -> Option<bool>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if !map.present && !justified.is_empty() {
        violations.push(Violation {
            file: "docs/loom-models.txt".into(),
            line: 0,
            rule: "loom-model-coverage",
            msg: format!(
                "map file missing but {} module(s) carry `// ordering:` justifications",
                justified.len()
            ),
        });
        return violations;
    }
    for module in justified {
        match map.model_for(module) {
            None => violations.push(Violation {
                file: module.clone(),
                line: 0,
                rule: "loom-model-coverage",
                msg: "module has `// ordering:` justifications but no model entry in \
                      docs/loom-models.txt"
                    .into(),
            }),
            Some(model) => match probe(model) {
                None => violations.push(Violation {
                    file: "docs/loom-models.txt".into(),
                    line: 0,
                    rule: "loom-model-coverage",
                    msg: format!("model file `{model}` (covering `{module}`) does not exist"),
                }),
                Some(false) => violations.push(Violation {
                    file: model.to_string(),
                    line: 0,
                    rule: "loom-model-coverage",
                    msg: format!(
                        "model file for `{module}` has no `cfg(loom)` gate — it never runs \
                         under the checker"
                    ),
                }),
                Some(true) => stats.loom_covered_modules += 1,
            },
        }
    }
    for (module, _) in &map.entries {
        if !justified.iter().any(|j| j == module) {
            violations.push(Violation {
                file: "docs/loom-models.txt".into(),
                line: 0,
                rule: "loom-model-coverage",
                msg: format!(
                    "stale entry: `{module}` no longer exists or carries no `// ordering:` \
                     justifications"
                ),
            });
        }
    }
    violations
}

/// A source line split into executable code and comment text, with
/// string/char literal contents blanked out of `code`.
#[derive(Debug, Default, Clone)]
struct Line {
    code: String,
    comment: String,
}

/// Strips comments and literal contents, preserving line structure.
/// Handles `//`, nested `/* */`, `"…"` with escapes, raw strings up to
/// `r###"…"###`, and char literals (without mis-eating lifetimes).
fn strip(source: &str) -> Vec<Line> {
    let b: Vec<char> = source.chars().collect();
    let mut lines = vec![Line::default()];
    let mut i = 0;
    let push = |lines: &mut Vec<Line>| lines.push(Line::default());

    #[derive(PartialEq)]
    enum Mode {
        Code,
        Str,
        RawStr(usize),
        LineComment,
        BlockComment(usize),
    }
    let mut mode = Mode::Code;

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            push(&mut lines);
            i += 1;
            continue;
        }
        let last = lines.last_mut().expect("lines never empty");
        match mode {
            Mode::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    last.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == 'r' && matches!(b.get(i + 1), Some('"') | Some('#')) {
                    // Possible raw string: r"…" or r#"…"# (any # count).
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        last.code.push_str("r\"");
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else {
                        last.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal iff it closes as one; else a lifetime.
                    let is_char = match b.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => b.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        last.code.push_str("' '");
                        if b.get(i + 1) == Some(&'\\') {
                            // Skip to the closing quote of the escape.
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else {
                            i += 3;
                        }
                    } else {
                        last.code.push('\'');
                        i += 1;
                    }
                } else {
                    last.code.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // A string-continuation backslash escapes the
                    // newline itself; the line still has to be counted.
                    if b.get(i + 1) == Some(&'\n') {
                        push(&mut lines);
                    }
                    i += 2;
                } else if c == '"' {
                    last.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let closed = (1..=hashes).all(|k| b.get(i + k) == Some(&'#'));
                    if closed {
                        last.code.push('"');
                        mode = Mode::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::LineComment => {
                last.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && b.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    last.comment.push(c);
                    i += 1;
                }
            }
        }
    }
    lines
}

/// Index of the first `#[cfg(test)]` line (everything below is
/// unit-test code), or `len` when there is none. The `all(test, …)`
/// form covers modules additionally gated off the loom build
/// (`#[cfg(all(test, not(loom)))]`).
fn test_boundary(lines: &[Line]) -> usize {
    lines
        .iter()
        .position(|l| {
            let code = l.code.trim_start();
            code.starts_with("#[cfg(test)]") || code.starts_with("#[cfg(all(test,")
        })
        .unwrap_or(lines.len())
}

fn word_at(hay: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(pat) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':');
        let after = at + pat.len();
        let after_ok = !hay[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            out.push(at);
        }
        from = after;
    }
    out
}

/// How many lines above a strong ordering its `// ordering:` note may
/// sit (inclusive of the ordering's own line). Wide enough for a
/// several-line justification above a multi-line `compare_exchange`
/// call; narrow enough that an unrelated note cannot vouch for a
/// distant ordering.
const JUSTIFICATION_WINDOW: usize = 8;

/// Rule 9 call-site marker and how many lines below it the rule-name
/// literal may sit (rustfmt puts the first argument of a wrapped call
/// on the line after the open paren).
const SLO_RULE_MARKER: &str = "SloRule::named(";
const SLO_NAME_LOOKAHEAD: usize = 4;

/// Rule 10 declaration marker (the `pub const STAGE_NAMES: [&str; N]`
/// list in crates/admission/src/policy.rs) and how many lines at and
/// below it the stage-name literals may span (rustfmt wraps a long
/// array one element per line).
const STAGE_LIST_MARKER: &str = "const STAGE_NAMES";
const STAGE_LIST_LOOKAHEAD: usize = 6;

/// The tracepoint every policy-stage reject emits (rule 10).
const POLICY_REJECT_TRACE: &str = "trace.reject_policy";

/// Lints one file; used directly by the fixture tests below.
#[cfg(test)]
pub fn lint_source(rel: &str, source: &str, manifest: &Manifest) -> Vec<String> {
    let mut violations = Vec::new();
    let mut stats = Stats::default();
    lint_file(
        rel,
        source,
        manifest,
        &BTreeSet::new(),
        &mut violations,
        &mut stats,
    );
    violations.iter().map(|v| v.to_string()).collect()
}

fn lint_file(
    rel: &str,
    source: &str,
    manifest: &Manifest,
    allowlist: &BTreeSet<String>,
    violations: &mut Vec<Violation>,
    stats: &mut Stats,
) {
    let lines = strip(source);
    let raw: Vec<&str> = source.lines().collect();
    let boundary = if is_test_tree(rel) {
        0
    } else {
        test_boundary(&lines)
    };
    let vio = |violations: &mut Vec<Violation>, line: usize, rule: &'static str, msg: String| {
        violations.push(Violation {
            file: rel.to_string(),
            line: line + 1,
            rule,
            msg,
        });
    };

    // Rule 3 (whole file, tests included): unsafe only where allowlisted.
    for (idx, line) in lines.iter().enumerate() {
        if !word_at(&line.code, "unsafe").is_empty() && !allowlist.contains(rel) {
            vio(
                violations,
                idx,
                "unsafe-allowlist",
                "`unsafe` outside crates/xtask/unsafe-allowlist.txt".into(),
            );
        }
    }

    let code_lines = &lines[..boundary];

    for (idx, line) in code_lines.iter().enumerate() {
        // Rule 1: strong orderings need a written justification.
        if !is_checker_infra(rel) {
            for strong in ["Acquire", "Release", "AcqRel", "SeqCst"] {
                let needle = format!("Ordering::{strong}");
                for _ in word_at(&line.code, &needle) {
                    let lo = idx.saturating_sub(JUSTIFICATION_WINDOW);
                    let justified = lines[lo..=idx]
                        .iter()
                        .any(|l| l.comment.contains("ordering:"));
                    if justified {
                        stats.justified_orderings += 1;
                    } else {
                        vio(
                            violations,
                            idx,
                            "ordering-justification",
                            format!(
                                "`Ordering::{strong}` without an `// ordering:` comment within \
                                 {JUSTIFICATION_WINDOW} lines"
                            ),
                        );
                    }
                }
            }
        }

        // Rule 2: shimmed modules must import through `crate::sync`.
        if SHIMMED.contains(&rel) {
            for banned in ["std::sync::atomic", "core::sync::atomic", "std::thread"] {
                if line.code.contains(banned) {
                    vio(
                        violations,
                        idx,
                        "shim-purity",
                        format!("`{banned}` in a loom-shimmed module; use `crate::sync`"),
                    );
                }
            }
            if line.code.contains("std::sync::Mutex") || line.code.contains("std::sync::{") {
                vio(
                    violations,
                    idx,
                    "shim-purity",
                    "std::sync import in a loom-shimmed module; use `crate::sync`".into(),
                );
            }
        }

        // Rule 5: clocks only in obs and bench.
        if !clock_allowed(rel) {
            for clock in ["Instant::now", "SystemTime"] {
                if line.code.contains(clock) {
                    vio(
                        violations,
                        idx,
                        "clock-discipline",
                        format!("`{clock}` outside uba-obs/uba-bench; use `uba_obs::Stopwatch`"),
                    );
                }
            }
        }

        // Rule 6: parsers stay panic-free. `.expect(` is matched only in
        // its literal-message form so a parser's own `fn expect(b'{')`
        // combinator does not trip the rule.
        if PARSERS.contains(&rel) {
            for panicky in [".unwrap()", ".expect(\""] {
                if line.code.contains(panicky) {
                    vio(
                        violations,
                        idx,
                        "parser-unwrap",
                        format!("`{panicky}` in a parser; return a parse error instead"),
                    );
                }
            }
        }

        // Rule 8: raw shared atomic arrays must be padded or waived.
        // (A `CachePadded`-wrapped slot type never matches the raw
        // patterns, so only genuinely unpadded arrays are flagged.)
        if !is_checker_infra(rel) {
            for pat in ["Vec<AtomicU64>", "Box<[AtomicU64]>", "[AtomicU64;"] {
                if line.code.contains(pat) {
                    let lo = idx.saturating_sub(JUSTIFICATION_WINDOW);
                    let waived = lines[lo..=idx]
                        .iter()
                        .any(|l| l.comment.contains("padding:"));
                    if !waived {
                        vio(
                            violations,
                            idx,
                            "shared-array-padding",
                            format!(
                                "`{pat}` without `CachePadded` slots or a `// padding:` waiver \
                                 within {JUSTIFICATION_WINDOW} lines"
                            ),
                        );
                    }
                }
            }
        }

        // Rule 4a: registered metric names must be manifested.
        for reg in [".counter(", ".gauge(", ".histogram("] {
            let mut from = 0;
            while let Some(pos) = line.code[from..].find(reg) {
                let at = from + pos;
                from = at + reg.len();
                // The stripped line tells us a call happened; the raw
                // line still has the name literal.
                if let Some(name) = extract_metric_name(raw.get(idx).copied().unwrap_or(""), reg) {
                    stats.metric_names += 1;
                    if !manifest.covers(&name) {
                        vio(
                            violations,
                            idx,
                            "metric-manifest",
                            format!("metric `{name}` not in docs/metrics-manifest.txt"),
                        );
                    }
                }
            }
        }

        // Rule 9: SLO rules publish `slo.<name>.state` / `.value`
        // gauges from their runtime name; both must be manifested. The
        // name is the first string literal after the marker — on the
        // same raw line, or (the rustfmt multi-line call form) on one
        // of the next few lines.
        if line.code.contains(SLO_RULE_MARKER) {
            let name = (idx..raw.len().min(idx + SLO_NAME_LOOKAHEAD)).find_map(|j| {
                let rl = raw.get(j).copied().unwrap_or("");
                let tail = if j == idx {
                    rl.find(SLO_RULE_MARKER)
                        .map_or(rl, |p| &rl[p + SLO_RULE_MARKER.len()..])
                } else {
                    rl
                };
                between(tail, "\"", "\"")
            });
            if let Some(name) = name {
                for part in ["state", "value"] {
                    stats.metric_names += 1;
                    let gauge = format!("slo.{name}.{part}");
                    if !manifest.covers(&gauge) {
                        vio(
                            violations,
                            idx,
                            "slo-rule-manifest",
                            format!(
                                "SLO rule `{name}` publishes `{gauge}` but it is not in \
                                 docs/metrics-manifest.txt"
                            ),
                        );
                    }
                }
            }
        }

        // Rule 10: every policy stage in the `STAGE_NAMES` list gets a
        // reject-cause counter `admission.rejects.policy.<name>`
        // (registered via `format!` over the list, invisible to rule 4
        // beyond a single glob) plus the shared reject tracepoint; all
        // must be manifested individually. The name literals sit on the
        // declaration line after the `=`, or on the next few lines (the
        // rustfmt wrapped-array form).
        if rel == "crates/admission/src/policy.rs" && line.code.contains(STAGE_LIST_MARKER) {
            let mut names: Vec<&str> = Vec::new();
            for j in idx..raw.len().min(idx + STAGE_LIST_LOOKAHEAD) {
                let rl = raw.get(j).copied().unwrap_or("");
                let tail = if j == idx {
                    rl.find('=').map_or("", |p| &rl[p + 1..])
                } else {
                    rl
                };
                names.extend(quoted_literals(tail));
                if tail.contains(']') {
                    break;
                }
            }
            for name in &names {
                stats.metric_names += 1;
                let counter = format!("admission.rejects.policy.{name}");
                if !manifest.covers(&counter) {
                    vio(
                        violations,
                        idx,
                        "policy-stage-manifest",
                        format!(
                            "policy stage `{name}` publishes `{counter}` but it is not in \
                             docs/metrics-manifest.txt"
                        ),
                    );
                }
            }
            if !names.is_empty() {
                stats.metric_names += 1;
                if !manifest.covers(POLICY_REJECT_TRACE) {
                    vio(
                        violations,
                        idx,
                        "policy-stage-manifest",
                        format!(
                            "policy stages emit `{POLICY_REJECT_TRACE}` but it is not in \
                             docs/metrics-manifest.txt"
                        ),
                    );
                }
            }
        }

        // Rule 4b: trace kinds (as_str arms) must be manifested as
        // `trace.<name>`.
        if rel == "crates/obs/src/trace.rs" {
            let raw_line = raw.get(idx).copied().unwrap_or("");
            if line.code.contains("EventKind::") && raw_line.contains("=> \"") {
                if let Some(name) = between(raw_line, "=> \"", "\"") {
                    stats.metric_names += 1;
                    let manifested = format!("trace.{name}");
                    if !manifest.covers(&manifested) {
                        vio(
                            violations,
                            idx,
                            "metric-manifest",
                            format!("trace kind `{manifested}` not in docs/metrics-manifest.txt"),
                        );
                    }
                }
            }
        }
    }
}

/// Rule 7: a `uba-bench` binary whose source implements a `"smoke"`
/// mode (the marker every verify-lane gate carries) must be invoked as
/// `--bin <name>` somewhere in `scripts/verify.sh`. Returns the
/// violation, if any.
fn check_bench_wiring(rel: &str, source: &str, verify_sh: &str) -> Option<Violation> {
    let stem = rel
        .strip_prefix("crates/bench/src/bin/")?
        .strip_suffix(".rs")?;
    if !source.contains("\"smoke\"") {
        return None; // paper regenerator with no smoke lane — exempt
    }
    let wired = verify_sh.contains(&format!("--bin {stem}"));
    (!wired).then(|| Violation {
        file: rel.to_string(),
        line: 0,
        rule: "bench-smoke-wiring",
        msg: format!(
            "binary `{stem}` has a smoke mode but scripts/verify.sh never runs `--bin {stem}`"
        ),
    })
}

/// Pulls the metric name out of a registration call on `raw_line`:
/// either a direct literal or a `format!` template (whose `{…}` holes
/// become `*` globs).
fn extract_metric_name(raw_line: &str, reg: &str) -> Option<String> {
    let after = &raw_line[raw_line.find(reg)? + reg.len()..];
    let lit = between(after, "\"", "\"")?;
    let mut name = String::with_capacity(lit.len());
    let mut chars = lit.chars();
    while let Some(c) = chars.next() {
        if c == '{' {
            for c2 in chars.by_ref() {
                if c2 == '}' {
                    break;
                }
            }
            name.push('*');
        } else {
            name.push(c);
        }
    }
    (!name.is_empty()).then_some(name)
}

/// Every complete `"…"` literal in `hay`, in order (rule 10's
/// stage-name lists; no escape handling needed for lower-snake names).
fn quoted_literals(hay: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = hay;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('"') else { break };
        out.push(&after[..end]);
        rest = &after[end + 1..];
    }
    out
}

fn between<'a>(hay: &'a str, open: &str, close: &str) -> Option<&'a str> {
    let start = hay.find(open)? + open.len();
    let end = hay[start..].find(close)? + start;
    Some(&hay[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        Manifest::from_text(
            "# comment\nadmission.admits\nadmission.rejects.link_full.class0\n\
             admission.rejects.link_full.class1\ntrace.admit\n",
        )
    }

    #[test]
    fn strip_removes_strings_and_comments() {
        let lines = strip("let x = \"unsafe Ordering::Acquire\"; // ordering: note\n'a'.len();\nlet l: &'static str = r#\"std::thread\"#;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("ordering:"));
        assert!(lines[1].code.contains(".len()"));
        assert!(!lines[2].code.contains("std::thread"));
        assert!(lines[2].code.contains("&'static str"));
    }

    #[test]
    fn unjustified_acquire_fails_and_justified_passes() {
        let bad = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }";
        let v = lint_source("crates/admission/src/lib.rs", bad, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("ordering-justification"), "{v:?}");

        let good = "// ordering: pairs with the Release store in publish()\n\
                    fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }";
        assert!(lint_source("crates/admission/src/lib.rs", good, &manifest()).is_empty());

        // Relaxed never needs a note.
        let relaxed = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }";
        assert!(lint_source("crates/admission/src/lib.rs", relaxed, &manifest()).is_empty());
    }

    #[test]
    fn justification_window_is_bounded() {
        let blanks = "\n".repeat(JUSTIFICATION_WINDOW + 1);
        let too_far = format!(
            "// ordering: too far away{blanks}fn f(a: &AtomicU64) -> u64 {{ a.load(Ordering::Acquire) }}"
        );
        let v = lint_source("crates/admission/src/lib.rs", &too_far, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
        // Inside the window (even across a multi-line call) it counts.
        let near = "// ordering: close enough, pairs with the Release in g()\n\
                    fn f(a: &AtomicU64) -> bool {\n\
                    a.compare_exchange(\n0,\n1,\nOrdering::Acquire,\nOrdering::Relaxed,\n)\n.is_ok()\n}";
        assert!(lint_source("crates/admission/src/lib.rs", near, &manifest()).is_empty());
    }

    #[test]
    fn strip_counts_lines_across_string_continuations() {
        // A `\`-continued string must not swallow the newline: the
        // violation below sits on (1-indexed) line 4.
        let src = "fn f(a: &AtomicU64) -> u64 {\n    let _m = \"two \\\n line string\";\n    a.load(Ordering::SeqCst)\n}";
        let v = lint_source("crates/admission/src/lib.rs", src, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains(":4:"), "line number drifted: {v:?}");
    }

    #[test]
    fn std_atomic_import_in_shimmed_module_fails() {
        let bad = "use std::sync::atomic::{AtomicU64, Ordering};";
        let v = lint_source("crates/admission/src/state.rs", bad, &manifest());
        assert!(
            v.iter().any(|m| m.contains("shim-purity")),
            "expected shim-purity violation: {v:?}"
        );
        // The same import is fine outside the shimmed list.
        assert!(lint_source("crates/admission/src/churn.rs", bad, &manifest()).is_empty());
        // Going through the shim is fine inside it.
        let good = "use crate::sync::atomic::{AtomicU64, Ordering};";
        assert!(lint_source("crates/admission/src/state.rs", good, &manifest()).is_empty());
    }

    #[test]
    fn unmanifested_metric_name_fails() {
        let bad = r#"let c = registry.counter("admission.bogus_counter");"#;
        let v = lint_source("crates/admission/src/metrics.rs", bad, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("metric-manifest"), "{v:?}");
        assert!(v[0].contains("admission.bogus_counter"), "{v:?}");

        let good = r#"let c = registry.counter("admission.admits");"#;
        assert!(lint_source("crates/admission/src/metrics.rs", good, &manifest()).is_empty());
    }

    #[test]
    fn format_metric_names_glob_against_manifest() {
        let good = r#"let c = registry.counter(&format!("admission.rejects.link_full.class{i}"));"#;
        assert!(lint_source("crates/admission/src/metrics.rs", good, &manifest()).is_empty());
        let bad = r#"let c = registry.counter(&format!("admission.rejects.queue{i}"));"#;
        let v = lint_source("crates/admission/src/metrics.rs", bad, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn trace_kind_names_checked_as_trace_prefix() {
        let good = "impl EventKind { fn as_str(self) -> &'static str { match self {\n\
                    EventKind::Admit => \"admit\",\n} } }";
        assert!(lint_source("crates/obs/src/trace.rs", good, &manifest()).is_empty());
        let bad = "impl EventKind { fn as_str(self) -> &'static str { match self {\n\
                   EventKind::Admit => \"vanish\",\n} } }";
        let v = lint_source("crates/obs/src/trace.rs", bad, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("trace.vanish"), "{v:?}");
    }

    #[test]
    fn clock_outside_obs_and_bench_fails() {
        let bad = "let t0 = std::time::Instant::now();";
        let v = lint_source("crates/sim/src/engine.rs", bad, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("clock-discipline"), "{v:?}");
        assert!(lint_source("crates/obs/src/span.rs", bad, &manifest()).is_empty());
        assert!(lint_source("crates/bench/src/bin/t.rs", bad, &manifest()).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_fails_even_in_tests() {
        let bad =
            "#[cfg(test)]\nmod tests { fn f() { unsafe { core::hint::unreachable_unchecked() } } }";
        let v = lint_source("crates/sim/src/lib.rs", bad, &manifest());
        assert!(v.iter().any(|m| m.contains("unsafe-allowlist")), "{v:?}");
        // …but the word inside a string or metric name is not a block.
        let s = r#"let c = registry.counter("admission.admits"); let m = "unsafe";"#;
        assert!(lint_source("crates/admission/src/metrics.rs", s, &manifest()).is_empty());
    }

    #[test]
    fn parser_unwrap_fails() {
        let bad = "fn parse() { doc.tables.get_mut(name).unwrap(); }";
        let v = lint_source("crates/cli/src/toml_lite.rs", bad, &manifest());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("parser-unwrap"), "{v:?}");
        // Unit tests in the same file may unwrap.
        let test_only = "#[cfg(test)]\nmod tests { fn t() { parse(\"x\").unwrap(); } }";
        assert!(lint_source("crates/cli/src/toml_lite.rs", test_only, &manifest()).is_empty());
    }

    #[test]
    fn test_modules_and_test_trees_are_exempt_from_code_rules() {
        let in_tests = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Acquire) }";
        assert!(lint_source(
            "crates/admission/tests/loom_models.rs",
            in_tests,
            &manifest()
        )
        .is_empty());
        let below_cfg = "#[cfg(test)]\nmod tests { use std::sync::atomic::AtomicU64; }";
        assert!(lint_source("crates/admission/src/state.rs", below_cfg, &manifest()).is_empty());
    }

    #[test]
    fn bench_smoke_binaries_must_be_wired_into_verify() {
        let smoke_src =
            r#"fn main() { let smoke = std::env::args().nth(1).as_deref() == Some("smoke"); }"#;
        let verify = "cargo run --offline --release -p uba-bench --bin obs_overhead -- smoke\n";
        // Wired: no violation.
        assert!(
            check_bench_wiring("crates/bench/src/bin/obs_overhead.rs", smoke_src, verify).is_none()
        );
        // Smoke mode but never run by verify.sh: violation.
        let v = check_bench_wiring("crates/bench/src/bin/new_gate.rs", smoke_src, verify)
            .expect("unwired smoke gate must be flagged");
        assert!(v.to_string().contains("bench-smoke-wiring"), "{v}");
        assert!(v.to_string().contains("new_gate"), "{v}");
        // No smoke mode (paper regenerator): exempt.
        assert!(
            check_bench_wiring("crates/bench/src/bin/table1.rs", "fn main() {}", verify).is_none()
        );
        // Non-bench files never match.
        assert!(check_bench_wiring("crates/cli/src/main.rs", smoke_src, verify).is_none());
    }

    #[test]
    fn unpadded_atomic_array_fails_and_waiver_passes() {
        for pat in [
            "reserved: Vec<AtomicU64>,",
            "slots: Box<[AtomicU64]>,",
            "buckets: [AtomicU64; 64],",
        ] {
            let bad = format!("struct S {{\n    {pat}\n}}");
            let v = lint_source("crates/admission/src/lib.rs", &bad, &manifest());
            assert_eq!(v.len(), 1, "{pat}: {v:?}");
            assert!(v[0].contains("shared-array-padding"), "{v:?}");

            let waived = format!(
                "struct S {{\n    // padding: sparse writes, sharing acceptable\n    {pat}\n}}"
            );
            assert!(
                lint_source("crates/admission/src/lib.rs", &waived, &manifest()).is_empty(),
                "waiver must silence {pat}"
            );
        }
        // CachePadded slots never match the raw patterns.
        let padded = "struct S {\n    slots: Vec<CachePadded<Shard>>,\n}";
        assert!(lint_source("crates/admission/src/lib.rs", padded, &manifest()).is_empty());
        // Unit-test code is exempt like every code rule.
        let in_tests = "#[cfg(test)]\nmod tests { struct S { a: Vec<AtomicU64> } }";
        assert!(lint_source("crates/admission/src/state.rs", in_tests, &manifest()).is_empty());
    }

    #[test]
    fn slo_rule_names_must_be_manifested() {
        let m = Manifest::from_text(
            "slo.miss_ratio.state\nslo.miss_ratio.value\nslo.reject_rate.state\n",
        );
        // Same-line form, fully manifested: clean.
        let good = r#"let r = SloRule::named("miss_ratio", sig, Cmp::Above, 0.1, 2, 2);"#;
        assert!(lint_source("crates/obs/src/slo.rs", good, &m).is_empty());
        // Multi-line (rustfmt) form: the name sits below the marker.
        let wrapped = "let r = SloRule::named(\n    \"miss_ratio\",\n    sig,\n);";
        assert!(lint_source("crates/obs/src/slo.rs", wrapped, &m).is_empty());
        // Unmanifested name: one violation per missing gauge.
        let bad = r#"let r = SloRule::named("phantom", sig, Cmp::Above, 0.1, 2, 2);"#;
        let v = lint_source("crates/obs/src/slo.rs", bad, &m);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("slo-rule-manifest"), "{v:?}");
        assert!(v[0].contains("slo.phantom.state"), "{v:?}");
        assert!(v[1].contains("slo.phantom.value"), "{v:?}");
        // Manifested .state but missing .value: exactly the gap flags.
        let half = r#"let r = SloRule::named("reject_rate", sig, Cmp::Above, 1.0, 2, 2);"#;
        let v = lint_source("crates/obs/src/slo.rs", half, &m);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("slo.reject_rate.value"), "{v:?}");
        // Unit tests may construct throwaway rules freely.
        let in_tests =
            "#[cfg(test)]\nmod tests { fn t() { SloRule::named(\"scratch\", s, c, 0.0, 1, 1); } }";
        assert!(lint_source("crates/obs/src/slo.rs", in_tests, &m).is_empty());
        // The marker inside a doc comment or string is not a call site.
        let quoted = "// see SloRule::named(\"x\", …)\nlet s = \"SloRule::named(\\\"y\\\"\";";
        assert!(lint_source("crates/obs/src/slo.rs", quoted, &m).is_empty());
    }

    #[test]
    fn policy_stage_names_must_be_manifested() {
        let m = Manifest::from_text(
            "admission.rejects.policy.aimd\nadmission.rejects.policy.token_bucket\n\
             trace.reject_policy\n",
        );
        let rel = "crates/admission/src/policy.rs";
        // Same-line form, fully manifested: clean.
        let good = r#"pub const STAGE_NAMES: [&str; 2] = ["token_bucket", "aimd"];"#;
        assert!(lint_source(rel, good, &m).is_empty());
        // Wrapped (rustfmt) form: literals sit below the declaration.
        let wrapped =
            "pub const STAGE_NAMES: [&str; 2] = [\n    \"token_bucket\",\n    \"aimd\",\n];";
        assert!(lint_source(rel, wrapped, &m).is_empty());
        // A stage without its reject counter: exactly the gap flags.
        let bad = r#"pub const STAGE_NAMES: [&str; 3] = ["token_bucket", "aimd", "phantom"];"#;
        let v = lint_source(rel, bad, &m);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("policy-stage-manifest"), "{v:?}");
        assert!(v[0].contains("admission.rejects.policy.phantom"), "{v:?}");
        // Missing tracepoint line: flagged once for the whole list.
        let no_trace = Manifest::from_text(
            "admission.rejects.policy.aimd\nadmission.rejects.policy.token_bucket\n",
        );
        let v = lint_source(rel, good, &no_trace);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("trace.reject_policy"), "{v:?}");
        // Other files never match (a doc mention is not the list).
        assert!(lint_source("crates/admission/src/metrics.rs", bad, &m).is_empty());
    }

    #[test]
    fn loom_coverage_requires_mapped_cfg_loom_models() {
        let map = LoomMap::from_text(
            "# comment\ncrates/admission/src/state.rs -> crates/admission/tests/loom_models.rs\n",
        );
        let justified = vec!["crates/admission/src/state.rs".to_string()];
        let probe_ok = |m: &str| (m == "crates/admission/tests/loom_models.rs").then_some(true);

        // Mapped to an existing cfg(loom) model: clean, and counted.
        let mut stats = Stats::default();
        assert!(check_loom_coverage(&justified, &map, &mut stats, probe_ok).is_empty());
        assert_eq!(stats.loom_covered_modules, 1);

        // Justified module with no entry: flagged.
        let orphan = ["crates/admission/src/backend.rs".to_string()];
        let both: Vec<String> = justified.iter().chain(orphan.iter()).cloned().collect();
        let v = check_loom_coverage(&both, &map, &mut Stats::default(), probe_ok);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].to_string().contains("loom-model-coverage"), "{v:?}");
        assert!(v[0].to_string().contains("backend.rs"), "{v:?}");

        // Model file missing: flagged against the map.
        let v = check_loom_coverage(&justified, &map, &mut Stats::default(), |_| None);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].to_string().contains("does not exist"), "{v:?}");

        // Model file without a cfg(loom) gate: flagged against the model.
        let v = check_loom_coverage(&justified, &map, &mut Stats::default(), |_| Some(false));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].to_string().contains("cfg(loom)"), "{v:?}");

        // Stale entry (module lost its justifications): flagged.
        let v = check_loom_coverage(&[], &map, &mut Stats::default(), probe_ok);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].to_string().contains("stale entry"), "{v:?}");

        // Missing map file with justified modules: one summary violation.
        let v = check_loom_coverage(
            &justified,
            &LoomMap::default(),
            &mut Stats::default(),
            probe_ok,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].to_string().contains("map file missing"), "{v:?}");
        // Missing map file with nothing justified: nothing to enforce.
        assert!(
            check_loom_coverage(&[], &LoomMap::default(), &mut Stats::default(), probe_ok)
                .is_empty()
        );
    }

    #[test]
    fn ordering_notes_detection_respects_exemptions() {
        let src = "// ordering: pairs with the Release in publish()\nfn f() {}";
        assert!(has_ordering_notes("crates/admission/src/state.rs", src));
        // Checker infra and test trees never demand models.
        assert!(!has_ordering_notes("crates/loom/src/scheduler.rs", src));
        assert!(!has_ordering_notes("crates/admission/tests/x.rs", src));
        // A note inside a #[cfg(test)] module does not count.
        let test_only = "#[cfg(test)]\nmod tests {\n// ordering: scratch\n}";
        assert!(!has_ordering_notes(
            "crates/admission/src/state.rs",
            test_only
        ));
        // The word in code (a string) is not a justification comment.
        let in_string = "fn f() -> &'static str { \"ordering: nope\" }";
        assert!(!has_ordering_notes(
            "crates/admission/src/state.rs",
            in_string
        ));
    }

    #[test]
    fn quoted_literal_scanning() {
        assert_eq!(quoted_literals(r#"["a", "b"];"#), vec!["a", "b"]);
        assert_eq!(quoted_literals("no strings here"), Vec::<&str>::new());
        // An unterminated literal is ignored rather than mis-paired.
        assert_eq!(quoted_literals(r#""done", "dangl"#), vec!["done"]);
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("a.class*", "a.class0"));
        assert!(glob_match("a.*.b", "a.x.b"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("a.class*", "b.class0"));
        assert!(!glob_match("a.*x", "a.y"));
    }
}
