//! Repo invariant linter. See `check` module docs and DESIGN.md §9.
#![forbid(unsafe_code)]

mod check;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {
            let root = std::env::var("CARGO_MANIFEST_DIR")
                .map(|d| {
                    std::path::Path::new(&d)
                        .parent()
                        .and_then(|p| p.parent())
                        .expect("xtask lives two levels below the workspace root")
                        .to_path_buf()
                })
                .unwrap_or_else(|_| std::path::PathBuf::from("."));
            match check::run(&root) {
                Ok(stats) => {
                    println!(
                        "xtask check: ok ({} files, {} justified orderings, {} metric names, \
                         {} loom-covered modules)",
                        stats.files,
                        stats.justified_orderings,
                        stats.metric_names,
                        stats.loom_covered_modules
                    );
                    ExitCode::SUCCESS
                }
                Err(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!("xtask check: {} violation(s)", violations.len());
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("usage: cargo run -p xtask -- check\n  (got: {:?})", other);
            ExitCode::FAILURE
        }
    }
}
