//! Property tests: the sufficiency chain of the classical tests.
//!
//! For rate-monotonic priority order:
//! `LL bound ⇒ hyperbolic ⇒ RTA-schedulable`, and everything
//! fixed-priority-schedulable is EDF-schedulable (U ≤ 1).

// Gated behind the non-default `prop-tests` feature: the `proptest`
// dev-dependency is not declared so the default build stays hermetic
// (offline, no registry). To run: re-add `proptest = "1"` under
// [dev-dependencies] and `cargo test --features prop-tests`.
#![cfg(feature = "prop-tests")]

use proptest::prelude::*;
use uba_sched::{
    edf_schedulable, hyperbolic_schedulable, response_times, rm_schedulable_by_bound,
    rta_schedulable, Task, TaskSet,
};

/// Random task set in RM order with bounded size/periods.
fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    proptest::collection::vec((1.0f64..100.0, 1.0f64..10.0), 1..8).prop_map(|raw| {
        let mut s = TaskSet::new();
        for (period, ratio) in raw {
            // wcet <= period via ratio in (1, 10]: wcet = period/ratio/k.
            let wcet = (period / ratio / 4.0).max(1e-3).min(period);
            s.push(Task::new(wcet, period));
        }
        s.sort_rate_monotonic();
        s
    })
}

proptest! {
    #[test]
    fn ll_bound_implies_hyperbolic(set in arb_taskset()) {
        if rm_schedulable_by_bound(&set) {
            prop_assert!(hyperbolic_schedulable(&set));
        }
    }

    #[test]
    fn hyperbolic_implies_rta(set in arb_taskset()) {
        if hyperbolic_schedulable(&set) {
            prop_assert!(rta_schedulable(&set), "U = {}", set.utilization());
        }
    }

    #[test]
    fn rta_implies_edf(set in arb_taskset()) {
        if rta_schedulable(&set) {
            prop_assert!(edf_schedulable(&set));
        }
    }

    #[test]
    fn response_times_at_least_wcet(set in arb_taskset()) {
        if let Some(rs) = response_times(&set) {
            for (t, r) in set.tasks().iter().zip(&rs) {
                prop_assert!(*r + 1e-12 >= t.wcet);
                prop_assert!(*r <= t.period + 1e-9);
            }
            // Highest-priority task's response time is exactly its wcet.
            prop_assert!((rs[0] - set.tasks()[0].wcet).abs() < 1e-12);
        }
    }

    /// Scale invariance: multiplying all times by a constant changes
    /// nothing about schedulability.
    #[test]
    fn scale_invariance(set in arb_taskset(), k in 0.1f64..100.0) {
        let scaled = TaskSet::from_tasks(
            set.tasks()
                .iter()
                .map(|t| Task::new(t.wcet * k, t.period * k))
                .collect(),
        );
        prop_assert_eq!(rta_schedulable(&set), rta_schedulable(&scaled));
        prop_assert_eq!(rm_schedulable_by_bound(&set), rm_schedulable_by_bound(&scaled));
    }
}
