//! Timed-token (FDDI) synchronous-traffic utilization bound.
//!
//! Agrawal, Chen & Zhao showed that with the *normalized proportional*
//! synchronous-capacity allocation scheme, synchronous message sets over
//! a timed-token network are guaranteed their deadlines as long as the
//! synchronous utilization does not exceed
//!
//! ```text
//! U* = (1 − Λ) / 3,      Λ = τ / TTRT
//! ```
//!
//! where `τ` is the ring's total latency (token walk time) and `TTRT` the
//! target token rotation time — the "33% bandwidth utilization for
//! scheduling synchronous traffic over FDDI networks" the paper cites as
//! prior WCAU art (reference [3]).

/// The timed-token WCAU for synchronous traffic under normalized
/// proportional allocation.
///
/// `ring_latency` (τ) and `ttrt` in the same time unit, `0 ≤ τ < TTRT`.
pub fn timed_token_wcau(ring_latency: f64, ttrt: f64) -> f64 {
    assert!(ttrt > 0.0 && ttrt.is_finite(), "TTRT must be positive");
    assert!(
        (0.0..ttrt).contains(&ring_latency),
        "ring latency must be in [0, TTRT)"
    );
    (1.0 - ring_latency / ttrt) / 3.0
}

/// Utilization-based admission test for a synchronous message set: total
/// synchronous utilization against [`timed_token_wcau`] — the same
/// compare-against-a-precomputed-level pattern the paper lifts to
/// networks of link servers.
pub fn timed_token_schedulable(utilization: f64, ring_latency: f64, ttrt: f64) -> bool {
    utilization <= timed_token_wcau(ring_latency, ttrt) + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_33_percent_at_zero_overhead() {
        assert!((timed_token_wcau(0.0, 8.0) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn overhead_reduces_the_bound() {
        let b0 = timed_token_wcau(0.0, 8.0);
        let b1 = timed_token_wcau(1.0, 8.0);
        assert!(b1 < b0);
        assert!((b1 - (1.0 - 0.125) / 3.0).abs() < 1e-15);
    }

    #[test]
    fn admission_test() {
        assert!(timed_token_schedulable(0.30, 0.0, 8.0));
        assert!(!timed_token_schedulable(0.35, 0.0, 8.0));
    }

    #[test]
    #[should_panic(expected = "ring latency")]
    fn latency_beyond_ttrt_rejected() {
        timed_token_wcau(9.0, 8.0);
    }
}
