//! Exact response-time analysis for fixed-priority preemptive scheduling
//! (Joseph & Pandya / Audsley).
//!
//! The utilization-bound tests are sufficient only; RTA is exact for the
//! periodic implicit-deadline model and serves as the ground truth the
//! bounds are property-tested against — the same bound-vs-exact
//! relationship the network crate has between Theorem 3 and the general
//! delay formula.

use crate::task::TaskSet;

/// Worst-case response time of every task under the set's priority
/// order, or `None` if some response time exceeds its deadline (period)
/// or the iteration diverges (utilization ≥ 1 at some level).
pub fn response_times(set: &TaskSet) -> Option<Vec<f64>> {
    let tasks = set.tasks();
    let mut out = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        // Fixed point R = C_i + Σ_{j<i} ceil(R/T_j)·C_j, from R = C_i.
        let mut r = t.wcet;
        loop {
            let mut next = t.wcet;
            for hp in &tasks[..i] {
                next += (r / hp.period).ceil() * hp.wcet;
            }
            if next > t.period + 1e-9 {
                return None; // deadline miss
            }
            if (next - r).abs() <= 1e-9 {
                r = next;
                break;
            }
            r = next;
        }
        out.push(r);
    }
    Some(out)
}

/// Exact fixed-priority schedulability: every response time within its
/// deadline.
pub fn rta_schedulable(set: &TaskSet) -> bool {
    response_times(set).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    #[test]
    fn single_task_response_is_wcet() {
        let set = TaskSet::from_tasks(vec![Task::new(3.0, 10.0)]);
        assert_eq!(response_times(&set), Some(vec![3.0]));
    }

    #[test]
    fn textbook_example() {
        // Classic: (C,T) = (3,7), (2,12), (5,20).
        let set = TaskSet::from_tasks(vec![
            Task::new(3.0, 7.0),
            Task::new(2.0, 12.0),
            Task::new(5.0, 20.0),
        ]);
        let r = response_times(&set).expect("schedulable");
        assert_eq!(r[0], 3.0);
        assert_eq!(r[1], 5.0);
        // R3 = 5 + ceil(R/7)*3 + ceil(R/12)*2 -> 18.
        assert_eq!(r[2], 18.0);
    }

    #[test]
    fn full_utilization_harmonic_set_schedulable() {
        // Harmonic periods reach U = 1 under RM.
        let set = TaskSet::from_tasks(vec![
            Task::new(1.0, 2.0),
            Task::new(1.0, 4.0),
            Task::new(1.0, 8.0),
            Task::new(1.0, 8.0),
        ]);
        assert!((set.utilization() - 1.0).abs() < 1e-12);
        assert!(rta_schedulable(&set));
    }

    #[test]
    fn unschedulable_detected() {
        // U = 1.0 with non-harmonic periods: lowest task misses.
        let set = TaskSet::from_tasks(vec![
            Task::new(3.0, 6.0),
            Task::new(3.0, 7.0),
            Task::new(1.0, 14.0),
        ]);
        assert!(!rta_schedulable(&set));
    }

    #[test]
    fn rta_confirms_ll_bound() {
        // Anything accepted by the LL bound must be RTA-schedulable.
        let set = TaskSet::from_tasks(vec![
            Task::new(20.0, 100.0),
            Task::new(40.0, 150.0),
            Task::new(100.0, 350.0),
        ]);
        assert!(crate::wcau::rm_schedulable_by_bound(&set));
        assert!(rta_schedulable(&set));
    }

    #[test]
    fn empty_set() {
        assert_eq!(response_times(&TaskSet::new()), Some(vec![]));
    }
}
