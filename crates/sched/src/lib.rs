//! Classical utilization-based schedulability — the results Section 1.2
//! cites as the foundation of utilization-based admission control:
//!
//! > "A variety of WCAU's for different settings have been found, e.g.,
//! > 69% and 100% for preemptive scheduling of periodic tasks on a single
//! > server using rate-monotonic and earliest-deadline-first scheduling,
//! > respectively [2], or 33% bandwidth utilization for scheduling
//! > synchronous traffic over FDDI networks [3]."
//!
//! The crate implements those single-server tests — the Liu & Layland
//! rate-monotonic bound, the EDF bound, the (tighter) hyperbolic bound,
//! exact response-time analysis, and the timed-token synchronous-traffic
//! bound — so the paper's network-level contribution can be seen as the
//! same *"compare utilization against a precomputed safe level"* pattern
//! lifted from one CPU/token-ring to a network of link servers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rta;
pub mod task;
pub mod token_ring;
pub mod wcau;

pub use rta::{response_times, rta_schedulable};
pub use task::{Task, TaskSet};
pub use token_ring::timed_token_wcau;
pub use wcau::{edf_schedulable, hyperbolic_schedulable, rm_bound, rm_schedulable_by_bound};
