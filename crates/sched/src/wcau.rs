//! Utilization-based schedulability tests (the WCAU pattern itself).

use crate::task::TaskSet;

/// The Liu & Layland rate-monotonic WCAU for `n` tasks:
/// `n(2^{1/n} − 1)` — `1.0` for one task, → `ln 2 ≈ 0.693` ("69%").
///
/// # Examples
/// ```
/// use uba_sched::rm_bound;
/// assert_eq!(rm_bound(1), 1.0);
/// assert!((rm_bound(2) - 0.8284).abs() < 1e-4);
/// assert!((rm_bound(100) - 2f64.ln()).abs() < 0.003); // the "69%"
/// ```
pub fn rm_bound(n: usize) -> f64 {
    assert!(n >= 1, "need at least one task");
    let nf = n as f64;
    nf * ((2.0f64).powf(1.0 / nf) - 1.0)
}

/// Sufficient RM test: total utilization against [`rm_bound`].
pub fn rm_schedulable_by_bound(set: &TaskSet) -> bool {
    if set.is_empty() {
        return true;
    }
    set.utilization() <= rm_bound(set.len()) + 1e-12
}

/// The hyperbolic bound (Bini–Buttazzo): RM-schedulable if
/// `Π (U_i + 1) ≤ 2`. Strictly dominates the Liu & Layland test.
pub fn hyperbolic_schedulable(set: &TaskSet) -> bool {
    set.tasks()
        .iter()
        .map(|t| t.utilization() + 1.0)
        .product::<f64>()
        <= 2.0 + 1e-12
}

/// EDF with implicit deadlines: schedulable iff `Σ U_i ≤ 1` — the "100%"
/// WCAU of Section 1.2.
pub fn edf_schedulable(set: &TaskSet) -> bool {
    set.utilization() <= 1.0 + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    #[test]
    fn rm_bound_values() {
        assert!((rm_bound(1) - 1.0).abs() < 1e-15);
        assert!((rm_bound(2) - 0.8284271247461903).abs() < 1e-12);
        // Monotone decreasing toward ln 2.
        let mut prev = rm_bound(1);
        for n in 2..100 {
            let b = rm_bound(n);
            assert!(b < prev);
            prev = b;
        }
        assert!((rm_bound(10_000) - (2.0f64).ln()).abs() < 1e-4);
    }

    #[test]
    fn classic_threetask_example() {
        // Liu & Layland's own example: U = 0.753 <= bound(3) = 0.7798.
        let set = TaskSet::from_tasks(vec![
            Task::new(20.0, 100.0),
            Task::new(40.0, 150.0),
            Task::new(100.0, 350.0),
        ]);
        assert!(rm_schedulable_by_bound(&set));
        assert!(hyperbolic_schedulable(&set));
        assert!(edf_schedulable(&set));
    }

    #[test]
    fn hyperbolic_dominates_ll() {
        // U = 0.5 + 0.33 = 0.83 > LL bound 0.8284, but
        // (1.5)(1.33) = 1.995 <= 2: hyperbolic accepts what LL rejects.
        let set = TaskSet::from_tasks(vec![Task::new(1.0, 2.0), Task::new(0.99, 3.0)]);
        assert!(!rm_schedulable_by_bound(&set));
        assert!(hyperbolic_schedulable(&set));
    }

    #[test]
    fn edf_exactly_at_one() {
        let set = TaskSet::from_tasks(vec![Task::new(1.0, 2.0), Task::new(1.0, 2.0)]);
        assert!(edf_schedulable(&set));
        assert!(!rm_schedulable_by_bound(&set));
    }

    #[test]
    fn empty_set_schedulable() {
        let set = TaskSet::new();
        assert!(rm_schedulable_by_bound(&set));
        assert!(edf_schedulable(&set));
        assert!(hyperbolic_schedulable(&set));
    }
}
