//! Periodic task model (Liu & Layland).

/// A periodic task: worst-case computation time `C` and period `T`
/// (implicit deadline `D = T`), both in the same time unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Task {
    /// Worst-case execution time per job.
    pub wcet: f64,
    /// Activation period (= deadline).
    pub period: f64,
}

impl Task {
    /// Creates a task, validating `0 < C ≤ T`.
    pub fn new(wcet: f64, period: f64) -> Self {
        assert!(wcet > 0.0 && wcet.is_finite(), "wcet must be positive");
        assert!(
            period >= wcet && period.is_finite(),
            "period must be at least the wcet"
        );
        Self { wcet, period }
    }

    /// The task's utilization `C/T`.
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }
}

/// A set of periodic tasks. For fixed-priority analysis the order is the
/// priority order (index 0 highest); rate-monotonic order is shortest
/// period first.
#[derive(Clone, Debug, Default)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from tasks, keeping the given priority order.
    pub fn from_tasks(tasks: Vec<Task>) -> Self {
        Self { tasks }
    }

    /// Appends a task at the lowest priority.
    pub fn push(&mut self, t: Task) {
        self.tasks.push(t);
    }

    /// The tasks in priority order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total utilization `Σ C_i/T_i`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Re-sorts into rate-monotonic priority order (shortest period
    /// first; stable).
    pub fn sort_rate_monotonic(&mut self) {
        self.tasks.sort_by(|a, b| a.period.total_cmp(&b.period));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_sums() {
        let mut s = TaskSet::new();
        s.push(Task::new(1.0, 4.0));
        s.push(Task::new(1.0, 2.0));
        assert!((s.utilization() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn rm_sort_orders_by_period() {
        let mut s = TaskSet::new();
        s.push(Task::new(1.0, 10.0));
        s.push(Task::new(1.0, 2.0));
        s.push(Task::new(1.0, 5.0));
        s.sort_rate_monotonic();
        let periods: Vec<f64> = s.tasks().iter().map(|t| t.period).collect();
        assert_eq!(periods, vec![2.0, 5.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "period must be at least")]
    fn over_utilized_task_rejected() {
        Task::new(2.0, 1.0);
    }
}
