//! Maximizing utilization by safe route selection (Section 5.3).
//!
//! Binary search on the assigned utilization `α`, with the search space
//! initialized to Theorem 4's `[lower, upper]` bounds. Each probe runs the
//! chosen route selector and keeps the bisection half according to
//! success/failure; the best feasible `α` and its route set are returned.
//!
//! Probes share work where soundness allows:
//!
//! * **Yen candidates** (heuristic selector) are α-independent, so one
//!   [`CandidateCache`] spans all probes of a search.
//! * **SP warm starts** — the shortest-path selector's routes are fixed,
//!   and bisection only probes `mid > lo` where `lo` is the last feasible
//!   α. Raising α only grows `Z`, so the feasible fixed point at `lo` is
//!   below the least fixed point at `mid` and is a sound warm start.

use crate::bounds::utilization_bounds;
use crate::heuristic::{select_routes_cached, CandidateCache, HeuristicConfig, Selection};
use crate::pairs::Pair;
use crate::sp::sp_selection;
use uba_delay::fixed_point::{solve_two_class, SolveConfig};
use uba_delay::routeset::{Route, RouteSet};
use uba_delay::servers::Servers;
use uba_graph::{bfs, Digraph};
use uba_traffic::{ClassId, TrafficClass};

/// Which route-selection strategy the search drives.
#[derive(Clone, Debug)]
pub enum Selector {
    /// Fixed shortest-path routes; only the verification depends on `α`.
    ShortestPath,
    /// The Section 5.2 heuristic, re-run per probe.
    Heuristic(HeuristicConfig),
}

/// Result of the maximum-utilization search.
#[derive(Clone, Debug)]
pub struct MaxUtilResult {
    /// Largest verified-safe utilization found (`0` if even the Theorem 4
    /// lower bound failed).
    pub alpha: f64,
    /// The route selection achieving `alpha` (`None` iff `alpha == 0`).
    pub selection: Option<Selection>,
    /// Theorem 4 bounds that seeded the search.
    pub bounds: (f64, f64),
    /// Every probe as `(alpha, feasible)`, in order.
    pub probes: Vec<(f64, bool)>,
}

/// Runs the Section 5.3 binary search to tolerance `tol` (the paper's
/// experiment reports two decimals; `tol = 0.005` reproduces that).
pub fn max_utilization(
    g: &Digraph,
    servers: &Servers,
    class: &TrafficClass,
    pairs: &[Pair],
    selector: &Selector,
    tol: f64,
) -> MaxUtilResult {
    assert!(tol > 0.0, "tolerance must be positive");
    let diameter = bfs::diameter(g).expect("topology must be strongly connected");
    let fan_in = (0..servers.len())
        .map(|k| servers.fan_in_at(k))
        .max()
        .expect("need at least one server");
    let (lb, ub) = utilization_bounds(fan_in, diameter.max(1), class);

    // Pre-compute SP routes once; they do not depend on alpha.
    let sp_fixed: Option<(Vec<uba_graph::Path>, RouteSet)> = match selector {
        Selector::ShortestPath => {
            let paths = sp_selection(g, pairs).expect("pairs must be connected");
            let mut rs = RouteSet::new(g.edge_count());
            for p in &paths {
                rs.push(Route::from_path(ClassId(0), p));
            }
            Some((paths, rs))
        }
        Selector::Heuristic(_) => None,
    };

    let mut probes = Vec::new();
    // Shared across probes: Yen candidates (α-independent) and, for the
    // fixed SP routes, the last *feasible* probe's fixed point as a warm
    // start for the next, higher probe.
    let mut candidate_cache = CandidateCache::new();
    let mut sp_warm: Option<Vec<f64>> = None;
    let mut probe = |alpha: f64| -> Option<Selection> {
        let result = match selector {
            Selector::ShortestPath => {
                let r = {
                    let (_, rs) = sp_fixed.as_ref().unwrap();
                    solve_two_class(
                        servers,
                        class,
                        alpha,
                        rs,
                        &SolveConfig::default(),
                        sp_warm.as_deref(),
                    )
                };
                if r.outcome.is_safe() {
                    sp_warm = Some(r.delays.clone());
                }
                let (paths, rs) = sp_fixed.as_ref().unwrap();
                r.outcome.is_safe().then(|| Selection {
                    pairs: pairs.to_vec(),
                    paths: paths.clone(),
                    routes: rs.clone(),
                    delays: r.delays,
                    route_delays: r.route_delays,
                })
            }
            Selector::Heuristic(cfg) => select_routes_cached(
                g,
                servers,
                class,
                alpha,
                pairs,
                cfg,
                Some(&mut candidate_cache),
            )
            .ok(),
        };
        uba_obs::trace::global().emit(
            uba_obs::EventKind::SearchProbe,
            0,
            probes.len() as u64,
            u32::MAX,
            alpha,
            if result.is_some() { 1.0 } else { 0.0 },
        );
        probes.push((alpha, result.is_some()));
        result
    };

    let hi_cap = ub.min(1.0 - 1e-9);
    let mut best: Option<(f64, Selection)> = None;
    let (mut lo, mut hi);
    match probe(lb.min(hi_cap)) {
        Some(sel) => {
            lo = lb.min(hi_cap);
            hi = hi_cap;
            best = Some((lo, sel));
        }
        None => {
            lo = 0.0;
            hi = lb.min(hi_cap);
        }
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        match probe(mid) {
            Some(sel) => {
                lo = mid;
                best = Some((mid, sel));
            }
            None => hi = mid,
        }
    }

    match best {
        Some((alpha, selection)) => MaxUtilResult {
            alpha,
            selection: Some(selection),
            bounds: (lb, ub),
            probes,
        },
        None => MaxUtilResult {
            alpha: 0.0,
            selection: None,
            bounds: (lb, ub),
            probes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::all_ordered_pairs;
    use uba_topology::{mci, ring};

    fn voip() -> TrafficClass {
        TrafficClass::voip()
    }

    #[test]
    fn sp_on_ring_within_bounds() {
        let g = ring(6);
        let servers = Servers::uniform(&g, 100e6, 2);
        let pairs = all_ordered_pairs(&g);
        let r = max_utilization(&g, &servers, &voip(), &pairs, &Selector::ShortestPath, 0.01);
        let (lb, ub) = r.bounds;
        assert!(r.alpha > 0.0, "search found nothing");
        assert!(
            r.alpha + 1e-9 >= lb,
            "alpha {} below lower bound {lb}",
            r.alpha
        );
        assert!(
            r.alpha <= ub + 0.01,
            "alpha {} above upper bound {ub}",
            r.alpha
        );
        assert!(r.selection.is_some());
    }

    #[test]
    fn heuristic_beats_or_matches_sp_on_mci_subset() {
        let g = mci();
        let servers = Servers::uniform(&g, 100e6, 6);
        // A subset keeps the test fast; the full experiment is the
        // `table1` bench binary.
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(6).collect();
        let sp = max_utilization(&g, &servers, &voip(), &pairs, &Selector::ShortestPath, 0.01);
        let heur = max_utilization(
            &g,
            &servers,
            &voip(),
            &pairs,
            &Selector::Heuristic(HeuristicConfig::default()),
            0.01,
        );
        assert!(sp.alpha > 0.0 && heur.alpha > 0.0);
        assert!(
            heur.alpha + 1e-9 >= sp.alpha,
            "heuristic {} worse than SP {}",
            heur.alpha,
            sp.alpha
        );
    }

    #[test]
    fn probes_bracket_the_answer() {
        let g = ring(5);
        let servers = Servers::uniform(&g, 100e6, 3);
        let pairs = all_ordered_pairs(&g);
        let r = max_utilization(&g, &servers, &voip(), &pairs, &Selector::ShortestPath, 0.01);
        // Feasible probes are all <= alpha; infeasible all > alpha - tol.
        for &(a, ok) in &r.probes {
            if ok {
                assert!(a <= r.alpha + 1e-12);
            } else {
                assert!(a > r.alpha);
            }
        }
    }

    #[test]
    fn sp_warm_started_search_matches_cold_per_probe() {
        // The search warm-starts SP probes from the last feasible probe;
        // every probe verdict must match an independent cold solve.
        let g = mci();
        let servers = Servers::uniform(&g, 100e6, 6);
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(4).collect();
        let r = max_utilization(
            &g,
            &servers,
            &voip(),
            &pairs,
            &Selector::ShortestPath,
            0.005,
        );
        let paths = sp_selection(&g, &pairs).unwrap();
        let mut rs = RouteSet::new(g.edge_count());
        for p in &paths {
            rs.push(Route::from_path(ClassId(0), p));
        }
        for &(a, feasible) in &r.probes {
            let cold = solve_two_class(&servers, &voip(), a, &rs, &SolveConfig::default(), None);
            assert_eq!(cold.outcome.is_safe(), feasible, "probe at alpha {a}");
        }
    }

    #[test]
    fn result_selection_verifies_at_alpha() {
        let g = ring(6);
        let servers = Servers::uniform(&g, 100e6, 2);
        let pairs = all_ordered_pairs(&g);
        let r = max_utilization(&g, &servers, &voip(), &pairs, &Selector::ShortestPath, 0.02);
        let sel = r.selection.unwrap();
        let check = solve_two_class(
            &servers,
            &voip(),
            r.alpha,
            &sel.routes,
            &SolveConfig::default(),
            None,
        );
        assert!(check.outcome.is_safe());
    }
}
