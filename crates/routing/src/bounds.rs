//! Theorem 4: bounds on the maximum assignable utilization `α*`.
//!
//! For a two-class network of diameter `L`, fan-in `N`, and real-time
//! class `(T, ρ, D)`:
//!
//! * **Lower bound** — at most `L` hops per SP route and `Y ≤ (L−1)·d`
//!   give the per-server recursion `d = β·(T/ρ + (L−1)·d)` with
//!   `β = α(N−1)/(N−α)`; imposing `d·L ≤ D` yields
//!   `α* ≥ N / ((L·T/(ρD) + L−1)(N−1) + 1)`.
//! * **Upper bound** — along a feedback-free route the cumulative delay
//!   satisfies `S_k = (1+β)S_{k−1} + β·T/ρ`, so
//!   `S_L = (T/ρ)((1+β)^L − 1) ≤ D` gives `β ≤ (Dρ/T + 1)^{1/L} − 1`,
//!   hence `α* ≤ N(g−1)/(N+g−2)` with `g = (Dρ/T + 1)^{1/L}`.
//!
//! Both closed forms reproduce the paper's Table 1 (0.30 and 0.61 for the
//! Section 6 parameters); see `DESIGN.md` §2 for the OCR-correction notes.
//! Values are clamped to `[0, 1]` since `α` is a bandwidth fraction.

use uba_traffic::TrafficClass;

/// Converts a `β = α(N−1)/(N−α)` cap into the corresponding `α` cap:
/// `α = β·N / (N−1+β)`.
fn alpha_from_beta(beta: f64, n: f64) -> f64 {
    (beta * n / (n - 1.0 + beta)).clamp(0.0, 1.0)
}

/// Theorem 4 lower bound on `α*` (guaranteed achievable by shortest-path
/// routing in any topology of diameter `L` and fan-in `N`).
pub fn alpha_lower_bound(fan_in: usize, diameter: usize, class: &TrafficClass) -> f64 {
    assert!(fan_in >= 2, "bounds need N >= 2");
    assert!(diameter >= 1, "bounds need L >= 1");
    let n = fan_in as f64;
    let l = diameter as f64;
    let x = l * class.burst_time() / class.deadline + (l - 1.0);
    // β cap: β ≤ 1/x; α = βN/(N−1+β).
    alpha_from_beta(1.0 / x, n)
}

/// Theorem 4 upper bound on `α*` (no route selection can exceed this).
pub fn alpha_upper_bound(fan_in: usize, diameter: usize, class: &TrafficClass) -> f64 {
    assert!(fan_in >= 2, "bounds need N >= 2");
    assert!(diameter >= 1, "bounds need L >= 1");
    let n = fan_in as f64;
    let l = diameter as f64;
    let g = (class.deadline / class.burst_time() + 1.0).powf(1.0 / l);
    alpha_from_beta(g - 1.0, n)
}

/// Both Theorem 4 bounds as `(lower, upper)`.
///
/// # Examples
/// ```
/// use uba_routing::bounds::utilization_bounds;
/// use uba_traffic::TrafficClass;
/// // The paper's Table 1 bounds for the MCI/VoIP setting.
/// let (lb, ub) = utilization_bounds(6, 4, &TrafficClass::voip());
/// assert!((lb - 0.30).abs() < 0.005);
/// assert!((ub - 0.61).abs() < 0.005);
/// ```
pub fn utilization_bounds(fan_in: usize, diameter: usize, class: &TrafficClass) -> (f64, f64) {
    (
        alpha_lower_bound(fan_in, diameter, class),
        alpha_upper_bound(fan_in, diameter, class),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_traffic::{LeakyBucket, TrafficClass};

    /// The paper's Section 6 parameters reproduce Table 1's bounds.
    #[test]
    fn table1_bounds() {
        let voip = TrafficClass::voip();
        let (lb, ub) = utilization_bounds(6, 4, &voip);
        assert!((lb - 0.30).abs() < 0.005, "lower bound {lb} != 0.30");
        assert!((ub - 0.61).abs() < 0.005, "upper bound {ub} != 0.61");
    }

    #[test]
    fn lower_below_upper() {
        let voip = TrafficClass::voip();
        for n in 2..12 {
            for l in 1..8 {
                let (lb, ub) = utilization_bounds(n, l, &voip);
                assert!(lb <= ub + 1e-12, "lb {lb} > ub {ub} at N={n}, L={l}");
                assert!((0.0..=1.0).contains(&lb));
                assert!((0.0..=1.0).contains(&ub));
            }
        }
    }

    /// At L = 1 the two derivations coincide: a single hop has no jitter
    /// and no feedback, so the bound is exact.
    #[test]
    fn bounds_coincide_at_diameter_one() {
        let voip = TrafficClass::voip();
        for n in 2..10 {
            let (lb, ub) = utilization_bounds(n, 1, &voip);
            assert!((lb - ub).abs() < 1e-12, "N={n}: lb {lb} != ub {ub}");
        }
    }

    #[test]
    fn bounds_shrink_with_diameter() {
        let voip = TrafficClass::voip();
        let mut prev_lb = f64::INFINITY;
        let mut prev_ub = f64::INFINITY;
        for l in 1..10 {
            let (lb, ub) = utilization_bounds(6, l, &voip);
            assert!(lb <= prev_lb + 1e-12);
            assert!(ub <= prev_ub + 1e-12);
            prev_lb = lb;
            prev_ub = ub;
        }
    }

    #[test]
    fn bounds_grow_with_deadline() {
        let mk = |d: f64| TrafficClass::new("v", LeakyBucket::new(640.0, 32_000.0), d);
        let (lb1, ub1) = utilization_bounds(6, 4, &mk(0.05));
        let (lb2, ub2) = utilization_bounds(6, 4, &mk(0.2));
        assert!(lb2 > lb1);
        assert!(ub2 > ub1);
    }

    #[test]
    fn generous_deadline_saturates_at_one() {
        let cls = TrafficClass::new("slow", LeakyBucket::new(64.0, 64_000.0), 100.0);
        let (lb, ub) = utilization_bounds(6, 1, &cls);
        assert_eq!(ub, 1.0);
        assert_eq!(lb, 1.0);
    }

    #[test]
    #[should_panic(expected = "N >= 2")]
    fn fan_in_one_rejected() {
        alpha_lower_bound(1, 4, &TrafficClass::voip());
    }
}
