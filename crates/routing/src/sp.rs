//! Shortest-path route selection — the paper's comparison baseline.
//!
//! One Dijkstra tree per distinct source, deterministic tie-breaks, hop
//! metric (all topology links have unit weight).

use crate::pairs::Pair;
use uba_graph::{dijkstra, Digraph, Path};

/// Shortest-path routes for the given pairs, in pair order.
///
/// Returns `Err(pair)` for the first pair with no route at all.
pub fn sp_selection(g: &Digraph, pairs: &[Pair]) -> Result<Vec<Path>, Pair> {
    let mut tree_by_src: Vec<Option<dijkstra::ShortestPaths>> = vec![None; g.node_count()];
    let mut out = Vec::with_capacity(pairs.len());
    for p in pairs {
        let slot = &mut tree_by_src[p.src.index()];
        if slot.is_none() {
            *slot = Some(dijkstra::dijkstra(g, p.src));
        }
        match slot.as_ref().unwrap().path_to(g, p.dst) {
            Some(path) => out.push(path),
            None => return Err(*p),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::all_ordered_pairs;
    use uba_graph::NodeId;
    use uba_topology::{mci, ring};

    #[test]
    fn routes_cover_all_pairs() {
        let g = mci();
        let pairs = all_ordered_pairs(&g);
        let routes = sp_selection(&g, &pairs).unwrap();
        assert_eq!(routes.len(), pairs.len());
        for (p, r) in pairs.iter().zip(&routes) {
            assert_eq!(r.source(), Some(p.src));
            assert_eq!(r.target(), Some(p.dst));
            assert!(r.len() <= 4, "SP route longer than the diameter");
            assert!(r.is_simple());
        }
    }

    #[test]
    fn ring_routes_take_short_side() {
        let g = ring(6);
        let pairs = vec![Pair {
            src: NodeId(0),
            dst: NodeId(2),
        }];
        let routes = sp_selection(&g, &pairs).unwrap();
        assert_eq!(routes[0].len(), 2);
    }

    #[test]
    fn unreachable_pair_reported() {
        let mut g = ring(4);
        let island = g.add_node("island");
        let bad = Pair {
            src: NodeId(0),
            dst: island,
        };
        assert_eq!(sp_selection(&g, &[bad]), Err(bad));
    }

    #[test]
    fn deterministic() {
        let g = mci();
        let pairs = all_ordered_pairs(&g);
        let a = sp_selection(&g, &pairs).unwrap();
        let b = sp_selection(&g, &pairs).unwrap();
        assert_eq!(a, b);
    }
}
