//! Route selection for utilization-based admission control (Sections
//! 5.2–5.3 of the paper).
//!
//! * [`bounds`] — Theorem 4's topology-independent bounds on the maximum
//!   assignable utilization `α*`.
//! * [`pairs`] — source/destination pair enumeration and the
//!   decreasing-distance ordering (heuristic (1) of Section 5.2).
//! * [`sp`] — the shortest-path baseline selector the paper compares
//!   against.
//! * [`heuristic`] — the safe route selection heuristic: candidate routes
//!   from Yen's algorithm, acyclicity preference on the route-dependency
//!   graph, minimum-delay choice, no backtracking. Every sub-heuristic is
//!   individually switchable for the ablation experiment A-RS.
//! * [`search`] — the Section 5.3 binary search for the maximum safe
//!   utilization, seeded with the Theorem 4 bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod census;
pub mod heuristic;
pub mod multiclass;
pub mod pairs;
pub mod reconfigure;
pub mod search;
pub mod sp;

pub use bounds::{alpha_lower_bound, alpha_upper_bound, utilization_bounds};
pub use heuristic::{select_routes, HeuristicConfig, Selection, SelectionError};
pub use multiclass::{
    max_utilization_ray, select_routes_multiclass, Demand, MultiSelection, RaySearchResult,
};
pub use pairs::{all_ordered_pairs, order_pairs_by_distance, Pair};
pub use reconfigure::{Configuration, FailureReport};
pub use search::{max_utilization, MaxUtilResult, Selector};
pub use sp::sp_selection;
