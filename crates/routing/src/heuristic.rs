//! Safe route selection (Section 5.2).
//!
//! A no-backtrack greedy search over source/destination pairs:
//!
//! 1. pairs are visited in decreasing order of shortest-path distance;
//! 2. for each pair, up to `k` candidate routes come from Yen's
//!    k-shortest-paths; candidates that keep the route-dependency graph
//!    acyclic are preferred (queueing feedback inflates delays — Section
//!    5.2's "noncyclic graph with existing routes");
//! 3. among candidates that verify *safe* (every committed route still
//!    meets its deadline under the Theorem 3 fixed point), the one with
//!    the minimum own end-to-end delay is committed.
//!
//! If no candidate is safe, the algorithm declares failure (the paper's
//! FAILURE outcome) — safe route selection is NP-hard, so this heuristic
//! is deliberately greedy.
//!
//! Every sub-heuristic can be disabled independently (experiment A-RS),
//! and candidate verification fans out across threads: each candidate's
//! fixed-point solve is independent, warm-started from the committed
//! routes' fixed point (sound: adding a route only grows `Z`).

use crate::pairs::{order_pairs_by_distance, Pair};
use std::collections::HashMap;
use uba_delay::fixed_point::{
    solve_two_class, solve_two_class_with, with_thread_scratch, SolveConfig,
};
use uba_delay::routeset::{Route, RouteSet};
use uba_delay::servers::Servers;
use uba_graph::par::par_map;
use uba_graph::{k_shortest_paths_filtered, Digraph, DynDigraph, EdgeId, Path};
use uba_traffic::{ClassId, TrafficClass};

/// Per-pair Yen candidate cache. Candidates depend only on the topology
/// and the pair — not on `α` or the committed routes — so a caller
/// re-running selection (the §5.3 binary search) computes them once and
/// shares them across probes. Only valid with an unrestricted `edge_ok`.
pub(crate) type CandidateCache = HashMap<(u32, u32), Vec<Path>>;

/// A verified candidate outcome: (own route delay, per-server delays,
/// per-route delays).
type CandidateFit = (f64, Vec<f64>, Vec<f64>);

/// Tunables for the safe-route-selection heuristic.
#[derive(Clone, Debug)]
pub struct HeuristicConfig {
    /// Candidate routes per pair (Yen's k). Default 8.
    pub k_candidates: usize,
    /// Heuristic (1): visit pairs in decreasing distance order.
    pub order_by_distance: bool,
    /// Heuristic (2): prefer candidates keeping the route-dependency
    /// graph acyclic.
    pub prefer_acyclic: bool,
    /// Heuristic (3): among safe candidates pick the minimum-delay one
    /// (`false` = first safe candidate, i.e. shortest).
    pub min_delay_choice: bool,
    /// Fixed-point solver settings.
    pub solver: SolveConfig,
    /// Threads for parallel candidate verification.
    pub threads: usize,
    /// Evaluate candidates as zero-clone *tentative* overlays against the
    /// committed route set (default). `false` retains the pre-optimization
    /// clone-and-push reference path — kept for the `config_speed` perf
    /// gate and the equivalence tests.
    pub tentative_eval: bool,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        Self {
            k_candidates: 8,
            order_by_distance: true,
            prefer_acyclic: true,
            min_delay_choice: true,
            solver: SolveConfig::default(),
            threads: 1,
            tentative_eval: true,
        }
    }
}

/// Why selection failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionError {
    /// The topology has no route at all for this pair.
    NoRoute(Pair),
    /// Routes exist but none verifies safe at this utilization.
    NoSafeRoute(Pair),
}

/// A successful route selection.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Pairs in the order they were routed.
    pub pairs: Vec<Pair>,
    /// Chosen route per pair (same order).
    pub paths: Vec<Path>,
    /// The committed route set (class 0, same order).
    pub routes: RouteSet,
    /// Per-server delay bounds at the final fixed point.
    pub delays: Vec<f64>,
    /// Per-route end-to-end delays at the final fixed point.
    pub route_delays: Vec<f64>,
}

impl Selection {
    /// Worst route slack `min(D − delay)`; `+∞` with no routes.
    pub fn worst_slack(&self, deadline: f64) -> f64 {
        self.route_delays
            .iter()
            .map(|&rd| deadline - rd)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Chooses one pair's route against the committed state, per the three
/// sub-heuristics; on success returns the chosen path together with the
/// resulting per-server delays and per-route delays (the new fixed
/// point). Shared by bulk selection and incremental reconfiguration.
///
/// `edge_ok` restricts candidate routes (used to avoid failed links);
/// the overlay is only *read* (cycle queries), never committed.
/// `precomputed` supplies the pair's Yen candidates when the caller has
/// cached them (they must have been computed with the same `edge_ok`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn choose_route(
    g: &Digraph,
    servers: &Servers,
    class: &TrafficClass,
    alpha: f64,
    routes: &RouteSet,
    overlay: &mut DynDigraph,
    base_delays: &[f64],
    pair: Pair,
    cfg: &HeuristicConfig,
    edge_ok: &(dyn Fn(EdgeId) -> bool + Sync),
    precomputed: Option<&[Path]>,
) -> Result<(Path, Vec<f64>, Vec<f64>), SelectionError> {
    let computed;
    let candidates: &[Path] = match precomputed {
        Some(c) => c,
        None => {
            computed = k_shortest_paths_filtered(g, pair.src, pair.dst, cfg.k_candidates, edge_ok);
            &computed
        }
    };
    if candidates.is_empty() {
        return Err(SelectionError::NoRoute(pair));
    }
    // Heuristic (2): keep only feedback-free candidates when possible.
    let chains: Vec<Vec<usize>> = candidates
        .iter()
        .map(|p| p.edges.iter().map(|e| e.index()).collect())
        .collect();
    let pool: Vec<usize> = if cfg.prefer_acyclic {
        let acyclic: Vec<usize> = (0..candidates.len())
            .filter(|&i| !overlay.chain_would_create_cycle(&chains[i]))
            .collect();
        if acyclic.is_empty() {
            (0..candidates.len()).collect()
        } else {
            acyclic
        }
    } else {
        (0..candidates.len()).collect()
    };

    // Verify candidates (in parallel when configured); each evaluation is
    // a warm-started fixed-point solve with the candidate appended.
    let evaluate = |pi: usize| -> Option<CandidateFit> {
        let ci = pool[pi];
        let tentative = Route::from_path(ClassId(0), &candidates[ci]);
        let r = if cfg.tentative_eval {
            // Zero-clone: the candidate rides along as a borrowed overlay
            // and all iteration buffers come from the thread's arena.
            with_thread_scratch(|sc| {
                solve_two_class_with(
                    servers,
                    class,
                    alpha,
                    routes,
                    Some(&tentative),
                    &cfg.solver,
                    Some(base_delays),
                    sc,
                )
            })
        } else {
            let mut trial = routes.clone();
            trial.push(tentative);
            solve_two_class(
                servers,
                class,
                alpha,
                &trial,
                &cfg.solver,
                Some(base_delays),
            )
        };
        if r.outcome.is_safe() {
            let own = *r.route_delays.last().unwrap();
            Some((own, r.delays, r.route_delays))
        } else {
            None
        }
    };
    let results: Vec<Option<CandidateFit>> = if cfg.threads > 1 {
        par_map(pool.len(), cfg.threads.min(pool.len()), evaluate)
    } else {
        (0..pool.len()).map(evaluate).collect()
    };

    let chosen = if cfg.min_delay_choice {
        results
            .iter()
            .enumerate()
            .filter_map(|(pi, r)| r.as_ref().map(|r| (pi, r.0)))
            .min_by(|(ia, da), (ib, db)| da.total_cmp(db).then_with(|| ia.cmp(ib)))
            .map(|(pi, _)| pi)
    } else {
        results.iter().position(Option::is_some)
    };
    let Some(pi) = chosen else {
        return Err(SelectionError::NoSafeRoute(pair));
    };
    let ci = pool[pi];
    let (_, delays, route_delays) = results[pi].clone().unwrap();
    Ok((candidates[ci].clone(), delays, route_delays))
}

/// Runs safe route selection for the two-class system at utilization
/// `alpha`.
pub fn select_routes(
    g: &Digraph,
    servers: &Servers,
    class: &TrafficClass,
    alpha: f64,
    pairs: &[Pair],
    cfg: &HeuristicConfig,
) -> Result<Selection, SelectionError> {
    select_routes_cached(g, servers, class, alpha, pairs, cfg, None)
}

/// [`select_routes`] with an optional cross-call Yen candidate cache —
/// the §5.3 binary search re-runs selection per probe, and the candidates
/// are α-independent.
pub(crate) fn select_routes_cached(
    g: &Digraph,
    servers: &Servers,
    class: &TrafficClass,
    alpha: f64,
    pairs: &[Pair],
    cfg: &HeuristicConfig,
    mut cache: Option<&mut CandidateCache>,
) -> Result<Selection, SelectionError> {
    let ordered: Vec<Pair> = if cfg.order_by_distance {
        order_pairs_by_distance(g, pairs)
    } else {
        pairs.to_vec()
    };

    let mut routes = RouteSet::new(g.edge_count());
    let mut overlay = DynDigraph::new(g.edge_count());
    let mut base_delays = vec![0.0f64; g.edge_count()];
    let mut base_route_delays: Vec<f64> = Vec::new();
    let mut out_pairs = Vec::with_capacity(ordered.len());
    let mut out_paths = Vec::with_capacity(ordered.len());

    for pair in ordered {
        let precomputed: Option<&[Path]> = match cache.as_deref_mut() {
            Some(c) => Some(
                c.entry((pair.src.0, pair.dst.0))
                    .or_insert_with(|| {
                        k_shortest_paths_filtered(g, pair.src, pair.dst, cfg.k_candidates, |_| true)
                    })
                    .as_slice(),
            ),
            None => None,
        };
        let (path, delays, route_delays) = choose_route(
            g,
            servers,
            class,
            alpha,
            &routes,
            &mut overlay,
            &base_delays,
            pair,
            cfg,
            &|_| true,
            precomputed,
        )?;
        routes.push(Route::from_path(ClassId(0), &path));
        let chain: Vec<usize> = path.edges.iter().map(|e| e.index()).collect();
        overlay.add_chain(&chain);
        base_delays = delays;
        base_route_delays = route_delays;
        out_pairs.push(pair);
        out_paths.push(path);
    }

    Ok(Selection {
        pairs: out_pairs,
        paths: out_paths,
        routes,
        delays: base_delays,
        route_delays: base_route_delays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::all_ordered_pairs;
    use uba_topology::{mci, ring};

    fn voip() -> TrafficClass {
        TrafficClass::voip()
    }

    fn mci_setup() -> (Digraph, Servers) {
        let g = mci();
        let servers = Servers::uniform(&g, 100e6, 6);
        (g, servers)
    }

    #[test]
    fn selects_all_pairs_at_low_alpha() {
        let (g, servers) = mci_setup();
        let pairs = all_ordered_pairs(&g);
        let sel = select_routes(
            &g,
            &servers,
            &voip(),
            0.1,
            &pairs,
            &HeuristicConfig::default(),
        )
        .expect("low alpha must be routable");
        assert_eq!(sel.paths.len(), pairs.len());
        assert!(sel.worst_slack(0.1) > 0.0);
        for (p, path) in sel.pairs.iter().zip(&sel.paths) {
            assert_eq!(path.source(), Some(p.src));
            assert_eq!(path.target(), Some(p.dst));
        }
    }

    #[test]
    fn fails_at_absurd_alpha() {
        let (g, servers) = mci_setup();
        let pairs = all_ordered_pairs(&g);
        let r = select_routes(
            &g,
            &servers,
            &voip(),
            0.99,
            &pairs,
            &HeuristicConfig::default(),
        );
        assert!(matches!(r, Err(SelectionError::NoSafeRoute(_))));
    }

    #[test]
    fn no_route_reported_for_disconnected_pair() {
        let mut g = ring(4);
        let island = g.add_node("island");
        let servers = Servers::uniform(&g, 100e6, 6);
        let pairs = vec![Pair {
            src: uba_graph::NodeId(0),
            dst: island,
        }];
        let r = select_routes(
            &g,
            &servers,
            &voip(),
            0.1,
            &pairs,
            &HeuristicConfig::default(),
        );
        assert!(matches!(r, Err(SelectionError::NoRoute(_))));
    }

    #[test]
    fn parallel_matches_serial() {
        let (g, servers) = mci_setup();
        // A manageable subset of pairs.
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(9).collect();
        let serial = select_routes(
            &g,
            &servers,
            &voip(),
            0.3,
            &pairs,
            &HeuristicConfig::default(),
        )
        .unwrap();
        let cfg = HeuristicConfig {
            threads: 4,
            ..Default::default()
        };
        let parallel = select_routes(&g, &servers, &voip(), 0.3, &pairs, &cfg).unwrap();
        assert_eq!(serial.paths, parallel.paths);
    }

    #[test]
    fn deterministic() {
        let (g, servers) = mci_setup();
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(7).collect();
        let a = select_routes(
            &g,
            &servers,
            &voip(),
            0.25,
            &pairs,
            &HeuristicConfig::default(),
        )
        .unwrap();
        let b = select_routes(
            &g,
            &servers,
            &voip(),
            0.25,
            &pairs,
            &HeuristicConfig::default(),
        )
        .unwrap();
        assert_eq!(a.paths, b.paths);
    }

    #[test]
    fn ablated_config_still_routes_low_alpha() {
        let (g, servers) = mci_setup();
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(11).collect();
        let cfg = HeuristicConfig {
            order_by_distance: false,
            prefer_acyclic: false,
            min_delay_choice: false,
            k_candidates: 1,
            ..Default::default()
        };
        let sel = select_routes(&g, &servers, &voip(), 0.1, &pairs, &cfg).unwrap();
        assert_eq!(sel.paths.len(), pairs.len());
        // k=1 without min-delay is exactly shortest-path routing.
        for path in &sel.paths {
            assert!(path.len() <= 4);
        }
    }

    #[test]
    fn tentative_eval_matches_clone_reference() {
        let (g, servers) = mci_setup();
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(8).collect();
        for &alpha in &[0.2, 0.35, 0.5] {
            let fast = select_routes(
                &g,
                &servers,
                &voip(),
                alpha,
                &pairs,
                &HeuristicConfig::default(),
            );
            let reference_cfg = HeuristicConfig {
                tentative_eval: false,
                ..Default::default()
            };
            let reference = select_routes(&g, &servers, &voip(), alpha, &pairs, &reference_cfg);
            match (fast, reference) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.paths, b.paths, "alpha {alpha}");
                    assert_eq!(a.delays, b.delays, "alpha {alpha}");
                    assert_eq!(a.route_delays, b.route_delays, "alpha {alpha}");
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                (a, b) => panic!("outcomes diverge at alpha {alpha}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn candidate_cache_matches_uncached() {
        let (g, servers) = mci_setup();
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(10).collect();
        let cfg = HeuristicConfig::default();
        let plain = select_routes(&g, &servers, &voip(), 0.3, &pairs, &cfg).unwrap();
        let mut cache = CandidateCache::new();
        // Two runs through the same cache: second run hits every entry.
        let first =
            select_routes_cached(&g, &servers, &voip(), 0.3, &pairs, &cfg, Some(&mut cache))
                .unwrap();
        assert_eq!(cache.len(), pairs.len());
        let second =
            select_routes_cached(&g, &servers, &voip(), 0.3, &pairs, &cfg, Some(&mut cache))
                .unwrap();
        assert_eq!(plain.paths, first.paths);
        assert_eq!(plain.paths, second.paths);
        assert_eq!(plain.route_delays, first.route_delays);
        assert_eq!(plain.route_delays, second.route_delays);
    }

    #[test]
    fn committed_routes_meet_deadline() {
        let (g, servers) = mci_setup();
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(5).collect();
        let sel = select_routes(
            &g,
            &servers,
            &voip(),
            0.35,
            &pairs,
            &HeuristicConfig::default(),
        )
        .unwrap();
        for &rd in &sel.route_delays {
            assert!(rd <= 0.1 + 1e-9, "route delay {rd} exceeds deadline");
        }
    }
}
