//! Route-structure census: the quantities that drive the fixed point.
//!
//! Under the paper's analysis (uniform `N`, one class), every server's
//! delay is the same function of its upstream-jitter term `Y_k`, and
//! `Y_k` is a max over *route prefixes*. The structure that decides how
//! much utilization verifies is therefore: how long are routes, and how
//! deep are the prefixes feeding each server ("mixing depth"). This
//! module measures both — it is the tool behind the EXPERIMENTS.md §T1
//! explanation of why SP's achievable α differs between MCI renderings.

use uba_delay::routeset::RouteSet;

/// Per-server route-structure statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerCensus {
    /// Number of route traversals of this server.
    pub routes_crossing: usize,
    /// Deepest upstream prefix (hops already traveled) among arrivals.
    pub max_prefix_hops: usize,
    /// Mean upstream prefix depth over arrivals.
    pub mean_prefix_hops: f64,
}

/// Whole-route-set census.
#[derive(Clone, Debug, Default)]
pub struct RouteCensus {
    /// Per-server statistics (dense, by raw server index).
    pub per_server: Vec<ServerCensus>,
    /// `route_lengths[h]` = number of routes with `h` hops.
    pub route_lengths: Vec<usize>,
    /// For each route: the mean over its hops of the *server-level*
    /// `max_prefix_hops` — the route's mixing depth. The worst route's
    /// mixing depth predicts where the binding deadline constraint sits.
    pub route_mixing_depth: Vec<f64>,
}

impl RouteCensus {
    /// Mixing depth of the deepest route (0 for an empty set).
    pub fn worst_mixing_depth(&self) -> f64 {
        self.route_mixing_depth.iter().cloned().fold(0.0, f64::max)
    }

    /// Longest route length in hops.
    pub fn max_route_length(&self) -> usize {
        self.route_lengths
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(h, _)| h)
            .unwrap_or(0)
    }
}

/// Computes the census for a route set (all classes together — prefix
/// structure is what the fixed point sees).
pub fn census(routes: &RouteSet) -> RouteCensus {
    let s = routes.server_count();
    let mut crossing = vec![0usize; s];
    let mut max_prefix = vec![0usize; s];
    let mut sum_prefix = vec![0usize; s];
    let mut route_lengths = Vec::new();
    for r in routes.routes() {
        let len = r.servers.len();
        if route_lengths.len() <= len {
            route_lengths.resize(len + 1, 0);
        }
        route_lengths[len] += 1;
        for (p, &k) in r.servers.iter().enumerate() {
            let k = k as usize;
            crossing[k] += 1;
            sum_prefix[k] += p;
            max_prefix[k] = max_prefix[k].max(p);
        }
    }
    let per_server: Vec<ServerCensus> = (0..s)
        .map(|k| ServerCensus {
            routes_crossing: crossing[k],
            max_prefix_hops: max_prefix[k],
            mean_prefix_hops: if crossing[k] > 0 {
                sum_prefix[k] as f64 / crossing[k] as f64
            } else {
                0.0
            },
        })
        .collect();
    let route_mixing_depth = routes
        .routes()
        .iter()
        .map(|r| {
            if r.servers.is_empty() {
                0.0
            } else {
                r.servers
                    .iter()
                    .map(|&k| per_server[k as usize].max_prefix_hops as f64)
                    .sum::<f64>()
                    / r.servers.len() as f64
            }
        })
        .collect();
    RouteCensus {
        per_server,
        route_lengths,
        route_mixing_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_delay::routeset::Route;
    use uba_traffic::ClassId;

    fn rs(server_count: usize, routes: &[&[u32]]) -> RouteSet {
        let mut set = RouteSet::new(server_count);
        for servers in routes {
            set.push(Route {
                class: ClassId(0),
                servers: servers.to_vec(),
            });
        }
        set
    }

    #[test]
    fn single_route_census() {
        let set = rs(4, &[&[0, 1, 2, 3]]);
        let c = census(&set);
        assert_eq!(c.per_server[0].routes_crossing, 1);
        assert_eq!(c.per_server[0].max_prefix_hops, 0);
        assert_eq!(c.per_server[3].max_prefix_hops, 3);
        assert_eq!(c.route_lengths[4], 1);
        assert_eq!(c.max_route_length(), 4);
        // Mixing depth of the route: (0+1+2+3)/4 = 1.5.
        assert!((c.worst_mixing_depth() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn crossing_routes_raise_prefixes() {
        // Route B arrives at server 2 with a 2-hop prefix; route A's
        // first hop there now sits behind depth-2 mixing.
        let set = rs(4, &[&[2, 3], &[0, 1, 2]]);
        let c = census(&set);
        assert_eq!(c.per_server[2].routes_crossing, 2);
        assert_eq!(c.per_server[2].max_prefix_hops, 2);
        assert!((c.per_server[2].mean_prefix_hops - 1.0).abs() < 1e-12);
        // Route A's mixing depth: (2 + 1)/2 = 1.5 (server 3 sees prefix 1
        // from route A itself).
        assert!((c.route_mixing_depth[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_set() {
        let c = census(&RouteSet::new(3));
        assert_eq!(c.worst_mixing_depth(), 0.0);
        assert_eq!(c.max_route_length(), 0);
        assert!(c.per_server.iter().all(|s| s.routes_crossing == 0));
    }
}
