//! Incremental reconfiguration of a committed configuration.
//!
//! The paper invokes configuration "at system startup or after
//! renegotiation of service level agreements" (Section 4). In operation
//! that renegotiation is rarely a from-scratch rerun: pairs are added or
//! retired one at a time, and links fail. This module maintains a live
//! [`Configuration`] that supports:
//!
//! * [`Configuration::add_pair`] — route one more pair, warm-started from
//!   the committed fixed point (sound: adding a route only grows `Z`);
//! * [`Configuration::remove_pair`] — retire a pair (delays re-solved
//!   from scratch: shrinking the route set shrinks the least fixed point,
//!   so the old delays are *not* a valid warm start);
//! * [`Configuration::fail_link`] — withdraw a physical link and re-route
//!   every affected pair around it, re-verifying safety.
//!
//! Edge (server) ids never change across reconfigurations — failures are
//! expressed as an avoid-set, keeping `Servers`, route sets, and the
//! admission controller's counters stable.

use crate::heuristic::{choose_route, HeuristicConfig, Selection, SelectionError};
use crate::pairs::Pair;
use std::collections::HashSet;
use uba_admission::{BackendKind, ConfigGeneration, RoutingTable};
use uba_delay::fixed_point::{solve_two_class, SolveConfig};
use uba_delay::routeset::{Route, RouteSet};
use uba_delay::servers::Servers;
use uba_graph::{Digraph, DynDigraph, EdgeId, NodeId, Path};
use uba_traffic::{ClassId, ClassSet, TrafficClass};

/// A live, incrementally maintained single-class configuration.
#[derive(Clone, Debug)]
pub struct Configuration {
    g: Digraph,
    servers: Servers,
    class: TrafficClass,
    alpha: f64,
    cfg: HeuristicConfig,
    pairs: Vec<Pair>,
    paths: Vec<Path>,
    routes: RouteSet,
    overlay: DynDigraph,
    delays: Vec<f64>,
    route_delays: Vec<f64>,
    failed: HashSet<EdgeId>,
}

/// What a link failure recovery did.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Pairs whose routes crossed the failed link and were re-routed.
    pub rerouted: Vec<Pair>,
    /// Worst route delay after recovery.
    pub worst_route_delay: f64,
}

impl Configuration {
    /// Adopts a bulk [`Selection`] as the starting configuration.
    pub fn from_selection(
        g: Digraph,
        servers: Servers,
        class: TrafficClass,
        alpha: f64,
        cfg: HeuristicConfig,
        sel: Selection,
    ) -> Self {
        let mut overlay = DynDigraph::new(g.edge_count());
        for p in &sel.paths {
            let chain: Vec<usize> = p.edges.iter().map(|e| e.index()).collect();
            overlay.add_chain(&chain);
        }
        Self {
            g,
            servers,
            class,
            alpha,
            cfg,
            pairs: sel.pairs,
            paths: sel.paths,
            routes: sel.routes,
            overlay,
            delays: sel.delays,
            route_delays: sel.route_delays,
            failed: HashSet::new(),
        }
    }

    /// The committed pairs.
    pub fn pairs(&self) -> &[Pair] {
        &self.pairs
    }

    /// The committed route of each pair (same order as [`Self::pairs`]).
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Per-route end-to-end delay bounds.
    pub fn route_delays(&self) -> &[f64] {
        &self.route_delays
    }

    /// Links currently marked failed (directed edge ids).
    pub fn failed_links(&self) -> &HashSet<EdgeId> {
        &self.failed
    }

    /// Routes one additional pair; the committed configuration is
    /// untouched on failure.
    pub fn add_pair(&mut self, pair: Pair) -> Result<(), SelectionError> {
        let edge_ok = {
            let failed = self.failed.clone();
            move |e: EdgeId| !failed.contains(&e)
        };
        let (path, delays, route_delays) = choose_route(
            &self.g,
            &self.servers,
            &self.class,
            self.alpha,
            &self.routes,
            &mut self.overlay,
            &self.delays,
            pair,
            &self.cfg,
            &edge_ok,
            None,
        )?;
        self.commit(pair, path, delays, route_delays);
        Ok(())
    }

    fn commit(&mut self, pair: Pair, path: Path, delays: Vec<f64>, route_delays: Vec<f64>) {
        self.routes.push(Route::from_path(ClassId(0), &path));
        let chain: Vec<usize> = path.edges.iter().map(|e| e.index()).collect();
        self.overlay.add_chain(&chain);
        self.pairs.push(pair);
        self.paths.push(path);
        self.delays = delays;
        self.route_delays = route_delays;
    }

    /// Retires every committed route of `pair` (there is normally one).
    /// Returns how many routes were removed. Delays are re-solved from
    /// scratch (the fixed point shrinks, so the old vector would be an
    /// over-estimate, not a warm start).
    pub fn remove_pair(&mut self, pair: Pair) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < self.pairs.len() {
            if self.pairs[i] == pair {
                let path = self.paths.remove(i);
                self.pairs.remove(i);
                let chain: Vec<usize> = path.edges.iter().map(|e| e.index()).collect();
                self.overlay.remove_chain(&chain);
                removed += 1;
            } else {
                i += 1;
            }
        }
        if removed > 0 {
            self.rebuild_routes_and_solve();
        }
        removed
    }

    fn rebuild_routes_and_solve(&mut self) {
        let mut routes = RouteSet::new(self.g.edge_count());
        for p in &self.paths {
            routes.push(Route::from_path(ClassId(0), p));
        }
        self.routes = routes;
        let r = solve_two_class(
            &self.servers,
            &self.class,
            self.alpha,
            &self.routes,
            &SolveConfig::default(),
            None,
        );
        debug_assert!(
            r.outcome.is_safe(),
            "shrinking a safe configuration cannot make it unsafe"
        );
        self.delays = r.delays;
        self.route_delays = r.route_delays;
    }

    /// Fails the physical link between routers `a` and `b` (both directed
    /// edges) and re-routes every pair whose committed route crossed it.
    ///
    /// Re-routing goes in decreasing-distance order through the same
    /// safety oracle as initial selection. On `Err`, the configuration is
    /// left with the failure applied and the *unaffected* routes intact;
    /// the offending pair is reported so the operator can shed it.
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) -> Result<FailureReport, SelectionError> {
        let mut newly_failed = Vec::new();
        for e in self.g.edges() {
            let (s, t) = (self.g.src(e), self.g.dst(e));
            if (s == a && t == b) || (s == b && t == a) {
                newly_failed.push(e);
            }
        }
        for &e in &newly_failed {
            self.failed.insert(e);
        }

        // Detach affected pairs.
        let mut affected: Vec<Pair> = Vec::new();
        let mut i = 0;
        while i < self.paths.len() {
            if self.paths[i].edges.iter().any(|e| self.failed.contains(e)) {
                let path = self.paths.remove(i);
                affected.push(self.pairs.remove(i));
                let chain: Vec<usize> = path.edges.iter().map(|e| e.index()).collect();
                self.overlay.remove_chain(&chain);
            } else {
                i += 1;
            }
        }
        self.rebuild_routes_and_solve();

        // Re-route, longest pairs first (same ordering heuristic).
        let ordered = crate::pairs::order_pairs_by_distance(&self.g, &affected);
        let mut rerouted = Vec::with_capacity(ordered.len());
        for pair in ordered {
            let edge_ok = {
                let failed = self.failed.clone();
                move |e: EdgeId| !failed.contains(&e)
            };
            let (path, delays, route_delays) = choose_route(
                &self.g,
                &self.servers,
                &self.class,
                self.alpha,
                &self.routes,
                &mut self.overlay,
                &self.delays,
                pair,
                &self.cfg,
                &edge_ok,
                None,
            )?;
            self.commit(pair, path, delays, route_delays);
            rerouted.push(pair);
        }
        Ok(FailureReport {
            rerouted,
            worst_route_delay: self.route_delays.iter().cloned().fold(0.0, f64::max),
        })
    }

    /// Restores a previously failed physical link (both directions).
    /// Existing routes are kept (they are verified and stable); the link
    /// simply becomes available again for future routing. Returns how
    /// many directed edges were restored.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) -> usize {
        let mut restored = 0;
        for e in self.g.edges() {
            let (s, t) = (self.g.src(e), self.g.dst(e));
            if ((s == a && t == b) || (s == b && t == a)) && self.failed.remove(&e) {
                restored += 1;
            }
        }
        restored
    }

    /// Materializes the committed configuration as an installable
    /// [`ConfigGeneration`]: the run-time half of the reconfiguration
    /// loop. The routing table freezes the current paths, the budgets
    /// come from the server capacities and the verified `α`, and the
    /// backend is fresh — hand the result to
    /// `AdmissionController::reconfigure` to swap it live, or to
    /// `AdmissionController::from_generation` to start a controller.
    pub fn apply(&self, kind: BackendKind) -> ConfigGeneration {
        let mut table = RoutingTable::new();
        for p in &self.paths {
            table.insert(ClassId(0), p);
        }
        let capacities: Vec<f64> = (0..self.g.edge_count())
            .map(|k| self.servers.capacity_at(k))
            .collect();
        ConfigGeneration::new(
            table,
            &ClassSet::single(self.class.clone()),
            &capacities,
            &[self.alpha],
            kind,
        )
    }

    /// Re-verifies the whole committed configuration from scratch.
    pub fn verify(&self) -> bool {
        solve_two_class(
            &self.servers,
            &self.class,
            self.alpha,
            &self.routes,
            &SolveConfig::default(),
            None,
        )
        .outcome
        .is_safe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::select_routes;
    use crate::pairs::all_ordered_pairs;
    use uba_topology::mci;

    fn base_config(alpha: f64, step: usize) -> Configuration {
        let g = mci();
        let servers = Servers::uniform(&g, 100e6, 6);
        let voip = TrafficClass::voip();
        let cfg = HeuristicConfig::default();
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(step).collect();
        let sel = select_routes(&g, &servers, &voip, alpha, &pairs, &cfg).unwrap();
        Configuration::from_selection(g, servers, voip, alpha, cfg, sel)
    }

    #[test]
    fn add_pair_extends_configuration() {
        let mut c = base_config(0.3, 20);
        let before = c.pairs().len();
        let extra = Pair {
            src: NodeId(12),
            dst: NodeId(14),
        };
        c.add_pair(extra).unwrap();
        assert_eq!(c.pairs().len(), before + 1);
        assert!(c.verify());
        assert_eq!(*c.pairs().last().unwrap(), extra);
    }

    #[test]
    fn remove_pair_shrinks_delays() {
        let mut c = base_config(0.35, 12);
        let victim = c.pairs()[0];
        let worst_before = c.route_delays().iter().cloned().fold(0.0, f64::max);
        assert_eq!(c.remove_pair(victim), 1);
        assert!(!c.pairs().contains(&victim));
        let worst_after = c.route_delays().iter().cloned().fold(0.0, f64::max);
        assert!(worst_after <= worst_before + 1e-12);
        assert!(c.verify());
    }

    #[test]
    fn remove_missing_pair_noop() {
        let mut c = base_config(0.3, 30);
        let ghost = Pair {
            src: NodeId(0),
            dst: NodeId(1),
        };
        let present = c.pairs().contains(&ghost);
        if !present {
            assert_eq!(c.remove_pair(ghost), 0);
        }
    }

    #[test]
    fn link_failure_reroutes_around() {
        let mut c = base_config(0.25, 6);
        // Fail a core diagonal (SF—Atlanta): heavily used by SP-ish
        // routes.
        let report = c.fail_link(NodeId(0), NodeId(3)).expect("reroutable");
        assert!(c.verify());
        // No surviving route crosses the failed link.
        for p in c.paths() {
            for e in &p.edges {
                assert!(!c.failed_links().contains(e));
            }
        }
        assert!(report.worst_route_delay <= 0.1);
        // Every pair is still served.
        assert!(!report.rerouted.is_empty());
    }

    #[test]
    fn cascading_failures_eventually_unroutable() {
        // Isolating router 12 (single-homed Sacramento) makes its pairs
        // unroutable.
        let mut c = base_config(0.2, 18);
        let has_12 = c
            .pairs()
            .iter()
            .any(|p| p.src == NodeId(12) || p.dst == NodeId(12));
        let r = c.fail_link(NodeId(12), NodeId(0));
        if has_12 {
            assert!(matches!(r, Err(SelectionError::NoRoute(_))), "{r:?}");
        } else {
            assert!(r.is_ok());
        }
    }

    #[test]
    fn restore_link_reopens_routing() {
        let mut c = base_config(0.25, 40);
        c.fail_link(NodeId(0), NodeId(3)).unwrap();
        assert!(!c.failed_links().is_empty());
        assert_eq!(c.restore_link(NodeId(0), NodeId(3)), 2);
        assert!(c.failed_links().is_empty());
        // A pair whose SP uses the diagonal can now take it again.
        let pair = Pair {
            src: NodeId(12),
            dst: NodeId(15),
        };
        if !c.pairs().contains(&pair) {
            c.add_pair(pair).unwrap();
        }
        assert!(c.verify());
        // Restoring an intact link is a no-op.
        assert_eq!(c.restore_link(NodeId(0), NodeId(1)), 0);
    }

    #[test]
    fn apply_installs_and_live_reconfigures_a_controller() {
        use uba_admission::AdmissionController;

        let mut c = base_config(0.25, 6);
        let gen = c.apply(BackendKind::Atomic);
        assert_eq!(gen.alphas(), &[0.25]);
        assert_eq!(gen.table().len(), c.pairs().len());
        let ctrl = AdmissionController::from_generation(gen);
        // Every committed pair is admissible on the fresh budgets; hold
        // the flows across the swap.
        let held: Vec<_> = c
            .pairs()
            .iter()
            .map(|p| {
                ctrl.try_admit(ClassId(0), p.src, p.dst)
                    .expect("committed pair admits")
            })
            .collect();

        // Fail a core link, recompute routes, and install the result
        // live — the very gap this module used to leave open.
        c.fail_link(NodeId(0), NodeId(3)).expect("reroutable");
        let report = ctrl.reconfigure(c.apply(BackendKind::Sharded(4)));
        assert_eq!(report.pinned_previous as usize, held.len());
        // New admissions route around the failure.
        for p in c.pairs() {
            let h = ctrl
                .try_admit(ClassId(0), p.src, p.dst)
                .expect("rerouted pair admits");
            for &s in h.route() {
                assert!(
                    !c.failed_links().contains(&EdgeId(s)),
                    "route crosses failed link"
                );
            }
        }
        // Old flows drain against the displaced generation.
        drop(held);
        assert!(ctrl.drain().is_drained());
    }

    #[test]
    fn failure_then_add_pair_avoids_failed_link() {
        let mut c = base_config(0.25, 40);
        c.fail_link(NodeId(1), NodeId(4)).unwrap();
        let pair = Pair {
            src: NodeId(13),
            dst: NodeId(16),
        };
        if !c.pairs().contains(&pair) {
            c.add_pair(pair).unwrap();
            let p = c.paths().last().unwrap();
            for e in &p.edges {
                assert!(!c.failed_links().contains(e));
            }
        }
    }
}
