//! Source/destination pair enumeration and ordering.
//!
//! The Section 5.2 heuristic's first rule: "select the next
//! source/destination pair in decreasing order of distance between source
//! and destination" — longer routes are harder to satisfy, so they get
//! first pick of the route space.

use uba_graph::{bfs, Digraph, NodeId};

/// A source/destination router pair requesting connectivity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pair {
    /// Source router.
    pub src: NodeId,
    /// Destination router.
    pub dst: NodeId,
}

/// Every ordered pair of distinct routers ("flows can be established
/// between any two routers", Section 6).
pub fn all_ordered_pairs(g: &Digraph) -> Vec<Pair> {
    let mut out = Vec::with_capacity(g.node_count() * g.node_count().saturating_sub(1));
    for s in g.nodes() {
        for d in g.nodes() {
            if s != d {
                out.push(Pair { src: s, dst: d });
            }
        }
    }
    out
}

/// Orders pairs by decreasing shortest-path hop distance; ties broken by
/// `(src, dst)` for determinism. Unreachable pairs sort first (so the
/// selector fails fast on them).
pub fn order_pairs_by_distance(g: &Digraph, pairs: &[Pair]) -> Vec<Pair> {
    // One BFS per distinct source.
    let mut dist_by_src: Vec<Option<Vec<usize>>> = vec![None; g.node_count()];
    for p in pairs {
        let slot = &mut dist_by_src[p.src.index()];
        if slot.is_none() {
            *slot = Some(bfs::hop_distances(g, p.src));
        }
    }
    let mut ordered = pairs.to_vec();
    ordered.sort_by(|a, b| {
        let da = dist_by_src[a.src.index()].as_ref().unwrap()[a.dst.index()];
        let db = dist_by_src[b.src.index()].as_ref().unwrap()[b.dst.index()];
        db.cmp(&da)
            .then_with(|| a.src.cmp(&b.src))
            .then_with(|| a.dst.cmp(&b.dst))
    });
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_topology::line;

    #[test]
    fn all_pairs_count() {
        let g = line(4);
        let pairs = all_ordered_pairs(&g);
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|p| p.src != p.dst));
    }

    #[test]
    fn ordering_is_by_decreasing_distance() {
        let g = line(5);
        let pairs = all_ordered_pairs(&g);
        let ordered = order_pairs_by_distance(&g, &pairs);
        let d = |p: &Pair| bfs::hop_distances(&g, p.src)[p.dst.index()];
        for w in ordered.windows(2) {
            assert!(d(&w[0]) >= d(&w[1]));
        }
        // The two extreme pairs come first.
        assert_eq!(d(&ordered[0]), 4);
    }

    #[test]
    fn ordering_is_deterministic() {
        let g = line(5);
        let pairs = all_ordered_pairs(&g);
        let a = order_pairs_by_distance(&g, &pairs);
        let b = order_pairs_by_distance(&g, &pairs);
        assert_eq!(a, b);
    }

    #[test]
    fn unreachable_pairs_sort_first() {
        let mut g = line(3);
        let island = g.add_node("island");
        let pairs = vec![
            Pair {
                src: NodeId(0),
                dst: NodeId(2),
            },
            Pair {
                src: NodeId(0),
                dst: island,
            },
        ];
        let ordered = order_pairs_by_distance(&g, &pairs);
        assert_eq!(ordered[0].dst, island);
    }
}
