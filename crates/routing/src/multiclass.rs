//! Multi-class route selection and utilization trade-off (Section 5.4's
//! closing paragraph: "Variations of the algorithms derived in Sections
//! 5.2 and 5.3 can then be used to select safe routes and to either
//! maximize utilization assignments or trade-off utilization assignments
//! of classes against each other").
//!
//! * [`select_routes_multiclass`] — the Section 5.2 greedy, with the
//!   Theorem 5 multi-class fixed point as the safety oracle.
//! * [`max_utilization_ray`] — the Section 5.3 binary search generalized
//!   to a *ray* in utilization space: `α = t·w` for a weight vector `w`;
//!   maximizing `t` traces one point of the Pareto trade-off between
//!   classes per ray. Sweeping rays yields the trade-off curve the paper
//!   alludes to.

use crate::heuristic::{HeuristicConfig, SelectionError};
use crate::pairs::{order_pairs_by_distance, Pair};
use uba_delay::multiclass::solve_multiclass;
use uba_delay::routeset::{Route, RouteSet};
use uba_delay::servers::Servers;
use uba_graph::par::par_map;
use uba_graph::{k_shortest_paths, Digraph, DynDigraph, Path};
use uba_traffic::{ClassId, ClassSet};

/// A verified candidate outcome: (own route delay, per-class per-server
/// delays, per-route delays).
type MultiCandidateFit = (f64, Vec<Vec<f64>>, Vec<f64>);

/// One routed demand: a class and a router pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Demand {
    /// Traffic class of the demand.
    pub class: ClassId,
    /// Source/destination pair.
    pub pair: Pair,
}

/// A successful multi-class selection.
#[derive(Clone, Debug)]
pub struct MultiSelection {
    /// Demands in the order they were routed.
    pub demands: Vec<Demand>,
    /// Chosen route per demand.
    pub paths: Vec<Path>,
    /// The committed route set.
    pub routes: RouteSet,
    /// `delays[class][server]` at the final fixed point.
    pub delays: Vec<Vec<f64>>,
    /// Per-route end-to-end delays at the final fixed point.
    pub route_delays: Vec<f64>,
}

/// Runs greedy safe route selection for a multi-class system.
///
/// Demands are ordered by decreasing pair distance (when configured),
/// with class priority as tie-break (higher-priority classes route
/// first — their routes constrain everyone below them).
pub fn select_routes_multiclass(
    g: &Digraph,
    servers: &Servers,
    classes: &ClassSet,
    alphas: &[f64],
    demands: &[Demand],
    cfg: &HeuristicConfig,
) -> Result<MultiSelection, SelectionError> {
    assert_eq!(alphas.len(), classes.len(), "one alpha per class");
    let ordered: Vec<Demand> = if cfg.order_by_distance {
        let pairs: Vec<Pair> = demands.iter().map(|d| d.pair).collect();
        let by_distance = order_pairs_by_distance(g, &pairs);
        // Stable expansion: for each pair in distance order, emit its
        // demands in class-priority order.
        let mut out = Vec::with_capacity(demands.len());
        let mut used = vec![false; demands.len()];
        for p in by_distance {
            let mut here: Vec<usize> = (0..demands.len())
                .filter(|&i| !used[i] && demands[i].pair == p)
                .collect();
            here.sort_by_key(|&i| demands[i].class);
            for i in here.drain(..) {
                used[i] = true;
                out.push(demands[i]);
            }
        }
        out
    } else {
        demands.to_vec()
    };

    let nc = classes.len();
    let mut routes = RouteSet::new(g.edge_count());
    let mut overlay = DynDigraph::new(g.edge_count());
    let mut base_delays: Vec<Vec<f64>> = vec![vec![0.0; g.edge_count()]; nc];
    let mut out_demands = Vec::with_capacity(ordered.len());
    let mut out_paths = Vec::with_capacity(ordered.len());
    let mut final_route_delays: Vec<f64> = Vec::new();

    for demand in ordered {
        let candidates = k_shortest_paths(g, demand.pair.src, demand.pair.dst, cfg.k_candidates);
        if candidates.is_empty() {
            return Err(SelectionError::NoRoute(demand.pair));
        }
        let chains: Vec<Vec<usize>> = candidates
            .iter()
            .map(|p| p.edges.iter().map(|e| e.index()).collect())
            .collect();
        let pool: Vec<usize> = if cfg.prefer_acyclic {
            let acyclic: Vec<usize> = (0..candidates.len())
                .filter(|&i| !overlay.chain_would_create_cycle(&chains[i]))
                .collect();
            if acyclic.is_empty() {
                (0..candidates.len()).collect()
            } else {
                acyclic
            }
        } else {
            (0..candidates.len()).collect()
        };

        let evaluate = |pi: usize| -> Option<MultiCandidateFit> {
            let ci = pool[pi];
            let mut trial = routes.clone();
            trial.push(Route::from_path(demand.class, &candidates[ci]));
            let r = solve_multiclass(
                servers,
                classes,
                alphas,
                &trial,
                &cfg.solver,
                Some(&base_delays),
            );
            if r.outcome.is_safe() {
                let own = *r.route_delays.last().unwrap();
                Some((own, r.delays, r.route_delays))
            } else {
                None
            }
        };
        let results: Vec<Option<MultiCandidateFit>> = if cfg.threads > 1 {
            par_map(pool.len(), cfg.threads.min(pool.len()), evaluate)
        } else {
            (0..pool.len()).map(evaluate).collect()
        };

        let chosen = if cfg.min_delay_choice {
            results
                .iter()
                .enumerate()
                .filter_map(|(pi, r)| r.as_ref().map(|r| (pi, r.0)))
                .min_by(|(ia, da), (ib, db)| da.total_cmp(db).then_with(|| ia.cmp(ib)))
                .map(|(pi, _)| pi)
        } else {
            results.iter().position(Option::is_some)
        };
        let Some(pi) = chosen else {
            return Err(SelectionError::NoSafeRoute(demand.pair));
        };
        let ci = pool[pi];
        let (_, delays, route_delays) = results[pi].clone().unwrap();
        routes.push(Route::from_path(demand.class, &candidates[ci]));
        overlay.add_chain(&chains[ci]);
        base_delays = delays;
        final_route_delays = route_delays;
        out_demands.push(demand);
        out_paths.push(candidates[ci].clone());
    }

    Ok(MultiSelection {
        demands: out_demands,
        paths: out_paths,
        routes,
        delays: base_delays,
        route_delays: final_route_delays,
    })
}

/// Result of a ray search in utilization space.
#[derive(Clone, Debug)]
pub struct RaySearchResult {
    /// Largest safe scale factor `t` (utilizations are `t·w`).
    pub t: f64,
    /// The per-class utilizations at `t`.
    pub alphas: Vec<f64>,
    /// The selection achieving them (`None` iff `t == 0`).
    pub selection: Option<MultiSelection>,
    /// Probes as `(t, feasible)`.
    pub probes: Vec<(f64, bool)>,
}

/// Binary-searches the largest `t` such that utilizations `α = t·w` admit
/// a safe multi-class route selection. `w` is any non-negative weight
/// vector with at least one positive entry; `t_max` caps the search so
/// every `α_i` stays below 1.
pub fn max_utilization_ray(
    g: &Digraph,
    servers: &Servers,
    classes: &ClassSet,
    weights: &[f64],
    demands: &[Demand],
    cfg: &HeuristicConfig,
    tol: f64,
) -> RaySearchResult {
    assert_eq!(weights.len(), classes.len(), "one weight per class");
    assert!(weights.iter().all(|&w| w >= 0.0), "weights must be >= 0");
    let wmax = weights.iter().cloned().fold(0.0, f64::max);
    assert!(wmax > 0.0, "need a positive weight");
    let wsum: f64 = weights.iter().sum();
    // Keep every alpha in (0,1) and the sum <= 1.
    let t_cap = (1.0 - 1e-9) / wmax.max(wsum);

    let mut probes = Vec::new();
    let mut probe = |t: f64| -> Option<MultiSelection> {
        let alphas: Vec<f64> = weights.iter().map(|&w| (w * t).max(1e-9)).collect();
        let r = select_routes_multiclass(g, servers, classes, &alphas, demands, cfg).ok();
        probes.push((t, r.is_some()));
        r
    };

    let mut lo = 0.0;
    let mut hi = t_cap;
    let mut best: Option<(f64, MultiSelection)> = None;
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        match probe(mid) {
            Some(sel) => {
                lo = mid;
                best = Some((mid, sel));
            }
            None => hi = mid,
        }
    }
    match best {
        Some((t, selection)) => RaySearchResult {
            alphas: weights.iter().map(|&w| w * t).collect(),
            t,
            selection: Some(selection),
            probes,
        },
        None => RaySearchResult {
            t: 0.0,
            alphas: vec![0.0; weights.len()],
            selection: None,
            probes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::all_ordered_pairs;
    use uba_topology::{mci, ring};
    use uba_traffic::{LeakyBucket, TrafficClass};

    fn two_classes() -> ClassSet {
        let mut cs = ClassSet::new();
        cs.push(TrafficClass::voip());
        cs.push(TrafficClass::new(
            "video",
            LeakyBucket::new(64_000.0, 2_000_000.0),
            0.3,
        ));
        cs
    }

    fn demands_for(g: &Digraph, classes: usize, step: usize) -> Vec<Demand> {
        let mut out = Vec::new();
        for (i, p) in all_ordered_pairs(g).into_iter().step_by(step).enumerate() {
            out.push(Demand {
                class: ClassId(i % classes),
                pair: p,
            });
        }
        out
    }

    #[test]
    fn routes_all_demands_at_low_alpha() {
        let g = mci();
        let servers = Servers::uniform(&g, 100e6, 6);
        let classes = two_classes();
        let demands = demands_for(&g, 2, 10);
        let sel = select_routes_multiclass(
            &g,
            &servers,
            &classes,
            &[0.05, 0.10],
            &demands,
            &HeuristicConfig::default(),
        )
        .expect("low alphas must route");
        assert_eq!(sel.paths.len(), demands.len());
        // Every route meets its class deadline.
        for (rt, &rd) in sel.routes.routes().iter().zip(&sel.route_delays) {
            assert!(rd <= classes.get(rt.class).deadline + 1e-9);
        }
    }

    #[test]
    fn fails_when_oversubscribed() {
        let g = ring(5);
        let servers = Servers::uniform(&g, 100e6, 4);
        let classes = two_classes();
        let demands = demands_for(&g, 2, 1);
        let r = select_routes_multiclass(
            &g,
            &servers,
            &classes,
            &[0.6, 0.6],
            &demands,
            &HeuristicConfig::default(),
        );
        assert!(matches!(r, Err(SelectionError::NoSafeRoute(_))));
    }

    #[test]
    fn single_class_matches_two_class_heuristic() {
        let g = mci();
        let servers = Servers::uniform(&g, 100e6, 6);
        let classes = ClassSet::single(TrafficClass::voip());
        let pairs: Vec<Pair> = all_ordered_pairs(&g).into_iter().step_by(15).collect();
        let demands: Vec<Demand> = pairs
            .iter()
            .map(|&pair| Demand {
                class: ClassId(0),
                pair,
            })
            .collect();
        let cfg = HeuristicConfig::default();
        let multi =
            select_routes_multiclass(&g, &servers, &classes, &[0.3], &demands, &cfg).unwrap();
        let single =
            crate::heuristic::select_routes(&g, &servers, &TrafficClass::voip(), 0.3, &pairs, &cfg)
                .unwrap();
        // Same pairs, same oracle => same committed paths.
        assert_eq!(multi.paths, single.paths);
    }

    #[test]
    fn ray_search_finds_positive_t() {
        let g = ring(6);
        let servers = Servers::uniform(&g, 100e6, 4);
        let classes = two_classes();
        let demands = demands_for(&g, 2, 2);
        let r = max_utilization_ray(
            &g,
            &servers,
            &classes,
            &[1.0, 2.0],
            &demands,
            &HeuristicConfig::default(),
            0.01,
        );
        assert!(r.t > 0.0);
        let sel = r.selection.unwrap();
        assert_eq!(sel.paths.len(), demands.len());
        // Ratio preserved.
        assert!((r.alphas[1] / r.alphas[0] - 2.0).abs() < 1e-9);
        // And the sum stays admissible.
        assert!(r.alphas.iter().sum::<f64>() <= 1.0);
    }

    #[test]
    fn ray_weights_trade_off() {
        // Shifting weight toward video lowers the achievable voice alpha.
        let g = ring(6);
        let servers = Servers::uniform(&g, 100e6, 4);
        let classes = two_classes();
        let demands = demands_for(&g, 2, 2);
        let cfg = HeuristicConfig::default();
        let voice_heavy =
            max_utilization_ray(&g, &servers, &classes, &[3.0, 1.0], &demands, &cfg, 0.01);
        let video_heavy =
            max_utilization_ray(&g, &servers, &classes, &[1.0, 3.0], &demands, &cfg, 0.01);
        assert!(voice_heavy.alphas[0] > video_heavy.alphas[0]);
        assert!(video_heavy.alphas[1] > voice_heavy.alphas[1]);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weights_rejected() {
        let g = ring(4);
        let servers = Servers::uniform(&g, 100e6, 4);
        let classes = two_classes();
        max_utilization_ray(
            &g,
            &servers,
            &classes,
            &[0.0, 0.0],
            &[],
            &HeuristicConfig::default(),
            0.01,
        );
    }
}
