//! The flow-aware *general delay formula* (Eq. 2–3).
//!
//! Given the exact set of established flows, the worst-case delay of a
//! static-priority server is
//!
//! ```text
//! d_k = (1/C) · max_{I>0} ( Σ_j F_{k,j}(I) − C·I )        (Eq. 3)
//! ```
//!
//! where `F_{k,j}` is the aggregate constraint function of input link `j`
//! (the sum of its flows' jittered buckets, capped by the link rate).
//!
//! The paper's point is that this formula *cannot* be used at
//! configuration time — it depends on the run-time flow set — and is
//! expensive even at run time. We implement it anyway, for two purposes:
//!
//! * as the **intserv-style baseline** admission test (re-verify all flows
//!   on every arrival), the scalability comparator of experiment S-AC;
//! * as the **reference** the Theorem 3 bound is property-tested against:
//!   for any admissible flow placement, Theorem 3 must dominate Eq. (3).

use crate::servers::Servers;
use uba_traffic::{Envelope, LeakyBucket};

/// Worst-case delay of a single server of capacity `c` whose input links
/// carry the given (already jitter-inflated) buckets.
///
/// `inputs[j]` is the list of flows on input link `j`; each link's
/// aggregate is capped at the link rate `c` before summation. Returns
/// `None` when the server is unstable (aggregate long-run rate > `c`).
pub fn server_delay_general(c: f64, inputs: &[Vec<LeakyBucket>]) -> Option<f64> {
    let mut agg = Envelope::zero();
    for link in inputs {
        if link.is_empty() {
            continue;
        }
        let sigma: f64 = link.iter().map(|b| b.burst).sum();
        let rho: f64 = link.iter().map(|b| b.rate).sum();
        let env = Envelope::token_bucket(sigma, rho).min_with_line(c);
        agg = agg.sum(&env);
    }
    agg.delay(c)
}

/// One established flow for the network-wide general analysis.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Source policer.
    pub bucket: LeakyBucket,
    /// End-to-end deadline in seconds.
    pub deadline: f64,
    /// Link servers traversed, in order (raw edge indices).
    pub servers: Vec<u32>,
}

/// Verdict of the flow-aware network analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeneralOutcome {
    /// Converged and every flow meets its deadline.
    Feasible,
    /// Some flow provably misses its deadline (index into the flow list).
    DeadlineExceeded {
        /// Index of the first offending flow.
        flow: usize,
    },
    /// A server's aggregate rate exceeds its capacity.
    Unstable {
        /// Raw index of the offending server.
        server: usize,
    },
    /// No convergence within the iteration cap.
    IterationLimit,
}

/// Result of [`analyze_flows`].
#[derive(Clone, Debug)]
pub struct GeneralResult {
    /// Verdict.
    pub outcome: GeneralOutcome,
    /// Per-server worst-case delays at the last iterate.
    pub delays: Vec<f64>,
    /// Per-flow end-to-end delays at the last iterate.
    pub flow_delays: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Network-wide fixed point of the general formula for an explicit flow
/// set (single class: all flows share the top priority).
///
/// Each server's inputs are derived from the flows' routes: a flow arrives
/// at hop `p` on the input link identified by its hop `p−1` (or on its
/// ingress router's access link for `p = 0`; all locally originated flows
/// of a router share one access link). The per-hop jitter inflation is
/// `T + ρ·(accumulated upstream delay)`, per Cruz's Theorem 2.1.
///
/// Iterates monotonically from zero, so the same early-exit arguments as
/// the configuration-time solver apply.
pub fn analyze_flows(
    servers: &Servers,
    flows: &[Flow],
    tol: f64,
    max_iters: usize,
) -> GeneralResult {
    let s = servers.len();
    // Stability pre-check: aggregate rate per server.
    let mut rate = vec![0.0f64; s];
    for f in flows {
        for &k in &f.servers {
            rate[k as usize] += f.bucket.rate;
        }
    }
    if let Some(k) = (0..s).find(|&k| rate[k] > servers.capacity_at(k)) {
        return GeneralResult {
            outcome: GeneralOutcome::Unstable { server: k },
            delays: vec![0.0; s],
            flow_delays: vec![0.0; flows.len()],
            iterations: 0,
        };
    }

    // Per server: which (flow, hop) arrive there, keyed by predecessor
    // link (u32::MAX = ingress). Precomputed once.
    struct Arrival {
        flow: u32,
        hop: u32,
        pred: u32,
    }
    let mut arrivals: Vec<Vec<Arrival>> = (0..s).map(|_| Vec::new()).collect();
    for (fi, f) in flows.iter().enumerate() {
        for (p, &k) in f.servers.iter().enumerate() {
            let pred = if p == 0 { u32::MAX } else { f.servers[p - 1] };
            arrivals[k as usize].push(Arrival {
                flow: fi as u32,
                hop: p as u32,
                pred,
            });
        }
    }

    let mut d = vec![0.0f64; s];
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Prefix delays per flow per hop.
        let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(flows.len());
        let mut flow_delays = Vec::with_capacity(flows.len());
        for f in flows {
            let mut acc = 0.0;
            let mut pre = Vec::with_capacity(f.servers.len());
            for &k in &f.servers {
                pre.push(acc);
                acc += d[k as usize];
            }
            prefix.push(pre);
            flow_delays.push(acc);
        }
        if let Some(fi) = flows
            .iter()
            .enumerate()
            .position(|(fi, f)| flow_delays[fi] > f.deadline + 1e-12)
        {
            return GeneralResult {
                outcome: GeneralOutcome::DeadlineExceeded { flow: fi },
                delays: d,
                flow_delays,
                iterations,
            };
        }

        let mut max_diff: f64 = 0.0;
        let mut d_new = vec![0.0f64; s];
        let mut groups: std::collections::HashMap<u32, (f64, f64)> =
            std::collections::HashMap::new();
        for k in 0..s {
            if arrivals[k].is_empty() {
                continue;
            }
            groups.clear();
            for a in &arrivals[k] {
                let f = &flows[a.flow as usize];
                let jit = prefix[a.flow as usize][a.hop as usize];
                let e = groups.entry(a.pred).or_insert((0.0, 0.0));
                e.0 += f.bucket.burst + f.bucket.rate * jit;
                e.1 += f.bucket.rate;
            }
            let c = servers.capacity_at(k);
            let mut agg = Envelope::zero();
            // Deterministic order for bit-for-bit reproducibility.
            let mut keys: Vec<u32> = groups.keys().copied().collect();
            keys.sort_unstable();
            for key in keys {
                let (sigma, rho) = groups[&key];
                agg = agg.sum(&Envelope::token_bucket(sigma, rho).min_with_line(c));
            }
            match agg.delay(c) {
                Some(v) => {
                    max_diff = max_diff.max((v - d[k]).abs());
                    d_new[k] = v;
                }
                None => {
                    return GeneralResult {
                        outcome: GeneralOutcome::Unstable { server: k },
                        delays: d,
                        flow_delays,
                        iterations,
                    }
                }
            }
        }
        d = d_new;

        if max_diff <= tol {
            // Final flow delays at the fixed point.
            let mut flow_delays = Vec::with_capacity(flows.len());
            for f in flows {
                flow_delays.push(f.servers.iter().map(|&k| d[k as usize]).sum::<f64>());
            }
            let outcome = match flows
                .iter()
                .enumerate()
                .find(|(fi, f)| flow_delays[*fi] > f.deadline + 1e-12)
            {
                Some((fi, _)) => GeneralOutcome::DeadlineExceeded { flow: fi },
                None => GeneralOutcome::Feasible,
            };
            return GeneralResult {
                outcome,
                delays: d,
                flow_delays,
                iterations,
            };
        }
        if iterations >= max_iters {
            return GeneralResult {
                outcome: GeneralOutcome::IterationLimit,
                delays: d,
                flow_delays,
                iterations,
            };
        }
    }
}

/// A flow with an explicit class for the multi-class general analysis.
#[derive(Clone, Debug)]
pub struct ClassedFlow {
    /// Static-priority class, 0 = highest.
    pub class: usize,
    /// Source policer.
    pub bucket: LeakyBucket,
    /// End-to-end deadline in seconds.
    pub deadline: f64,
    /// Link servers traversed, in order (raw edge indices).
    pub servers: Vec<u32>,
}

/// Result of [`analyze_flows_multiclass`].
#[derive(Clone, Debug)]
pub struct MulticlassGeneralResult {
    /// Verdict.
    pub outcome: GeneralOutcome,
    /// `delays[class][server]` at the last iterate.
    pub delays: Vec<Vec<f64>>,
    /// Per-flow end-to-end delays at the last iterate.
    pub flow_delays: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Eq. (24): the flow-aware general delay formula under class-based
/// static priority with an arbitrary number of classes.
///
/// A class-`i` packet at server `k` waits for the backlog of classes
/// `0..=i` *plus* the higher-priority traffic that keeps arriving while
/// it waits:
///
/// ```text
/// d_{i,k} = (1/C) · max_{I>0} ( Σ_{l<i} A_l(I + d_{i,k}) + A_i(I) − C·I )
/// ```
///
/// where `A_l` is class `l`'s per-input-link-capped aggregate envelope at
/// server `k`. The scalar recursion in `d_{i,k}` is itself solved by
/// monotone iteration inside the network-level fixed point.
pub fn analyze_flows_multiclass(
    servers: &Servers,
    flows: &[ClassedFlow],
    classes: usize,
    tol: f64,
    max_iters: usize,
) -> MulticlassGeneralResult {
    let s = servers.len();
    assert!(classes > 0, "need at least one class");
    for f in flows {
        assert!(f.class < classes, "flow class out of range");
    }
    // Stability pre-check: total rate per server across all classes.
    let mut rate = vec![0.0f64; s];
    for f in flows {
        for &k in &f.servers {
            rate[k as usize] += f.bucket.rate;
        }
    }
    if let Some(k) = (0..s).find(|&k| rate[k] > servers.capacity_at(k)) {
        return MulticlassGeneralResult {
            outcome: GeneralOutcome::Unstable { server: k },
            delays: vec![vec![0.0; s]; classes],
            flow_delays: vec![0.0; flows.len()],
            iterations: 0,
        };
    }

    struct Arrival {
        flow: u32,
        hop: u32,
        pred: u32,
    }
    let mut arrivals: Vec<Vec<Arrival>> = (0..s).map(|_| Vec::new()).collect();
    for (fi, f) in flows.iter().enumerate() {
        for (p, &k) in f.servers.iter().enumerate() {
            let pred = if p == 0 { u32::MAX } else { f.servers[p - 1] };
            arrivals[k as usize].push(Arrival {
                flow: fi as u32,
                hop: p as u32,
                pred,
            });
        }
    }

    let mut d = vec![vec![0.0f64; s]; classes];
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Prefix delays per flow per hop under its own class's delays.
        let mut prefix: Vec<Vec<f64>> = Vec::with_capacity(flows.len());
        let mut flow_delays = Vec::with_capacity(flows.len());
        for f in flows {
            let dc = &d[f.class];
            let mut acc = 0.0;
            let mut pre = Vec::with_capacity(f.servers.len());
            for &k in &f.servers {
                pre.push(acc);
                acc += dc[k as usize];
            }
            prefix.push(pre);
            flow_delays.push(acc);
        }
        if let Some(fi) = (0..flows.len()).find(|&fi| flow_delays[fi] > flows[fi].deadline + 1e-12)
        {
            return MulticlassGeneralResult {
                outcome: GeneralOutcome::DeadlineExceeded { flow: fi },
                delays: d,
                flow_delays,
                iterations,
            };
        }

        let mut max_diff: f64 = 0.0;
        let mut d_new = vec![vec![0.0f64; s]; classes];
        // Per (class, pred) sigma/rho accumulation.
        let mut groups: std::collections::HashMap<(usize, u32), (f64, f64)> =
            std::collections::HashMap::new();
        for k in 0..s {
            if arrivals[k].is_empty() {
                continue;
            }
            let c = servers.capacity_at(k);
            groups.clear();
            for a in &arrivals[k] {
                let f = &flows[a.flow as usize];
                let jit = prefix[a.flow as usize][a.hop as usize];
                let e = groups.entry((f.class, a.pred)).or_insert((0.0, 0.0));
                e.0 += f.bucket.burst + f.bucket.rate * jit;
                e.1 += f.bucket.rate;
            }
            // Per-class aggregate envelopes A_l (deterministic order).
            let mut keys: Vec<(usize, u32)> = groups.keys().copied().collect();
            keys.sort_unstable();
            let mut aggs: Vec<Option<Envelope>> = vec![None; classes];
            for key in keys {
                let (sigma, rho) = groups[&key];
                let env = Envelope::token_bucket(sigma, rho).min_with_line(c);
                let slot = &mut aggs[key.0];
                *slot = Some(match slot.take() {
                    Some(prev) => prev.sum(&env),
                    None => env,
                });
            }
            // Class by class, highest priority first.
            for i in 0..classes {
                let Some(own) = aggs[i].as_ref() else {
                    continue;
                };
                // Scalar recursion d <- (1/C) max_I (Σ_{l<i} A_l(I+d) +
                // A_i(I) − C·I); monotone from the previous network
                // iterate's value.
                let mut di = d[i][k];
                let mut inner = 0;
                let value = loop {
                    inner += 1;
                    let mut total = own.clone();
                    for agg in aggs.iter().take(i).flatten() {
                        total = total.sum(&agg.shift(di));
                    }
                    match total.delay(c) {
                        Some(next) => {
                            if (next - di).abs() <= tol {
                                break Some(next);
                            }
                            di = next;
                        }
                        None => break None,
                    }
                    if inner >= max_iters {
                        break Some(di);
                    }
                };
                match value {
                    Some(v) => {
                        max_diff = max_diff.max((v - d[i][k]).abs());
                        d_new[i][k] = v;
                    }
                    None => {
                        return MulticlassGeneralResult {
                            outcome: GeneralOutcome::Unstable { server: k },
                            delays: d,
                            flow_delays,
                            iterations,
                        }
                    }
                }
            }
        }
        d = d_new;

        if max_diff <= tol {
            let mut flow_delays = Vec::with_capacity(flows.len());
            for f in flows {
                let dc = &d[f.class];
                flow_delays.push(f.servers.iter().map(|&k| dc[k as usize]).sum::<f64>());
            }
            let outcome =
                match (0..flows.len()).find(|&fi| flow_delays[fi] > flows[fi].deadline + 1e-12) {
                    Some(fi) => GeneralOutcome::DeadlineExceeded { flow: fi },
                    None => GeneralOutcome::Feasible,
                };
            return MulticlassGeneralResult {
                outcome,
                delays: d,
                flow_delays,
                iterations,
            };
        }
        if iterations >= max_iters {
            return MulticlassGeneralResult {
                outcome: GeneralOutcome::IterationLimit,
                delays: d,
                flow_delays,
                iterations,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uba_graph::{Digraph, NodeId};

    fn voip() -> LeakyBucket {
        LeakyBucket::new(640.0, 32_000.0)
    }

    #[test]
    fn single_input_link_no_delay() {
        // One link capped at C feeding a server of capacity C: the
        // aggregate never exceeds the service line.
        let d = server_delay_general(1e6, &[vec![voip(); 10]]).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn two_links_queue() {
        let c = 1e6;
        let flows = vec![voip(); 5];
        let d = server_delay_general(c, &[flows.clone(), flows]).unwrap();
        assert!(d > 0.0);
        // Bounded by total burst / C.
        assert!(d <= 10.0 * 640.0 / c);
    }

    #[test]
    fn unstable_server_detected() {
        let c = 100_000.0;
        // 4 flows at 32 kb/s = 128 kb/s > 100 kb/s.
        let d = server_delay_general(c, &[vec![voip(); 2], vec![voip(); 2]]);
        assert!(d.is_none());
    }

    #[test]
    fn empty_inputs_zero_delay() {
        assert_eq!(server_delay_general(1e6, &[]), Some(0.0));
        assert_eq!(server_delay_general(1e6, &[vec![], vec![]]), Some(0.0));
    }

    /// Even split over N links with M = αC/ρ flows total must equal the
    /// Theorem 3 closed form exactly (see DESIGN.md §2 and the Theorem 2
    /// proof): this is the paper's worst case realized concretely.
    #[test]
    fn even_split_matches_theorem3() {
        let c = 96e6;
        let n = 6usize;
        let alpha = 0.3;
        let b = voip();
        let m = alpha * c / b.rate; // 900 flows
        assert_eq!(m.fract(), 0.0);
        let per_link = (m as usize) / n;
        let inputs: Vec<Vec<LeakyBucket>> = (0..n).map(|_| vec![b; per_link]).collect();
        let general = server_delay_general(c, &inputs).unwrap();
        let t3 = crate::bound::theorem3_delay(alpha, b, n, 0.0).unwrap();
        assert!(
            (general - t3).abs() <= 1e-9 * (1.0 + t3),
            "general={general}, theorem3={t3}"
        );
    }

    /// Any admissible split is dominated by Theorem 3 (Theorem 2's claim).
    #[test]
    fn uneven_splits_dominated_by_theorem3() {
        let c = 96e6;
        let n = 6usize;
        let alpha = 0.3;
        let b = voip();
        let m = (alpha * c / b.rate) as usize; // 900
        let t3 = crate::bound::theorem3_delay(alpha, b, n, 0.0).unwrap();
        let splits: Vec<Vec<usize>> = vec![
            vec![900, 0, 0, 0, 0, 0],
            vec![450, 450, 0, 0, 0, 0],
            vec![300, 300, 300, 0, 0, 0],
            vec![500, 100, 100, 100, 50, 50],
            vec![150, 150, 150, 150, 150, 150],
        ];
        for split in splits {
            assert_eq!(split.iter().sum::<usize>(), m);
            let inputs: Vec<Vec<LeakyBucket>> = split.iter().map(|&k| vec![b; k]).collect();
            let general = server_delay_general(c, &inputs).unwrap();
            assert!(
                general <= t3 + 1e-9,
                "split {split:?}: general={general} > t3={t3}"
            );
        }
    }

    fn two_hop_flows() -> (Servers, Vec<Flow>) {
        // 0 -> 1 -> 2 line, directed; two flows along it, one cross flow
        // joining at router 1.
        let mut g = Digraph::with_nodes(4);
        let e01 = g.add_edge(NodeId(0), NodeId(1), 1.0).0;
        let e12 = g.add_edge(NodeId(1), NodeId(2), 1.0).0;
        let e31 = g.add_edge(NodeId(3), NodeId(1), 1.0).0;
        let servers = Servers::uniform(&g, 1e6, 4);
        let flows = vec![
            Flow {
                bucket: voip(),
                deadline: 0.1,
                servers: vec![e01, e12],
            },
            Flow {
                bucket: voip(),
                deadline: 0.1,
                servers: vec![e31, e12],
            },
        ];
        (servers, flows)
    }

    #[test]
    fn network_analysis_feasible_case() {
        let (servers, flows) = two_hop_flows();
        let r = analyze_flows(&servers, &flows, 1e-12, 1000);
        assert_eq!(r.outcome, GeneralOutcome::Feasible);
        // The merge point (server e12) sees two input links and queues.
        assert!(r.delays[1] > 0.0);
        // First hops have a single (ingress) input link: no queueing.
        assert!(r.delays[0].abs() < 1e-12);
        assert!(r.delays[2].abs() < 1e-12);
        assert!(r.flow_delays.iter().all(|&fd| fd > 0.0 && fd < 0.1));
    }

    #[test]
    fn network_analysis_deadline_violation() {
        let (servers, mut flows) = two_hop_flows();
        flows[0].deadline = 1e-12;
        let r = analyze_flows(&servers, &flows, 1e-12, 1000);
        assert_eq!(r.outcome, GeneralOutcome::DeadlineExceeded { flow: 0 });
    }

    #[test]
    fn network_analysis_unstable() {
        let (servers, flows) = two_hop_flows();
        // 40 copies of each flow: 80 * 32 kb/s = 2.56 Mb/s > 1 Mb/s.
        let many: Vec<Flow> = (0..80).map(|i| flows[i % 2].clone()).collect();
        let r = analyze_flows(&servers, &many, 1e-12, 1000);
        assert!(matches!(r.outcome, GeneralOutcome::Unstable { .. }));
    }

    #[test]
    fn network_analysis_empty_flows() {
        let (servers, _) = two_hop_flows();
        let r = analyze_flows(&servers, &[], 1e-12, 1000);
        assert_eq!(r.outcome, GeneralOutcome::Feasible);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn multiclass_all_class0_matches_single_class() {
        let (servers, flows) = two_hop_flows();
        let classed: Vec<ClassedFlow> = flows
            .iter()
            .map(|f| ClassedFlow {
                class: 0,
                bucket: f.bucket,
                deadline: f.deadline,
                servers: f.servers.clone(),
            })
            .collect();
        let single = analyze_flows(&servers, &flows, 1e-12, 1000);
        let multi = analyze_flows_multiclass(&servers, &classed, 1, 1e-12, 1000);
        assert_eq!(single.outcome, multi.outcome);
        for (a, b) in single.delays.iter().zip(&multi.delays[0]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn multiclass_lower_priority_waits_longer() {
        // Two identical flow populations on a shared merge link, one per
        // class: the lower class must see at least the higher's delay.
        let (servers, flows) = two_hop_flows();
        let mut classed = Vec::new();
        for class in 0..2usize {
            for f in &flows {
                classed.push(ClassedFlow {
                    class,
                    bucket: f.bucket,
                    deadline: 1.0,
                    servers: f.servers.clone(),
                });
            }
        }
        let r = analyze_flows_multiclass(&servers, &classed, 2, 1e-12, 1000);
        assert_eq!(r.outcome, GeneralOutcome::Feasible);
        // On the merge server (index 1) both classes queue; priority
        // ordering must show.
        assert!(r.delays[0][1] > 0.0);
        assert!(
            r.delays[1][1] > r.delays[0][1],
            "low {} vs high {}",
            r.delays[1][1],
            r.delays[0][1]
        );
    }

    #[test]
    fn multiclass_unstable_detected() {
        let (servers, flows) = two_hop_flows();
        let classed: Vec<ClassedFlow> = (0..80)
            .map(|i| {
                let f = &flows[i % 2];
                ClassedFlow {
                    class: i % 2,
                    bucket: f.bucket,
                    deadline: 1.0,
                    servers: f.servers.clone(),
                }
            })
            .collect();
        let r = analyze_flows_multiclass(&servers, &classed, 2, 1e-12, 1000);
        assert!(matches!(r.outcome, GeneralOutcome::Unstable { .. }));
    }

    #[test]
    fn multiclass_dominated_by_theorem5_bound() {
        // The configuration-time Theorem 5 bound dominates the exact
        // multi-class analysis for an admissible placement.
        use crate::multiclass::{theorem5_delay, ClassSpec};
        let c = 10e6;
        let n = 4usize;
        let alphas = [0.2, 0.2];
        let b = voip();
        let mut g = Digraph::with_nodes(n + 1);
        let mut in_edges = Vec::new();
        for i in 0..n {
            in_edges.push(g.add_edge(NodeId(i as u32 + 1), NodeId(0), 1.0).0);
        }
        // One outbound server fed by n links.
        let out = g.add_edge(NodeId(0), NodeId(1), 1.0).0;
        let servers = Servers::uniform(&g, c, n + 1);
        let mut classed = Vec::new();
        for (ci, &alpha) in alphas.iter().enumerate() {
            let per_link = (alpha * c / b.rate / n as f64).floor() as usize;
            for &e in &in_edges {
                for _ in 0..per_link {
                    classed.push(ClassedFlow {
                        class: ci,
                        bucket: b,
                        deadline: 1.0,
                        servers: vec![e, out],
                    });
                }
            }
        }
        let exact = analyze_flows_multiclass(&servers, &classed, 2, 1e-10, 2000);
        assert_eq!(exact.outcome, GeneralOutcome::Feasible);
        let specs: Vec<ClassSpec> = alphas
            .iter()
            .map(|&alpha| ClassSpec { alpha, bucket: b })
            .collect();
        // Upstream delay for the bound: the worst first-hop delay.
        for i in 0..2 {
            let y: Vec<f64> = (0..2)
                .map(|l| {
                    in_edges
                        .iter()
                        .map(|&e| exact.delays[l][e as usize])
                        .fold(0.0, f64::max)
                })
                .collect();
            let bound = theorem5_delay(&specs, i, n + 1, &y).unwrap();
            assert!(
                exact.delays[i][out as usize] <= bound + 1e-9,
                "class {i}: exact {} vs bound {bound}",
                exact.delays[i][out as usize]
            );
        }
    }

    #[test]
    fn ingress_flows_share_one_access_link() {
        // Ten flows all entering at router 0 toward 1: they share the
        // access link, so the first hop still cannot queue.
        let mut g = Digraph::with_nodes(2);
        let e01 = g.add_edge(NodeId(0), NodeId(1), 1.0).0;
        let servers = Servers::uniform(&g, 1e6, 4);
        let flows: Vec<Flow> = (0..10)
            .map(|_| Flow {
                bucket: voip(),
                deadline: 0.1,
                servers: vec![e01],
            })
            .collect();
        let r = analyze_flows(&servers, &flows, 1e-12, 1000);
        assert_eq!(r.outcome, GeneralOutcome::Feasible);
        assert!(r.delays[0].abs() < 1e-12);
    }
}
